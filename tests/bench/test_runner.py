"""The tracked benchmark pipeline (repro bench)."""

import json

import pytest

from repro.bench.runner import BENCH_FILES, _series, run_bench


@pytest.fixture(scope="module")
def written(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    return out, run_bench(out, quick=True, n=3000)


def test_series_is_deterministic():
    import numpy as np

    assert np.array_equal(_series(1000), _series(1000))


def test_writes_every_tracked_artifact(written):
    out, paths = written
    assert sorted(p.name for p in paths) == sorted(BENCH_FILES)
    for p in paths:
        assert p.parent == out and p.exists()


def test_decompression_payload_shape(written):
    _, paths = written
    payload = json.loads(
        next(p for p in paths if "decompression" in p.name).read_text()
    )
    assert payload["meta"]["n"] == 3000
    codecs = payload["codecs"]
    assert set(codecs) == {"gorilla", "chimp", "chimp128", "tsxor"}
    for stats in codecs.values():
        assert stats["python_seconds"] > 0
        assert stats["numpy_seconds"] > 0
        assert stats["speedup"] == pytest.approx(
            stats["python_seconds"] / stats["numpy_seconds"], rel=0.02
        )


def test_random_access_counts_blocks(written):
    _, paths = written
    payload = json.loads(
        next(p for p in paths if "random_access" in p.name).read_text()
    )
    for stats in payload["codecs"].values():
        # 256 point queries over 3 blocks can never decode more than 3.
        assert 1 <= stats["blocks_decoded_for_point_queries"] <= 3


def test_committed_artifacts_record_the_speedup():
    """The repo-root BENCH files are the acceptance record: the XOR family
    must show the vectorised backend >= 5x over scalar at 1M values."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    path = root / "BENCH_table3_decompression.json"
    payload = json.loads(path.read_text())
    assert payload["meta"]["n"] == 1_000_000
    for cid in ("gorilla", "chimp", "chimp128"):
        assert payload["codecs"][cid]["speedup"] >= 5.0, cid
