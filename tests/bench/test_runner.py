"""The tracked benchmark pipeline (repro bench)."""

import json

import pytest

from repro.bench.runner import BENCH_FILES, _series, run_bench


@pytest.fixture(scope="module")
def written(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    return out, run_bench(out, quick=True, n=3000)


def test_series_is_deterministic():
    import numpy as np

    assert np.array_equal(_series(1000), _series(1000))


def test_writes_every_tracked_artifact(written):
    out, paths = written
    assert sorted(p.name for p in paths) == sorted(BENCH_FILES)
    for p in paths:
        assert p.parent == out and p.exists()


def test_decompression_payload_shape(written):
    _, paths = written
    payload = json.loads(
        next(p for p in paths if "decompression" in p.name).read_text()
    )
    assert payload["meta"]["n"] == 3000
    codecs = payload["codecs"]
    assert set(codecs) == {"gorilla", "chimp", "chimp128", "tsxor"}
    for stats in codecs.values():
        assert stats["python_seconds"] > 0
        assert stats["numpy_seconds"] > 0
        assert stats["speedup"] == pytest.approx(
            stats["python_seconds"] / stats["numpy_seconds"], rel=0.02
        )


def test_random_access_counts_blocks(written):
    _, paths = written
    payload = json.loads(
        next(p for p in paths if "random_access" in p.name).read_text()
    )
    for stats in payload["codecs"].values():
        # 256 point queries over 3 blocks can never decode more than 3.
        assert 1 <= stats["blocks_decoded_for_point_queries"] <= 3


def test_partition_ingest_payload_shape(written):
    _, paths = written
    payload = json.loads(
        next(p for p in paths if "partition_ingest" in p.name).read_text()
    )
    configs = payload["configs"]
    assert set(configs) == {
        f"p{p}_group_{g}" for p in (1, 2, 4, 8) for g in ("on", "off")
    }
    for partitions in (1, 2, 4, 8):
        on = configs[f"p{partitions}_group_on"]
        off = configs[f"p{partitions}_group_off"]
        assert on["ingest_seconds"] > 0 and off["ingest_seconds"] > 0
        # group commit: one fsync per touched partition; without it, one
        # per series in the batch
        assert on["fsyncs_per_batch"] <= partitions
        assert off["fsyncs_per_batch"] == payload["meta"]["num_series"]
    assert configs["p1_group_on"]["fsyncs_per_batch"] == 1


def test_committed_partition_ingest_records_group_commit():
    """The repo-root artefact must show group commit collapsing a whole
    batch to one fsync per partition.  The fan-out speedup claim
    (>= 1.5x at 4 partitions) only holds with cores to run the workers
    on, so it is asserted only when the recording box had >= 4."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    payload = json.loads((root / "BENCH_partition_ingest.json").read_text())
    assert payload["meta"]["n"] == 1_000_000
    configs = payload["configs"]
    assert configs["p1_group_on"]["fsyncs_per_batch"] == 1
    assert configs["p4_group_on"]["fsyncs_per_batch"] <= 4
    assert (
        configs["p4_group_off"]["fsyncs_per_batch"]
        == payload["meta"]["num_series"]
    )
    if payload["meta"].get("cpus", 1) >= 4:
        assert configs["p4_group_on"]["speedup_vs_1_partition"] >= 1.5


def test_committed_artifacts_record_the_speedup():
    """The repo-root BENCH files are the acceptance record: the XOR family
    must show the vectorised backend >= 5x over scalar at 1M values."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    path = root / "BENCH_table3_decompression.json"
    payload = json.loads(path.read_text())
    assert payload["meta"]["n"] == 1_000_000
    for cid in ("gorilla", "chimp", "chimp128"):
        assert payload["codecs"][cid]["speedup"] >= 5.0, cid
