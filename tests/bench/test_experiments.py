"""Smoke tests for the experiment drivers (tiny inputs, full code paths)."""

import numpy as np
import pytest

from repro.bench import (
    render_fig2,
    render_fig3,
    render_fig4,
    render_table2,
    render_table3,
    run_evaluation,
    run_fig4,
    run_table2,
)
from repro.bench import ablations


@pytest.fixture(scope="module")
def small_eval():
    """One shared tiny evaluation over two datasets and four compressors."""
    return run_evaluation(
        datasets=["CT", "BP"],
        compressors=["Zstd*", "DAC", "LeCo", "NeaTS"],
        n=1200,
        access_queries=20,
        verbose=False,
    )


class TestTable2:
    def test_rows_and_render(self):
        rows = run_table2(datasets=["BP"], n=1000, quick=True)
        assert len(rows) == 1
        row = rows[0]
        assert row.ratio_neats_l > 0
        assert row.eps > 0
        out = render_table2(rows)
        assert "BP" in out
        assert "NeaTS-L" in out

    def test_improvement_properties(self):
        rows = run_table2(datasets=["DU"], n=1000, quick=True)
        r = rows[0]
        # improvements are consistent with the ratios
        assert (r.improvement_vs_pla > 0) == (r.ratio_neats_l < r.ratio_pla)


class TestEvaluation:
    def test_stats_structure(self, small_eval):
        assert set(small_eval.stats) == {"CT", "BP"}
        for ds in small_eval.datasets:
            assert set(small_eval.stats[ds]) == {"Zstd*", "DAC", "LeCo", "NeaTS"}

    def test_average(self, small_eval):
        avg = small_eval.average("ratio_pct")
        assert all(v > 0 for v in avg.values())

    def test_render_table3(self, small_eval):
        out = render_table3(small_eval)
        assert "Table III (top)" in out
        assert "Table III (middle)" in out
        assert "Table III (bottom)" in out
        assert "NeaTS" in out

    def test_render_fig2(self, small_eval):
        out = render_fig2(small_eval)
        assert "Figure 2" in out

    def test_render_fig3(self, small_eval):
        out = render_fig3(small_eval)
        assert "Figure 3" in out


class TestFig4:
    def test_run_and_render(self):
        result = run_fig4(
            datasets=["CT"], n=1200, max_exponent=4, queries=3, verbose=False
        )
        assert result.range_sizes == [10, 20, 40, 80, 160]
        for comp, series in result.throughput.items():
            assert len(series) == 5
            assert all(v > 0 or np.isnan(v) for v in series)
        out = render_fig4(result)
        assert "Figure 4" in out


class TestAblations:
    def test_variant_ablation(self):
        out = ablations.run_variant_ablation(datasets=["BP"], n=800)
        assert "LeaTS" in out and "SNeaTS" in out

    def test_rank_ablation(self):
        out = ablations.run_rank_ablation(datasets=["BP"], n=800, queries=50)
        assert "bitvector" in out and "ef" in out

    def test_eps_grid_ablation(self):
        out = ablations.run_eps_grid_ablation(datasets=["BP"], n=800)
        assert "E stride" in out

    def test_model_set_ablation(self):
        out = ablations.run_model_set_ablation(datasets=["BP"], n=800)
        assert "- linear" in out


class TestCli:
    def test_main_table2(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        out_file = tmp_path / "report.txt"
        code = main([
            "-e", "table2", "-d", "BP", "--n", "600",
            "--quick-calibration", "-o", str(out_file),
        ])
        assert code == 0
        assert "Table II" in out_file.read_text()

    def test_main_rejects_unknown_dataset(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["-d", "NOPE"])
