"""Unit tests for the benchmark harness (measurement and rendering)."""

import numpy as np
import pytest

from repro.bench import (
    ALL_NAMES,
    calibrate_eps,
    make_compressor,
    measure_lossless,
    measure_random_access,
    measure_range_throughput,
)
from repro.bench.measure import CompressorStats
from repro.bench.registry import (
    GENERAL_NAMES,
    SPECIAL_NAMES,
    LeaTSCompressor,
    NeaTSCompressor,
    SNeaTSCompressor,
)
from repro.bench.render import render_scatter, render_table


class TestRegistry:
    def test_lineup_matches_table3(self):
        assert GENERAL_NAMES == ["Xz", "Brotli*", "Zstd*", "Lz4*", "Snappy*"]
        assert SPECIAL_NAMES[-1] == "NeaTS"
        assert len(ALL_NAMES) == 13

    @pytest.mark.parametrize("name", ["Xz", "DAC", "NeaTS", "LeaTS", "SNeaTS"])
    def test_factories_work(self, name, walk_series):
        comp = make_compressor(name, digits=2)
        c = comp.compress(walk_series)
        assert np.array_equal(c.decompress(), walk_series)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_compressor("gzip")

    def test_neats_adapters_expose_names(self):
        assert NeaTSCompressor().name == "NeaTS"
        assert LeaTSCompressor().name == "LeaTS"
        assert SNeaTSCompressor().name == "SNeaTS"


class TestMeasurement:
    def test_measure_lossless_stats(self, walk_series):
        comp = make_compressor("DAC")
        stats = measure_lossless(comp, walk_series, dataset="T")
        assert stats.name == "DAC"
        assert 0 < stats.ratio < 2
        assert stats.ratio_pct == pytest.approx(100 * stats.ratio)
        assert stats.compress_mb_s > 0
        assert stats.decompress_mb_s > 0

    def test_measure_lossless_catches_corruption(self, walk_series):
        class Broken:
            name = "broken"

            def compress(self, values):
                class C:
                    def size_bits(self_inner):
                        return 1

                    def decompress(self_inner):
                        return values + 1

                return C()

        with pytest.raises(AssertionError):
            measure_lossless(Broken(), walk_series)

    def test_random_access_measurement(self, walk_series):
        comp = make_compressor("DAC")
        c = comp.compress(walk_series)
        spq = measure_random_access(c, walk_series, queries=50)
        assert spq > 0

    def test_random_access_detects_mismatch(self, walk_series):
        class Lying:
            def access(self, k):
                return -999999999

        with pytest.raises(AssertionError):
            measure_random_access(Lying(), walk_series, queries=5)

    def test_range_throughput(self, walk_series):
        comp = make_compressor("DAC")
        c = comp.compress(walk_series)
        qps = measure_range_throughput(c, walk_series, range_size=64, queries=5)
        assert qps > 0

    def test_stats_speed_units(self):
        stats = CompressorStats(
            name="x", dataset="d", n=1_000_000, compressed_bits=64,
            compress_seconds=1.0, decompress_seconds=2.0,
            access_seconds_per_query=8e-6,
        )
        assert stats.compress_mb_s == pytest.approx(8.0)
        assert stats.decompress_mb_s == pytest.approx(4.0)
        assert stats.access_mb_s == pytest.approx(1.0)


class TestCalibration:
    def test_quick_calibration_positive(self, smooth_series):
        eps = calibrate_eps(smooth_series, quick=True)
        assert eps >= 1.0

    def test_full_calibration_makes_lossy_smaller(self, smooth_series):
        from repro.core import NeaTS, NeaTSLossy

        eps = calibrate_eps(smooth_series, quick=False)
        lossy = NeaTSLossy(eps).compress(smooth_series)
        lossless = NeaTS().compress(smooth_series)
        assert lossy.size_bits() < lossless.size_bits()


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(["A", "Bee"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "A" in lines[1] and "Bee" in lines[1]
        assert len({len(l) for l in lines[2:]}) == 1  # aligned rows

    def test_render_table_highlight(self):
        out = render_table(["A"], [["7"]], highlight={(0, 0): "*"})
        assert "7*" in out

    def test_render_scatter_contains_labels(self):
        out = render_scatter(
            {"NeaTS": (10.0, 5.0), "Xz": (12.0, 0.1)},
            xlabel="ratio", ylabel="speed",
        )
        assert "NeaTS" in out and "Xz" in out

    def test_render_scatter_log_scale(self):
        out = render_scatter(
            {"a": (1.0, 0.001), "b": (2.0, 1000.0)},
            xlabel="x", ylabel="y", log_y=True,
        )
        assert "10^" in out

    def test_render_scatter_empty(self):
        assert render_scatter({}, "x", "y") == "(no points)"
