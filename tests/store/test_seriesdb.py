"""Tests for SeriesDB: shard-per-series persistence, ingest, compaction."""

import json
import zlib

import numpy as np
import pytest

from repro.store import SeriesDB


@pytest.fixture
def fleet(rng):
    out = {}
    for i in range(3):
        y = 300 * np.sin(np.arange(3000) / (20 + 10 * i))
        out[f"sensor/{i}"] = (y + np.cumsum(rng.integers(-2, 3, 3000))).astype(
            np.int64
        )
    return out


@pytest.fixture
def db(tmp_path, fleet):
    db = SeriesDB(tmp_path / "db", seal_threshold=512, hot_codec="gorilla",
                  cold_codec="leats")
    db.ingest_many(fleet, workers=2)
    db.flush()
    return db


class TestRoundTrip:
    def test_reopen_answers_queries(self, db, fleet):
        again = SeriesDB.open(db.root)
        assert again.series_ids() == list(fleet)
        for sid, values in fleet.items():
            assert again.count(sid) == len(values)
            assert again.access(sid, 1717) == values[1717]
            assert np.array_equal(again.range(sid, 100, 900), values[100:900])
            assert np.array_equal(again.decompress(sid), values)

    def test_shard_frames_byte_identical_across_cycles(self, db, fleet):
        blobs = {
            sid: (db.root / db.info()["series"][sid]["shard"]).read_bytes()
            for sid in fleet
        }
        again = SeriesDB.open(db.root)
        for sid in fleet:
            again.mark_dirty(sid)  # force a rewrite from the loaded state
        again.flush()
        for sid, entry in again.info()["series"].items():
            # rewrites land under a fresh generation name, identical bytes
            assert (again.root / entry["shard"]).read_bytes() == blobs[sid]

    def test_flush_replaces_shard_files_and_reopens(self, db, fleet):
        old = {sid: e["shard"] for sid, e in db.info()["series"].items()}
        sid = next(iter(fleet))
        db.ingest(sid, np.arange(10, dtype=np.int64))
        db.flush()
        entry = db.info()["series"][sid]
        assert entry["shard"] != old[sid]  # fresh generation name
        assert not (db.root / old[sid]).exists()  # old file dropped post-commit
        again = SeriesDB.open(db.root)
        assert again.count(sid) == len(fleet[sid]) + 10

    def test_mark_dirty_before_load_then_flush(self, db, fleet):
        again = SeriesDB.open(db.root)
        sid = next(iter(fleet))
        again.mark_dirty(sid)  # shard not loaded yet: must not break flush
        again.flush()
        assert np.array_equal(SeriesDB.open(db.root).decompress(sid), fleet[sid])

    def test_pooled_ingest_identical_to_serial_ingest(self, tmp_path, fleet):
        serial = SeriesDB(tmp_path / "serial", seal_threshold=512,
                          hot_codec="gorilla", cold_codec="leats")
        for sid, values in fleet.items():
            serial.ingest(sid, values)
        serial.flush()
        pooled = SeriesDB(tmp_path / "pooled", seal_threshold=512,
                          hot_codec="gorilla", cold_codec="leats")
        pooled.ingest_many(fleet, workers=2)
        pooled.flush()
        for sid in fleet:
            a = (serial.root / serial.info()["series"][sid]["shard"]).read_bytes()
            b = (pooled.root / pooled.info()["series"][sid]["shard"]).read_bytes()
            assert a == b

    def test_context_manager_flushes(self, tmp_path, fleet):
        with SeriesDB(tmp_path / "db", seal_threshold=256) as db:
            db.ingest("only", next(iter(fleet.values())))
        again = SeriesDB.open(tmp_path / "db")
        assert again.count("only") == 3000


class TestIngest:
    def test_append_to_existing_series(self, db, fleet):
        sid = next(iter(fleet))
        more = np.arange(700, dtype=np.int64)
        assert db.ingest(sid, more) == len(fleet[sid]) + 700
        db.flush()
        again = SeriesDB.open(db.root)
        expected = np.concatenate([fleet[sid], more])
        assert np.array_equal(again.decompress(sid), expected)

    def test_ingest_many_appends_across_buffer_boundary(self, tmp_path):
        values = np.arange(1300, dtype=np.int64)
        db = SeriesDB(tmp_path / "db", seal_threshold=512)
        db.ingest_many({"s": values[:700]}, workers=1)  # buffer holds 188
        db.ingest_many({"s": values[700:]}, workers=1)
        assert np.array_equal(db.decompress("s"), values)
        report = db.store("s").tier_report()
        assert report["hot_blocks"] == 2
        assert report["buffer_values"] == 1300 - 2 * 512

    def test_unknown_series_raises(self, db):
        with pytest.raises(ValueError, match="unknown series"):
            db.access("nope", 0)

    def test_invalid_series_id_raises(self, db):
        with pytest.raises(ValueError, match="invalid series id"):
            db.ingest("", [1, 2, 3])

    def test_digits_recorded_and_mismatch_rejected(self, db, fleet):
        sid = next(iter(fleet))
        assert db.digits(sid) == 0
        db.ingest("scaled", np.arange(100, dtype=np.int64), digits=2)
        db.flush()
        again = SeriesDB.open(db.root)
        assert again.digits("scaled") == 2
        with pytest.raises(ValueError, match="mix scales"):
            again.ingest("scaled", np.arange(10), digits=3)
        with pytest.raises(ValueError, match="mix scales"):
            again.ingest_many({"scaled": np.arange(10)}, digits=1)
        assert again.ingest("scaled", np.arange(10), digits=2) == 110

    def test_ingest_many_is_atomic_on_bad_input(self, db, fleet):
        """A bad series later in the batch must not half-apply earlier ones."""
        sid = next(iter(fleet))
        before = db.count(sid)
        with pytest.raises(ValueError, match="1-D"):
            db.ingest_many(
                {sid: np.arange(900), "bad": np.zeros((3, 3))}, workers=1
            )
        assert db.count(sid) == before
        with pytest.raises(ValueError, match="invalid series id"):
            db.ingest_many({sid: np.arange(900), "": np.arange(5)}, workers=1)
        assert db.count(sid) == before

    def test_unsafe_ids_get_distinct_shards(self, db, fleet):
        # "sensor/0" etc. sanitise to the same stem; the counter suffix
        # keeps the shard files distinct.
        shards = {e["shard"] for e in db.info()["series"].values()}
        assert len(shards) == len(fleet)


class TestCompact:
    def test_threshold_selects_shards(self, tmp_path, fleet):
        db = SeriesDB(tmp_path / "db", seal_threshold=512, hot_codec="gorilla",
                      cold_codec="leats")
        sids = list(fleet)
        db.ingest(sids[0], fleet[sids[0]])         # 2560 sealed hot values
        db.ingest(sids[1], fleet[sids[1]][:600])   # 512 sealed hot values
        db.flush()
        compacted = db.compact(hot_threshold=1000)
        assert compacted == [sids[0]]
        report = db.store(sids[0]).tier_report()
        assert report["hot_values"] == 0 and report["cold_values"] == 2560
        assert db.store(sids[1]).tier_report()["hot_values"] == 512

    def test_compact_persists_and_preserves_data(self, db, fleet):
        assert set(db.compact()) == set(fleet)
        again = SeriesDB.open(db.root)
        for sid, values in fleet.items():
            assert np.array_equal(again.decompress(sid), values)
            entry = again.info()["series"][sid]
            assert entry["hot_values"] == 0 and entry["cold_values"] > 0

    def test_compact_nothing_to_do(self, db):
        db.compact()
        assert db.compact() == []


class TestCorruption:
    def test_swapped_shard_fails_crc(self, db, fleet):
        sids = list(fleet)
        info = db.info()["series"]
        a = db.root / info[sids[0]]["shard"]
        b = db.root / info[sids[1]]["shard"]
        blob_a, blob_b = a.read_bytes(), b.read_bytes()
        a.write_bytes(blob_b)
        b.write_bytes(blob_a)
        again = SeriesDB.open(db.root)
        with pytest.raises(ValueError, match="manifest crc"):
            again.access(sids[0], 0)

    def test_count_mismatch_detected(self, db, fleet):
        sid = next(iter(fleet))
        manifest_path = db.root / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["series"][sid]["count"] += 1
        manifest_path.write_text(json.dumps(manifest))
        again = SeriesDB.open(db.root)
        with pytest.raises(ValueError, match="manifest says"):
            again.access(sid, 0)

    def test_bit_rot_in_shard_fails(self, db, fleet):
        sid = next(iter(fleet))
        path = db.root / db.info()["series"][sid]["shard"]
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        again = SeriesDB.open(db.root)
        with pytest.raises(ValueError):
            again.access(sid, 0)

    def test_not_a_db_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no SeriesDB manifest"):
            SeriesDB.open(tmp_path / "missing")

    def test_bad_manifest_format_raises(self, tmp_path):
        root = tmp_path / "db"
        root.mkdir()
        (root / "MANIFEST.json").write_text(json.dumps({"format": "WRONG"}))
        with pytest.raises(ValueError, match="not a SeriesDB manifest"):
            SeriesDB(root)

    def test_instance_codecs_rejected(self, tmp_path):
        from repro.baselines.gorilla import GorillaCompressor

        with pytest.raises(ValueError, match="codec ids"):
            SeriesDB(tmp_path / "db", hot_codec=GorillaCompressor())

    def test_invalid_seal_threshold_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="seal_threshold"):
            SeriesDB(tmp_path / "db", seal_threshold=0)
        assert not (tmp_path / "db" / "MANIFEST.json").exists()

    def test_manifest_crc_check_uses_zlib(self, db, fleet):
        # sanity: the recorded crc32 actually matches the shard bytes
        for sid, entry in db.info()["series"].items():
            blob = (db.root / entry["shard"]).read_bytes()
            assert zlib.crc32(blob) == entry["crc32"]
