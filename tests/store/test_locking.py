"""One SeriesDB handle shared across threads: the RLock contract.

These tests hammer a single handle from many threads — concurrent ingest
into disjoint series, mixed readers and writers on the same series, and
flush/compact racing queries.  Correctness bar: no exceptions escape a
worker, and every value ingested is accounted for afterwards.
"""

import threading

import numpy as np
import pytest

from repro.store import SeriesDB


def run_threads(workers):
    """Run all workers concurrently; re-raise the first worker exception."""
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def test_concurrent_ingest_disjoint_series(tmp_path):
    db = SeriesDB(tmp_path / "db", seal_threshold=64)
    n_threads, per_batch, batches = 8, 100, 5

    def ingester(tid):
        def work():
            values = np.arange(per_batch, dtype=np.int64) + tid
            for _ in range(batches):
                db.ingest(f"s{tid}", values)

        return work

    run_threads([ingester(t) for t in range(n_threads)])
    for tid in range(n_threads):
        assert db.count(f"s{tid}") == per_batch * batches
        assert db.access(f"s{tid}", 0) == tid


def test_concurrent_append_same_series(tmp_path):
    """Interleaved appends to one series must serialise, not interleave."""
    db = SeriesDB(tmp_path / "db", seal_threshold=64)
    n_threads, batches = 6, 10
    chunk = np.full(17, 3, dtype=np.int64)

    def work():
        for _ in range(batches):
            db.ingest("shared", chunk)

    run_threads([work] * n_threads)
    assert db.count("shared") == len(chunk) * batches * n_threads
    assert np.all(db.decompress("shared") == 3)


def test_readers_race_writers(tmp_path):
    db = SeriesDB(tmp_path / "db", seal_threshold=64)
    db.ingest("hot", np.arange(500, dtype=np.int64))
    stop = threading.Event()

    def writer():
        for i in range(20):
            db.ingest("hot", np.arange(50, dtype=np.int64))
        stop.set()

    def reader():
        while not stop.is_set():
            n = db.count("hot")
            assert n >= 500
            assert db.access("hot", 0) == 0
            got = db.range("hot", 0, min(n, 100))
            assert len(got) == min(n, 100)

    run_threads([writer, reader, reader, reader])
    assert db.count("hot") == 500 + 20 * 50


def test_flush_and_compact_race_queries(tmp_path):
    db = SeriesDB(tmp_path / "db", seal_threshold=32)
    for sid in ("a", "b", "c"):
        db.ingest(sid, np.arange(300, dtype=np.int64))
    stop = threading.Event()

    def churner():
        for i in range(10):
            db.ingest("a", np.arange(40, dtype=np.int64))
            db.flush()
            db.compact()
        stop.set()

    def reader():
        while not stop.is_set():
            for sid in ("a", "b", "c"):
                assert db.access(sid, 5) == 5
                assert db.count(sid) >= 300

    run_threads([churner, reader, reader])
    db.flush()
    reopened = SeriesDB.open(tmp_path / "db")
    assert reopened.count("a") == 300 + 10 * 40


def test_reentrant_compact_under_lock(tmp_path):
    """compact() flushes while already holding the lock: RLock, not Lock."""
    db = SeriesDB(tmp_path / "db", seal_threshold=16)
    db.ingest("x", np.arange(200, dtype=np.int64))
    with db._lock:  # a caller composing operations atomically
        db.compact()
        assert db.count("x") == 200


def test_lock_is_reentrant_type(tmp_path):
    db = SeriesDB(tmp_path / "db")
    assert db._lock.acquire(blocking=False)
    assert db._lock.acquire(blocking=False)  # same thread, second acquire
    db._lock.release()
    db._lock.release()


# -- close(): idempotence and the poisoned-handle contract ----------------------


class TestCloseContract:
    """close() is idempotent; afterwards every public call raises ValueError.

    The failure mode this guards against: close() used to drop internal
    dicts, so a late thread touching the handle died with AttributeError
    deep inside a lock region.  Now the handle is poisoned explicitly and
    the error names the root and the remedy.
    """

    def _open(self, tmp_path):
        db = SeriesDB(tmp_path / "db", seal_threshold=64)
        db.ingest("s", np.arange(128, dtype=np.int64))
        return db

    def test_close_is_idempotent(self, tmp_path):
        db = self._open(tmp_path)
        db.close()
        db.close()  # a second close is a silent no-op
        assert db.closed

    def test_closed_property_tracks_lifecycle(self, tmp_path):
        db = self._open(tmp_path)
        assert not db.closed
        db.close()
        assert db.closed

    def test_every_public_call_raises_value_error(self, tmp_path):
        db = self._open(tmp_path)
        db.close()
        calls = {
            "series_ids": lambda: db.series_ids(),
            "__contains__": lambda: "s" in db,
            "__len__": lambda: len(db),
            "count": lambda: db.count("s"),
            "digits": lambda: db.digits("s"),
            "cache_info": lambda: db.cache_info(),
            "info": lambda: db.info(),
            "ingest": lambda: db.ingest("s", [1, 2, 3]),
            "ingest_many": lambda: db.ingest_many({"s": [1]}),
            "access": lambda: db.access("s", 0),
            "range": lambda: db.range("s", 0, 4),
            "decompress": lambda: db.decompress("s"),
            "store": lambda: db.store("s"),
            "mark_dirty": lambda: db.mark_dirty("s"),
            "compact": lambda: db.compact(),
            "flush": lambda: db.flush(),
        }
        for name, call in calls.items():
            with pytest.raises(ValueError, match="closed") as excinfo:
                call()
            # Never AttributeError from torn-down internals.
            assert not isinstance(excinfo.value, AttributeError), name
            assert "reopen" in str(excinfo.value), name

    def test_post_close_from_other_threads(self, tmp_path):
        """Racing threads after close all see the contracted ValueError."""
        db = self._open(tmp_path)
        db.close()
        failures = []

        def worker():
            try:
                db.ingest("late", [1])
            except ValueError:
                pass
            except Exception as exc:  # noqa: BLE001 - the regression
                failures.append(exc)

        run_threads([worker] * 6)
        assert failures == []

    def test_context_manager_poisons_on_exit(self, tmp_path):
        with SeriesDB(tmp_path / "db", seal_threshold=64) as db:
            db.ingest("s", [1, 2, 3])
        assert db.closed
        with pytest.raises(ValueError, match="closed"):
            db.count("s")

    def test_reopen_after_close_works(self, tmp_path):
        db = self._open(tmp_path)
        db.flush()
        db.close()
        reopened = SeriesDB.open(tmp_path / "db")
        assert reopened.count("s") == 128
        reopened.close()


# -- TieredStore: the external-synchronisation contract -------------------------


class TestTieredStoreGuard:
    """Mutating entry points call the armed ``_guard`` hook first."""

    def test_guard_fires_on_every_mutator(self):
        from repro.core.tiered import TieredStore

        store = TieredStore(seal_threshold=8)
        store.extend(np.arange(16, dtype=np.int64))  # unarmed: no-op
        calls = []
        store._guard = lambda: calls.append(1)

        store.append(7)
        store.extend(np.arange(8, dtype=np.int64))
        store.consolidate()
        assert len(calls) == 3

        donor = TieredStore(seal_threshold=8)
        donor.extend(np.arange(8, dtype=np.int64))
        sealed = donor._hot[0]
        store.adopt_sealed(sealed)
        assert len(calls) == 4

    def test_guard_can_enforce_locking(self):
        from repro.core.tiered import TieredStore

        lock = threading.RLock()

        def must_hold():
            # RLock exposes ownership via acquire(blocking=False) semantics:
            # simulate an assert-held guard the way the sanitizer arms one.
            if not lock._is_owned():  # type: ignore[attr-defined]
                raise AssertionError("TieredStore mutated without the lock")

        store = TieredStore(seal_threshold=8)
        store._guard = must_hold
        with pytest.raises(AssertionError):
            store.append(1)
        with lock:
            store.append(1)  # guard satisfied under the lock
