"""One SeriesDB handle shared across threads: the RLock contract.

These tests hammer a single handle from many threads — concurrent ingest
into disjoint series, mixed readers and writers on the same series, and
flush/compact racing queries.  Correctness bar: no exceptions escape a
worker, and every value ingested is accounted for afterwards.
"""

import threading

import numpy as np
import pytest

from repro.store import SeriesDB


def run_threads(workers):
    """Run all workers concurrently; re-raise the first worker exception."""
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def test_concurrent_ingest_disjoint_series(tmp_path):
    db = SeriesDB(tmp_path / "db", seal_threshold=64)
    n_threads, per_batch, batches = 8, 100, 5

    def ingester(tid):
        def work():
            values = np.arange(per_batch, dtype=np.int64) + tid
            for _ in range(batches):
                db.ingest(f"s{tid}", values)

        return work

    run_threads([ingester(t) for t in range(n_threads)])
    for tid in range(n_threads):
        assert db.count(f"s{tid}") == per_batch * batches
        assert db.access(f"s{tid}", 0) == tid


def test_concurrent_append_same_series(tmp_path):
    """Interleaved appends to one series must serialise, not interleave."""
    db = SeriesDB(tmp_path / "db", seal_threshold=64)
    n_threads, batches = 6, 10
    chunk = np.full(17, 3, dtype=np.int64)

    def work():
        for _ in range(batches):
            db.ingest("shared", chunk)

    run_threads([work] * n_threads)
    assert db.count("shared") == len(chunk) * batches * n_threads
    assert np.all(db.decompress("shared") == 3)


def test_readers_race_writers(tmp_path):
    db = SeriesDB(tmp_path / "db", seal_threshold=64)
    db.ingest("hot", np.arange(500, dtype=np.int64))
    stop = threading.Event()

    def writer():
        for i in range(20):
            db.ingest("hot", np.arange(50, dtype=np.int64))
        stop.set()

    def reader():
        while not stop.is_set():
            n = db.count("hot")
            assert n >= 500
            assert db.access("hot", 0) == 0
            got = db.range("hot", 0, min(n, 100))
            assert len(got) == min(n, 100)

    run_threads([writer, reader, reader, reader])
    assert db.count("hot") == 500 + 20 * 50


def test_flush_and_compact_race_queries(tmp_path):
    db = SeriesDB(tmp_path / "db", seal_threshold=32)
    for sid in ("a", "b", "c"):
        db.ingest(sid, np.arange(300, dtype=np.int64))
    stop = threading.Event()

    def churner():
        for i in range(10):
            db.ingest("a", np.arange(40, dtype=np.int64))
            db.flush()
            db.compact()
        stop.set()

    def reader():
        while not stop.is_set():
            for sid in ("a", "b", "c"):
                assert db.access(sid, 5) == 5
                assert db.count(sid) >= 300

    run_threads([churner, reader, reader])
    db.flush()
    reopened = SeriesDB.open(tmp_path / "db")
    assert reopened.count("a") == 300 + 10 * 40


def test_reentrant_compact_under_lock(tmp_path):
    """compact() flushes while already holding the lock: RLock, not Lock."""
    db = SeriesDB(tmp_path / "db", seal_threshold=16)
    db.ingest("x", np.arange(200, dtype=np.int64))
    with db._lock:  # a caller composing operations atomically
        db.compact()
        assert db.count("x") == 200


def test_lock_is_reentrant_type(tmp_path):
    db = SeriesDB(tmp_path / "db")
    assert db._lock.acquire(blocking=False)
    assert db._lock.acquire(blocking=False)  # same thread, second acquire
    db._lock.release()
    db._lock.release()
