"""Tests for PartitionedSeriesDB: placement, scatter-gather, migration."""

import json
import zlib

import numpy as np
import pytest

from repro.store import (
    PartitionedSeriesDB,
    SeriesDB,
    SeriesStore,
    open_store,
)
from repro.store.partitioned import PARTITION_MANIFEST_FORMAT, _PART_DIR


@pytest.fixture
def fleet(rng):
    out = {}
    for i in range(8):
        y = 200 * np.sin(np.arange(1500) / (15 + 7 * i))
        out[f"sensor/{i}"] = (
            y + np.cumsum(rng.integers(-3, 4, 1500))
        ).astype(np.int64)
    return out


@pytest.fixture
def pdb(tmp_path, fleet):
    db = PartitionedSeriesDB(
        tmp_path / "pdb", partitions=3, seal_threshold=512,
        hot_codec="gorilla", cold_codec="leats",
    )
    db.ingest_many(fleet, workers=2)
    db.flush()
    return db


class TestProtocol:
    def test_both_stores_satisfy_series_store(self, pdb, tmp_path):
        assert isinstance(pdb, SeriesStore)
        single = SeriesDB(tmp_path / "single")
        assert isinstance(single, SeriesStore)
        single.close()

    def test_open_store_dispatches_on_manifest(self, pdb, tmp_path, fleet):
        single = SeriesDB(tmp_path / "single")
        single.ingest("s", np.arange(10, dtype=np.int64))
        single.close()
        assert isinstance(open_store(tmp_path / "single"), SeriesDB)
        again = open_store(pdb.root)
        assert isinstance(again, PartitionedSeriesDB)
        again.close()


class TestPlacement:
    def test_crc32_placement_and_partition_dirs(self, pdb, fleet):
        for sid in fleet:
            part = zlib.crc32(sid.encode("utf-8")) % pdb.partitions
            assert pdb.partition_of(sid) == part
            shard = pdb.info()["series"][sid]["shard"]
            assert (
                pdb.root / _PART_DIR.format(part) / shard
            ).exists()

    def test_root_manifest_format_and_map(self, pdb, fleet):
        manifest = json.loads((pdb.root / "MANIFEST.json").read_text())
        assert manifest["format"] == PARTITION_MANIFEST_FORMAT
        assert manifest["partitions"] == 3
        assert set(manifest["series"]) == set(fleet)

    def test_unknown_series_raises_with_known_list(self, pdb):
        with pytest.raises(ValueError, match="unknown series"):
            pdb.access("nope", 0)


class TestQueries:
    def test_reopen_answers_queries(self, pdb, fleet):
        again = PartitionedSeriesDB.open(pdb.root)
        assert set(again.series_ids()) == set(fleet)
        assert len(again) == len(fleet)
        for sid, values in fleet.items():
            assert sid in again
            assert again.count(sid) == len(values)
            assert again.access(sid, 717) == values[717]
            assert np.array_equal(again.range(sid, 100, 900), values[100:900])
            assert np.array_equal(again.decompress(sid), values)
        again.close()

    def test_scatter_gather_many(self, pdb, fleet):
        sids = list(fleet)
        at = 321
        got = pdb.access_many({sid: at for sid in sids})
        assert got == {sid: fleet[sid][at] for sid in sids}
        ranges = pdb.range_many({sid: (50, 400) for sid in sids})
        for sid in sids:
            assert np.array_equal(ranges[sid], fleet[sid][50:400])

    def test_ingest_single_series_roundtrip(self, pdb, rng):
        extra = np.cumsum(rng.integers(-5, 6, 300)).astype(np.int64)
        pdb.ingest("late/arrival", extra)
        assert np.array_equal(pdb.decompress("late/arrival"), extra)
        # the map learned the placement before any data landed
        manifest = json.loads((pdb.root / "MANIFEST.json").read_text())
        assert "late/arrival" in manifest["series"]


class TestCompaction:
    def test_parallel_compact_compacts_every_partition(self, pdb, fleet):
        compacted = pdb.compact(workers=2)
        assert set(compacted) == set(fleet)
        for sid, values in fleet.items():
            assert np.array_equal(pdb.decompress(sid), values)


class TestParallelIngestEquivalence:
    def test_process_fanout_matches_serial(self, tmp_path, fleet):
        serial = PartitionedSeriesDB(tmp_path / "a", partitions=3)
        serial.ingest_many(fleet, workers=1)
        serial.flush()
        fanned = PartitionedSeriesDB(tmp_path / "b", partitions=3)
        fanned.ingest_many(fleet, workers=3)
        fanned.flush()
        for sid, values in fleet.items():
            assert np.array_equal(serial.decompress(sid), values)
            assert np.array_equal(fanned.decompress(sid), values)
        serial.close()
        fanned.close()


class TestLifecycle:
    def test_close_poisons_and_is_idempotent(self, tmp_path):
        db = PartitionedSeriesDB(tmp_path / "p", partitions=2)
        db.close()
        db.close()  # no-op
        assert db.closed
        with pytest.raises(ValueError, match="closed"):
            db.series_ids()

    def test_context_manager(self, tmp_path, rng):
        values = np.cumsum(rng.integers(-2, 3, 100)).astype(np.int64)
        with PartitionedSeriesDB(tmp_path / "p", partitions=2) as db:
            db.ingest("s", values)
        assert db.closed
        with PartitionedSeriesDB.open(tmp_path / "p") as again:
            assert np.array_equal(again.decompress("s"), values)

    def test_open_missing_root_raises(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            PartitionedSeriesDB.open(tmp_path / "nothing")


class TestReconcile:
    def test_adopts_series_the_map_never_learned(self, pdb, fleet):
        pdb.close()
        manifest = json.loads((pdb.root / "MANIFEST.json").read_text())
        sid = next(iter(fleet))
        del manifest["series"][sid]
        (pdb.root / "MANIFEST.json").write_text(json.dumps(manifest))
        again = PartitionedSeriesDB.open(pdb.root)
        assert sid in again
        assert np.array_equal(again.decompress(sid), fleet[sid])
        again.close()

    def test_drops_orphan_map_entries(self, pdb):
        pdb.close()
        manifest = json.loads((pdb.root / "MANIFEST.json").read_text())
        manifest["series"]["ghost"] = 0
        (pdb.root / "MANIFEST.json").write_text(json.dumps(manifest))
        again = PartitionedSeriesDB.open(pdb.root)
        assert "ghost" not in again
        again.close()


class TestMigrate:
    def test_roundtrip_is_byte_identical(self, tmp_path, fleet):
        root = tmp_path / "db"
        src = SeriesDB(root, seal_threshold=512, hot_codec="gorilla",
                       cold_codec="leats")
        src.ingest_many(fleet, workers=1)
        src.flush()
        shard_bytes = {
            sid: (root / src.info()["series"][sid]["shard"]).read_bytes()
            for sid in fleet
        }
        src.close()

        db = PartitionedSeriesDB.migrate(root, partitions=4)
        assert db.partitions == 4
        assert set(db.series_ids()) == set(fleet)
        for sid, values in fleet.items():
            assert db.access(sid, 1234) == values[1234]
            assert np.array_equal(db.range(sid, 10, 800), values[10:800])
            assert np.array_equal(db.decompress(sid), values)
            part = db.partition_of(sid)
            shard = db.info()["series"][sid]["shard"]
            moved = root / _PART_DIR.format(part) / shard
            assert moved.read_bytes() == shard_bytes[sid]
        assert not (root / "shards").exists()
        db.close()

        # and the migrated database fscks clean, recursively
        from repro.analysis import fsck_path

        report = fsck_path(root, deep=True)
        assert report.ok, [p.render() for p in report.problems]
        assert report.kind == "partitioned"

    def test_migrated_db_keeps_ingesting(self, tmp_path, rng):
        root = tmp_path / "db"
        values = np.cumsum(rng.integers(-4, 5, 700)).astype(np.int64)
        src = SeriesDB(root)
        src.ingest("old", values)
        src.flush()
        src.close()
        db = PartitionedSeriesDB.migrate(root, partitions=2)
        fresh = np.cumsum(rng.integers(-4, 5, 200)).astype(np.int64)
        db.ingest("new", fresh)
        db.flush()
        db.close()
        again = open_store(root)
        assert np.array_equal(again.decompress("old"), values)
        assert np.array_equal(again.decompress("new"), fresh)
        again.close()
