"""Tests for repro.store.parallel: pooled compression == serial compression."""

import numpy as np
import pytest

import repro
from repro.store import compress_many, compress_many_frames, default_workers


@pytest.fixture(scope="module")
def fleet():
    rng = np.random.default_rng(21)
    out = {}
    for i in range(5):
        y = 500 * np.sin(np.arange(4000) / (25 + 5 * i))
        out[f"s{i}"] = (y + np.cumsum(rng.integers(-3, 4, 4000))).astype(np.int64)
    return out


class TestCompressManyFrames:
    def test_byte_identical_to_serial(self, fleet):
        frames = compress_many_frames(fleet, codec="gorilla", workers=2)
        for sid, values in fleet.items():
            assert frames[sid] == repro.compress(values, codec="gorilla").to_bytes()

    def test_preserves_input_order(self, fleet):
        reordered = dict(reversed(list(fleet.items())))
        frames = compress_many_frames(reordered, codec="gorilla", workers=2)
        assert list(frames) == list(reordered)

    def test_serial_path_matches_pooled(self, fleet):
        pooled = compress_many_frames(fleet, codec="gorilla", workers=2)
        serial = compress_many_frames(fleet, codec="gorilla", workers=1)
        assert pooled == serial

    def test_empty_map(self):
        assert compress_many_frames({}, codec="gorilla", workers=2) == {}

    def test_params_forwarded(self, fleet):
        frames = compress_many_frames(fleet, codec="gorilla", workers=2,
                                      block_size=128)
        for sid, values in fleet.items():
            expected = repro.compress(values, codec="gorilla", block_size=128)
            assert frames[sid] == expected.to_bytes()

    def test_worker_error_propagates(self):
        with pytest.raises(ValueError):
            compress_many_frames({"bad": np.empty(0, dtype=np.int64)},
                                 codec="gorilla", workers=2)


class TestCompressMany:
    def test_objects_decompress_and_carry_provenance(self, fleet):
        out = compress_many(fleet, codec="gorilla", workers=2)
        for sid, values in fleet.items():
            c = out[sid]
            assert c.codec_id == "gorilla"
            assert np.array_equal(c.decompress(), values)
            assert c.access(1234) == values[1234]
            assert len(c) == len(values)

    def test_values_fallback_codec_roundtrips(self, fleet):
        # dac has no native payload: frames re-run the codec on load,
        # which must still reproduce an identical object.
        small = {sid: v[:800] for sid, v in list(fleet.items())[:2]}
        out = compress_many(small, codec="dac", workers=2)
        for sid, values in small.items():
            serial = repro.compress(values, codec="dac")
            assert np.array_equal(out[sid].decompress(), values)
            assert out[sid].size_bits() == serial.size_bits()

    def test_neats_pooled_matches_serial(self, fleet):
        small = {sid: v[:1200] for sid, v in list(fleet.items())[:2]}
        out = compress_many(small, codec="leats", workers=2)
        for sid, values in small.items():
            serial = repro.compress(values, codec="leats")
            assert out[sid].to_bytes() == serial.to_bytes()
            assert np.array_equal(out[sid].decompress(), values)


def test_default_workers_positive():
    assert default_workers() >= 1
