"""SeriesDB write-ahead append logs: pre-flush durability + recovery.

Contract (see :class:`repro.store.SeriesDB`): every ``ingest`` /
``ingest_many`` lands its values in the series' append log (one fsync'd
``RPAL0001`` record) *before* mutating the in-memory shard, and the
manifest references the log before any data lands in it.  A crash before
:meth:`flush` therefore loses nothing: the next open replays the logs on
top of the shard snapshots and re-marks those shards dirty.  ``flush``
consolidates — the snapshot absorbs the logged values and the old log file
is dropped post-commit.  A record torn by a mid-append crash is skipped;
every completed batch survives.
"""

import json

import numpy as np
import pytest

from repro.store import SeriesDB


@pytest.fixture
def root(tmp_path):
    return tmp_path / "db"


def make_db(root, **kw):
    kw.setdefault("seal_threshold", 256)
    kw.setdefault("hot_codec", "gorilla")
    kw.setdefault("cold_codec", "leats")
    return SeriesDB(root, **kw)


def wal_files(root):
    return sorted((root / "shards").glob("*.wal"))


class TestDurability:
    def test_unflushed_ingest_survives_reopen(self, root, rng):
        db = make_db(root)
        a = rng.integers(-500, 500, 1000).astype(np.int64)
        b = (np.arange(700) * 3).astype(np.int64)
        db.ingest("a", a, digits=2)
        db.ingest("b", b)
        db.ingest("a", a + 7)
        # no flush: simulate a crash by opening a fresh handle
        crashed = SeriesDB.open(root)
        assert crashed.count("a") == 2000
        assert np.array_equal(crashed.decompress("a"), np.concatenate([a, a + 7]))
        assert np.array_equal(crashed.decompress("b"), b)
        assert crashed.digits("a") == 2
        # recovered shards are dirty again: the next flush consolidates them
        assert crashed.cache_info()["dirty"] == 2

    def test_unflushed_ingest_many_survives_reopen(self, root, rng):
        db = make_db(root)
        fleet = {
            f"s{i}": rng.integers(0, 1000, 700 + 100 * i).astype(np.int64)
            for i in range(3)
        }
        db.ingest_many(fleet, workers=1)
        crashed = SeriesDB.open(root)
        for sid, values in fleet.items():
            assert np.array_equal(crashed.decompress(sid), values)

    def test_double_crash_replays_identically(self, root):
        db = make_db(root)
        values = np.arange(900, dtype=np.int64)
        db.ingest("s", values)
        first = SeriesDB.open(root)  # recovers, does not flush
        assert np.array_equal(first.decompress("s"), values)
        second = SeriesDB.open(root)  # the log is still there: replay again
        assert np.array_equal(second.decompress("s"), values)

    def test_recovered_values_queryable_without_explicit_load(self, root):
        db = make_db(root)
        db.ingest("s", np.arange(500, dtype=np.int64))
        crashed = SeriesDB.open(root)
        assert crashed.count("s") == 500  # live count, not the stale manifest 0
        assert crashed.access("s", 499) == 499
        assert np.array_equal(crashed.range("s", 100, 110), np.arange(100, 110))

    def test_append_to_flushed_series_survives(self, root, rng):
        db = make_db(root)
        base = rng.integers(0, 100, 1000).astype(np.int64)
        db.ingest("s", base)
        db.flush()
        more = rng.integers(0, 100, 300).astype(np.int64)
        db.ingest("s", more)  # crash before flush
        crashed = SeriesDB.open(root)
        assert np.array_equal(
            crashed.decompress("s"), np.concatenate([base, more])
        )


class TestManifestDiscipline:
    def test_manifest_references_log_before_data(self, root):
        """Crash recovery finds logs through the manifest, so the manifest
        must be committed before the first record lands."""
        db = make_db(root)
        db.ingest("s", np.arange(100, dtype=np.int64))
        manifest = json.loads((root / "MANIFEST.json").read_text())
        entry = manifest["series"]["s"]
        assert entry["count"] == 0  # counts update only at flush
        assert (root / entry["wal"]).exists()

    def test_flush_consolidates_and_drops_logs(self, root):
        db = make_db(root)
        db.ingest("s", np.arange(600, dtype=np.int64))
        assert len(wal_files(root)) == 1
        db.flush()
        assert wal_files(root) == []
        manifest = json.loads((root / "MANIFEST.json").read_text())
        entry = manifest["series"]["s"]
        assert entry["count"] == 600
        # the manifest rotated to a fresh (not yet existing) log generation
        assert not (root / entry["wal"]).exists()
        clean = SeriesDB.open(root)
        assert clean.cache_info()["dirty"] == 0
        assert np.array_equal(clean.decompress("s"), np.arange(600))

    def test_flush_after_recovery_consolidates(self, root):
        db = make_db(root)
        values = np.arange(900, dtype=np.int64)
        db.ingest("s", values)
        crashed = SeriesDB.open(root)
        crashed.flush()
        assert wal_files(root) == []
        assert json.loads((root / "MANIFEST.json").read_text())["series"]["s"][
            "count"
        ] == 900
        assert np.array_equal(SeriesDB.open(root).decompress("s"), values)

    def test_log_rotation_across_flush_cycles(self, root):
        db = make_db(root)
        db.ingest("s", np.arange(100, dtype=np.int64))
        first_wal = json.loads((root / "MANIFEST.json").read_text())["series"][
            "s"
        ]["wal"]
        db.flush()
        db.ingest("s", np.arange(100, 200, dtype=np.int64))
        second_wal = json.loads((root / "MANIFEST.json").read_text())["series"][
            "s"
        ]["wal"]
        assert second_wal != first_wal
        assert not (root / first_wal).exists()
        assert (root / second_wal).exists()
        crashed = SeriesDB.open(root)
        assert np.array_equal(crashed.decompress("s"), np.arange(200))


class TestFlushFailure:
    def test_ingest_after_failed_flush_stays_recoverable(self, root, monkeypatch):
        """A flush that dies mid-way rotates some log names only in memory;
        the next ingest must re-commit the manifest before its record lands,
        or the durable-on-return guarantee silently breaks."""
        import repro.store.seriesdb as seriesdb_mod

        db = make_db(root)
        db.ingest("a", np.arange(200, dtype=np.int64))
        db.ingest("b", np.arange(300, dtype=np.int64))
        db.flush()
        db.ingest("a", np.arange(200, 400, dtype=np.int64))
        db.ingest("b", np.arange(300, 500, dtype=np.int64))

        real = seriesdb_mod._write_atomic
        tier_writes = []

        def failing(path, blob):
            if str(path).endswith(".tier"):
                tier_writes.append(path)
                if len(tier_writes) == 2:  # second shard of the flush dies
                    raise OSError("simulated disk full")
            return real(path, blob)

        monkeypatch.setattr(seriesdb_mod, "_write_atomic", failing)
        with pytest.raises(OSError, match="disk full"):
            db.flush()
        monkeypatch.undo()

        more = np.arange(400, 450, dtype=np.int64)
        db.ingest("a", more)  # reported durable: must survive a crash
        crashed = SeriesDB.open(root)
        assert np.array_equal(crashed.decompress("a"), np.arange(450))
        assert np.array_equal(crashed.decompress("b"), np.arange(500))


class TestTornLog:
    def test_torn_final_record_loses_only_that_batch(self, root):
        db = make_db(root)
        db.ingest("s", np.arange(500, dtype=np.int64))
        db.ingest("s", np.arange(500, 800, dtype=np.int64))
        wal = root / json.loads((root / "MANIFEST.json").read_text())["series"][
            "s"
        ]["wal"]
        blob = wal.read_bytes()
        wal.write_bytes(blob[:-11])  # crash mid-append of the second batch
        crashed = SeriesDB.open(root)
        assert crashed.count("s") == 500
        assert np.array_equal(crashed.decompress("s"), np.arange(500))
        # recovery is dirty: flushing seals the surviving 500 for good
        crashed.flush()
        assert np.array_equal(SeriesDB.open(root).decompress("s"), np.arange(500))

    def test_fully_torn_log_falls_back_to_snapshot(self, root):
        db = make_db(root)
        base = np.arange(400, dtype=np.int64)
        db.ingest("s", base)
        db.flush()
        db.ingest("s", np.arange(400, 500, dtype=np.int64))
        wal = root / json.loads((root / "MANIFEST.json").read_text())["series"][
            "s"
        ]["wal"]
        wal.write_bytes(wal.read_bytes()[:30])  # tear inside the header/record 0
        crashed = SeriesDB.open(root)
        assert np.array_equal(crashed.decompress("s"), base)


class TestIngestValidation:
    """The serial-path satellites: digits gating and input coercion."""

    def test_preflush_digit_conflict_rejected(self, root):
        """Two pre-flush ingests with conflicting digits must raise: the
        manifest count is still 0, so the gate uses the live store length."""
        db = make_db(root)
        db.ingest("s", np.arange(10), digits=2)
        with pytest.raises(ValueError, match="mix scales"):
            db.ingest("s", np.arange(10), digits=3)
        with pytest.raises(ValueError, match="mix scales"):
            db.ingest_many({"s": np.arange(10)}, digits=1)
        assert db.digits("s") == 2  # the original scaling survived
        assert db.ingest("s", np.arange(10), digits=2) == 20

    def test_serial_ingest_rejects_non_1d(self, root):
        db = make_db(root)
        with pytest.raises(ValueError, match="expected a 1-D array"):
            db.ingest("s", np.zeros((3, 3)))
        with pytest.raises(ValueError, match="expected a 1-D array"):
            db.ingest("s", 5)
        assert "s" not in db  # nothing was created

    def test_serial_ingest_coerces_like_ingest_many(self, root):
        serial = make_db(root)
        serial.ingest("s", [1, 2, 3])  # plain list, like ingest_many accepts
        serial.flush()
        assert np.array_equal(serial.decompress("s"), np.array([1, 2, 3]))
        pooled = make_db(root.with_name("db2"))
        pooled.ingest_many({"s": [1, 2, 3]}, workers=1)
        pooled.flush()
        a = (serial.root / serial.info()["series"]["s"]["shard"]).read_bytes()
        b = (pooled.root / pooled.info()["series"]["s"]["shard"]).read_bytes()
        assert a == b
