"""Tests for group-commit durability: append_many, GroupLog, SeriesDB mode."""

import json
import os

import numpy as np
import pytest

from repro.codecs.container import (
    AppendableArchive,
    GroupLog,
    read_group_log,
)
from repro.store import SeriesDB


def _batches(rng, k=4, n=80):
    return [
        np.cumsum(rng.integers(-9, 10, n)).astype(np.int64) for _ in range(k)
    ]


class TestAppendMany:
    def test_byte_identical_to_sequential_appends(self, tmp_path, rng):
        batches = _batches(rng)
        one = AppendableArchive.create(tmp_path / "one.rpal", codec="gorilla")
        for values in batches:
            one.append(values)
        many = AppendableArchive.create(tmp_path / "many.rpal", codec="gorilla")
        written = many.append_many(batches)
        assert written == sum(len(b) for b in batches)
        assert (
            (tmp_path / "one.rpal").read_bytes()
            == (tmp_path / "many.rpal").read_bytes()
        )

    def test_single_fsync_for_k_batches(self, tmp_path, rng, monkeypatch):
        log = AppendableArchive.create(tmp_path / "log.rpal", codec="gorilla")
        calls = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real(fd)))
        log.append_many(_batches(rng, k=6))
        assert len(calls) == 1

    def test_empty_batches_are_skipped(self, tmp_path, rng):
        log = AppendableArchive.create(tmp_path / "log.rpal", codec="gorilla")
        empty = np.array([], dtype=np.int64)
        values = _batches(rng, k=1)[0]
        assert log.append_many([empty, values, empty]) == len(values)
        assert log.num_records == 1
        assert len(log) == len(values)


class TestGroupLog:
    def test_roundtrip_interleaved_series(self, tmp_path, rng):
        path = tmp_path / "group.gwl"
        log = GroupLog.create(path, codec="gorilla")
        a1, a2, b1 = _batches(rng, k=3)
        log.append_group([("a", 0, a1), ("b", 2, b1)])
        log.append_group([("a", 0, a2)])
        got = read_group_log(path)
        assert [(sid, digits) for sid, digits, _ in got] == [
            ("a", 0), ("b", 2), ("a", 0),
        ]
        assert np.array_equal(got[0][2], a1)
        assert np.array_equal(got[1][2], b1)
        assert np.array_equal(got[2][2], a2)

    def test_one_fsync_per_group(self, tmp_path, rng, monkeypatch):
        log = GroupLog.create(tmp_path / "group.gwl", codec="gorilla")
        calls = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real(fd)))
        batches = [(f"s{i}", 0, values) for i, values in
                   enumerate(_batches(rng, k=5))]
        assert log.append_group(batches) == 5
        assert len(calls) == 1

    def test_open_truncates_torn_tail(self, tmp_path, rng):
        path = tmp_path / "group.gwl"
        log = GroupLog.create(path, codec="gorilla")
        values = _batches(rng, k=1)[0]
        log.append_group([("a", 0, values)])
        sealed = path.stat().st_size
        log.append_group([("b", 0, values)])
        raw = path.read_bytes()
        path.write_bytes(raw[: sealed + 7])  # crash mid-second-record
        reopened = GroupLog.open(path)
        assert reopened.num_records == 1
        assert path.stat().st_size == sealed
        got = read_group_log(path)
        assert len(got) == 1 and got[0][0] == "a"

    def test_sealed_record_corruption_raises(self, tmp_path, rng):
        path = tmp_path / "group.gwl"
        log = GroupLog.create(path, codec="gorilla")
        log.append_group([("a", 0, _batches(rng, k=1)[0])])
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="crc"):
            read_group_log(path)

    def test_lossy_codec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lossless"):
            GroupLog.create(tmp_path / "group.gwl", codec="pla", eps=1.0)


class TestSeriesDBGroupCommit:
    def test_crash_reopen_recovers_group_log(self, tmp_path, rng):
        db = SeriesDB(tmp_path / "db", group_commit=True)
        a = np.cumsum(rng.integers(-5, 6, 400)).astype(np.int64)
        b = np.cumsum(rng.integers(-5, 6, 300)).astype(np.int64)
        db.ingest_many({"a": a, "b": b}, workers=1)
        db.ingest("a", a[:50])
        del db  # crash: no flush, no close — only the group log is durable
        again = SeriesDB.open(tmp_path / "db")
        assert np.array_equal(
            again.decompress("a"), np.concatenate([a, a[:50]])
        )
        assert np.array_equal(again.decompress("b"), b)
        again.close()

    def test_steady_state_batch_costs_one_fsync(self, tmp_path, rng,
                                                monkeypatch):
        db = SeriesDB(tmp_path / "db", group_commit=True)
        first = {
            f"s{i}": np.cumsum(rng.integers(-5, 6, 200)).astype(np.int64)
            for i in range(6)
        }
        db.ingest_many(first, workers=1)  # registers series + group log name
        db.flush()
        # first post-flush batch pays the one-time log-creation fsyncs
        db.ingest_many(
            {sid: values[:100] for sid, values in first.items()}, workers=1
        )
        calls = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real(fd)))
        db.ingest_many(
            {sid: values[100:150] for sid, values in first.items()}, workers=1
        )
        assert len(calls) == 1  # the whole 6-series batch, one fsync
        db.close()

    def test_flush_rotates_group_log(self, tmp_path, rng):
        root = tmp_path / "db"
        db = SeriesDB(root, group_commit=True)
        db.ingest("a", np.cumsum(rng.integers(-5, 6, 100)).astype(np.int64))
        before = json.loads((root / "MANIFEST.json").read_text())["group_wal"]
        assert (root / before).exists()
        db.flush()
        after = json.loads((root / "MANIFEST.json").read_text())["group_wal"]
        assert after != before
        assert not (root / before).exists()  # dropped post-commit
        db.close()

    def test_plain_manifest_has_no_group_key(self, tmp_path, rng):
        db = SeriesDB(tmp_path / "db")
        db.ingest("a", np.cumsum(rng.integers(-5, 6, 100)).astype(np.int64))
        db.flush()
        manifest = json.loads((tmp_path / "db" / "MANIFEST.json").read_text())
        assert "group_wal" not in manifest
        assert manifest["group_commit"] is False
        db.close()

    def test_group_and_plain_mode_answer_identically(self, tmp_path, rng):
        fleet = {
            f"s{i}": np.cumsum(rng.integers(-7, 8, 500)).astype(np.int64)
            for i in range(4)
        }
        plain = SeriesDB(tmp_path / "plain")
        plain.ingest_many(fleet, workers=1)
        grouped = SeriesDB(tmp_path / "grouped", group_commit=True)
        grouped.ingest_many(fleet, workers=1)
        for sid, values in fleet.items():
            assert np.array_equal(plain.decompress(sid), values)
            assert np.array_equal(grouped.decompress(sid), values)
            assert plain.access(sid, 123) == grouped.access(sid, 123)
        plain.close()
        grouped.close()
