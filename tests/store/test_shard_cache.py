"""SeriesDB shard cache: bounded LRU, dirty pinning, lazy mmap loads.

Contract (see :class:`repro.store.SeriesDB`): at most ``cache_capacity``
clean shards stay parsed in memory; dirty shards are pinned until flush;
a cached shard whose manifest generation changed is dropped and re-read;
``lazy=True`` parses shards zero-copy off an mmap with identical answers.
"""

import numpy as np
import pytest

from repro.store import SeriesDB


def make_series(i, n=600):
    return (np.arange(n, dtype=np.int64) * (i + 1)) % 977


@pytest.fixture()
def root(tmp_path):
    db = SeriesDB(tmp_path / "db", seal_threshold=128, hot_codec="gorilla",
                  cold_codec="leats", cache_capacity=2)
    db.ingest_many({f"s{i}": make_series(i) for i in range(5)})
    db.flush()
    return tmp_path / "db"


class TestLruCache:
    def test_capacity_enforced_after_flush(self, root):
        db = SeriesDB.open(root, cache_capacity=2)
        for i in range(5):
            assert db.access(f"s{i}", 10) == make_series(i)[10]
        info = db.cache_info()
        assert info["cached"] <= 2
        assert info["capacity"] == 2

    def test_dirty_shards_are_pinned(self, root):
        db = SeriesDB.open(root, cache_capacity=1)
        for i in range(5):
            db.ingest(f"s{i}", [7 * i])
        # All five are dirty: none may be evicted, capacity notwithstanding.
        assert db.cache_info()["cached"] == 5
        assert db.cache_info()["dirty"] == 5
        db.flush()
        assert db.cache_info()["cached"] <= 1
        assert db.cache_info()["dirty"] == 0
        # Nothing was lost to eviction.
        reopened = SeriesDB.open(root)
        for i in range(5):
            assert reopened.access(f"s{i}", 600) == 7 * i

    def test_evicted_shard_reloads_correctly(self, root):
        db = SeriesDB.open(root, cache_capacity=1)
        assert db.access("s0", 5) == make_series(0)[5]
        assert db.access("s1", 5) == make_series(1)[5]  # evicts s0
        assert db.cache_info()["cached"] == 1
        assert db.access("s0", 7) == make_series(0)[7]  # cold again: reload
        assert np.array_equal(db.range("s0", 0, 50), make_series(0)[:50])

    def test_unbounded_cache(self, root):
        db = SeriesDB.open(root, cache_capacity=None)
        for i in range(5):
            db.access(f"s{i}", 0)
        assert db.cache_info()["cached"] == 5

    def test_lru_order_keeps_hot_shard(self, root):
        db = SeriesDB.open(root, cache_capacity=2)
        db.access("s0", 0)
        db.access("s1", 0)
        db.access("s0", 1)  # touch s0: s1 is now the LRU entry
        db.access("s2", 0)  # evicts s1, not s0
        assert "s0" in db._stores and "s1" not in db._stores

    def test_invalid_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cache_capacity"):
            SeriesDB(tmp_path / "x", cache_capacity=0)

    def test_store_handle_is_pinned(self, root):
        """store() pins its shard: mutations through the returned handle
        survive later queries that would otherwise evict it."""
        db = SeriesDB.open(root, cache_capacity=1)
        handle = db.store("s0")
        for i in range(1, 5):
            db.access(f"s{i}", 0)
        assert db._stores["s0"] is handle
        handle.consolidate()
        db.flush()
        reopened = SeriesDB.open(root)
        assert np.array_equal(reopened.decompress("s0"), make_series(0))
        # 600 values at seal_threshold=128: 4 sealed blocks (512 values)
        # consolidate into the cold tier, 88 stay in the write buffer.
        assert reopened.info()["series"]["s0"]["cold_values"] == 512


class TestGenerationInvalidation:
    def test_stale_generation_is_reloaded(self, root):
        db = SeriesDB.open(root, cache_capacity=4)
        db.access("s0", 0)  # cache s0 under its current generation
        entry = db._series["s0"]
        # Simulate the shard moving to a new generation behind the cache
        # (as a flush-by-another-handle would): rename the file + entry.
        old = db.root / entry["shard"]
        new_name = entry["shard"].replace("s0-", "s0-gen2-")
        (db.root / new_name).write_bytes(old.read_bytes())
        entry["shard"] = new_name
        assert db._cached_gen["s0"] != new_name
        assert db.access("s0", 3) == make_series(0)[3]  # re-read, not stale
        assert db._cached_gen["s0"] == new_name


class TestLazyShardLoads:
    def test_lazy_answers_match_eager(self, root):
        eager = SeriesDB.open(root)
        lazy = SeriesDB.open(root, lazy=True, cache_capacity=2)
        assert lazy.cache_info()["lazy"]
        for i in range(5):
            sid = f"s{i}"
            assert lazy.access(sid, 123) == eager.access(sid, 123)
            assert np.array_equal(
                lazy.range(sid, 50, 200), eager.range(sid, 50, 200)
            )
            assert np.array_equal(
                lazy.decompress(sid), eager.decompress(sid)
            )

    def test_lazy_survives_flush_replacing_the_file(self, root):
        """Parsed mmapped blocks must stay valid after their file is
        replaced and unlinked by a later flush (the map holds the inode)."""
        db = SeriesDB.open(root, lazy=True, cache_capacity=None)
        before = db.decompress("s0")
        db.mark_dirty("s0")
        db.flush()  # rewrites under a fresh generation, unlinks the old file
        assert np.array_equal(db.decompress("s0"), before)

    def test_lazy_ingest_flush_roundtrip(self, tmp_path):
        db = SeriesDB(tmp_path / "db", seal_threshold=64, cold_codec="leats",
                      lazy=True, cache_capacity=2)
        db.ingest_many({f"t{i}": make_series(i, 300) for i in range(4)})
        db.flush()
        db.compact()
        reopened = SeriesDB.open(tmp_path / "db", lazy=True)
        for i in range(4):
            assert np.array_equal(
                reopened.decompress(f"t{i}"), make_series(i, 300)
            )
