"""Unit tests for the rank/select bitvector."""

import numpy as np
import pytest

from repro.bits import BitVector, BitWriter


def naive_rank1(bits, i):
    return sum(bits[:i])


class TestConstruction:
    def test_from_iterable(self):
        bv = BitVector([1, 0, 1, 1])
        assert len(bv) == 4
        assert bv.count_ones == 3

    def test_from_writer_words(self):
        w = BitWriter()
        w.write(0b1011, 4)
        bv = BitVector((w.getbuffer(), 4))
        assert [bv[i] for i in range(4)] == [1, 1, 0, 1]

    def test_empty(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.count_ones == 0
        assert bv.rank1(0) == 0

    def test_trailing_bits_zeroed(self):
        # Construct from words with garbage past the length.
        words = np.full(1, (1 << 64) - 1, dtype=np.uint64)
        bv = BitVector((words, 3))
        assert bv.count_ones == 3

    def test_getitem_bounds(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv[2]


class TestRank:
    def test_rank_all_positions_small(self):
        bits = [1, 0, 0, 1, 1, 0, 1]
        bv = BitVector(bits)
        for i in range(len(bits) + 1):
            assert bv.rank1(i) == naive_rank1(bits, i)
            assert bv.rank0(i) == i - naive_rank1(bits, i)

    def test_rank_random_large(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 4096).tolist()
        bv = BitVector(bits)
        for i in rng.integers(0, 4097, 300).tolist():
            assert bv.rank1(i) == naive_rank1(bits, i)

    def test_rank_past_end_clamps(self):
        bv = BitVector([1, 1, 0])
        assert bv.rank1(100) == 2
        assert bv.rank1(-5) == 0

    def test_rank_on_all_ones(self):
        bv = BitVector([1] * 1000)
        assert bv.rank1(567) == 567

    def test_rank_on_all_zeros(self):
        bv = BitVector([0] * 1000)
        assert bv.rank1(789) == 0
        assert bv.rank0(789) == 789


class TestSelect:
    def test_select1_matches_positions(self):
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, 3000).tolist()
        bv = BitVector(bits)
        ones = [i for i, b in enumerate(bits) if b]
        for k in range(0, len(ones), 13):
            assert bv.select1(k) == ones[k]

    def test_select0_matches_positions(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, 3000).tolist()
        bv = BitVector(bits)
        zeros = [i for i, b in enumerate(bits) if not b]
        for k in range(0, len(zeros), 17):
            assert bv.select0(k) == zeros[k]

    def test_select_out_of_range(self):
        bv = BitVector([1, 0, 1])
        with pytest.raises(IndexError):
            bv.select1(2)
        with pytest.raises(IndexError):
            bv.select0(1)

    def test_select_rank_inverse(self):
        rng = np.random.default_rng(6)
        bits = rng.integers(0, 2, 2048).tolist()
        bv = BitVector(bits)
        for k in range(0, bv.count_ones, 7):
            assert bv.rank1(bv.select1(k)) == k

    def test_sparse_ones(self):
        bits = [0] * 5000
        for pos in (13, 1024, 4999):
            bits[pos] = 1
        bv = BitVector(bits)
        assert bv.select1(0) == 13
        assert bv.select1(1) == 1024
        assert bv.select1(2) == 4999


class TestPredecessor:
    def test_predecessor_basic(self):
        bv = BitVector([0, 1, 0, 0, 1, 0])
        assert bv.predecessor1(0) == -1
        assert bv.predecessor1(1) == 1
        assert bv.predecessor1(3) == 1
        assert bv.predecessor1(5) == 4


class TestDecoding:
    def test_to_numpy(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        assert BitVector(bits).to_numpy().tolist() == bits

    def test_slice(self):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, 500).tolist()
        bv = BitVector(bits)
        assert bv.slice(100, 200).tolist() == bits[100:200]
        assert bv.slice(63, 65).tolist() == bits[63:65]
        assert bv.slice(0, 0).tolist() == []

    def test_slice_bounds(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv.slice(0, 3)

    def test_size_bits_positive(self):
        assert BitVector([1, 0, 1]).size_bits() > 0
