"""Unit tests for fixed-width packed arrays."""

import numpy as np
import pytest

from repro.bits import PackedArray, min_width
from repro.bits.packed import unpack_bits, unpack_fields


class TestMinWidth:
    @pytest.mark.parametrize(
        "value,width", [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9)]
    )
    def test_known_widths(self, value, width):
        assert min_width(value) == width

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            min_width(-1)


class TestPackedArray:
    def test_empty(self):
        pa = PackedArray([])
        assert len(pa) == 0
        assert pa.to_numpy().tolist() == []

    def test_auto_width(self):
        pa = PackedArray([0, 5, 3])
        assert pa.width == 3

    def test_explicit_width(self):
        pa = PackedArray([1, 2, 3], width=10)
        assert pa.width == 10
        assert list(pa) == [1, 2, 3]

    def test_value_too_large_raises(self):
        with pytest.raises(ValueError):
            PackedArray([8], width=3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            PackedArray([-1], width=8)

    def test_getitem_and_negative_index(self):
        pa = PackedArray([10, 20, 30])
        assert pa[0] == 10
        assert pa[-1] == 30
        with pytest.raises(IndexError):
            pa[3]

    def test_slicing_via_getitem(self):
        pa = PackedArray(list(range(20)))
        assert pa[5:10] == [5, 6, 7, 8, 9]

    def test_width_zero(self):
        pa = PackedArray([0, 0, 0], width=0)
        assert list(pa) == [0, 0, 0]
        assert pa.to_numpy().tolist() == [0, 0, 0]

    def test_roundtrip_random(self):
        rng = np.random.default_rng(1)
        for width in (1, 7, 13, 31, 57, 64):
            cap = (1 << width) - 1
            values = [int(v) % (cap + 1) for v in rng.integers(0, 1 << 62, 300)]
            pa = PackedArray(values, width=width)
            assert list(pa) == values
            assert pa.to_numpy().tolist() == values

    def test_slice_matches_list(self):
        values = list(range(100, 400, 3))
        pa = PackedArray(values)
        assert pa.slice(10, 40).tolist() == values[10:40]
        assert pa.slice(0, 0).tolist() == []

    def test_slice_out_of_range(self):
        pa = PackedArray([1, 2, 3])
        with pytest.raises(IndexError):
            pa.slice(1, 5)

    def test_size_bits(self):
        pa = PackedArray([1] * 100, width=7)
        assert pa.size_bits() == 100 * 7 + 8

    def test_64bit_values(self):
        big = (1 << 64) - 1
        pa = PackedArray([big, 0, big // 2], width=64)
        assert list(pa) == [big, 0, big // 2]
        assert pa.to_numpy().tolist() == [big, 0, big // 2]


class TestUnpack:
    def test_unpack_with_offset(self):
        from repro.bits import BitWriter

        w = BitWriter()
        w.write(0b111, 3)  # prefix garbage
        for v in (5, 9, 14, 2):
            w.write(v, 4)
        out = unpack_bits(w.getbuffer(), 4, 4, bit_offset=3)
        assert out.tolist() == [5, 9, 14, 2]

    def test_unpack_fields_arbitrary_offsets(self):
        from repro.bits import BitWriter

        w = BitWriter()
        w.write(0xAA, 8)
        w.write(0xBB, 8)
        w.write(0xCC, 8)
        starts = np.array([16, 0, 8], dtype=np.int64)
        out = unpack_fields(w.getbuffer(), starts, 8)
        assert out.tolist() == [0xCC, 0xAA, 0xBB]

    def test_unpack_zero_count(self):
        assert unpack_bits(np.zeros(1, dtype=np.uint64), 8, 0).tolist() == []

    def test_unpack_wide_fields(self):
        from repro.bits import BitWriter

        w = BitWriter()
        values = [(1 << 60) - 3, 12345, (1 << 62) + 7]
        for v in values:
            w.write(v, 63)
        out = unpack_bits(w.getbuffer(), 63, 3)
        assert out.tolist() == values
