"""Unit tests for integer codes (zigzag, gamma, delta, varint)."""

import pytest

from repro.bits import (
    BitReader,
    BitWriter,
    decode_varint,
    encode_varint,
    read_delta,
    read_gamma,
    write_delta,
    write_gamma,
    zigzag_decode,
    zigzag_encode,
)


class TestZigzag:
    @pytest.mark.parametrize(
        "value,encoded", [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)]
    )
    def test_known_mapping(self, value, encoded):
        assert zigzag_encode(value) == encoded

    @pytest.mark.parametrize(
        "value", [0, 1, -1, 1000, -1000, (1 << 40), -(1 << 40), (1 << 62)]
    )
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_encoded_is_non_negative(self):
        for v in range(-100, 101):
            assert zigzag_encode(v) >= 0


class TestGamma:
    @pytest.mark.parametrize("value", [1, 2, 3, 7, 8, 100, 65535, 10**9])
    def test_roundtrip(self, value):
        w = BitWriter()
        write_gamma(w, value)
        r = BitReader(w.getbuffer(), w.bit_length)
        assert read_gamma(r) == value

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            write_gamma(BitWriter(), 0)

    def test_one_takes_one_bit(self):
        w = BitWriter()
        write_gamma(w, 1)
        assert w.bit_length == 1

    def test_sequence(self):
        values = [5, 1, 1, 300, 42]
        w = BitWriter()
        for v in values:
            write_gamma(w, v)
        r = BitReader(w.getbuffer(), w.bit_length)
        assert [read_gamma(r) for _ in values] == values


class TestDelta:
    @pytest.mark.parametrize("value", [1, 2, 16, 17, 1024, 10**12])
    def test_roundtrip(self, value):
        w = BitWriter()
        write_delta(w, value)
        r = BitReader(w.getbuffer(), w.bit_length)
        assert read_delta(r) == value

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            write_delta(BitWriter(), 0)

    def test_delta_shorter_than_gamma_for_large(self):
        big = 10**9
        wg, wd = BitWriter(), BitWriter()
        write_gamma(wg, big)
        write_delta(wd, big)
        assert wd.bit_length < wg.bit_length


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 16383, 16384, 10**15])
    def test_roundtrip(self, value):
        buf = bytearray()
        encode_varint(value, buf)
        decoded, pos = decode_varint(buf, 0)
        assert decoded == value
        assert pos == len(buf)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            encode_varint(-1, bytearray())

    def test_single_byte_for_small(self):
        buf = bytearray()
        encode_varint(127, buf)
        assert len(buf) == 1

    def test_stream_of_varints(self):
        values = [0, 300, 7, 1 << 40, 128]
        buf = bytearray()
        for v in values:
            encode_varint(v, buf)
        pos = 0
        out = []
        for _ in values:
            v, pos = decode_varint(buf, pos)
            out.append(v)
        assert out == values
