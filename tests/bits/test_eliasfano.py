"""Unit tests for Elias-Fano monotone sequences."""

import bisect

import numpy as np
import pytest

from repro.bits import EliasFano


class TestConstruction:
    def test_empty(self):
        ef = EliasFano([])
        assert len(ef) == 0
        assert ef.rank(100) == 0
        assert ef.to_list() == []

    def test_single_element(self):
        ef = EliasFano([5])
        assert ef[0] == 5
        assert ef.rank(4) == 0
        assert ef.rank(5) == 1

    def test_decreasing_raises(self):
        with pytest.raises(ValueError):
            EliasFano([3, 2])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            EliasFano([-1, 2])

    def test_universe_too_small_raises(self):
        with pytest.raises(ValueError):
            EliasFano([1, 5], universe=5)

    def test_duplicates_allowed(self):
        ef = EliasFano([2, 2, 2, 7])
        assert list(ef) == [2, 2, 2, 7]
        assert ef.rank(2) == 3


class TestAccess:
    def test_access_matches(self):
        values = [0, 1, 4, 9, 100, 101, 5000]
        ef = EliasFano(values)
        assert [ef[i] for i in range(len(values))] == values

    def test_negative_index(self):
        ef = EliasFano([1, 2, 3])
        assert ef[-1] == 3

    def test_out_of_range(self):
        ef = EliasFano([1])
        with pytest.raises(IndexError):
            ef[1]

    def test_random_sequences(self):
        rng = np.random.default_rng(8)
        for universe in (100, 10_000, 10**9):
            values = sorted(int(v) for v in rng.integers(0, universe, 500))
            ef = EliasFano(values)
            assert ef.to_list() == values
            for i in rng.integers(0, 500, 60).tolist():
                assert ef[i] == values[i]

    def test_dense_sequence(self):
        values = list(range(1000))
        ef = EliasFano(values)
        assert ef.to_list() == values


class TestRank:
    def test_rank_matches_bisect(self):
        rng = np.random.default_rng(9)
        values = sorted(int(v) for v in rng.integers(0, 100_000, 800))
        ef = EliasFano(values)
        probes = list(rng.integers(0, 100_000, 200)) + [0, 99_999, values[0], values[-1]]
        for x in probes:
            assert ef.rank(int(x)) == bisect.bisect_right(values, int(x)), x

    def test_rank_below_min(self):
        ef = EliasFano([10, 20])
        assert ef.rank(9) == 0
        assert ef.rank(-1) == 0

    def test_rank_at_or_above_max(self):
        ef = EliasFano([10, 20], universe=1000)
        assert ef.rank(20) == 2
        assert ef.rank(999) == 2
        assert ef.rank(10**9) == 2


class TestPredecessorSuccessor:
    def test_predecessor(self):
        ef = EliasFano([3, 7, 7, 15])
        assert ef.predecessor(7) == 7
        assert ef.predecessor(14) == 7
        assert ef.predecessor(100) == 15
        with pytest.raises(ValueError):
            ef.predecessor(2)

    def test_successor(self):
        ef = EliasFano([3, 7, 15])
        assert ef.successor(0) == 3
        assert ef.successor(8) == 15
        assert ef.successor(15) == 15
        with pytest.raises(ValueError):
            ef.successor(16)


class TestSpace:
    def test_compressed_below_plain(self):
        # A million-universe sparse sequence should be far below 64 bits/elem.
        rng = np.random.default_rng(10)
        values = sorted(int(v) for v in rng.integers(0, 1_000_000, 2000))
        ef = EliasFano(values)
        bits_per_elem = ef.size_bits() / len(values)
        assert bits_per_elem < 32
