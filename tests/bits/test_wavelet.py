"""Unit tests for the wavelet tree."""

import numpy as np
import pytest

from repro.bits import WaveletTree


def naive_rank(symbols, s, i):
    return sum(1 for x in symbols[:i] if x == s)


class TestConstruction:
    def test_empty(self):
        wt = WaveletTree([])
        assert len(wt) == 0
        assert wt.to_list() == []

    def test_single_symbol_alphabet(self):
        wt = WaveletTree([0, 0, 0], sigma=1)
        assert wt.to_list() == [0, 0, 0]
        assert wt.rank(0, 3) == 3

    def test_symbol_out_of_range_raises(self):
        with pytest.raises(ValueError):
            WaveletTree([0, 5], sigma=4)

    def test_sigma_inferred(self):
        wt = WaveletTree([0, 3, 1])
        assert wt.sigma == 4


class TestAccess:
    def test_access_small(self):
        symbols = [2, 0, 1, 3, 2, 2, 0]
        wt = WaveletTree(symbols)
        assert wt.to_list() == symbols

    def test_access_negative_index(self):
        wt = WaveletTree([1, 2, 3])
        assert wt[-1] == 3

    def test_access_out_of_range(self):
        wt = WaveletTree([0])
        with pytest.raises(IndexError):
            wt[1]

    @pytest.mark.parametrize("sigma", [2, 3, 4, 5, 8, 11])
    def test_access_random(self, sigma):
        rng = np.random.default_rng(sigma)
        symbols = rng.integers(0, sigma, 600).tolist()
        wt = WaveletTree(symbols, sigma=sigma)
        assert wt.to_list() == symbols


class TestRank:
    @pytest.mark.parametrize("sigma", [2, 4, 7])
    def test_rank_matches_naive(self, sigma):
        rng = np.random.default_rng(100 + sigma)
        symbols = rng.integers(0, sigma, 400).tolist()
        wt = WaveletTree(symbols, sigma=sigma)
        for s in range(sigma):
            for i in range(0, 401, 37):
                assert wt.rank(s, i) == naive_rank(symbols, s, i)

    def test_rank_clamps(self):
        wt = WaveletTree([0, 1, 0])
        assert wt.rank(0, 100) == 2
        assert wt.rank(0, -5) == 0

    def test_rank_invalid_symbol(self):
        wt = WaveletTree([0, 1])
        with pytest.raises(ValueError):
            wt.rank(5, 1)

    def test_count(self):
        symbols = [0, 1, 1, 2, 1]
        wt = WaveletTree(symbols)
        assert wt.count(1) == 3
        assert wt.count(0) == 1
        assert wt.count(2) == 1

    def test_rank_of_absent_symbol(self):
        wt = WaveletTree([0, 0, 2, 2], sigma=4)
        assert wt.rank(1, 4) == 0
        assert wt.rank(3, 4) == 0


class TestRankAccessConsistency:
    def test_param_indexing_pattern(self):
        # The NeaTS storage uses rank(symbol, i) as the index of fragment i's
        # parameters inside the per-kind array; verify the identity.
        rng = np.random.default_rng(11)
        symbols = rng.integers(0, 4, 300).tolist()
        wt = WaveletTree(symbols, sigma=4)
        counters = [0, 0, 0, 0]
        for i, s in enumerate(symbols):
            assert wt.rank(s, i) == counters[s]
            counters[s] += 1

    def test_size_bits_positive(self):
        assert WaveletTree([0, 1, 2]).size_bits() > 0
