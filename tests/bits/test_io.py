"""Unit tests for the bit-level reader/writer."""

import numpy as np
import pytest

from repro.bits import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer_has_zero_length(self):
        assert BitWriter().bit_length == 0

    def test_single_bit(self):
        w = BitWriter()
        w.write(1, 1)
        assert w.bit_length == 1
        r = BitReader(w.getbuffer(), 1)
        assert r.read(1) == 1

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write(123, 0)
        assert w.bit_length == 0

    def test_full_word_write(self):
        w = BitWriter()
        value = (1 << 64) - 1
        w.write(value, 64)
        r = BitReader(w.getbuffer(), 64)
        assert r.read(64) == value

    def test_width_out_of_range_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(0, 65)
        with pytest.raises(ValueError):
            w.write(0, -1)

    def test_value_is_masked_to_width(self):
        w = BitWriter()
        w.write(0b1111, 2)  # only low 2 bits stored
        r = BitReader(w.getbuffer(), 2)
        assert r.read(2) == 0b11

    def test_cross_word_boundary(self):
        w = BitWriter()
        w.write(0, 60)
        w.write(0b10110101, 8)  # straddles the 64-bit boundary
        r = BitReader(w.getbuffer(), w.bit_length)
        r.seek(60)
        assert r.read(8) == 0b10110101

    def test_many_mixed_widths_roundtrip(self):
        import random

        pyrng = random.Random(0)
        rng = np.random.default_rng(0)
        fields = [(pyrng.getrandbits(int(w)) if w else 0, int(w))
                  for w in rng.integers(0, 65, 500)]
        w = BitWriter()
        for value, width in fields:
            w.write(value, int(width))
        r = BitReader(w.getbuffer(), w.bit_length)
        for value, width in fields:
            assert r.read(int(width)) == value

    def test_write_bool(self):
        w = BitWriter()
        for b in (True, False, True, True):
            w.write_bool(b)
        r = BitReader(w.getbuffer(), 4)
        assert [r.read_bool() for _ in range(4)] == [True, False, True, True]

    def test_write_run(self):
        w = BitWriter()
        w.write_run(1, 130)
        w.write_run(0, 70)
        w.write_run(1, 3)
        r = BitReader(w.getbuffer(), w.bit_length)
        assert all(r.read(1) == 1 for _ in range(130))
        assert all(r.read(1) == 0 for _ in range(70))
        assert all(r.read(1) == 1 for _ in range(3))

    def test_extend(self):
        a = BitWriter()
        a.write(0b101, 3)
        b = BitWriter()
        b.write(0b11110000, 8)
        b.write(1, 1)
        a.extend(b)
        r = BitReader(a.getbuffer(), a.bit_length)
        assert r.read(3) == 0b101
        assert r.read(8) == 0b11110000
        assert r.read(1) == 1

    def test_tobytes_roundtrip(self):
        w = BitWriter()
        w.write(0xDEADBEEF, 32)
        r = BitReader.frombytes(w.tobytes(), 32)
        assert r.read(32) == 0xDEADBEEF


class TestUnary:
    @pytest.mark.parametrize("value", [0, 1, 5, 63, 64, 65, 130, 1000])
    def test_unary_roundtrip(self, value):
        w = BitWriter()
        w.write_unary(value)
        r = BitReader(w.getbuffer(), w.bit_length)
        assert r.read_unary() == value

    def test_unary_negative_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)

    def test_unary_sequence(self):
        values = [3, 0, 0, 64, 7, 128, 1]
        w = BitWriter()
        for v in values:
            w.write_unary(v)
        r = BitReader(w.getbuffer(), w.bit_length)
        assert [r.read_unary() for _ in values] == values

    def test_unary_past_end_raises(self):
        w = BitWriter()
        w.write(0, 8)  # all zeros, no terminating one
        r = BitReader(w.getbuffer(), 8)
        with pytest.raises(EOFError):
            r.read_unary()


class TestBitReader:
    def test_seek_and_peek(self):
        w = BitWriter()
        w.write(0xAB, 8)
        w.write(0xCD, 8)
        r = BitReader(w.getbuffer(), 16)
        assert r.peek_at(8, 8) == 0xCD
        assert r.pos == 0  # peek does not move
        r.seek(8)
        assert r.read(8) == 0xCD

    def test_seek_out_of_range(self):
        r = BitReader(np.zeros(1, dtype=np.uint64), 10)
        with pytest.raises(ValueError):
            r.seek(11)
        with pytest.raises(ValueError):
            r.seek(-1)

    def test_read_past_end_raises(self):
        r = BitReader(np.zeros(1, dtype=np.uint64), 10)
        with pytest.raises(EOFError):
            r.peek_at(5, 8)

    def test_bit_at(self):
        w = BitWriter()
        w.write(0b1010, 4)
        r = BitReader(w.getbuffer(), 4)
        assert [r.bit_at(i) for i in range(4)] == [0, 1, 0, 1]

    def test_frombytes_pads_to_words(self):
        r = BitReader.frombytes(b"\xff\x00\xff")  # 3 bytes -> padded
        assert r.read(8) == 0xFF
        assert r.read(8) == 0x00
        assert r.read(8) == 0xFF
