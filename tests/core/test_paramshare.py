"""Unit tests for model-parameter compression (§VI extension)."""

import numpy as np
import pytest

from repro.core import NeaTS
from repro.core.paramshare import (
    SharedParams,
    compact_fragments,
    param_bits,
    quantise_params,
)
from repro.core.partition import Fragment, partition
from repro.core.storage import NeaTSStorage


class TestQuantise:
    def test_float64_identity(self):
        params = (0.123456789012345, -9.87)
        assert quantise_params(params, "float64") == params

    def test_float32_rounds(self):
        params = (1 / 3, 2 / 3)
        q = quantise_params(params, "float32")
        assert q != params
        assert q[0] == pytest.approx(params[0], rel=1e-6)

    def test_bf16_coarser_than_float32(self):
        params = (1 / 3,)
        f32 = quantise_params(params, "float32")[0]
        b16 = quantise_params(params, "bf16")[0]
        assert abs(b16 - 1 / 3) >= abs(f32 - 1 / 3)

    def test_unknown_precision(self):
        with pytest.raises(ValueError):
            quantise_params((1.0,), "fp8")

    def test_param_bits(self):
        assert param_bits("float64") == 64
        assert param_bits("float32") == 32
        assert param_bits("bf16") == 16


class TestLosslessUnderQuantisation:
    @pytest.mark.parametrize("precision", ["float32", "bf16"])
    def test_storage_still_lossless(self, smooth_series, precision):
        """Quantised params change the approximation, but the storage builder
        recomputes residuals, so decoding stays exact."""
        eps_set = [1.0, 7.0, 31.0]
        shift = int(1 + 31 - int(smooth_series.min()))
        z = smooth_series.astype(np.float64) + shift
        result = partition(z, ["linear", "quadratic"], eps_set)
        compacted = compact_fragments(result.fragments, precision)
        storage = NeaTSStorage(z, compacted, shift)
        assert np.array_equal(storage.decompress(), smooth_series)

    def test_quantisation_grows_widths_at_most(self, smooth_series):
        shift = int(1 + 31 - int(smooth_series.min()))
        z = smooth_series.astype(np.float64) + shift
        result = partition(z, ["linear"], [7.0])
        plain = NeaTSStorage(z, result.fragments, shift)
        quant = NeaTSStorage(z, compact_fragments(result.fragments, "bf16"), shift)
        # corrections may widen, never shrink below the plain widths - 1
        assert sum(quant._widths_list) >= sum(plain._widths_list) - len(
            plain._widths_list
        )


class TestSharedParams:
    def _fragments(self, params_list):
        out = []
        pos = 0
        for p in params_list:
            out.append(Fragment(pos, pos + 10, "linear", 1.0, p))
            pos += 10
        return out

    def test_dedup_counts(self):
        frags = self._fragments([(1.0, 2.0), (1.0, 2.0), (3.0, 4.0)])
        shared = SharedParams.build(frags)
        assert shared.distinct == 2
        assert shared.n_fragments == 3

    def test_params_of_roundtrip(self):
        frags = self._fragments([(1.0, 2.0), (5.0, 6.0), (1.0, 2.0)])
        shared = SharedParams.build(frags)
        assert shared.params_of(0) == (1.0, 2.0)
        assert shared.params_of(1) == (5.0, 6.0)
        assert shared.params_of(2) == (1.0, 2.0)

    def test_saving_on_repetitive_params(self):
        frags = self._fragments([(1.0, 2.0)] * 100)
        shared = SharedParams.build(frags)
        assert shared.distinct == 1
        assert shared.saving_ratio() > 0.9

    def test_no_saving_on_unique_params(self):
        frags = self._fragments([(float(i), float(i + 1)) for i in range(20)])
        shared = SharedParams.build(frags)
        assert shared.distinct == 20
        assert shared.saving_ratio() <= 0.05

    def test_on_real_compression(self, rng):
        # A staircase series re-uses the constant function many times.
        y = np.repeat(rng.integers(0, 50, 40), 50).astype(np.int64)
        c = NeaTS(models=("linear",)).compress(y)
        shared = SharedParams.build(c.fragments, "float32")
        assert shared.distinct <= len(c.fragments)
        assert shared.size_bits() > 0
