"""Deeper per-model coverage: every Table-I kind fits its own curve family.

These tests pin the semantic contract of each transform: data generated
exactly from a model's own function family must be recovered as a *single*
fragment (up to rounding), and the fitted parameters must reproduce the
generating ones.
"""

import numpy as np
import pytest

from repro.core.models import get_model, make_approximation


def _fit_on(z, name, eps):
    model = get_model(name)
    fit = make_approximation(np.asarray(z, dtype=np.float64), 0, model, eps)
    xs = np.arange(fit.start + 1, fit.end + 1, dtype=np.float64)
    return fit, model.evaluate(fit.params, xs)


class TestSelfFamilyRecovery:
    """f-kind data -> one f-kind fragment with near-true parameters."""

    def test_linear_recovers_slope(self):
        xs = np.arange(1, 200, dtype=np.float64)
        fit, _ = _fit_on(2.5 * xs + 100, "linear", 0.5)
        assert fit.end == 199
        assert fit.params[0] == pytest.approx(2.5, abs=0.01)

    def test_exponential_recovers_rate(self):
        xs = np.arange(1, 150, dtype=np.float64)
        z = 20.0 * np.exp(0.01 * xs)
        fit, approx = _fit_on(z, "exponential", 0.5)
        assert fit.end == 149
        assert fit.params[0] == pytest.approx(0.01, abs=1e-3)

    def test_power_recovers_exponent(self):
        xs = np.arange(1, 150, dtype=np.float64)
        z = 3.0 * np.power(xs, 1.5)
        fit, _ = _fit_on(z, "power", 1.0)
        assert fit.end == 149
        assert fit.params[0] == pytest.approx(1.5, abs=0.01)

    def test_logarithmic_recovers_scale(self):
        xs = np.arange(1, 200, dtype=np.float64)
        z = 40.0 * np.log(xs) + 100
        fit, _ = _fit_on(z, "logarithmic", 0.5)
        assert fit.end == 199
        assert fit.params[0] == pytest.approx(40.0, abs=0.2)

    def test_radical_recovers_coefficient(self):
        xs = np.arange(1, 200, dtype=np.float64)
        z = 12.0 * np.sqrt(xs) + 7
        fit, _ = _fit_on(z, "radical", 0.5)
        assert fit.end == 199
        assert fit.params[0] == pytest.approx(12.0, abs=0.1)

    def test_quadratic_recovers_curvature(self):
        xs = np.arange(1, 150, dtype=np.float64)
        z = 0.05 * xs * xs + 30
        fit, _ = _fit_on(z, "quadratic", 0.5)
        assert fit.end == 149
        assert fit.params[0] == pytest.approx(0.05, abs=1e-3)

    def test_quadratic_linear_family(self):
        xs = np.arange(1, 150, dtype=np.float64)
        z = 0.03 * xs * xs + 2.0 * xs
        fit, approx = _fit_on(z, "quadratic_linear", 0.5)
        assert fit.end == 149
        assert np.max(np.abs(approx - z)) <= 0.5 + 1e-9

    def test_cubic_linear_family(self):
        xs = np.arange(1, 120, dtype=np.float64)
        z = 1e-4 * xs**3 + 0.5 * xs
        fit, approx = _fit_on(z, "cubic_linear", 0.5)
        assert fit.end == 119
        assert np.max(np.abs(approx - z)) <= 0.5 + 1e-9

    def test_cubic_quadratic_family(self):
        xs = np.arange(1, 120, dtype=np.float64)
        z = 1e-4 * xs**3 + 0.02 * xs * xs
        fit, approx = _fit_on(z, "cubic_quadratic", 0.5)
        assert fit.end == 119
        assert np.max(np.abs(approx - z)) <= 0.5 + 1e-9

    def test_gaussian_bell_curve(self):
        # A pure member of the family e^(quadratic): the central region of a
        # bell (adding a baseline would leave the family and rightly break
        # the fragment early).
        xs = np.arange(1, 120, dtype=np.float64)
        z = 100.0 * np.exp(-((xs - 60.0) ** 2) / 2000.0)
        fit, approx = _fit_on(z, "gaussian", 1.0)
        assert fit.end == 119
        assert np.max(np.abs(approx - z[: fit.end])) <= 1.0 + 1e-6


class TestCrossFamilyBreaks:
    """Data from family A should break a family-B fragment early."""

    def test_linear_cannot_span_exponential_growth(self):
        xs = np.arange(1, 300, dtype=np.float64)
        z = 10.0 * np.exp(0.03 * xs)
        lin, _ = _fit_on(z, "linear", 2.0)
        expo, _ = _fit_on(z, "exponential", 2.0)
        assert expo.end > lin.end

    def test_exponential_cannot_span_sqrt(self):
        xs = np.arange(1, 400, dtype=np.float64)
        z = 50.0 * np.sqrt(xs) + 10
        rad, _ = _fit_on(z, "radical", 1.0)
        expo, _ = _fit_on(z, "exponential", 1.0)
        assert rad.end >= expo.end

    def test_quadratic_beats_linear_on_parabola(self):
        xs = np.arange(1, 300, dtype=np.float64)
        z = 0.02 * xs * xs + 5
        quad, _ = _fit_on(z, "quadratic", 1.0)
        lin, _ = _fit_on(z, "linear", 1.0)
        assert quad.end > lin.end


class TestEpsMonotonicity:
    @pytest.mark.parametrize(
        "name", ["linear", "exponential", "quadratic", "radical", "gaussian"]
    )
    def test_fragment_length_monotone_in_eps(self, name, rng):
        z = 1000 + np.cumsum(rng.normal(0, 3, 300))
        prev_end = 0
        for eps in (0.5, 2.0, 8.0, 32.0):
            fit = make_approximation(z, 0, get_model(name), eps)
            assert fit.end >= prev_end
            prev_end = fit.end
