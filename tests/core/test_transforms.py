"""Unit tests for the vectorised transform cache."""

import numpy as np
import pytest

from repro.core.models import ALL_MODELS, MODEL_REGISTRY, get_model, make_approximation
from repro.core.transforms import precompute_transform


class TestPrecompute:
    @pytest.mark.parametrize(
        "name", [n for n in ALL_MODELS if MODEL_REGISTRY[n].n_params == 2]
    )
    def test_cached_matches_scalar_path(self, name, rng):
        """The cached fitter must produce the same fragments as the scalar one."""
        model = get_model(name)
        z = 500 + np.cumsum(rng.normal(0, 3, 150))
        eps = 5.0
        pre = precompute_transform(model, eps, z)
        assert pre is not None
        start = 0
        while start < len(z):
            fast = pre.longest_fragment(start)
            slow = make_approximation(z, start, model, eps)
            assert fast.start == slow.start
            assert fast.end == slow.end
            assert fast.params == pytest.approx(slow.params)
            start = fast.end

    def test_anchored_models_not_cached(self):
        z = np.arange(1.0, 50.0)
        assert precompute_transform(get_model("anchored_quadratic"), 1.0, z) is None
        assert precompute_transform(get_model("gaussian"), 1.0, z) is None

    def test_cached_transform_arrays_match_scalar_transform(self, rng):
        z = 300 + rng.uniform(0, 100, 60)
        eps = 2.0
        for name in ("linear", "exponential", "power", "logarithmic",
                     "radical", "quadratic", "quadratic_linear",
                     "cubic_linear", "cubic_quadratic"):
            model = get_model(name)
            pre = precompute_transform(model, eps, z)
            for k in (0, 10, 59):
                t, lo, hi = model.transform(k + 1, float(z[k]), eps)
                assert pre.t[k] == pytest.approx(t)
                assert pre.lo[k] == pytest.approx(lo)
                assert pre.hi[k] == pytest.approx(hi)

    def test_fragment_feasibility(self, rng):
        z = 400 + np.cumsum(rng.normal(0, 2, 120))
        model = get_model("radical")
        pre = precompute_transform(model, 4.0, z)
        fit = pre.longest_fragment(0)
        xs = np.arange(1, fit.end + 1, dtype=np.float64)
        assert np.max(np.abs(model.evaluate(fit.params, xs) - z[:fit.end])) <= 4.0 + 1e-6
