"""Unit tests for the public NeaTS API (lossless, LeaTS, SNeaTS)."""

import numpy as np
import pytest

from repro.core import NeaTS, default_eps_set


class TestDefaultEpsSet:
    def test_always_contains_zero(self, rng):
        y = rng.integers(0, 1000, 100)
        assert 0 in default_eps_set(y)

    def test_exact_width_values(self, rng):
        y = rng.integers(0, 1 << 20, 100)
        eps_set = default_eps_set(y, stride=1)
        for eps in eps_set[1:]:
            assert (eps + 1) & eps == 0  # eps = 2^b - 1

    def test_stride_reduces_size(self, rng):
        y = rng.integers(0, 1 << 20, 100)
        assert len(default_eps_set(y, stride=2)) <= len(default_eps_set(y, stride=1))

    def test_empty_input(self):
        assert default_eps_set(np.array([])) == [0]

    def test_constant_input(self):
        assert 0 in default_eps_set(np.full(10, 7))


class TestCompressDecompress:
    def test_roundtrip(self, smooth_series):
        c = NeaTS().compress(smooth_series)
        assert np.array_equal(c.decompress(), smooth_series)

    def test_roundtrip_walk(self, walk_series):
        c = NeaTS().compress(walk_series)
        assert np.array_equal(c.decompress(), walk_series)

    def test_roundtrip_spiky(self, spiky_series):
        c = NeaTS().compress(spiky_series)
        assert np.array_equal(c.decompress(), spiky_series)

    def test_roundtrip_constant(self, constant_series):
        c = NeaTS().compress(constant_series)
        assert np.array_equal(c.decompress(), constant_series)
        assert c.compression_ratio() < 0.1

    def test_extreme_values(self):
        y = np.array(
            [0, 1, -1, 2**40, -(2**40), 17, 2**40 + 3], dtype=np.int64
        )
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            NeaTS().compress(np.array([], dtype=np.int64))

    def test_2d_raises(self):
        with pytest.raises(ValueError):
            NeaTS().compress(np.zeros((3, 3)))

    def test_unknown_model_raises_at_construction(self):
        with pytest.raises(ValueError):
            NeaTS(models=("linear", "wavelet"))

    def test_explicit_eps_set(self, smooth_series):
        c = NeaTS(eps_set=[0, 15]).compress(smooth_series)
        assert np.array_equal(c.decompress(), smooth_series)


class TestAccess:
    def test_access_all_sampled(self, smooth_series, rng):
        c = NeaTS().compress(smooth_series)
        for k in rng.integers(0, len(smooth_series), 200).tolist():
            assert c.access(k) == smooth_series[k]

    def test_range_query(self, smooth_series):
        c = NeaTS().compress(smooth_series)
        assert np.array_equal(c.decompress_range(17, 1500), smooth_series[17:1500])

    def test_len(self, smooth_series):
        c = NeaTS().compress(smooth_series)
        assert len(c) == len(smooth_series)


class TestCompressionQuality:
    def test_compresses_structured_data(self, smooth_series):
        c = NeaTS().compress(smooth_series)
        assert c.compression_ratio() < 0.5

    def test_num_fragments_positive(self, smooth_series):
        c = NeaTS().compress(smooth_series)
        assert 1 <= c.num_fragments < len(smooth_series)

    def test_linear_data_tiny(self):
        y = (7 * np.arange(3000) + 11).astype(np.int64)
        c = NeaTS().compress(y)
        assert c.num_fragments <= 2
        assert c.compression_ratio() < 0.02


class TestVariants:
    def test_leats_linear_only(self, smooth_series):
        c = NeaTS.linear_only().compress(smooth_series)
        assert np.array_equal(c.decompress(), smooth_series)
        assert all(f.model_name == "linear" for f in c.fragments)

    def test_sneats_roundtrip(self, smooth_series):
        c = NeaTS.with_model_selection().compress(smooth_series)
        assert np.array_equal(c.decompress(), smooth_series)

    def test_sneats_restricts_pairs(self, smooth_series):
        comp = NeaTS.with_model_selection(top_k=2)
        c = comp.compress(smooth_series)
        used = {(f.model_name, f.eps) for f in c.fragments}
        assert len({name for name, _ in used}) <= 2

    def test_sneats_invalid_fraction(self):
        with pytest.raises(ValueError):
            NeaTS.with_model_selection(sample_fraction=0.0)

    def test_rank_modes_equivalent(self, smooth_series, rng):
        c_ef = NeaTS(rank_mode="ef").compress(smooth_series)
        c_bv = NeaTS(rank_mode="bitvector").compress(smooth_series)
        for k in rng.integers(0, len(smooth_series), 100).tolist():
            assert c_ef.access(k) == c_bv.access(k)


class TestDeterminism:
    def test_same_input_same_output(self, smooth_series):
        a = NeaTS().compress(smooth_series)
        b = NeaTS().compress(smooth_series)
        assert a.size_bits() == b.size_bits()
        assert a.storage.to_bytes() == b.storage.to_bytes()
