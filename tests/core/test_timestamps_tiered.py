"""Unit tests for timestamped series and the tiered ingest store."""

import json
import struct
import zlib

import numpy as np
import pytest

from repro.core import TieredStore, TimestampedSeries


def _tamper_meta(blob: bytes, mutate) -> bytes:
    """Rewrite a TieredStore snapshot's JSON metadata, keeping the crc valid."""
    assert blob[:8] == b"RPTS0001"
    (meta_len,) = struct.unpack_from("<q", blob, 12)
    meta = json.loads(blob[20 : 20 + meta_len])
    rest = blob[20 + meta_len :]
    mutate(meta)
    meta_b = json.dumps(meta, sort_keys=True).encode("utf-8")
    body = struct.pack("<q", len(meta_b)) + meta_b + rest
    return b"RPTS0001" + struct.pack("<I", zlib.crc32(body)) + body


@pytest.fixture
def ts_series(rng):
    stamps = np.cumsum(rng.integers(1, 50, 1200)).astype(np.int64)
    values = np.cumsum(rng.integers(-20, 21, 1200)).astype(np.int64)
    return stamps, values, TimestampedSeries(stamps, values)


class TestTimestampedSeries:
    def test_point_lookups(self, ts_series):
        stamps, values, series = ts_series
        for i in (0, 500, 1199):
            assert series.timestamp_at(i) == stamps[i]
            assert series.value_at(i) == values[i]

    def test_value_at_time_exact(self, ts_series):
        stamps, values, series = ts_series
        assert series.value_at_time(int(stamps[42])) == values[42]

    def test_value_at_time_missing_raises(self, ts_series):
        stamps, _, series = ts_series
        missing = int(stamps[0]) + 1
        if missing in set(stamps.tolist()):
            missing = int(stamps[-1]) + 10
        with pytest.raises(KeyError):
            series.value_at_time(missing)

    def test_value_at_or_before(self, ts_series):
        stamps, values, series = ts_series
        t = int(stamps[100]) + 0
        got_t, got_v = series.value_at_or_before(t)
        assert got_t == stamps[100] and got_v == values[100]
        # between two stamps -> the earlier one
        mid = int(stamps[100]) + 1
        if mid < int(stamps[101]):
            got_t, _ = series.value_at_or_before(mid)
            assert got_t == stamps[100]

    def test_before_first_raises(self, ts_series):
        stamps, _, series = ts_series
        with pytest.raises(KeyError):
            series.value_at_or_before(int(stamps[0]) - 1)

    def test_window_matches_slice(self, ts_series):
        stamps, values, series = ts_series
        t0, t1 = int(stamps[200]), int(stamps[400])
        got_t, got_v = series.window(t0, t1)
        assert np.array_equal(got_t, stamps[200:400])
        assert np.array_equal(got_v, values[200:400])

    def test_window_empty(self, ts_series):
        stamps, _, series = ts_series
        got_t, got_v = series.window(int(stamps[-1]) + 5, int(stamps[-1]) + 10)
        assert len(got_t) == 0 and len(got_v) == 0

    def test_full_decompress(self, ts_series):
        stamps, values, series = ts_series
        got_t, got_v = series.decompress()
        assert np.array_equal(got_t, stamps)
        assert np.array_equal(got_v, values)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TimestampedSeries(np.array([2, 1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            TimestampedSeries(np.array([1, 1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            TimestampedSeries(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError):
            TimestampedSeries(np.array([], dtype=np.int64),
                              np.array([], dtype=np.int64))

    def test_compresses(self, ts_series):
        _, _, series = ts_series
        assert series.compression_ratio() < 0.6


class TestTieredStore:
    def test_append_access_before_seal(self):
        store = TieredStore(seal_threshold=100)
        store.extend(range(50))
        assert len(store) == 50
        assert store.access(49) == 49
        assert store.tier_report()["hot_blocks"] == 0

    def test_sealing(self):
        store = TieredStore(seal_threshold=100)
        store.extend(range(250))
        report = store.tier_report()
        assert report["hot_blocks"] == 2
        assert report["buffer_values"] == 50
        assert store.access(150) == 150

    def test_consolidation_preserves_data(self, rng):
        y = np.cumsum(rng.integers(-5, 6, 1000)).astype(np.int64)
        store = TieredStore(seal_threshold=128)
        store.extend(y)
        store.consolidate()
        report = store.tier_report()
        assert report["hot_blocks"] == 0
        assert report["cold_values"] == (1000 // 128) * 128
        assert np.array_equal(store.decompress(), y)

    def test_consolidation_shrinks_footprint(self, rng):
        y = (1000 * np.sin(np.arange(3000) / 40)).astype(np.int64)
        store = TieredStore(seal_threshold=512)
        store.extend(y)
        before = store.size_bits()
        store.consolidate()
        assert store.size_bits() < before

    def test_queries_across_tiers(self, rng):
        y = np.cumsum(rng.integers(-9, 10, 900)).astype(np.int64)
        store = TieredStore(seal_threshold=200)
        store.extend(y[:500])
        store.consolidate()
        store.extend(y[500:])
        assert np.array_equal(store.decompress(), y)
        assert np.array_equal(store.range(350, 850), y[350:850])
        for k in (0, 399, 400, 880):
            assert store.access(k) == y[k]

    def test_repeated_consolidation_idempotent(self, rng):
        y = np.arange(600, dtype=np.int64)
        store = TieredStore(seal_threshold=100)
        store.extend(y)
        store.consolidate()
        store.consolidate()
        assert np.array_equal(store.decompress(), y)

    def test_access_out_of_range(self):
        store = TieredStore()
        store.append(1)
        with pytest.raises(IndexError):
            store.access(1)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            TieredStore(seal_threshold=0)


class TestExtendBulkEquivalence:
    """extend() seals in bulk but must match the per-value append path exactly."""

    @pytest.mark.parametrize("total", [1, 63, 64, 65, 127, 128, 130, 333])
    def test_matches_per_value_append(self, rng, total):
        y = np.cumsum(rng.integers(-9, 10, total)).astype(np.int64)
        bulk = TieredStore(seal_threshold=64, hot_codec="gorilla",
                           cold_codec="leats")
        bulk.extend(y)
        serial = TieredStore(seal_threshold=64, hot_codec="gorilla",
                             cold_codec="leats")
        for v in y.tolist():
            serial.append(v)
        assert bulk.tier_report() == serial.tier_report()
        assert np.array_equal(bulk.decompress(), y)
        assert bulk.to_bytes() == serial.to_bytes()

    def test_split_extends_land_mid_buffer(self, rng):
        y = np.cumsum(rng.integers(-9, 10, 300)).astype(np.int64)
        split = TieredStore(seal_threshold=64, hot_codec="gorilla",
                            cold_codec="leats")
        split.extend(y[:37])   # partial buffer
        split.extend(y[37:150])  # tops up, seals, continues
        split.extend(y[150:])
        whole = TieredStore(seal_threshold=64, hot_codec="gorilla",
                            cold_codec="leats")
        whole.extend(y)
        assert split.tier_report() == whole.tier_report()
        assert split.to_bytes() == whole.to_bytes()

    def test_rejects_non_1d(self):
        store = TieredStore(seal_threshold=8)
        with pytest.raises(ValueError):
            store.extend(np.zeros((3, 3), dtype=np.int64))


class TestAdoptSealed:
    def test_adopt_preserves_order_and_data(self, rng):
        from repro.codecs import compress

        y = np.cumsum(rng.integers(-5, 6, 200)).astype(np.int64)
        store = TieredStore(seal_threshold=64, hot_codec="gorilla")
        store.extend(y[:30])  # stays in the buffer
        store.adopt_sealed(compress(y[30:94], codec="gorilla"))
        store.extend(y[94:])
        assert np.array_equal(store.decompress(), y)
        # pre-adopt buffer sealed (30), adopted block (64), sealed chunk (64)
        report = store.tier_report()
        assert report["hot_blocks"] == 3
        assert report["buffer_values"] == 42

    def test_adopt_wrong_codec_raises(self, rng):
        from repro.codecs import compress

        store = TieredStore(seal_threshold=64, hot_codec="gorilla")
        with pytest.raises(ValueError, match="hot tier"):
            store.adopt_sealed(compress(np.arange(64), codec="chimp"))

    def test_adopt_empty_block_raises(self):
        class _Empty:
            codec_id = "gorilla"

            def __len__(self):
                return 0

        store = TieredStore(seal_threshold=64, hot_codec="gorilla")
        with pytest.raises(ValueError, match="at least one"):
            store.adopt_sealed(_Empty())


class TestSnapshotMetadataValidation:
    """crc-valid snapshots with inconsistent metadata must raise, not decode."""

    @pytest.fixture
    def snapshot(self, rng):
        y = np.cumsum(rng.integers(-9, 10, 500)).astype(np.int64)
        store = TieredStore(seal_threshold=100, hot_codec="gorilla",
                            cold_codec="leats")
        store.extend(y[:300])
        store.consolidate()
        store.extend(y[300:])
        return store.to_bytes()

    def test_untampered_snapshot_loads(self, snapshot):
        TieredStore.from_bytes(_tamper_meta(snapshot, lambda meta: None))

    def test_frame_count_mismatch_raises(self, snapshot):
        blob = _tamper_meta(snapshot, lambda m: m["hot_counts"].pop())
        with pytest.raises(ValueError, match="hot frames but"):
            TieredStore.from_bytes(blob)

    def test_hot_count_disagreement_raises(self, snapshot):
        def bump(meta):
            meta["hot_counts"][0] += 1

        with pytest.raises(ValueError, match="metadata says"):
            TieredStore.from_bytes(_tamper_meta(snapshot, bump))

    def test_cold_count_disagreement_raises(self, snapshot):
        def bump(meta):
            meta["cold_counts"][0] += 1

        with pytest.raises(ValueError, match="metadata says"):
            TieredStore.from_bytes(_tamper_meta(snapshot, bump))

    def test_cold_count_without_cold_frame_raises(self, rng):
        store = TieredStore(seal_threshold=100, hot_codec="gorilla")
        store.extend(np.arange(150, dtype=np.int64))

        def fake_cold(meta):
            meta["cold_counts"] = [5]

        with pytest.raises(ValueError, match="cold frames but"):
            TieredStore.from_bytes(_tamper_meta(store.to_bytes(), fake_cold))

    def test_legacy_single_cold_run_snapshot_loads(self, snapshot):
        """Snapshots from before multi-run cold tiers (singular cold_count /
        cold_frame_len keys) must keep loading identically."""

        def to_legacy(meta):
            counts = meta.pop("cold_counts")
            lens = meta.pop("cold_frame_lens")
            meta["cold_count"] = counts[0] if counts else 0
            meta["cold_frame_len"] = lens[0] if lens else 0

        modern = TieredStore.from_bytes(snapshot)
        legacy = TieredStore.from_bytes(_tamper_meta(snapshot, to_legacy))
        assert np.array_equal(legacy.decompress(), modern.decompress())
        assert legacy.tier_report() == modern.tier_report()

    def test_negative_counts_raise(self, snapshot):
        def negate(meta):
            meta["buffer_len"] = -1

        with pytest.raises(ValueError, match="negative"):
            TieredStore.from_bytes(_tamper_meta(snapshot, negate))
