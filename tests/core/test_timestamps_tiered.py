"""Unit tests for timestamped series and the tiered ingest store."""

import numpy as np
import pytest

from repro.core import TieredStore, TimestampedSeries


@pytest.fixture
def ts_series(rng):
    stamps = np.cumsum(rng.integers(1, 50, 1200)).astype(np.int64)
    values = np.cumsum(rng.integers(-20, 21, 1200)).astype(np.int64)
    return stamps, values, TimestampedSeries(stamps, values)


class TestTimestampedSeries:
    def test_point_lookups(self, ts_series):
        stamps, values, series = ts_series
        for i in (0, 500, 1199):
            assert series.timestamp_at(i) == stamps[i]
            assert series.value_at(i) == values[i]

    def test_value_at_time_exact(self, ts_series):
        stamps, values, series = ts_series
        assert series.value_at_time(int(stamps[42])) == values[42]

    def test_value_at_time_missing_raises(self, ts_series):
        stamps, _, series = ts_series
        missing = int(stamps[0]) + 1
        if missing in set(stamps.tolist()):
            missing = int(stamps[-1]) + 10
        with pytest.raises(KeyError):
            series.value_at_time(missing)

    def test_value_at_or_before(self, ts_series):
        stamps, values, series = ts_series
        t = int(stamps[100]) + 0
        got_t, got_v = series.value_at_or_before(t)
        assert got_t == stamps[100] and got_v == values[100]
        # between two stamps -> the earlier one
        mid = int(stamps[100]) + 1
        if mid < int(stamps[101]):
            got_t, _ = series.value_at_or_before(mid)
            assert got_t == stamps[100]

    def test_before_first_raises(self, ts_series):
        stamps, _, series = ts_series
        with pytest.raises(KeyError):
            series.value_at_or_before(int(stamps[0]) - 1)

    def test_window_matches_slice(self, ts_series):
        stamps, values, series = ts_series
        t0, t1 = int(stamps[200]), int(stamps[400])
        got_t, got_v = series.window(t0, t1)
        assert np.array_equal(got_t, stamps[200:400])
        assert np.array_equal(got_v, values[200:400])

    def test_window_empty(self, ts_series):
        stamps, _, series = ts_series
        got_t, got_v = series.window(int(stamps[-1]) + 5, int(stamps[-1]) + 10)
        assert len(got_t) == 0 and len(got_v) == 0

    def test_full_decompress(self, ts_series):
        stamps, values, series = ts_series
        got_t, got_v = series.decompress()
        assert np.array_equal(got_t, stamps)
        assert np.array_equal(got_v, values)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TimestampedSeries(np.array([2, 1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            TimestampedSeries(np.array([1, 1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            TimestampedSeries(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError):
            TimestampedSeries(np.array([], dtype=np.int64),
                              np.array([], dtype=np.int64))

    def test_compresses(self, ts_series):
        _, _, series = ts_series
        assert series.compression_ratio() < 0.6


class TestTieredStore:
    def test_append_access_before_seal(self):
        store = TieredStore(seal_threshold=100)
        store.extend(range(50))
        assert len(store) == 50
        assert store.access(49) == 49
        assert store.tier_report()["hot_blocks"] == 0

    def test_sealing(self):
        store = TieredStore(seal_threshold=100)
        store.extend(range(250))
        report = store.tier_report()
        assert report["hot_blocks"] == 2
        assert report["buffer_values"] == 50
        assert store.access(150) == 150

    def test_consolidation_preserves_data(self, rng):
        y = np.cumsum(rng.integers(-5, 6, 1000)).astype(np.int64)
        store = TieredStore(seal_threshold=128)
        store.extend(y)
        store.consolidate()
        report = store.tier_report()
        assert report["hot_blocks"] == 0
        assert report["cold_values"] == (1000 // 128) * 128
        assert np.array_equal(store.decompress(), y)

    def test_consolidation_shrinks_footprint(self, rng):
        y = (1000 * np.sin(np.arange(3000) / 40)).astype(np.int64)
        store = TieredStore(seal_threshold=512)
        store.extend(y)
        before = store.size_bits()
        store.consolidate()
        assert store.size_bits() < before

    def test_queries_across_tiers(self, rng):
        y = np.cumsum(rng.integers(-9, 10, 900)).astype(np.int64)
        store = TieredStore(seal_threshold=200)
        store.extend(y[:500])
        store.consolidate()
        store.extend(y[500:])
        assert np.array_equal(store.decompress(), y)
        assert np.array_equal(store.range(350, 850), y[350:850])
        for k in (0, 399, 400, 880):
            assert store.access(k) == y[k]

    def test_repeated_consolidation_idempotent(self, rng):
        y = np.arange(600, dtype=np.int64)
        store = TieredStore(seal_threshold=100)
        store.extend(y)
        store.consolidate()
        store.consolidate()
        assert np.array_equal(store.decompress(), y)

    def test_access_out_of_range(self):
        store = TieredStore()
        store.append(1)
        with pytest.raises(IndexError):
            store.access(1)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            TieredStore(seal_threshold=0)
