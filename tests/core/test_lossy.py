"""Unit tests for NeaTS-L (the lossy compressor)."""

import numpy as np
import pytest

from repro.core import NeaTS, NeaTSLossy


class TestErrorBound:
    @pytest.mark.parametrize("eps", [1.0, 10.0, 100.0])
    def test_linf_bound_holds(self, smooth_series, eps):
        series = NeaTSLossy(eps).compress(smooth_series)
        assert series.max_error(smooth_series) <= eps + 1e-6

    def test_integer_reconstruction_within_eps_plus_one(self, smooth_series):
        eps = 25.0
        series = NeaTSLossy(eps).compress(smooth_series)
        out = series.reconstruct_int()
        assert np.max(np.abs(out - smooth_series)) <= eps + 1.0

    def test_negative_eps_raises(self):
        with pytest.raises(ValueError):
            NeaTSLossy(-1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            NeaTSLossy(1.0).compress(np.array([], dtype=np.int64))


class TestSpace:
    def test_lossy_smaller_than_lossless_for_large_eps(self, smooth_series):
        value_range = int(smooth_series.max()) - int(smooth_series.min())
        lossy = NeaTSLossy(0.05 * value_range).compress(smooth_series)
        lossless = NeaTS().compress(smooth_series)
        assert lossy.size_bits() < lossless.size_bits()

    def test_larger_eps_fewer_fragments(self, smooth_series):
        small = NeaTSLossy(5.0).compress(smooth_series)
        large = NeaTSLossy(200.0).compress(smooth_series)
        assert len(large.fragments) <= len(small.fragments)

    def test_size_grows_with_fragments(self, smooth_series):
        series = NeaTSLossy(50.0).compress(smooth_series)
        assert series.size_bits() > 0
        assert series.compression_ratio() > 0


class TestAccess:
    def test_access_within_eps(self, smooth_series, rng):
        eps = 30.0
        series = NeaTSLossy(eps).compress(smooth_series)
        for k in rng.integers(0, len(smooth_series), 100).tolist():
            assert abs(series.access(int(k)) - smooth_series[k]) <= eps + 1e-6

    def test_access_matches_reconstruct(self, smooth_series, rng):
        series = NeaTSLossy(20.0).compress(smooth_series)
        recon = series.reconstruct()
        for k in rng.integers(0, len(smooth_series), 50).tolist():
            assert series.access(int(k)) == pytest.approx(recon[k])


class TestMetrics:
    def test_mape_reasonable(self, smooth_series):
        series = NeaTSLossy(10.0).compress(smooth_series)
        assert 0 <= series.mape(smooth_series) < 100

    def test_models_subset(self, smooth_series):
        series = NeaTSLossy(10.0, models=("linear",)).compress(smooth_series)
        assert all(f.model_name == "linear" for f in series.fragments)
        assert series.max_error(smooth_series) <= 10.0 + 1e-6

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            NeaTSLossy(1.0, models=("spline",))
