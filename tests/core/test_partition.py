"""Unit tests for Algorithm 1 (optimal partitioning)."""

import math

import numpy as np
import pytest

from repro.core.models import get_model, make_approximation
from repro.core.partition import (
    FRAGMENT_OVERHEAD_BITS,
    PARAM_BITS,
    correction_bits,
    partition,
    partition_lossy,
)


def brute_force_optimal_cost(z, models, eps_set, lossy=False):
    """Exact shortest path over the *explicit* fragment DAG (small n only)."""
    n = len(z)
    INF = float("inf")
    dist = [INF] * (n + 1)
    dist[0] = 0.0
    # For each start i and pair, the longest feasible end; every sub-fragment
    # [i, j) with j <= end is then an edge.
    for i in range(n):
        if dist[i] == INF:
            continue
        for m in models:
            model = get_model(m)
            kappa = model.n_params * PARAM_BITS + FRAGMENT_OVERHEAD_BITS
            for eps in eps_set:
                cbits = 0 if lossy else correction_bits(eps)
                end = make_approximation(z, i, model, eps).end
                for j in range(i + 1, end + 1):
                    w = (j - i) * cbits + kappa
                    if dist[i] + w < dist[j]:
                        dist[j] = dist[i] + w
    return dist[n]


class TestCorrectionBits:
    @pytest.mark.parametrize(
        "eps,bits", [(0, 0), (1, 2), (2, 3), (3, 3), (7, 4), (127, 8)]
    )
    def test_known_values(self, eps, bits):
        assert correction_bits(eps) == bits
        # Definition check: ceil(log2(2eps+1)).
        if eps > 0:
            assert bits == math.ceil(math.log2(2 * eps + 1))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            correction_bits(-1)


class TestPartitionBasics:
    def test_empty_series(self):
        result = partition(np.array([]), ["linear"], [1.0])
        assert result.fragments == []
        assert result.cost_bits == 0.0

    def test_requires_models_and_eps(self):
        with pytest.raises(ValueError):
            partition(np.array([1.0]), [], [1.0])
        with pytest.raises(ValueError):
            partition(np.array([1.0]), ["linear"], [])

    def test_fragments_cover_and_are_consecutive(self, rng):
        z = 1000 + np.cumsum(rng.normal(0, 5, 300))
        result = partition(z, ["linear", "quadratic"], [1.0, 7.0])
        frags = result.fragments
        assert frags[0].start == 0
        assert frags[-1].end == len(z)
        for a, b in zip(frags, frags[1:]):
            assert a.end == b.start

    def test_every_fragment_is_eps_feasible(self, rng):
        z = 1000 + np.cumsum(rng.normal(0, 5, 300))
        result = partition(z, ["linear", "exponential", "radical"], [1.0, 7.0, 31.0])
        for frag in result.fragments:
            model = get_model(frag.model_name)
            xs = np.arange(frag.start + 1, frag.end + 1, dtype=np.float64)
            err = np.max(np.abs(model.evaluate(frag.params, xs) - z[frag.start:frag.end]))
            assert err <= frag.eps + 1e-6, (frag.model_name, frag.eps, err)

    def test_constant_series_one_fragment(self):
        z = np.full(200, 55.0)
        result = partition(z, ["linear"], [0.0])
        assert len(result.fragments) == 1


class TestOptimality:
    def test_matches_brute_force_single_pair(self, rng):
        for trial in range(5):
            z = 100 + np.cumsum(rng.normal(0, 6, 40))
            got = partition(z, ["linear"], [3.0])
            want = brute_force_optimal_cost(z, ["linear"], [3.0])
            assert got.cost_bits == pytest.approx(want)

    def test_close_to_full_dag_optimum_multi_pair(self, rng):
        """Algorithm 1 optimises over the paper's graph G: maximal fragments
        plus their prefixes and suffixes.  The *full* DAG (fragments from
        every start position) is strictly larger, and with mixed ε-values its
        optimum can undercut G's by a boundary position or one extra κ; the
        paper's algorithm is defined on G, so we assert G's solution is never
        below the full optimum and within one fragment overhead of it."""
        kappa = 2 * PARAM_BITS + FRAGMENT_OVERHEAD_BITS
        for trial in range(4):
            z = 200 + np.cumsum(rng.normal(0, 8, 35))
            models = ["linear", "quadratic"]
            eps_set = [1.0, 7.0]
            got = partition(z, models, eps_set)
            want = brute_force_optimal_cost(z, models, eps_set)
            assert want - 1e-9 <= got.cost_bits <= want + kappa

    def test_matches_brute_force_lossy(self, rng):
        for trial in range(4):
            z = 150 + np.cumsum(rng.normal(0, 4, 40))
            got = partition_lossy(z, ["linear", "radical"], 5.0)
            want = brute_force_optimal_cost(z, ["linear", "radical"], [5.0], lossy=True)
            assert got.cost_bits == pytest.approx(want)

    def test_superset_models_never_worse(self, rng):
        z = 300 + np.cumsum(rng.normal(0, 5, 200))
        small = partition(z, ["linear"], [1.0, 7.0])
        large = partition(z, ["linear", "exponential", "quadratic"], [1.0, 7.0])
        assert large.cost_bits <= small.cost_bits + 1e-9

    def test_superset_eps_never_worse(self, rng):
        z = 300 + np.cumsum(rng.normal(0, 5, 200))
        small = partition(z, ["linear"], [7.0])
        large = partition(z, ["linear"], [1.0, 7.0, 31.0])
        assert large.cost_bits <= small.cost_bits + 1e-9

    def test_cost_equals_sum_of_fragment_weights(self, rng):
        z = 100 + np.cumsum(rng.normal(0, 5, 150))
        result = partition(z, ["linear", "quadratic"], [1.0, 7.0])
        total = 0.0
        for f in result.fragments:
            model = get_model(f.model_name)
            total += (f.end - f.start) * correction_bits(f.eps)
            total += model.n_params * PARAM_BITS + FRAGMENT_OVERHEAD_BITS
        assert result.cost_bits == pytest.approx(total)


class TestLossyMode:
    def test_lossy_prefers_fewer_fragments(self, rng):
        z = 100 + np.cumsum(rng.normal(0, 3, 300))
        lossy = partition_lossy(z, ["linear"], 10.0)
        lossless = partition(z, ["linear"], [10.0])
        # The lossy objective ignores per-point corrections, so its optimal
        # solution uses as few fragments as feasibility allows.
        assert len(lossy.fragments) <= len(lossless.fragments) + 1

    def test_lossy_respects_bound(self, rng):
        z = 100 + np.cumsum(rng.normal(0, 3, 200))
        eps = 8.0
        result = partition_lossy(z, ["linear", "exponential"], eps)
        for frag in result.fragments:
            model = get_model(frag.model_name)
            xs = np.arange(frag.start + 1, frag.end + 1, dtype=np.float64)
            err = np.max(np.abs(model.evaluate(frag.params, xs) - z[frag.start:frag.end]))
            assert err <= eps + 1e-6
