"""Unit tests for the Table-I function models."""

import numpy as np
import pytest

from repro.core.models import (
    ALL_MODELS,
    DEFAULT_MODELS,
    MODEL_REGISTRY,
    get_model,
    make_approximation,
)

TWO_PARAM = [name for name in ALL_MODELS if MODEL_REGISTRY[name].n_params == 2]
THREE_PARAM = [name for name in ALL_MODELS if MODEL_REGISTRY[name].n_params == 3]


class TestRegistry:
    def test_default_models_registered(self):
        for name in DEFAULT_MODELS:
            assert name in MODEL_REGISTRY

    def test_unknown_model_raises_with_hint(self):
        with pytest.raises(ValueError, match="known models"):
            get_model("sinusoid")

    def test_names_match_keys(self):
        for name, model in MODEL_REGISTRY.items():
            assert model.name == name

    def test_param_counts(self):
        assert set(THREE_PARAM) == {"anchored_quadratic", "gaussian"}
        for name in TWO_PARAM:
            assert MODEL_REGISTRY[name].n_params == 2


class TestScalarVectorConsistency:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_evaluate_at_matches_evaluate(self, name):
        model = get_model(name)
        params = (0.01, 1.5) if model.n_params == 2 else (1e-4, 0.03, 2.0)
        xs = np.array([1.0, 5.0, 40.0, 999.0])
        vec = model.evaluate(params, xs)
        for x, v in zip(xs, vec):
            assert model.evaluate_at(params, float(x)) == pytest.approx(float(v))


class TestTransformInverse:
    @pytest.mark.parametrize("name", TWO_PARAM)
    def test_line_through_transform_is_eps_feasible(self, name):
        """params_from_line must invert the transform: if the fitted line
        satisfies the transformed inequalities, f must ε-approximate z."""
        model = get_model(name)
        rng = np.random.default_rng(hash(name) % 2**32)
        eps = 4.0
        z = 500 + np.abs(np.cumsum(rng.normal(0, 2, 50)))
        fit = make_approximation(z, 0, model, eps)
        xs = np.arange(fit.start + 1, fit.end + 1, dtype=np.float64)
        approx = model.evaluate(fit.params, xs)
        assert np.max(np.abs(approx - z[fit.start:fit.end])) <= eps + 1e-6


class TestMakeApproximation:
    def test_covers_at_least_one_point(self):
        z = np.array([10.0, 5000.0, 10.0])
        for name in ALL_MODELS:
            fit = make_approximation(z, 0, get_model(name), 0.5)
            assert fit.end > fit.start

    def test_perfect_linear_data_single_fragment(self):
        z = 3.0 * np.arange(1, 101) + 17
        fit = make_approximation(z, 0, get_model("linear"), 0.0)
        assert fit.end == 100

    def test_perfect_exponential_data_single_fragment(self):
        xs = np.arange(1, 80, dtype=np.float64)
        z = 5.0 * np.exp(0.05 * xs)
        fit = make_approximation(z, 0, get_model("exponential"), 1.0)
        assert fit.end == 79

    def test_perfect_quadratic_data_single_fragment(self):
        xs = np.arange(1, 80, dtype=np.float64)
        z = 0.25 * xs * xs + 40
        fit = make_approximation(z, 0, get_model("quadratic"), 0.5)
        assert fit.end == 79

    def test_perfect_sqrt_data_single_fragment(self):
        xs = np.arange(1, 80, dtype=np.float64)
        z = 12.0 * np.sqrt(xs) + 3
        fit = make_approximation(z, 0, get_model("radical"), 0.5)
        assert fit.end == 79

    def test_anchored_quadratic_passes_through_anchor(self):
        rng = np.random.default_rng(0)
        z = 100 + np.cumsum(rng.normal(0, 1, 60))
        model = get_model("anchored_quadratic")
        fit = make_approximation(z, 0, model, 5.0)
        assert model.evaluate_at(fit.params, 1) == pytest.approx(z[0])

    def test_anchored_quadratic_respects_eps(self):
        rng = np.random.default_rng(1)
        z = 200 + np.cumsum(rng.normal(0, 0.5, 80))
        model = get_model("anchored_quadratic")
        eps = 3.0
        fit = make_approximation(z, 0, model, eps)
        xs = np.arange(1, fit.end + 1, dtype=np.float64)
        approx = model.evaluate(fit.params, xs)
        assert np.max(np.abs(approx - z[:fit.end])) <= eps + 1e-6

    def test_gaussian_respects_eps(self):
        xs = np.arange(1, 100, dtype=np.float64)
        z = 50 * np.exp(-((xs - 50) ** 2) / 400) + 10
        model = get_model("gaussian")
        eps = 2.0
        fit = make_approximation(z, 0, model, eps)
        out = model.evaluate(fit.params, np.arange(1, fit.end + 1, dtype=np.float64))
        assert np.max(np.abs(out - z[:fit.end])) <= eps + 1e-6
        assert fit.end > 5  # a gaussian should fit a gaussian well

    def test_start_offset(self):
        z = np.concatenate([[1e6], 2.0 * np.arange(1, 50) + 5])
        fit = make_approximation(z, 1, get_model("linear"), 0.1)
        assert fit.start == 1
        assert fit.end == 50

    def test_start_out_of_range(self):
        with pytest.raises(ValueError):
            make_approximation(np.array([1.0]), 1, get_model("linear"), 0.0)

    def test_max_end_caps_fragment(self):
        z = np.full(100, 7.0)
        fit = make_approximation(z, 0, get_model("linear"), 1.0, max_end=10)
        assert fit.end == 10

    def test_longer_eps_longer_fragment(self):
        rng = np.random.default_rng(2)
        z = 100 + np.cumsum(rng.normal(0, 2, 200))
        model = get_model("linear")
        short = make_approximation(z, 0, model, 1.0)
        long = make_approximation(z, 0, model, 20.0)
        assert long.end >= short.end


class TestEpsZero:
    @pytest.mark.parametrize("name", ["linear", "quadratic", "radical"])
    def test_eps_zero_exact_interpolation(self, name):
        """With ε=0 the function must pass within 1 unit of every point
        (float geometry can leave sub-unit slack; corrections absorb it)."""
        model = get_model(name)
        z = np.array([10.0, 12.0, 14.0, 16.0])
        fit = make_approximation(z, 0, model, 0.0)
        xs = np.arange(1, fit.end + 1, dtype=np.float64)
        assert np.max(np.abs(model.evaluate(fit.params, xs) - z[:fit.end])) < 1.0
