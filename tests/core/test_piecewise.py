"""Unit tests for the greedy piecewise approximation (Corollary 1)."""

import numpy as np
import pytest

from repro.core.models import get_model
from repro.core.piecewise import (
    mape,
    max_abs_error,
    piecewise_approximation,
    reconstruct,
)


def brute_force_min_pieces(z, eps):
    """Exact minimum number of linear ε-pieces via DP over all splits."""
    from repro.core.models import make_approximation

    n = len(z)
    # feasible[i][j]: fragment [i, j) admits a linear eps-approximation.
    # Use the greedy fitter from each i (it finds the longest feasible end).
    longest = [make_approximation(z, i, get_model("linear"), eps).end for i in range(n)]
    INF = 10**9
    dp = [INF] * (n + 1)
    dp[0] = 0
    for i in range(n):
        if dp[i] == INF:
            continue
        for j in range(i + 1, longest[i] + 1):
            dp[j] = min(dp[j], dp[i] + 1)
    return dp[n]


class TestCoverage:
    def test_fragments_cover_series(self, smooth_series):
        z = smooth_series.astype(np.float64) + 10000
        frags = piecewise_approximation(z, "linear", 20.0)
        assert frags[0].start == 0
        assert frags[-1].end == len(z)
        for a, b in zip(frags, frags[1:]):
            assert a.end == b.start

    def test_single_point(self):
        frags = piecewise_approximation(np.array([5.0]), "linear", 0.0)
        assert len(frags) == 1

    def test_negative_eps_raises(self):
        with pytest.raises(ValueError):
            piecewise_approximation(np.array([1.0]), "linear", -1.0)

    def test_string_model_resolution(self):
        frags = piecewise_approximation(np.arange(1.0, 50.0), "radical", 5.0)
        assert frags[-1].end == 49


class TestErrorBound:
    @pytest.mark.parametrize("model", ["linear", "exponential", "quadratic", "radical"])
    @pytest.mark.parametrize("eps", [0.0, 1.0, 10.0])
    def test_reconstruction_within_eps(self, model, eps, rng):
        z = 1000 + np.cumsum(rng.normal(0, 3, 300))
        frags = piecewise_approximation(z, model, eps)
        approx = reconstruct(frags, model, len(z))
        assert max_abs_error(z, approx) <= eps + 1e-6


class TestMinimality:
    def test_greedy_is_minimal_for_linear(self, rng):
        """Corollary 1: greedy yields the minimum number of fragments.

        The classic result: left-to-right maximal fragments minimise the
        count.  Verified against an exact DP on small random inputs.
        """
        for trial in range(8):
            z = 100 + np.cumsum(rng.normal(0, 4, 60))
            eps = 3.0
            greedy = piecewise_approximation(z, "linear", eps)
            assert len(greedy) == brute_force_min_pieces(z, eps)

    def test_more_eps_fewer_pieces(self, rng):
        z = 500 + np.cumsum(rng.normal(0, 5, 400))
        tight = piecewise_approximation(z, "linear", 1.0)
        loose = piecewise_approximation(z, "linear", 50.0)
        assert len(loose) <= len(tight)


class TestMetrics:
    def test_max_abs_error_zero_for_identity(self):
        z = np.array([1.0, 2.0, 3.0])
        assert max_abs_error(z, z.copy()) == 0.0

    def test_mape_known_value(self):
        z = np.array([100.0, 200.0])
        approx = np.array([110.0, 180.0])
        assert mape(z, approx) == pytest.approx(10.0)  # (10% + 10%) / 2

    def test_mape_skips_zeros(self):
        z = np.array([0.0, 100.0])
        approx = np.array([5.0, 110.0])
        assert mape(z, approx) == pytest.approx(10.0)

    def test_mape_all_zeros(self):
        assert mape(np.zeros(5), np.ones(5)) == 0.0
