"""Unit tests for the O'Rourke feasible-region fitter."""

import numpy as np
import pytest

from repro.core.convex import RangeLineFitter


def brute_force_feasible(points):
    """Exhaustively check if a line stabs all (t, lo, hi) ranges.

    LP-free check: a stabbing line exists iff for no pair of points does the
    max slope forced by one pair undercut the min slope forced by another.
    We simply try a dense family of candidate lines through range endpoints.
    """
    for ti, loi, hii in points:
        for yi in (loi, hii):
            for tj, loj, hij in points:
                if tj == ti:
                    continue
                for yj in (loj, hij):
                    m = (yj - yi) / (tj - ti)
                    q = yi - m * ti
                    if all(lo - 1e-9 <= m * t + q <= hi + 1e-9
                           for t, lo, hi in points):
                        return True
    # Horizontal candidates through each endpoint.
    for _, lo, hi in points:
        for y in (lo, hi):
            if all(l - 1e-9 <= y <= h + 1e-9 for _, l, h in points):
                return True
    return False


class TestBasics:
    def test_empty_fitter_raises(self):
        with pytest.raises(ValueError):
            RangeLineFitter().line()

    def test_single_range(self):
        f = RangeLineFitter()
        assert f.add(1.0, 2.0, 4.0)
        m, q = f.line()
        assert 2.0 <= m * 1.0 + q <= 4.0

    def test_two_ranges(self):
        f = RangeLineFitter()
        assert f.add(1.0, 0.0, 1.0)
        assert f.add(2.0, 10.0, 11.0)
        m, q = f.line()
        assert 0.0 <= m + q <= 1.0
        assert 10.0 <= 2 * m + q <= 11.0

    def test_non_increasing_t_raises(self):
        f = RangeLineFitter()
        f.add(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            f.add(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            f.add(0.5, 0.0, 1.0)

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            RangeLineFitter().add(1.0, 2.0, 1.0)

    def test_rejection_leaves_state_usable(self):
        f = RangeLineFitter()
        f.add(1.0, 0.0, 1.0)
        f.add(2.0, 0.0, 1.0)
        # An impossible range: far above any feasible line.
        assert not f.add(3.0, 100.0, 101.0)
        m, q = f.line()  # still works for the accepted prefix
        assert 0.0 <= m * 1 + q <= 1.0
        assert 0.0 <= m * 2 + q <= 1.0


class TestFeasibility:
    def test_exact_line_always_accepted(self):
        f = RangeLineFitter()
        for x in range(1, 200):
            assert f.add(float(x), 3 * x + 7, 3 * x + 7)
        m, q = f.line()
        assert m == pytest.approx(3.0)
        assert q == pytest.approx(7.0)

    def test_noisy_line_within_eps(self):
        rng = np.random.default_rng(0)
        eps = 5.0
        f = RangeLineFitter()
        xs = np.arange(1, 300, dtype=np.float64)
        ys = -2.0 * xs + 50 + rng.uniform(-4.9, 4.9, len(xs))
        for x, y in zip(xs, ys):
            assert f.add(x, y - eps, y + eps)
        m, q = f.line()
        assert np.all(np.abs(m * xs + q - ys) <= eps + 1e-9)

    def test_line_through_returned_region_is_feasible(self):
        # After many adds, the returned line must satisfy every constraint.
        rng = np.random.default_rng(1)
        f = RangeLineFitter()
        accepted = []
        t = 0.0
        for _ in range(500):
            t += float(rng.uniform(0.1, 2.0))
            mid = float(rng.normal(0, 50))
            half = float(rng.uniform(0.5, 20))
            if f.add(t, mid - half, mid + half):
                accepted.append((t, mid - half, mid + half))
            else:
                break
        m, q = f.line()
        for t_, lo, hi in accepted:
            val = m * t_ + q
            assert lo - 1e-6 <= val <= hi + 1e-6

    def test_matches_brute_force_on_small_inputs(self):
        rng = np.random.default_rng(2)
        for trial in range(60):
            pts = []
            t = 0.0
            for _ in range(int(rng.integers(2, 7))):
                t += float(rng.uniform(0.5, 2.0))
                mid = float(rng.normal(0, 10))
                half = float(rng.uniform(0.1, 5))
                pts.append((t, mid - half, mid + half))
            f = RangeLineFitter()
            ok = all(f.add(*p) for p in pts)
            assert ok == brute_force_feasible(pts), pts


class TestSlopeRange:
    def test_slope_range_narrows(self):
        f = RangeLineFitter()
        f.add(1.0, 0.0, 10.0)
        f.add(2.0, 0.0, 10.0)
        lo1, hi1 = f.slope_range()
        f.add(3.0, 0.0, 10.0)
        lo2, hi2 = f.slope_range()
        assert lo2 >= lo1 - 1e-12
        assert hi2 <= hi1 + 1e-12

    def test_slope_range_contains_true_slope(self):
        f = RangeLineFitter()
        for x in range(1, 50):
            f.add(float(x), 5 * x - 1, 5 * x + 1)
        lo, hi = f.slope_range()
        assert lo <= 5.0 <= hi

    def test_single_point_slope_unbounded(self):
        f = RangeLineFitter()
        f.add(1.0, 0.0, 1.0)
        lo, hi = f.slope_range()
        assert lo == float("-inf") and hi == float("inf")


class TestMaximality:
    def test_fitter_extends_as_long_as_feasible(self):
        # The greedy fragment must not stop early: compare against brute force.
        rng = np.random.default_rng(3)
        for trial in range(25):
            n = 30
            ys = np.cumsum(rng.normal(0, 3, n)) + 100
            eps = 2.5
            f = RangeLineFitter()
            stopped = n
            for i in range(n):
                if not f.add(float(i + 1), ys[i] - eps, ys[i] + eps):
                    stopped = i
                    break
            # Brute force: the prefix of length `stopped` is feasible...
            pts = [(float(i + 1), ys[i] - eps, ys[i] + eps) for i in range(stopped)]
            if len(pts) >= 2:
                assert brute_force_feasible(pts)
            # ...and adding one more point makes it infeasible.
            if stopped < n:
                pts1 = pts + [(float(stopped + 1), ys[stopped] - eps, ys[stopped] + eps)]
                assert not brute_force_feasible(pts1)
