"""Unit tests for the NeaTS succinct layout and Algorithms 2-3."""

import numpy as np
import pytest

from repro.core import NeaTS
from repro.core.partition import partition
from repro.core.storage import NeaTSStorage, _required_width


def build_storage(y, rank_mode="ef", models=("linear", "quadratic"), eps=(1.0, 7.0)):
    shift = int(1 + max(eps) - int(y.min()))
    z = y.astype(np.float64) + shift
    result = partition(z, list(models), list(eps))
    return NeaTSStorage(z, result.fragments, shift, rank_mode), z


class TestRequiredWidth:
    def test_zero_width_for_zero_residuals(self):
        assert _required_width(0, 0, 0) == 0

    def test_base_width_kept_when_sufficient(self):
        assert _required_width(-1, 1, 2) == 2

    def test_widening_when_needed(self):
        # base 0 but nonzero residuals -> widen
        assert _required_width(-1, 0, 0) == 1
        assert _required_width(-2, 1, 2) == 2
        assert _required_width(-3, 2, 2) == 3

    def test_asymmetric_bias_range(self):
        # width w stores [-2^(w-1), 2^(w-1)-1]
        assert _required_width(-4, 3, 0) == 3
        assert _required_width(-4, 4, 0) == 4


class TestRoundTrip:
    def test_decompress_exact(self, smooth_series):
        st, _ = build_storage(smooth_series)
        assert np.array_equal(st.decompress(), smooth_series)

    def test_access_matches_decompress(self, smooth_series, rng):
        st, _ = build_storage(smooth_series)
        dec = st.decompress()
        for k in rng.integers(0, len(smooth_series), 100).tolist():
            assert st.access(k) == dec[k]

    def test_first_and_last_positions(self, smooth_series):
        st, _ = build_storage(smooth_series)
        assert st.access(0) == smooth_series[0]
        assert st.access(len(smooth_series) - 1) == smooth_series[-1]

    def test_access_out_of_range(self, smooth_series):
        st, _ = build_storage(smooth_series)
        with pytest.raises(IndexError):
            st.access(-1)
        with pytest.raises(IndexError):
            st.access(len(smooth_series))

    def test_negative_values(self, rng):
        y = rng.integers(-10000, -100, 800).astype(np.int64)
        st, _ = build_storage(y)
        assert np.array_equal(st.decompress(), y)

    def test_constant_series(self, constant_series):
        st, _ = build_storage(constant_series)
        assert np.array_equal(st.decompress(), constant_series)
        assert st.m == 1

    def test_single_point(self):
        y = np.array([123], dtype=np.int64)
        st, _ = build_storage(y)
        assert st.access(0) == 123


class TestRangeQueries:
    @pytest.mark.parametrize("lo,hi", [(0, 10), (5, 5), (100, 1500), (1990, 2000)])
    def test_range_matches_slice(self, smooth_series, lo, hi):
        st, _ = build_storage(smooth_series)
        assert np.array_equal(st.decompress_range(lo, hi), smooth_series[lo:hi])

    def test_full_range(self, smooth_series):
        st, _ = build_storage(smooth_series)
        assert np.array_equal(
            st.decompress_range(0, len(smooth_series)), smooth_series
        )

    def test_range_bounds_checked(self, smooth_series):
        st, _ = build_storage(smooth_series)
        with pytest.raises(IndexError):
            st.decompress_range(-1, 5)
        with pytest.raises(IndexError):
            st.decompress_range(0, len(smooth_series) + 1)
        with pytest.raises(IndexError):
            st.decompress_range(10, 5)


class TestRankModes:
    def test_bitvector_mode_equivalent(self, smooth_series, rng):
        st_ef, _ = build_storage(smooth_series, rank_mode="ef")
        st_bv, _ = build_storage(smooth_series, rank_mode="bitvector")
        for k in rng.integers(0, len(smooth_series), 150).tolist():
            assert st_ef.fragment_index(k) == st_bv.fragment_index(k)
            assert st_ef.access(k) == st_bv.access(k)

    def test_unknown_mode_raises(self, smooth_series):
        with pytest.raises(ValueError):
            build_storage(smooth_series, rank_mode="magic")

    def test_fragment_index_boundaries(self, smooth_series):
        st, _ = build_storage(smooth_series)
        starts = st._starts_list
        for i, s in enumerate(starts):
            assert st.fragment_index(s) == i
            if s > 0:
                assert st.fragment_index(s - 1) == i - 1


class TestValidation:
    def test_non_covering_fragments_rejected(self, smooth_series):
        from repro.core.partition import Fragment

        z = smooth_series.astype(np.float64) + 100000
        frags = [Fragment(1, len(z), "linear", 1.0, (0.0, 0.0))]
        with pytest.raises(ValueError):
            NeaTSStorage(z, frags, 100000)

    def test_gap_rejected(self, smooth_series):
        from repro.core.partition import Fragment

        z = smooth_series.astype(np.float64) + 100000
        frags = [
            Fragment(0, 10, "linear", 1.0, (0.0, 0.0)),
            Fragment(11, len(z), "linear", 1.0, (0.0, 0.0)),
        ]
        with pytest.raises(ValueError):
            NeaTSStorage(z, frags, 100000)


class TestSerialisation:
    def test_bytes_roundtrip(self, smooth_series, rng):
        st, _ = build_storage(smooth_series)
        st2 = NeaTSStorage.from_bytes(st.to_bytes())
        assert np.array_equal(st2.decompress(), smooth_series)
        for k in rng.integers(0, len(smooth_series), 50).tolist():
            assert st2.access(k) == st.access(k)

    def test_bytes_roundtrip_bitvector_mode(self, smooth_series):
        st, _ = build_storage(smooth_series, rank_mode="bitvector")
        st2 = NeaTSStorage.from_bytes(st.to_bytes())
        assert st2.rank_mode == "bitvector"
        assert np.array_equal(st2.decompress(), smooth_series)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            NeaTSStorage.from_bytes(b"garbage!" + b"\x00" * 64)


class TestSizeAccounting:
    def test_size_bits_close_to_serialised(self, smooth_series):
        st, _ = build_storage(smooth_series)
        analytic = st.size_bits()
        actual = len(st.to_bytes()) * 8
        # The two count slightly different overheads (rank directories vs
        # plain arrays); they must agree within 2x.
        assert 0.5 <= analytic / actual <= 2.0

    def test_compresses_smooth_data(self, smooth_series):
        st, _ = build_storage(smooth_series, eps=(1.0, 7.0, 31.0, 127.0))
        assert st.size_bits() < 64 * len(smooth_series) * 0.5


class TestWidenedWidths:
    def test_widths_at_least_correction_bits(self, smooth_series):
        from repro.core.partition import correction_bits

        st, _ = build_storage(smooth_series)
        # every stored width >= the eps-derived base width can't be asserted
        # directly (widths may widen), but decoding exactness already proves
        # correctness; here we check B is consistent with O.
        lengths = np.diff(st._starts_list + [st.n])
        offsets = [0]
        for w, length in zip(st._widths_list, lengths):
            offsets.append(offsets[-1] + w * int(length))
        assert offsets == st._offsets_list
