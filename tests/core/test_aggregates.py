"""Unit tests for aggregate queries over compressed data (§VI extension)."""

import numpy as np
import pytest

from repro.core import AggregateIndex, Bounds, NeaTS


@pytest.fixture(scope="module")
def indexed():
    rng = np.random.default_rng(99)
    y = (2000 * np.sin(np.arange(3000) / 70) + rng.normal(0, 30, 3000)).astype(
        np.int64
    )
    c = NeaTS().compress(y)
    return y, c, AggregateIndex(c.storage)


class TestSum:
    def test_full_range(self, indexed):
        y, _, agg = indexed
        assert agg.sum(0, len(y)) == int(y.sum())

    @pytest.mark.parametrize("lo,hi", [(0, 1), (0, 100), (55, 2900),
                                       (1000, 1001), (2999, 3000)])
    def test_arbitrary_ranges(self, indexed, lo, hi):
        y, _, agg = indexed
        assert agg.sum(lo, hi) == int(y[lo:hi].sum())

    def test_empty_range(self, indexed):
        _, _, agg = indexed
        assert agg.sum(10, 10) == 0

    def test_fragment_aligned_ranges(self, indexed):
        y, c, agg = indexed
        starts = c.storage._starts_list
        if len(starts) >= 3:
            lo, hi = starts[1], starts[2]
            assert agg.sum(lo, hi) == int(y[lo:hi].sum())

    def test_sweep_random_ranges(self, indexed, rng):
        y, _, agg = indexed
        for _ in range(50):
            lo = int(rng.integers(0, len(y)))
            hi = int(rng.integers(lo, len(y) + 1))
            assert agg.sum(lo, hi) == int(y[lo:hi].sum())

    def test_bounds_checked(self, indexed):
        _, _, agg = indexed
        with pytest.raises(IndexError):
            agg.sum(-1, 5)
        with pytest.raises(IndexError):
            agg.sum(0, 10**9)


class TestMean:
    def test_matches_numpy(self, indexed):
        y, _, agg = indexed
        assert agg.mean(100, 2000) == pytest.approx(float(y[100:2000].mean()))

    def test_empty_raises(self, indexed):
        _, _, agg = indexed
        with pytest.raises(ValueError):
            agg.mean(5, 5)


class TestBounds:
    def test_min_bounds_contain_truth(self, indexed, rng):
        y, _, agg = indexed
        for _ in range(40):
            lo = int(rng.integers(0, len(y) - 1))
            hi = int(rng.integers(lo + 1, len(y) + 1))
            b = agg.min_bounds(lo, hi)
            assert float(y[lo:hi].min()) in b

    def test_max_bounds_contain_truth(self, indexed, rng):
        y, _, agg = indexed
        for _ in range(40):
            lo = int(rng.integers(0, len(y) - 1))
            hi = int(rng.integers(lo + 1, len(y) + 1))
            b = agg.max_bounds(lo, hi)
            assert float(y[lo:hi].max()) in b

    def test_whole_fragment_bounds_are_exact(self, indexed):
        y, c, agg = indexed
        starts = c.storage._starts_list
        lo = starts[0]
        hi = starts[1] if len(starts) > 1 else len(y)
        assert agg.min_bounds(lo, hi).width == 0
        assert agg.max_bounds(lo, hi).width == 0

    def test_bounds_object(self):
        b = Bounds(1.0, 3.0)
        assert 2.0 in b
        assert 0.0 not in b
        assert b.width == 2.0

    def test_empty_raises(self, indexed):
        _, _, agg = indexed
        with pytest.raises(ValueError):
            agg.min_bounds(7, 7)


class TestSpace:
    def test_index_is_small(self, indexed):
        _, c, agg = indexed
        assert agg.size_bits() < c.size_bits()
