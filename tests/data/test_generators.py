"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import DATASETS, dataset_names, load


class TestRegistry:
    def test_sixteen_datasets(self):
        assert len(DATASETS) == 16

    def test_paper_codes_present(self):
        expected = {"IT", "US", "ECG", "WD", "AP", "UK", "GE", "LAT", "LON",
                    "DP", "CT", "DU", "BT", "BW", "BM", "BP"}
        assert set(DATASETS) == expected

    def test_order_largest_first(self):
        names = dataset_names()
        sizes = [DATASETS[n].default_n for n in names]
        assert sizes[0] >= sizes[-1]

    def test_digits_match_paper(self):
        paper_digits = {"IT": 2, "US": 2, "ECG": 3, "WD": 2, "AP": 5, "UK": 1,
                        "GE": 3, "LAT": 4, "LON": 4, "DP": 3, "CT": 1,
                        "DU": 3, "BT": 9, "BW": 7, "BM": 5, "BP": 4}
        for name, digits in paper_digits.items():
            assert DATASETS[name].digits == digits, name

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError, match="known"):
            load("XX")


class TestGeneration:
    @pytest.mark.parametrize("name", list(DATASETS))
    def test_generates_int64_of_requested_length(self, name):
        y = load(name, n=500)
        assert y.dtype == np.int64
        assert len(y) == 500

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_deterministic(self, name):
        assert np.array_equal(load(name, n=300), load(name, n=300))

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_nonconstant(self, name):
        y = load(name, n=1000)
        assert int(y.max()) > int(y.min())

    def test_custom_seed_changes_output(self):
        a = load("US", n=300, seed=1)
        b = load("US", n=300, seed=2)
        assert not np.array_equal(a, b)

    def test_default_n_used(self):
        y = load("BP")
        assert len(y) == DATASETS["BP"].default_n


class TestCharacter:
    def test_wind_direction_in_range(self):
        y = load("WD", n=4000)
        degrees = y / 10.0**DATASETS["WD"].digits
        assert degrees.min() >= 0.0
        assert degrees.max() < 360.0

    def test_stock_prices_positive(self):
        for name in ("US", "UK", "GE", "BP"):
            assert load(name, n=2000).min() > 0

    def test_air_pressure_realistic(self):
        y = load("AP", n=2000)
        hpa = y / 10.0**DATASETS["AP"].digits
        assert 900 < hpa.mean() < 1100

    def test_trajectory_has_plateaus(self):
        y = load("LAT", n=5000)
        diffs = np.diff(y)
        # stationary stretches -> many near-zero diffs
        assert np.mean(np.abs(diffs) <= 2) > 0.2

    def test_ecg_has_spikes(self):
        y = load("ECG", n=4000).astype(np.float64)
        # QRS spikes: max much larger than the standard deviation
        assert y.max() > y.mean() + 4 * y.std()

    def test_pm10_bursts_decay(self):
        y = load("DU", n=6000).astype(np.float64)
        assert y.max() > 5 * np.median(y)

    def test_high_digit_datasets_noisy_low_bits(self):
        # BT (9 digits): low bits are essentially random -> weak compression.
        y = load("BT", n=2000)
        low = y & 0xFF
        assert len(np.unique(low)) > 200
