"""Unit tests for dataset I/O helpers."""

import numpy as np
import pytest

from repro.data import (
    read_binary,
    read_csv,
    scale_to_int,
    unscale_to_float,
    write_binary,
    write_csv,
)


class TestScaling:
    def test_scale_two_digits(self):
        values = np.array([1.23, -4.56])
        assert scale_to_int(values, 2).tolist() == [123, -456]

    def test_unscale_inverse(self):
        ints = np.array([123, -456], dtype=np.int64)
        assert unscale_to_float(ints, 2).tolist() == [1.23, -4.56]

    def test_zero_digits(self):
        assert scale_to_int(np.array([5.0]), 0).tolist() == [5]

    def test_roundtrip_random(self, rng):
        for digits in (0, 1, 3, 5):
            ints = rng.integers(-(10**8), 10**8, 200)
            floats = unscale_to_float(ints, digits)
            assert np.array_equal(scale_to_int(floats, digits), ints)


class TestCsv:
    def test_roundtrip(self, tmp_path, rng):
        values = rng.integers(-(10**6), 10**6, 300).astype(np.int64)
        path = tmp_path / "series.csv"
        write_csv(path, values, digits=3)
        assert np.array_equal(read_csv(path, digits=3), values)

    def test_format_has_fixed_precision(self, tmp_path):
        path = tmp_path / "series.csv"
        write_csv(path, np.array([12345], dtype=np.int64), digits=2)
        assert path.read_text().strip() == "123.45"

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "series.csv"
        path.write_text("1.5\n\n2.5\n")
        assert read_csv(path, digits=1).tolist() == [15, 25]


class TestBinary:
    def test_roundtrip(self, tmp_path, rng):
        values = rng.integers(-(10**12), 10**12, 500).astype(np.int64)
        path = tmp_path / "series.bin"
        write_binary(path, values, digits=4)
        out, digits = read_binary(path)
        assert np.array_equal(out, values)
        assert digits == 4

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 20)
        with pytest.raises(ValueError):
            read_binary(path)
