"""Unit tests for the lossy baselines: PLA and AA."""

import math

import numpy as np
import pytest

from repro.baselines import AaCompressor, PlaCompressor, validate_eps
from repro.baselines.aa import AaSegment, _family_bounds
from repro.core import NeaTSLossy


class TestEpsValidation:
    """All three lossy constructors share one eps contract: > 0 and finite."""

    @pytest.mark.parametrize("ctor", [PlaCompressor, AaCompressor, NeaTSLossy])
    @pytest.mark.parametrize(
        "eps", [0, 0.0, -1.0, math.nan, math.inf, -math.inf, "five", None]
    )
    def test_bad_eps_raises_consistently(self, ctor, eps):
        with pytest.raises(ValueError, match="positive finite error bound"):
            ctor(eps)

    @pytest.mark.parametrize("ctor", [PlaCompressor, AaCompressor, NeaTSLossy])
    def test_good_eps_coerced_to_float(self, ctor):
        assert ctor(3).eps == 3.0

    def test_validate_eps_helper(self):
        assert validate_eps(1) == 1.0
        with pytest.raises(ValueError):
            validate_eps(float("nan"))


class TestPla:
    @pytest.mark.parametrize("eps", [0.5, 5.0, 50.0])
    def test_error_bound(self, smooth_series, eps):
        series = PlaCompressor(eps).compress(smooth_series)
        assert series.max_error(smooth_series) <= eps + 1e-6

    def test_exact_line_one_segment(self):
        y = (4 * np.arange(500) - 17).astype(np.int64)
        series = PlaCompressor(1e-9).compress(y)
        assert series.num_segments == 1

    def test_more_eps_fewer_segments(self, smooth_series):
        tight = PlaCompressor(2.0).compress(smooth_series)
        loose = PlaCompressor(100.0).compress(smooth_series)
        assert loose.num_segments <= tight.num_segments

    def test_negative_eps_raises(self):
        with pytest.raises(ValueError):
            PlaCompressor(-1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            PlaCompressor(1.0).compress(np.array([], dtype=np.int64))

    def test_mape_and_ratio_positive(self, smooth_series):
        series = PlaCompressor(20.0).compress(smooth_series)
        assert series.compression_ratio() > 0
        assert series.mape(smooth_series) >= 0

    def test_access_matches_reconstruct(self, smooth_series, rng):
        series = PlaCompressor(20.0).compress(smooth_series)
        recon = series.reconstruct()
        for k in rng.integers(0, len(smooth_series), 50).tolist():
            assert series.access(int(k)) == pytest.approx(recon[k])
        with pytest.raises(IndexError):
            series.access(len(smooth_series))

    def test_decompress_is_the_approximation(self, smooth_series):
        series = PlaCompressor(20.0).compress(smooth_series)
        assert np.array_equal(series.decompress(), series.reconstruct())
        assert len(series) == len(smooth_series)


class TestAaFamilies:
    def test_linear_bounds(self):
        lo, hi = _family_bounds("linear", 10.0, 2.0, 16.0, 1.0)
        # theta must land f(x)=10+theta*2 within [15, 17]
        assert lo == pytest.approx(2.5)
        assert hi == pytest.approx(3.5)

    def test_quadratic_bounds(self):
        lo, hi = _family_bounds("quadratic", 10.0, 2.0, 18.0, 2.0)
        assert lo == pytest.approx(1.5)
        assert hi == pytest.approx(2.5)

    def test_exponential_bounds_positive_domain(self):
        assert _family_bounds("exponential", -1.0, 1.0, 5.0, 1.0) is None
        assert _family_bounds("exponential", 10.0, 1.0, 0.5, 1.0) is None
        lo, hi = _family_bounds("exponential", 10.0, 1.0, 20.0, 1.0)
        assert lo < hi

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            _family_bounds("cubic", 1.0, 1.0, 1.0, 1.0)


class TestAaSegment:
    def test_linear_evaluation(self):
        seg = AaSegment(0, 10, "linear", 5.0, 2.0)
        xs = np.array([1.0, 2.0, 3.0])
        assert seg.evaluate(xs).tolist() == [5.0, 7.0, 9.0]

    def test_exponential_evaluation(self):
        seg = AaSegment(0, 10, "exponential", 2.0, 0.5)
        out = seg.evaluate(np.array([1.0, 3.0]))
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(2.0 * np.exp(1.0))

    def test_anchor_hit_exactly(self):
        for fam in ("linear", "quadratic", "exponential"):
            seg = AaSegment(4, 20, fam, 7.0, 0.1)
            assert seg.evaluate(np.array([5.0]))[0] == pytest.approx(7.0)


class TestAaCompressor:
    @pytest.mark.parametrize("eps", [1.0, 20.0, 200.0])
    def test_error_bound(self, smooth_series, eps):
        series = AaCompressor(eps).compress(smooth_series)
        assert series.max_error(smooth_series) <= eps + 1e-6

    def test_segments_cover(self, smooth_series):
        series = AaCompressor(30.0).compress(smooth_series)
        assert series.segments[0].start == 0
        assert series.segments[-1].end == len(smooth_series)
        for a, b in zip(series.segments, series.segments[1:]):
            assert a.end == b.start

    def test_anchors_have_zero_error(self, smooth_series):
        series = AaCompressor(30.0).compress(smooth_series)
        recon = series.reconstruct()
        for seg in series.segments:
            assert recon[seg.start] == pytest.approx(float(smooth_series[seg.start]))

    def test_aa_typically_worse_than_pla(self, smooth_series):
        """The paper's §IV-B observation: AA's anchored heuristic loses to
        optimal PLA in compression despite its nonlinear families."""
        eps = 50.0
        aa = AaCompressor(eps).compress(smooth_series)
        pla = PlaCompressor(eps).compress(smooth_series)
        assert aa.num_segments >= pla.num_segments

    def test_negative_eps_raises(self):
        with pytest.raises(ValueError):
            AaCompressor(-0.5)

    def test_access_matches_reconstruct(self, smooth_series, rng):
        series = AaCompressor(30.0).compress(smooth_series)
        recon = series.reconstruct()
        for k in rng.integers(0, len(smooth_series), 50).tolist():
            assert series.access(int(k)) == pytest.approx(recon[k])
        with pytest.raises(IndexError):
            series.access(-1)
