"""Unit tests for Directly Addressable Codes."""

import numpy as np
import pytest

from repro.baselines import DacCompressor
from repro.baselines.dac import optimal_level_widths


class TestOptimalWidths:
    def test_uniform_small_values_one_level(self):
        lengths = np.full(1000, 4)
        widths = optimal_level_widths(lengths)
        assert widths[0] >= 4 or sum(widths) >= 4

    def test_widths_cover_max_length(self):
        lengths = np.array([3, 10, 40, 64])
        widths = optimal_level_widths(lengths)
        assert sum(widths) >= 64

    def test_skewed_distribution_multi_level(self):
        # 99% tiny values, 1% huge: the optimum uses a small first level.
        lengths = np.array([4] * 990 + [60] * 10)
        widths = optimal_level_widths(lengths)
        assert widths[0] <= 8

    def test_max_levels_respected(self):
        lengths = np.array([64] * 10)
        widths = optimal_level_widths(lengths, max_levels=3)
        assert len(widths) <= 3
        assert sum(widths) >= 64


class TestRoundTrip:
    def test_roundtrip(self, walk_series, rng):
        c = DacCompressor().compress(walk_series)
        assert np.array_equal(c.decompress(), walk_series)
        for k in rng.integers(0, len(walk_series), 60).tolist():
            assert c.access(k) == walk_series[k]

    def test_negative_values(self, rng):
        y = rng.integers(-(10**12), 10**12, 400).astype(np.int64)
        c = DacCompressor().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_zeros(self):
        y = np.zeros(100, dtype=np.int64)
        c = DacCompressor().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_spiky_distribution(self, spiky_series, rng):
        c = DacCompressor().compress(spiky_series)
        assert np.array_equal(c.decompress(), spiky_series)
        for k in rng.integers(0, len(spiky_series), 40).tolist():
            assert c.access(k) == spiky_series[k]

    def test_range_queries(self, walk_series):
        c = DacCompressor().compress(walk_series)
        for lo, hi in [(0, 64), (63, 65), (100, 700), (1400, 1500)]:
            assert np.array_equal(c.decompress_range(lo, hi), walk_series[lo:hi])

    def test_range_bounds(self, walk_series):
        c = DacCompressor().compress(walk_series)
        with pytest.raises(IndexError):
            c.decompress_range(0, len(walk_series) + 1)


class TestSpace:
    def test_small_values_compress_well(self, rng):
        y = rng.integers(-30, 30, 2000).astype(np.int64)
        c = DacCompressor().compress(y)
        # zigzag(30) fits in 6-7 bits; DAC should be < 15 bits/value.
        assert c.size_bits() / len(y) < 15

    def test_skewed_better_than_flat_width(self, spiky_series):
        c = DacCompressor().compress(spiky_series)
        # A flat encoding would need ~35 bits/value for the spikes.
        assert c.size_bits() / len(spiky_series) < 25
