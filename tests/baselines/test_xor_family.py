"""Unit tests for Gorilla, Chimp, and Chimp128."""

import numpy as np
import pytest

from repro.baselines import Chimp128Compressor, ChimpCompressor, GorillaCompressor
from repro.baselines.chimp import (
    _LZ_ROUND,
    _round_lz,
    chimp128_decode,
    chimp128_encode,
    chimp_decode,
    chimp_encode,
)
from repro.baselines.gorilla import _clz, _ctz, gorilla_decode, gorilla_encode
from repro.bits import BitReader, BitWriter

ALL = [GorillaCompressor, ChimpCompressor, Chimp128Compressor]


class TestBitHelpers:
    def test_clz(self):
        assert _clz(0) == 64
        assert _clz(1) == 63
        assert _clz(1 << 63) == 0
        assert _clz(0xFF) == 56

    def test_ctz(self):
        assert _ctz(0) == 64
        assert _ctz(1) == 0
        assert _ctz(1 << 63) == 63
        assert _ctz(0b1000) == 3

    def test_round_lz(self):
        assert _round_lz(0) == 0
        assert _round_lz(7) == 0
        assert _round_lz(8) == 8
        assert _round_lz(13) == 12
        assert _round_lz(31) == 24
        for v in _LZ_ROUND:
            assert _round_lz(v) == v


def _roundtrip_stream(encode, decode, values):
    w = BitWriter()
    encode(values, w)
    r = BitReader(w.getbuffer(), w.bit_length)
    return decode(r, len(values))


class TestStreamCodecs:
    @pytest.mark.parametrize(
        "encode,decode",
        [(gorilla_encode, gorilla_decode),
         (chimp_encode, chimp_decode),
         (chimp128_encode, chimp128_decode)],
        ids=["gorilla", "chimp", "chimp128"],
    )
    def test_roundtrip_patterns(self, encode, decode):
        patterns = [
            [5],
            [5, 5, 5, 5],                      # repeats -> zero XOR
            [1, 2, 3, 4, 5],                   # small changes
            [0, (1 << 64) - 1, 0],             # extreme flips
            list(range(1000, 1100)),
            [7, 7, 8, 7, 7, 9, 7],             # window matches for chimp128
        ]
        for values in patterns:
            assert _roundtrip_stream(encode, decode, values) == values

    @pytest.mark.parametrize(
        "encode,decode",
        [(gorilla_encode, gorilla_decode),
         (chimp_encode, chimp_decode),
         (chimp128_encode, chimp128_decode)],
        ids=["gorilla", "chimp", "chimp128"],
    )
    def test_roundtrip_random(self, encode, decode, rng):
        values = [int(v) for v in rng.integers(0, 1 << 63, 500, dtype=np.int64)]
        assert _roundtrip_stream(encode, decode, values) == values

    def test_chimp_exploits_trailing_zeros(self):
        # Values differing in high bits only -> XOR has many trailing zeros,
        # which is Chimp's specialised '01' path; ratio must beat raw.
        values = [(i % 7) << 50 for i in range(1, 500)]
        w = BitWriter()
        chimp_encode(values, w)
        assert w.bit_length < 64 * len(values) * 0.55


class TestCompressors:
    @pytest.mark.parametrize("cls", ALL)
    def test_roundtrip_and_access(self, cls, walk_series, rng):
        c = cls().compress(walk_series)
        assert np.array_equal(c.decompress(), walk_series)
        for k in rng.integers(0, len(walk_series), 40).tolist():
            assert c.access(k) == walk_series[k]

    @pytest.mark.parametrize("cls", ALL)
    def test_negative_values(self, cls, rng):
        y = rng.integers(-(10**9), 10**9, 700).astype(np.int64)
        c = cls().compress(y)
        assert np.array_equal(c.decompress(), y)

    @pytest.mark.parametrize("cls", ALL)
    def test_range_query(self, cls, walk_series):
        c = cls().compress(walk_series)
        assert np.array_equal(c.decompress_range(450, 1250), walk_series[450:1250])

    @pytest.mark.parametrize("cls", ALL)
    def test_block_boundaries(self, cls, rng):
        # Lengths around the 1000-value block size.
        for n in (999, 1000, 1001, 2000):
            y = rng.integers(-100, 100, n).astype(np.int64)
            c = cls().compress(y)
            assert np.array_equal(c.decompress(), y)
            assert c.access(n - 1) == y[n - 1]

    @pytest.mark.parametrize("cls", ALL)
    def test_constant_series_compresses_well(self, cls, constant_series):
        c = cls().compress(constant_series)
        assert c.size_bits() < 64 * len(constant_series) * 0.2

    def test_chimp128_beats_gorilla_on_periodic(self, rng):
        # A periodic signal re-visits values: the 128-window finds them.
        y = np.tile(rng.integers(0, 1000, 50), 20).astype(np.int64)
        g = GorillaCompressor().compress(y)
        c128 = Chimp128Compressor().compress(y)
        assert c128.size_bits() < g.size_bits()

    @pytest.mark.parametrize("cls", ALL)
    def test_access_out_of_range(self, cls, constant_series):
        c = cls().compress(constant_series)
        with pytest.raises(IndexError):
            c.access(len(constant_series))
