"""Unit tests for TSXor."""

import numpy as np
import pytest

from repro.baselines import TSXorCompressor
from repro.baselines.tsxor import _byte_spans, tsxor_decode, tsxor_encode


class TestByteSpans:
    def test_single_byte_span(self):
        xors = np.array([0xFF], dtype=np.uint64)
        spans, firsts = _byte_spans(xors)
        assert spans[0] == 1 and firsts[0] == 0

    def test_high_byte_span(self):
        xors = np.array([0xAB << 56], dtype=np.uint64)
        spans, firsts = _byte_spans(xors)
        assert spans[0] == 1 and firsts[0] == 7

    def test_multi_byte_span(self):
        xors = np.array([0x0102030000], dtype=np.uint64)  # bytes 2..4 set
        spans, firsts = _byte_spans(xors)
        assert firsts[0] == 2
        assert spans[0] == 3

    def test_full_span(self):
        xors = np.array([(1 << 63) | 1], dtype=np.uint64)
        spans, firsts = _byte_spans(xors)
        assert spans[0] == 8 and firsts[0] == 0


class TestStream:
    def test_roundtrip_simple(self):
        values = np.array([10, 10, 12, 500, 10], dtype=np.uint64)
        blob = tsxor_encode(values)
        assert tsxor_decode(blob, 5).tolist() == values.tolist()

    def test_exact_match_is_one_byte(self):
        values = np.array([42, 42], dtype=np.uint64)
        blob = tsxor_encode(values)
        # header(RAW)+8 bytes for first, 1 byte for the repeat
        assert len(blob) == 1 + 8 + 1

    def test_roundtrip_random(self, rng):
        values = rng.integers(0, 1 << 62, 600).astype(np.uint64)
        blob = tsxor_encode(values)
        assert tsxor_decode(blob, 600).tolist() == values.tolist()

    def test_window_wraps(self, rng):
        # More than 127 values forces window eviction.
        values = np.arange(400, dtype=np.uint64) * 3 + 5
        blob = tsxor_encode(values)
        assert tsxor_decode(blob, 400).tolist() == values.tolist()

    def test_similar_values_use_partial_xor(self):
        base = 0x123456789A
        values = np.array([base + i for i in range(50)], dtype=np.uint64)
        blob = tsxor_encode(values)
        # Much smaller than raw (9 bytes each).
        assert len(blob) < 9 * 50 * 0.6


class TestCompressor:
    def test_roundtrip(self, walk_series, rng):
        c = TSXorCompressor().compress(walk_series)
        assert np.array_equal(c.decompress(), walk_series)
        for k in rng.integers(0, len(walk_series), 30).tolist():
            assert c.access(k) == walk_series[k]

    def test_negative_values(self, rng):
        y = rng.integers(-(10**6), 10**6, 500).astype(np.int64)
        c = TSXorCompressor().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_range(self, walk_series):
        c = TSXorCompressor().compress(walk_series)
        assert np.array_equal(c.decompress_range(100, 1100), walk_series[100:1100])

    def test_repetitive_data_compresses(self, rng):
        y = np.tile(rng.integers(0, 50, 40), 25).astype(np.int64)
        c = TSXorCompressor().compress(y)
        assert c.size_bits() < 64 * len(y) * 0.35
