"""Unit tests for the general-purpose wrappers, PyLZ, and the block adapter."""

import numpy as np
import pytest

from repro.baselines import (
    GENERAL_PURPOSE,
    BlockwiseCompressor,
    ByteCompressor,
    Lz4LikeCompressor,
    SnappyLikeCompressor,
    XzCompressor,
    ZstdLikeCompressor,
)
from repro.baselines import pylz


class TestPyLZ:
    def test_empty(self):
        assert pylz.decompress(pylz.compress(b"")) == b""

    def test_tiny_input(self):
        for data in (b"a", b"ab", b"abcdefg"):
            assert pylz.decompress(pylz.compress(data)) == data

    def test_repetitive_compresses(self):
        data = b"abcdefgh" * 1000
        blob = pylz.compress(data)
        assert len(blob) < len(data) // 10
        assert pylz.decompress(blob) == data

    def test_random_bytes_roundtrip(self, rng):
        data = rng.integers(0, 256, 5000).astype(np.uint8).tobytes()
        assert pylz.decompress(pylz.compress(data)) == data

    def test_overlapping_match(self):
        # 'aaaa...' forces matches with offset < length (overlap copy).
        data = b"a" * 500
        assert pylz.decompress(pylz.compress(data)) == data

    def test_acceleration_trades_ratio(self):
        data = (b"pattern-x" * 300) + bytes(range(256)) * 4
        slow = pylz.compress(data, acceleration=1)
        fast = pylz.compress(data, acceleration=16)
        assert pylz.decompress(fast) == data
        assert len(slow) <= len(fast)

    def test_int64_series_bytes(self, rng):
        y = np.cumsum(rng.integers(-3, 4, 2000)).astype(np.int64)
        data = y.tobytes()
        assert pylz.decompress(pylz.compress(data)) == data

    def test_corrupt_stream_raises(self):
        blob = pylz.compress(b"hello world, hello world, hello world!!!")
        with pytest.raises((ValueError, IndexError)):
            pylz.decompress(blob[: len(blob) // 2])


class TestBlockwiseAdapter:
    def test_identity_codec(self, walk_series, rng):
        codec = ByteCompressor("identity", lambda b: b, lambda b: b)
        c = BlockwiseCompressor(codec, block_size=100).compress(walk_series)
        assert np.array_equal(c.decompress(), walk_series)
        for k in rng.integers(0, len(walk_series), 40).tolist():
            assert c.access(k) == walk_series[k]

    def test_block_count(self, walk_series):
        codec = ByteCompressor("identity", lambda b: b, lambda b: b)
        c = BlockwiseCompressor(codec, block_size=100).compress(walk_series)
        assert len(c._blocks) == (len(walk_series) + 99) // 100

    def test_size_includes_pointers(self, constant_series):
        codec = ByteCompressor("identity", lambda b: b, lambda b: b)
        c = BlockwiseCompressor(codec, block_size=100).compress(constant_series)
        assert c.size_bits() > 64 * len(c._blocks)

    def test_range_spanning_blocks(self, walk_series):
        codec = ByteCompressor("identity", lambda b: b, lambda b: b)
        c = BlockwiseCompressor(codec, block_size=128).compress(walk_series)
        assert np.array_equal(c.decompress_range(100, 900), walk_series[100:900])

    def test_empty_range(self, walk_series):
        codec = ByteCompressor("identity", lambda b: b, lambda b: b)
        c = BlockwiseCompressor(codec, block_size=128).compress(walk_series)
        assert len(c.decompress_range(5, 5)) == 0


class TestGeneralPurposeLineup:
    def test_five_compressors(self):
        lineup = GENERAL_PURPOSE()
        assert len(lineup) == 5
        assert {c.name for c in lineup} == {"Xz", "Brotli*", "Zstd*", "Lz4*", "Snappy*"}

    @pytest.mark.parametrize("cls", [XzCompressor, ZstdLikeCompressor,
                                     Lz4LikeCompressor, SnappyLikeCompressor])
    def test_roundtrip(self, cls, walk_series, rng):
        c = cls().compress(walk_series)
        assert np.array_equal(c.decompress(), walk_series)
        for k in rng.integers(0, len(walk_series), 20).tolist():
            assert c.access(k) == walk_series[k]

    def test_xz_beats_lz4_on_structure(self, smooth_series):
        xz = XzCompressor().compress(smooth_series)
        lz = Lz4LikeCompressor().compress(smooth_series)
        assert xz.size_bits() < lz.size_bits()
