"""Unit tests for LeCo and ALP."""

import numpy as np
import pytest

from repro.baselines import AlpCompressor, LeCoCompressor
from repro.baselines.leco import _fit_block


class TestLeCoRegression:
    def test_fit_exact_line(self):
        values = (5 * np.arange(50) + 3).astype(np.int64)
        slope, intercept, resid = _fit_block(values)
        assert slope == pytest.approx(5.0)
        assert np.all(np.abs(resid) <= 1)

    def test_fit_single_value(self):
        slope, intercept, resid = _fit_block(np.array([7], dtype=np.int64))
        assert slope == 0.0
        assert resid.tolist() == [0]


class TestLeCo:
    def test_roundtrip(self, walk_series, rng):
        c = LeCoCompressor().compress(walk_series)
        assert np.array_equal(c.decompress(), walk_series)
        for k in rng.integers(0, len(walk_series), 60).tolist():
            assert c.access(k) == walk_series[k]

    def test_linear_data_near_free(self):
        y = (9 * np.arange(4000) + 100).astype(np.int64)
        c = LeCoCompressor().compress(y)
        assert c.size_bits() / len(y) < 3  # residuals ~0 bits + block headers

    def test_merging_reduces_blocks(self):
        y = (2 * np.arange(4000)).astype(np.int64)
        few = LeCoCompressor(initial_block=128, merge_passes=3).compress(y)
        none = LeCoCompressor(initial_block=128, merge_passes=0).compress(y)
        assert len(few._blocks) <= len(none._blocks)

    def test_range_query(self, walk_series):
        c = LeCoCompressor().compress(walk_series)
        assert np.array_equal(c.decompress_range(77, 1234), walk_series[77:1234])

    def test_negative_values(self, rng):
        y = rng.integers(-(10**9), 0, 600).astype(np.int64)
        c = LeCoCompressor().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_short_series(self):
        y = np.array([5, -3, 8], dtype=np.int64)
        c = LeCoCompressor().compress(y)
        assert np.array_equal(c.decompress(), y)


class TestAlp:
    def test_roundtrip_two_digits(self, rng):
        y = rng.integers(-(10**6), 10**6, 3000).astype(np.int64)
        c = AlpCompressor(digits=2).compress(y)
        assert np.array_equal(c.decompress(), y)

    @pytest.mark.parametrize("digits", [0, 1, 3, 5, 7])
    def test_roundtrip_various_digits(self, digits, rng):
        y = rng.integers(-(10**7), 10**7, 1200).astype(np.int64)
        c = AlpCompressor(digits=digits).compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_access_decodes_block(self, rng):
        y = rng.integers(0, 10**5, 2500).astype(np.int64)
        c = AlpCompressor(digits=2).compress(y)
        for k in rng.integers(0, 2500, 50).tolist():
            assert c.access(k) == y[k]

    def test_range_query(self, rng):
        y = rng.integers(0, 10**5, 3000).astype(np.int64)
        c = AlpCompressor(digits=3).compress(y)
        assert np.array_equal(c.decompress_range(900, 2100), y[900:2100])

    def test_low_precision_beats_raw(self, rng):
        # 2-digit decimals: ALP packs the small pseudodecimal integers.
        y = rng.integers(0, 10**4, 4096).astype(np.int64)
        c = AlpCompressor(digits=2).compress(y)
        assert c.size_bits() < 64 * len(y) * 0.5

    def test_negative_digits_raises(self):
        with pytest.raises(ValueError):
            AlpCompressor(digits=-1)

    def test_irregular_values_become_exceptions(self, rng):
        # Values with 9 fractional digits at digits=2 scaling still round-trip
        # (handled by the exception path).
        y = rng.integers(0, 2**55, 1100).astype(np.int64)
        c = AlpCompressor(digits=2).compress(y)
        assert np.array_equal(c.decompress(), y)
