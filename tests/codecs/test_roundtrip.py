"""Serialization round-trips for every registered codec, plus error cases.

The contract under test: for any codec id in ``available_codecs()``,
``from_bytes(to_bytes(c))`` and ``repro.open(repro.save(...))`` reproduce a
compressed object with bit-exact ``decompress()``, identical ``access()``
answers, and identical ``size_bits()``.
"""

import struct
import zlib

import numpy as np
import pytest

import repro
from repro.baselines.base import Compressed
from repro.codecs import (
    available_codecs,
    codec_spec,
    get_codec,
    open_archive,
    register_codec,
    save,
    unregister_codec,
)
from repro.codecs.container import ARCHIVE_MAGIC
from repro.codecs.serialize import read_frame

LOSSLESS_IDS = {
    "neats", "leats", "sneats",
    "gorilla", "chimp", "chimp128", "tsxor", "dac", "leco", "alp",
    "xz", "zstd", "lz4", "snappy", "brotli",
}
LOSSY_IDS = {"neats_l", "pla", "aa"}
EXPECTED_IDS = LOSSLESS_IDS | LOSSY_IDS

DIGITS = 2
EPS = 8.0  # error bound handed to the lossy codecs


def _params(cid):
    spec = codec_spec(cid)
    params = {"digits": DIGITS} if spec.needs_digits else {}
    if spec.lossy:
        params["eps"] = EPS
    return params


@pytest.fixture(scope="module")
def series():
    """1500 points: spans multiple block-wise blocks and >1 ALP block."""
    rng = np.random.default_rng(99)
    y = 900 * np.sin(np.arange(1500) / 35) + np.cumsum(rng.integers(-4, 5, 1500))
    return y.astype(np.int64)


@pytest.fixture(scope="module")
def compressed_by_codec(series):
    """Compress once per codec and share across tests (NeaTS is not free)."""
    return {
        cid: repro.compress(series, codec=cid, **_params(cid))
        for cid in available_codecs()
    }


class TestRegistry:
    def test_lineup_complete(self):
        assert set(available_codecs()) == EXPECTED_IDS

    def test_capability_flags(self):
        assert codec_spec("neats").native_random_access
        assert codec_spec("dac").native_random_access
        assert not codec_spec("gorilla").native_random_access
        assert codec_spec("alp").needs_digits
        assert {c for c in available_codecs() if codec_spec(c).lossy} == LOSSY_IDS
        for cid in LOSSY_IDS:
            assert codec_spec(cid).required_params == ("eps",)
            assert codec_spec(cid).load_native is not None
        assert not any(codec_spec(c).lossy for c in LOSSLESS_IDS)

    def test_unknown_codec_raises(self):
        with pytest.raises(ValueError, match="unknown codec"):
            get_codec("gzip")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_codec("neats")(lambda: None)

    def test_invalid_id_raises(self):
        with pytest.raises(ValueError, match="invalid codec id"):
            register_codec("Not-An-Id")(lambda: None)

    def test_custom_codec_registers_and_roundtrips(self, series):
        from repro.baselines.gorilla import GorillaCompressor

        register_codec("tinygorilla", description="gorilla, small blocks")(
            lambda block_size=64: GorillaCompressor(block_size)
        )
        try:
            c = repro.compress(series, codec="tinygorilla")
            assert c.codec_id == "tinygorilla"
            d = Compressed.from_bytes(c.to_bytes())
            assert np.array_equal(d.decompress(), series)
        finally:
            unregister_codec("tinygorilla")

    def test_provenance_attached(self, compressed_by_codec):
        for cid, c in compressed_by_codec.items():
            assert c.codec_id == cid
            assert c.codec_params == _params(cid)

    def test_slotted_compressor_usable_as_factory(self, series):
        """get_codec wraps instead of monkey-patching the instance, so
        __slots__-bearing (or frozen) compressor classes work as factories."""
        from repro.baselines.gorilla import GorillaCompressor

        class _Slotted:
            __slots__ = ("block_size",)
            name = "slotted"

            def __init__(self, block_size=64):
                self.block_size = block_size

            def compress(self, values):
                return GorillaCompressor(self.block_size).compress(values)

        register_codec("slotted", description="slots test")(_Slotted)
        try:
            comp = get_codec("slotted", block_size=128)
            c = comp.compress(series)
            assert c.codec_id == "slotted"
            assert c.codec_params == {"block_size": 128}
            # attribute access delegates to the wrapped compressor
            assert comp.name == "slotted" and comp.block_size == 128
            assert np.array_equal(
                Compressed.from_bytes(c.to_bytes()).decompress(), series
            )
        finally:
            unregister_codec("slotted")


@pytest.mark.parametrize("cid", sorted(EXPECTED_IDS))
class TestFrameRoundTrip:
    def test_frame_is_self_describing(self, cid, compressed_by_codec):
        frame = read_frame(compressed_by_codec[cid].to_bytes())
        assert frame.codec_id == cid
        assert frame.n == 1500


# Bit-exactness is the *lossless* contract; the lossy equivalents (identical
# approximation, preserved eps) live in tests/codecs/test_lossy_codecs.py.
@pytest.mark.parametrize("cid", sorted(LOSSLESS_IDS))
class TestLosslessFrameRoundTrip:
    def test_preserves_queries_and_size(self, cid, series, compressed_by_codec):
        c = compressed_by_codec[cid]
        d = Compressed.from_bytes(c.to_bytes())
        assert np.array_equal(d.decompress(), series)
        assert d.size_bits() == c.size_bits()
        for k in (0, 1, len(series) // 2, len(series) - 1):
            assert d.access(k) == c.access(k) == series[k]
        lo, hi = 400, 1200
        assert np.array_equal(d.decompress_range(lo, hi), series[lo:hi])

    def test_archive_roundtrip(self, cid, series, compressed_by_codec, tmp_path):
        path = tmp_path / f"{cid}.rpac"
        nbytes = save(path, compressed_by_codec[cid], digits=DIGITS)
        assert path.stat().st_size == nbytes
        archive = open_archive(path)
        assert archive.codec_id == cid
        assert archive.digits == DIGITS
        assert np.array_equal(archive.decompress(), series)
        assert archive.size_bits() == compressed_by_codec[cid].size_bits()
        assert archive.access(1234) == series[1234]


class TestCompressionRatioIsO1:
    def test_no_decompress_needed(self, series):
        c = repro.compress(series, codec="gorilla")
        c.decompress = None  # would explode if the metric decompressed
        assert 0 < c.compression_ratio() < 2
        assert len(c) == len(series)

    def test_explicit_n_still_honoured(self, series):
        c = repro.compress(series, codec="gorilla")
        assert c.compression_ratio(n=2 * len(series)) == pytest.approx(
            c.compression_ratio() / 2
        )


class TestNativeLoadSetsN:
    """load_compressed must propagate frame.n so loaded objects stay O(1)."""

    def test_loaded_native_knows_n_without_decompressing(self, series):
        c = repro.compress(series, codec="gorilla")
        d = Compressed.from_bytes(c.to_bytes())
        calls = []
        d.decompress = lambda: calls.append(1)  # any decompress would be O(n)
        assert len(d) == len(series)
        assert 0 < d.compression_ratio() < 2
        assert calls == []

    def test_loader_that_skips_n_is_fixed_up(self, series):
        """A native loader that never sets _n must not force an O(n) len()."""
        calls = []

        class _Opaque(Compressed):
            payload_is_native = True

            def __init__(self, values):
                self._values = np.asarray(values, dtype=np.int64)

            def size_bits(self):
                return 64 * len(self._values)

            def decompress(self):
                calls.append(1)
                return self._values

            def access(self, k):
                return int(self._values[k])

            def to_payload(self):
                return self._values.tobytes()

        class _OpaqueCompressor:
            def compress(self, values):
                return _Opaque(values)

        register_codec(
            "opaque",
            load_native=lambda payload, params: _Opaque(
                np.frombuffer(payload, dtype=np.int64)
            ),
        )(_OpaqueCompressor)
        try:
            c = get_codec("opaque").compress(series)
            frame = c.to_bytes()
            calls.clear()  # the writer may decompress; the loader must not
            d = Compressed.from_bytes(frame)
            assert d._n == len(series)
            assert len(d) == len(series)
            assert d.compression_ratio() == 1.0
            assert calls == []  # neither len() nor the ratio decompressed
        finally:
            unregister_codec("opaque")

    def test_native_header_count_mismatch_raises(self, series):
        from repro.codecs.serialize import KIND_NATIVE, write_frame

        c = repro.compress(series, codec="gorilla")
        frame = write_frame("gorilla", {}, len(series) + 7, KIND_NATIVE,
                            c.to_payload())
        with pytest.raises(ValueError, match="header says"):
            Compressed.from_bytes(frame)

    def test_values_path_also_records_n(self, series):
        c = repro.compress(series, codec="dac")  # values-fallback codec
        d = Compressed.from_bytes(c.to_bytes())
        assert d._n == len(series)


class TestErrorCases:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rpac"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 64)
        with pytest.raises(ValueError, match="not a repro archive"):
            open_archive(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.rpac"
        path.write_bytes(ARCHIVE_MAGIC[:4])
        with pytest.raises(ValueError, match="not a repro archive"):
            open_archive(path)

    def test_truncated_payload(self, tmp_path, series):
        path = tmp_path / "trunc.rpac"
        save(path, repro.compress(series, codec="gorilla"))
        blob = path.read_bytes()
        path.write_bytes(blob[:-20])
        with pytest.raises(ValueError, match="truncated"):
            open_archive(path)

    def test_corrupt_payload_fails_checksum(self, tmp_path, series):
        path = tmp_path / "flip.rpac"
        save(path, repro.compress(series, codec="zstd"))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload bit, keep lengths intact
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="checksum"):
            open_archive(path)

    def test_unknown_codec_in_frame(self, tmp_path, series):
        from repro.codecs.serialize import KIND_VALUES, encode_values, write_frame

        frame = write_frame("nope", {}, len(series), KIND_VALUES,
                            encode_values(series))
        path = tmp_path / "nope.rpac"
        header = struct.pack("<8siIQ", ARCHIVE_MAGIC, 0, zlib.crc32(frame),
                             len(frame))
        path.write_bytes(header + frame)
        with pytest.raises(ValueError, match="unknown codec"):
            open_archive(path)

    def test_frame_value_count_mismatch(self, series):
        from repro.codecs.serialize import KIND_VALUES, encode_values, write_frame

        frame = write_frame("gorilla", {}, len(series) + 1, KIND_VALUES,
                            encode_values(series))
        with pytest.raises(ValueError, match="header says"):
            Compressed.from_bytes(frame)

    def test_to_bytes_without_provenance(self, series):
        from repro.baselines.gorilla import GorillaCompressor

        c = GorillaCompressor().compress(series)  # bypasses the registry
        with pytest.raises(ValueError, match="no codec id"):
            c.to_bytes()


class TestTieredStorePersistence:
    def test_snapshot_roundtrip(self, series):
        store = repro.TieredStore(seal_threshold=256, hot_codec="gorilla",
                                  cold_codec="leats")
        store.extend(series[:1000])
        store.consolidate()
        store.extend(series[1000:])
        restored = repro.TieredStore.from_bytes(store.to_bytes())
        assert np.array_equal(restored.decompress(), series)
        assert restored.tier_report() == store.tier_report()

    def test_snapshot_bit_rot_fails_loudly(self, series):
        store = repro.TieredStore(seal_threshold=256)
        store.extend(series)
        blob = bytearray(store.to_bytes())
        blob[len(blob) // 2] ^= 0x10
        with pytest.raises(ValueError, match="checksum"):
            repro.TieredStore.from_bytes(bytes(blob))

    def test_instance_codecs_cannot_persist(self, series):
        from repro.baselines.gorilla import GorillaCompressor

        store = repro.TieredStore(seal_threshold=256,
                                  hot_compressor=GorillaCompressor())
        store.extend(series)
        with pytest.raises(ValueError, match="codec ids"):
            store.to_bytes()


class TestStarImportDoesNotShadowOpen:
    def test_open_not_in_all(self):
        assert "open" not in repro.__all__
        assert repro.open is repro.open_archive  # attribute stays available


class TestLegacyFormat:
    def test_seed_cli_archive_still_opens(self, tmp_path, series):
        compressed = repro.NeaTS().compress(series)
        blob = (b"NTSF0001" + struct.pack("<i", 3)
                + compressed.storage.to_bytes())
        path = tmp_path / "old.neats"
        path.write_bytes(blob)
        archive = open_archive(path)
        assert archive.codec_id == "neats"
        assert archive.digits == 3
        assert np.array_equal(archive.decompress(), series)
        assert archive.access(42) == series[42]


class TestCliAnyCodec:
    def test_compress_info_access_decompress_gorilla(self, tmp_path, series):
        from repro.cli import main
        from repro.data import read_csv, write_csv

        csv_in = tmp_path / "in.csv"
        write_csv(csv_in, series, digits=DIGITS)
        archive = tmp_path / "out.rpac"
        csv_out = tmp_path / "out.csv"
        assert main(["compress", str(csv_in), str(archive),
                     "--codec", "gorilla", "--digits", str(DIGITS)]) == 0
        assert main(["info", str(archive)]) == 0
        assert main(["access", str(archive), "0", "749"]) == 0
        assert main(["decompress", str(archive), str(csv_out)]) == 0
        assert np.array_equal(read_csv(csv_out, DIGITS), series)

    def test_info_reports_codec(self, tmp_path, series, capsys):
        from repro.cli import main
        from repro.data import write_csv

        csv_in = tmp_path / "in.csv"
        write_csv(csv_in, series, digits=0)
        archive = tmp_path / "out.rpac"
        main(["compress", str(csv_in), str(archive), "--codec", "tsxor"])
        capsys.readouterr()
        main(["info", str(archive)])
        out = capsys.readouterr().out
        assert "tsxor" in out
