"""Native frame payloads for DAC, LeCo, and ALP.

The contract: these codecs now serialise their own byte layouts
(``KIND_NATIVE``), loading is a direct parse with **no compressor call**,
and frames from before the change (the generic values fallback) still load
and answer identically.
"""

import numpy as np
import pytest

import repro
from repro.baselines.alp import AlpCompressor
from repro.baselines.base import Compressed
from repro.baselines.dac import DacCompressor
from repro.baselines.leco import LeCoCompressor
from repro.codecs.serialize import (
    KIND_NATIVE,
    KIND_VALUES,
    encode_values,
    read_frame,
    write_frame,
)

CODECS = {
    "dac": (DacCompressor, {}),
    "leco": (LeCoCompressor, {}),
    "alp": (AlpCompressor, {"digits": 2}),
}


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(5)
    y = 700 * np.sin(np.arange(4000) / 90) + np.cumsum(rng.integers(-5, 6, 4000))
    return y.astype(np.int64)


@pytest.fixture(scope="module")
def compressed(series):
    return {
        cid: repro.compress(series, codec=cid, **params)
        for cid, (_, params) in CODECS.items()
    }


@pytest.mark.parametrize("cid", sorted(CODECS))
class TestNativeFrames:
    def test_emits_native_kind(self, cid, compressed):
        assert read_frame(compressed[cid].to_bytes()).kind == KIND_NATIVE

    def test_roundtrip_bit_identical(self, cid, series, compressed):
        frame = compressed[cid].to_bytes()
        loaded = Compressed.from_bytes(frame)
        assert loaded.to_bytes() == frame
        assert np.array_equal(loaded.decompress(), series)

    def test_load_calls_no_compressor(self, cid, compressed, monkeypatch):
        """A native load must never re-run compression."""
        cls, _ = CODECS[cid]

        def boom(self, values):
            raise AssertionError(f"{cid}: native load invoked compress()")

        monkeypatch.setattr(cls, "compress", boom)
        loaded = Compressed.from_bytes(compressed[cid].to_bytes())
        assert len(loaded) == len(compressed[cid])

    def test_old_values_fallback_frame_still_loads(self, cid, series, compressed):
        """Frames written before native payloads existed must keep working,
        and answer exactly like a native load."""
        c = compressed[cid]
        old_frame = write_frame(
            cid, c.codec_params or {}, len(series), KIND_VALUES,
            encode_values(series),
        )
        old = Compressed.from_bytes(old_frame)
        new = Compressed.from_bytes(c.to_bytes())
        assert np.array_equal(old.decompress(), new.decompress())
        assert old.size_bits() == new.size_bits() == c.size_bits()
        for k in (0, 1, len(series) // 3, len(series) - 1):
            assert old.access(k) == new.access(k) == series[k]
        lo, hi = 500, 3200
        assert np.array_equal(
            old.decompress_range(lo, hi), new.decompress_range(lo, hi)
        )

    def test_truncated_native_payload_raises(self, cid, compressed):
        frame = read_frame(compressed[cid].to_bytes())
        chopped = bytes(frame.payload)[:-7]
        rewrapped = write_frame(
            cid, frame.params, frame.n, KIND_NATIVE, chopped
        )
        with pytest.raises(ValueError, match="corrupt|truncated"):
            Compressed.from_bytes(rewrapped)


class TestAlpSpecifics:
    def test_patches_survive_the_native_frame(self):
        """Values beyond double precision use the patch table; it must persist."""
        y = np.array([2**60 + 3, 5, -(2**61) + 7, 123456], dtype=np.int64)
        c = repro.compress(y, codec="alp", digits=0)
        assert c._patches  # the guard must have kicked in for this input
        loaded = Compressed.from_bytes(c.to_bytes())
        assert loaded._patches == c._patches
        assert np.array_equal(loaded.decompress(), y)
        assert loaded.access(0) == y[0]


class TestDacSpecifics:
    def test_single_level_series(self):
        """Tiny uniform values: one DAC level, no bitmaps."""
        y = np.ones(100, dtype=np.int64)
        c = repro.compress(y, codec="dac")
        loaded = Compressed.from_bytes(c.to_bytes())
        assert np.array_equal(loaded.decompress(), y)
        assert loaded.to_bytes() == c.to_bytes()
