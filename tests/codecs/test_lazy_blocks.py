"""Per-block lazy decode: point/range queries touch only their block(s).

The XOR-family codecs store independent blocks of (at most) 1000 values.
On a lazily-opened archive, ``values()[k]`` / ``access`` / short
``decompress_range`` calls must decode exactly the touched block(s) —
counted by the payload object's ``blocks_decoded`` — and the per-archive
block cache must absorb repeated hits.
"""

import numpy as np
import pytest

import repro
from repro.codecs import open_archive, save

N = 5_500  # six blocks: five full, one ragged


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(23)
    return np.cumsum(rng.integers(-9, 10, N)).astype(np.int64)


@pytest.fixture(params=["gorilla", "chimp", "chimp128", "tsxor"])
def lazy(request, series, tmp_path_factory):
    path = tmp_path_factory.mktemp("blk") / f"{request.param}.rpac"
    save(path, repro.compress(series, codec=request.param), digits=1)
    with open_archive(path, lazy=True) as archive:
        yield archive


class TestDecodeCounter:
    def test_point_access_decodes_one_block(self, lazy, series):
        assert lazy.access(1500) == series[1500]
        assert lazy.compressed.blocks_decoded == 1

    def test_same_block_hits_cache(self, lazy, series):
        for k in (2000, 2500, 2999):
            assert lazy.access(k) == series[k]
        assert lazy.compressed.blocks_decoded == 1

    def test_two_block_range_decodes_two(self, lazy, series):
        got = lazy.decompress_range(900, 1100)
        assert np.array_equal(got, series[900:1100])
        assert lazy.compressed.blocks_decoded == 2

    def test_values_indexing_is_block_lazy(self, lazy, series):
        values = lazy.values()
        assert values is lazy.values()
        assert values[4321] == series[4321] / 10.0
        assert lazy.compressed.blocks_decoded == 1
        got = lazy.values()[100:1200]
        assert np.allclose(got, series[100:1200] / 10.0)
        assert lazy.compressed.blocks_decoded == 3

    def test_last_ragged_block(self, lazy, series):
        assert lazy.access(N - 1) == series[N - 1]
        assert lazy.compressed.blocks_decoded == 1

    def test_full_decompress_counts_all_blocks(self, lazy, series):
        assert np.array_equal(lazy.decompress(), series)
        assert lazy.compressed.blocks_decoded == 6

    def test_cache_eviction_keeps_answers_right(self, lazy, series):
        # Sweep more distinct blocks than the cache holds, then revisit.
        for k in range(0, N, 1000):
            assert lazy.access(k) == series[k]
        assert lazy.access(0) == series[0]
        assert lazy.access(N - 1) == series[N - 1]
