"""The appendable multi-frame container (``RPAL0001``) and the save fixes.

Contract (see :mod:`repro.codecs.container`): ``append(values)`` is one
fsync'd tail record; ``open_archive`` auto-detects the magic in both modes
and serves the records as one logical series with per-record crc checks
(deferred to first decode of each record when lazy); a crash can only tear
the final record, which openers skip and the next writer truncates;
``seal()`` compacts to a one-shot ``RPAC0001`` archive identical to
one-shot compression of the concatenated input.
"""

import numpy as np
import pytest

import repro
from repro.codecs import open_archive, save
from repro.codecs.container import (
    APPEND_MAGIC,
    ARCHIVE_MAGIC,
    AppendableArchive,
    append_open,
)

DIGITS = 2


@pytest.fixture
def batches(rng):
    sizes = (900, 2500, 64, 1300)
    return [
        (300 * np.sin(np.arange(n) / 40) + np.cumsum(rng.integers(-3, 4, n)))
        .astype(np.int64)
        for n in sizes
    ]


@pytest.fixture
def full(batches):
    return np.concatenate(batches)


@pytest.fixture
def log_path(tmp_path, batches):
    path = tmp_path / "stream.rpal"
    log = AppendableArchive.create(path, codec="gorilla", digits=DIGITS)
    for batch in batches:
        log.append(batch)
    return path


class TestAppendRoundTrip:
    @pytest.mark.parametrize("lazy", [False, True])
    def test_reopen_matches_concatenated_input(self, log_path, batches, full, lazy):
        archive = open_archive(log_path, lazy=lazy)
        assert archive.codec_id == "gorilla"
        assert archive.digits == DIGITS
        assert len(archive) == len(full)
        assert archive.compressed.num_runs == len(batches)
        assert np.array_equal(archive.decompress(), full)
        for k in (0, 899, 900, len(full) - 1):
            assert archive.access(k) == full[k]
        # ranges crossing record boundaries
        assert np.array_equal(
            archive.decompress_range(850, 3500), full[850:3500]
        )
        assert np.array_equal(archive.values(), full / 10.0**DIGITS)

    def test_matches_one_shot_compression(self, log_path, full):
        """N appends must reopen to the same series as one-shot compression,
        and compact to the identical single frame."""
        archive = open_archive(log_path)
        one_shot = repro.compress(full, codec="gorilla")
        assert np.array_equal(archive.decompress(), one_shot.decompress())
        assert archive.compressed.to_bytes() == one_shot.to_bytes()

    def test_append_returns_running_total(self, tmp_path, batches):
        log = AppendableArchive.create(tmp_path / "s.rpal", codec="gorilla")
        total = 0
        for batch in batches:
            total += len(batch)
            assert log.append(batch) == total
        assert len(log) == total
        assert log.num_records == len(batches)

    def test_empty_append_is_a_noop(self, tmp_path):
        log = AppendableArchive.create(tmp_path / "s.rpal", codec="gorilla")
        log.append(np.arange(10, dtype=np.int64))
        assert log.append(np.empty(0, dtype=np.int64)) == 10
        assert log.num_records == 1
        assert len(open_archive(tmp_path / "s.rpal")) == 10

    def test_writer_reopen_resumes(self, log_path, batches, full):
        log = AppendableArchive.open(log_path)
        assert len(log) == len(full)
        assert log.num_records == len(batches)
        assert log.digits == DIGITS
        more = np.arange(37, dtype=np.int64)
        log.append(more)
        archive = open_archive(log_path, lazy=True)
        assert np.array_equal(archive.decompress(), np.concatenate([full, more]))

    def test_non_1d_append_rejected(self, tmp_path):
        log = AppendableArchive.create(tmp_path / "s.rpal", codec="gorilla")
        with pytest.raises(ValueError, match="1-D"):
            log.append(np.zeros((3, 3)))


class TestAppendOpenFacade:
    def test_creates_then_resumes(self, tmp_path):
        path = tmp_path / "s.rpal"
        log = repro.append_open(path, codec="zstd", digits=1)
        log.append(np.arange(100, dtype=np.int64))
        again = repro.append_open(path)
        assert again.codec_id == "zstd"
        assert again.digits == 1
        again.append(np.arange(100, 200, dtype=np.int64))
        assert np.array_equal(
            open_archive(path).decompress(), np.arange(200)
        )

    def test_codec_conflict_rejected(self, tmp_path):
        path = tmp_path / "s.rpal"
        repro.append_open(path, codec="gorilla").append([1, 2, 3])
        with pytest.raises(ValueError, match="created with codec"):
            repro.append_open(path, codec="zstd")

    def test_digits_conflict_rejected(self, tmp_path):
        path = tmp_path / "s.rpal"
        repro.append_open(path, codec="gorilla", digits=2).append([1, 2, 3])
        with pytest.raises(ValueError, match="mix scales"):
            repro.append_open(path, digits=3)
        # matching digits — or leaving them unspecified — resumes fine
        assert repro.append_open(path, digits=2).digits == 2
        assert repro.append_open(path).digits == 2

    def test_params_conflict_rejected(self, tmp_path):
        path = tmp_path / "s.rpal"
        repro.append_open(path, codec="zstd", level=3).append([1, 2, 3])
        with pytest.raises(ValueError, match="params"):
            repro.append_open(path, codec="zstd", level=9)

    def test_lossy_codec_rejected_at_create(self, tmp_path):
        with pytest.raises(ValueError, match="lossless"):
            AppendableArchive.create(tmp_path / "s.rpal", codec="pla", eps=1.0)

    def test_create_refuses_existing_file(self, tmp_path, log_path):
        with pytest.raises(ValueError, match="already exists"):
            AppendableArchive.create(log_path, codec="gorilla")

    def test_sealed_archive_cannot_be_appended(self, tmp_path, full):
        path = tmp_path / "sealed.rpac"
        save(path, repro.compress(full, codec="gorilla"))
        with pytest.raises(ValueError, match="one-shot"):
            AppendableArchive.open(path)


class TestTornTail:
    """A crash mid-append tears only the final record; sealed ones survive."""

    @pytest.mark.parametrize("cut", [1, 10, 200])
    @pytest.mark.parametrize("lazy", [False, True])
    def test_torn_final_record_skipped(self, log_path, batches, cut, lazy):
        blob = log_path.read_bytes()
        log_path.write_bytes(blob[:-cut])
        archive = open_archive(log_path, lazy=lazy)
        sealed = np.concatenate(batches[:-1])
        assert len(archive) == len(sealed)
        assert archive.compressed.num_runs == len(batches) - 1
        assert np.array_equal(archive.decompress(), sealed)
        assert archive.compressed.truncated_bytes > 0

    def test_tear_inside_record_header(self, log_path, batches):
        """Fewer than a record header's bytes after the sealed records."""
        blob = log_path.read_bytes()
        sizes = _record_ends(log_path, batches)
        log_path.write_bytes(blob[: sizes[-2] + 7])  # 7 bytes of torn header
        archive = open_archive(log_path)
        assert np.array_equal(
            archive.decompress(), np.concatenate(batches[:-1])
        )

    def test_append_after_tear_truncates_and_continues(self, log_path, batches):
        blob = log_path.read_bytes()
        log_path.write_bytes(blob[:-33])
        log = AppendableArchive.open(log_path)
        sealed = np.concatenate(batches[:-1])
        assert len(log) == len(sealed)
        # the torn bytes are gone before the new record lands
        assert log_path.stat().st_size < len(blob) - 33
        more = np.arange(50, dtype=np.int64)
        log.append(more)
        archive = open_archive(log_path, lazy=True)
        assert archive.compressed.truncated_bytes == 0
        assert np.array_equal(
            archive.decompress(), np.concatenate([sealed, more])
        )

    def test_header_only_archive_is_empty(self, tmp_path):
        path = tmp_path / "s.rpal"
        AppendableArchive.create(path, codec="gorilla")
        archive = open_archive(path)
        assert len(archive) == 0
        assert archive.compressed.num_runs == 0
        assert np.array_equal(archive.decompress(), np.empty(0, dtype=np.int64))

    def test_truncated_header_raises(self, tmp_path, log_path):
        bad = tmp_path / "bad.rpal"
        bad.write_bytes(log_path.read_bytes()[:10])
        with pytest.raises(ValueError, match="truncated appendable"):
            open_archive(bad)


class TestPerRecordCrc:
    def _corrupt_record(self, log_path, batches, index):
        """Flip one payload byte inside record ``index``."""
        ends = _record_ends(log_path, batches)
        blob = bytearray(log_path.read_bytes())
        blob[ends[index] - 1] ^= 0xFF
        log_path.write_bytes(bytes(blob))

    def test_eager_open_raises(self, log_path, batches):
        self._corrupt_record(log_path, batches, 1)
        with pytest.raises(ValueError, match="record 1 checksum"):
            open_archive(log_path)

    def test_lazy_detects_on_first_decode_of_that_record(self, log_path, batches):
        self._corrupt_record(log_path, batches, 1)
        archive = open_archive(log_path, lazy=True)
        # records 0, 2, 3 are intact and keep answering
        assert archive.access(0) == batches[0][0]
        k2 = len(batches[0]) + len(batches[1])  # first value of record 2
        assert archive.access(k2) == batches[2][0]
        with pytest.raises(ValueError, match="record 1 checksum"):
            archive.access(len(batches[0]))  # first value of record 1


class TestSeal:
    def test_seal_in_place_compacts_to_one_shot(self, log_path, full):
        log = AppendableArchive.open(log_path)
        target = log.seal()
        assert target == log_path
        assert log_path.read_bytes()[:8] == ARCHIVE_MAGIC
        archive = open_archive(log_path)
        assert archive.digits == DIGITS
        assert np.array_equal(archive.decompress(), full)
        # byte-identical to saving a one-shot compression directly
        one_shot = repro.compress(full, codec="gorilla")
        assert archive.compressed.to_bytes() == one_shot.to_bytes()

    def test_seal_to_destination_keeps_source(self, tmp_path, log_path, full):
        dst = tmp_path / "compact.rpac"
        AppendableArchive.open(log_path).seal(dst)
        assert log_path.read_bytes()[:8] == APPEND_MAGIC  # source untouched
        assert np.array_equal(open_archive(dst).decompress(), full)

    def test_sealed_handle_refuses_append(self, log_path):
        log = AppendableArchive.open(log_path)
        log.seal()
        with pytest.raises(ValueError, match="sealed"):
            log.append([1])

    def test_empty_archive_cannot_seal(self, tmp_path):
        log = AppendableArchive.create(tmp_path / "s.rpal", codec="gorilla")
        with pytest.raises(ValueError, match="no records"):
            log.seal()


class TestSaveFixes:
    def test_explicit_digits_zero_overrides_archive(self, tmp_path, full):
        """`digits=0` is a value, not "unspecified": it must win over the
        archive's recorded non-zero scaling."""
        src = tmp_path / "a.rpac"
        save(src, repro.compress(full, codec="gorilla"), digits=2)
        archive = open_archive(src)
        dst = tmp_path / "b.rpac"
        save(dst, archive, digits=0)
        assert open_archive(dst).digits == 0
        # and None still means "keep the recorded scaling"
        kept = tmp_path / "c.rpac"
        save(kept, archive)
        assert open_archive(kept).digits == 2

    def test_saving_corrupt_lazy_archive_refuses(self, tmp_path, full):
        """Re-serialising signs the frame with a fresh crc32; save must
        verify a lazy archive first instead of laundering corruption."""
        src = tmp_path / "a.rpac"
        save(src, repro.compress(full, codec="gorilla"), digits=2)
        blob = bytearray(src.read_bytes())
        blob[-1] ^= 0xFF
        src.write_bytes(bytes(blob))
        lazy = open_archive(src, lazy=True)  # structural open succeeds
        dst = tmp_path / "laundered.rpac"
        with pytest.raises(ValueError, match="checksum"):
            save(dst, lazy)
        assert not dst.exists()


def _record_ends(log_path, batches):
    """File offsets at which each record of ``log_path`` ends."""
    from repro.codecs.container import _scan_append

    _, _, _, records, _ = _scan_append(log_path.read_bytes(), log_path)
    assert len(records) == len(batches)
    return [start + frame_len for start, frame_len, _, _ in records]
