"""Error-bounded codecs as first-class registry citizens.

The contract under test (the lossy side of the codec API):

* ``neats_l``, ``pla``, ``aa`` are registered with ``lossy=True`` and an
  explicitly required ``eps`` construction param;
* every lossy frame survives ``to_bytes -> load_compressed`` byte-identically
  and reproduces the *exact* approximation — no compressor call on load;
* a lossy archive keeps its ε guarantee through ``save -> open`` in both
  eager and ``lazy=True`` (mmap) modes;
* ``KIND_VALUES`` frames for lossy ids are rejected (decoded values are not
  the compressor's input, so the fallback cannot reproduce the object);
* SeriesDB accepts a lossy cold tier only behind ``allow_lossy=True`` and
  never a lossy hot tier.
"""

import mmap

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.baselines.aa import AaCompressor
from repro.baselines.base import Compressed, LossyCompressed
from repro.baselines.pla import PlaCompressor
from repro.codecs import codec_spec, get_codec, register_codec, unregister_codec
from repro.codecs.serialize import (
    KIND_NATIVE,
    KIND_VALUES,
    encode_values,
    read_frame,
    write_frame,
)
from repro.core.lossy import NeaTSLossy
from repro.store import SeriesDB

LOSSY_IDS = ("aa", "neats_l", "pla")
COMPRESSOR_CLS = {"aa": AaCompressor, "neats_l": NeaTSLossy, "pla": PlaCompressor}
EPS = 6.0

int_series = st.lists(
    st.integers(-(2**32), 2**32), min_size=1, max_size=120
).map(lambda xs: np.array(xs, dtype=np.int64))

eps_values = st.floats(
    min_value=0.5, max_value=1e6, allow_nan=False, allow_infinity=False
)


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(17)
    y = 600 * np.sin(np.arange(2500) / 60) + np.cumsum(rng.integers(-3, 4, 2500))
    return y.astype(np.int64)


@pytest.fixture(scope="module")
def compressed(series):
    return {
        cid: repro.compress(series, codec=cid, eps=EPS) for cid in LOSSY_IDS
    }


@pytest.mark.parametrize("cid", LOSSY_IDS)
class TestRegistration:
    def test_registered_lossy_with_required_eps(self, cid):
        spec = codec_spec(cid)
        assert spec.lossy
        assert spec.required_params == ("eps",)
        assert spec.load_native is not None

    def test_construction_without_eps_raises(self, cid):
        with pytest.raises(TypeError, match="requires explicit construction"):
            get_codec(cid)

    @pytest.mark.parametrize("eps", [0, -3, float("nan"), float("inf")])
    def test_bad_eps_rejected_at_construction(self, cid, eps):
        with pytest.raises(ValueError, match="positive finite error bound"):
            get_codec(cid, eps=eps)

    def test_compress_records_provenance(self, cid, compressed):
        c = compressed[cid]
        assert c.codec_id == cid
        assert c.codec_params == {"eps": EPS}
        assert isinstance(c, LossyCompressed)
        assert c.eps == EPS


@pytest.mark.parametrize("cid", LOSSY_IDS)
class TestFrameRoundTrip:
    def test_frame_is_native_with_eps_in_params(self, cid, compressed):
        frame = read_frame(compressed[cid].to_bytes())
        assert frame.kind == KIND_NATIVE
        assert frame.params["eps"] == EPS
        assert frame.params["segments"] == compressed[cid].num_segments

    def test_byte_identical_roundtrip(self, cid, compressed):
        frame = compressed[cid].to_bytes()
        loaded = Compressed.from_bytes(frame)
        assert loaded.to_bytes() == frame

    def test_identical_approximation_without_compress(
        self, cid, series, compressed, monkeypatch
    ):
        """Loading must reproduce the exact approximation, never re-fit."""
        frame = compressed[cid].to_bytes()

        def boom(self, values):
            raise AssertionError(f"{cid}: load invoked compress()")

        monkeypatch.setattr(COMPRESSOR_CLS[cid], "compress", boom)
        loaded = Compressed.from_bytes(frame)
        assert np.array_equal(loaded.decompress(), compressed[cid].decompress())
        assert loaded.eps == EPS
        assert loaded.max_error(series) <= EPS + 1e-9
        for k in (0, len(series) // 2, len(series) - 1):
            assert loaded.access(k) == pytest.approx(compressed[cid].access(k))
        assert np.array_equal(
            loaded.decompress_range(100, 900),
            compressed[cid].decompress()[100:900],
        )

    def test_values_fallback_frame_rejected(self, cid, series):
        frame = write_frame(
            cid, {"eps": EPS}, len(series), KIND_VALUES, encode_values(series)
        )
        with pytest.raises(ValueError, match="lossy"):
            Compressed.from_bytes(frame)

    def test_header_eps_mismatch_rejected(self, cid, compressed):
        frame = read_frame(compressed[cid].to_bytes())
        rewrapped = write_frame(
            cid, {**frame.params, "eps": EPS + 1}, frame.n, KIND_NATIVE,
            bytes(frame.payload),
        )
        with pytest.raises(ValueError, match="eps"):
            Compressed.from_bytes(rewrapped)

    def test_header_segment_count_mismatch_rejected(self, cid, compressed):
        frame = read_frame(compressed[cid].to_bytes())
        rewrapped = write_frame(
            cid, {**frame.params, "segments": 10**6}, frame.n, KIND_NATIVE,
            bytes(frame.payload),
        )
        with pytest.raises(ValueError, match="segments"):
            Compressed.from_bytes(rewrapped)

    def test_truncated_payload_rejected(self, cid, compressed):
        frame = read_frame(compressed[cid].to_bytes())
        chopped = bytes(frame.payload)[:-5]
        rewrapped = write_frame(cid, frame.params, frame.n, KIND_NATIVE, chopped)
        with pytest.raises(ValueError, match="corrupt|truncated"):
            Compressed.from_bytes(rewrapped)


@pytest.mark.parametrize("cid", ["aa", "pla"])  # neats_l is slow; covered above
@given(values=int_series, eps=eps_values)
@settings(max_examples=15, deadline=None)
def test_prop_lossy_frame_survives_byte_identically(cid, values, eps):
    """Property: any lossy frame reloads byte-identically, bound preserved."""
    c = repro.compress(values, codec=cid, eps=eps)
    frame = c.to_bytes()
    loaded = Compressed.from_bytes(frame)
    assert loaded.to_bytes() == frame
    assert np.array_equal(loaded.decompress(), c.decompress())
    assert loaded.max_error(values) <= eps * (1 + 1e-9) + 1e-6


@given(values=int_series, eps=eps_values)
@settings(max_examples=8, deadline=None)
def test_prop_neats_l_frame_survives_byte_identically(values, eps):
    c = repro.compress(values, codec="neats_l", eps=eps)
    frame = c.to_bytes()
    loaded = Compressed.from_bytes(frame)
    assert loaded.to_bytes() == frame
    assert np.array_equal(loaded.decompress(), c.decompress())


@pytest.mark.parametrize("cid", LOSSY_IDS)
class TestArchives:
    def test_eager_and_lazy_open_preserve_guarantee(
        self, cid, series, compressed, tmp_path, monkeypatch
    ):
        path = tmp_path / f"{cid}.rpac"
        repro.save(path, compressed[cid], digits=2)

        def boom(self, values):
            raise AssertionError(f"{cid}: open invoked compress()")

        monkeypatch.setattr(COMPRESSOR_CLS[cid], "compress", boom)
        for lazy in (False, True):
            archive = repro.open(path, lazy=lazy)
            assert archive.codec_id == cid
            assert archive.params["eps"] == EPS
            assert len(archive) == len(series)
            assert np.array_equal(
                archive.decompress(), compressed[cid].decompress()
            )
            assert archive.compressed.max_error(series) <= EPS + 1e-9

    def test_lazy_open_parses_off_the_map(self, cid, series, compressed, tmp_path):
        """The lazy path hands the loader a memoryview over the mmap."""
        frame = compressed[cid].to_bytes()
        path = tmp_path / f"{cid}.bin"
        prefix = b"y" * 11  # unaligned offsets inside the map
        path.write_bytes(prefix + frame)
        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        loaded = Compressed.from_bytes(memoryview(mapped)[len(prefix):])
        assert loaded.to_bytes() == frame
        assert loaded.max_error(series) <= EPS + 1e-9

    def test_archive_values_applies_digits(self, cid, compressed, tmp_path):
        path = tmp_path / f"{cid}-digits.rpac"
        repro.save(path, compressed[cid], digits=2)
        archive = repro.open(path)
        assert np.allclose(
            archive.values(), compressed[cid].decompress() / 100.0
        )


class TestLossySerialisationGuards:
    def test_to_bytes_without_provenance_raises(self, series):
        c = PlaCompressor(EPS).compress(series)  # bypasses the registry
        with pytest.raises(ValueError, match="no codec id"):
            c.to_bytes()

    def test_to_bytes_without_native_loader_raises(self, series):
        """A lossy registration without a native loader cannot serialise —
        it must fail loudly instead of writing an unloadable values frame."""
        register_codec("pla_noload", lossy=True, required_params=("eps",))(
            PlaCompressor
        )
        try:
            c = get_codec("pla_noload", eps=EPS).compress(series)
            with pytest.raises(ValueError, match="native payload"):
                c.to_bytes()
        finally:
            unregister_codec("pla_noload")


class TestSeriesDbLossyTiers:
    def test_lossy_cold_requires_opt_in(self, tmp_path):
        with pytest.raises(ValueError, match="allow_lossy"):
            SeriesDB(tmp_path / "db", cold_codec="neats_l",
                     cold_params={"eps": 4.0})

    def test_lossy_hot_always_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="hot tier"):
            SeriesDB(tmp_path / "db", hot_codec="pla",
                     hot_params={"eps": 4.0}, allow_lossy=True)

    def test_opted_in_lossy_cold_roundtrips_within_eps(self, tmp_path, series):
        eps = 10.0
        root = tmp_path / "db"
        db = SeriesDB(root, seal_threshold=256, cold_codec="pla",
                      cold_params={"eps": eps}, allow_lossy=True)
        db.ingest("s", series)
        db.flush()
        db.compact()
        for reopened in (SeriesDB.open(root), SeriesDB.open(root, lazy=True)):
            got = reopened.range("s", 0, len(series))
            assert np.max(np.abs(got - series)) <= eps + 1e-9
            assert abs(reopened.access("s", 123) - series[123]) <= eps + 1e-9

    def test_manifest_records_opt_in(self, tmp_path):
        root = tmp_path / "db"
        SeriesDB(root, cold_codec="aa", cold_params={"eps": 2.0},
                 allow_lossy=True)
        reopened = SeriesDB.open(root)
        assert reopened.info()["allow_lossy"] is True
        assert reopened.info()["cold_codec"] == "aa"

    def test_invalid_tier_params_fail_at_creation(self, tmp_path):
        """A bad eps must fail before the manifest persists, not at first
        ingest (which would leave a permanently broken database behind)."""
        root = tmp_path / "db"
        with pytest.raises(ValueError, match="cold tier configuration"):
            SeriesDB(root, cold_codec="pla", cold_params={"eps": -1},
                     allow_lossy=True)
        with pytest.raises(ValueError, match="cold tier configuration"):
            SeriesDB(root, cold_codec="neats_l", allow_lossy=True)  # no eps
        with pytest.raises(ValueError, match="hot tier configuration"):
            SeriesDB(root, hot_params={"no_such_param": 1})
        assert not (root / "MANIFEST.json").exists()

    def test_repeated_compaction_never_compounds_error(self, tmp_path):
        """ingest -> compact -> ingest -> compact: every consolidation
        compresses exact values, so the guarantee holds against the
        originals — never eps-of-an-eps."""
        rng = np.random.default_rng(31)
        eps = 2.0
        root = tmp_path / "db"
        db = SeriesDB(root, seal_threshold=128, cold_codec="pla",
                      cold_params={"eps": eps}, allow_lossy=True)
        full = np.empty(0, dtype=np.int64)
        for _ in range(3):
            chunk = np.cumsum(rng.integers(-9, 10, 400)).astype(np.int64)
            full = np.concatenate([full, chunk])
            db.ingest("s", chunk)
            db.flush()
            db.compact()
        store = db.store("s")
        assert store.tier_report()["cold_runs"] >= 2  # runs accumulated
        got = db.range("s", 0, len(full))
        assert np.max(np.abs(got - full)) <= eps + 1e-9
        reopened = SeriesDB.open(root)
        got = reopened.range("s", 0, len(full))
        assert np.max(np.abs(got - full)) <= eps + 1e-9


class TestTieredStoreLossyCold:
    def test_lossless_cold_still_merges_to_one_run(self, series):
        store = repro.TieredStore(seal_threshold=256, hot_codec="gorilla",
                                  cold_codec="leats")
        store.extend(series[:1000])
        store.consolidate()
        store.extend(series[1000:2000])
        store.consolidate()
        assert store.tier_report()["cold_runs"] == 1
        assert np.array_equal(store.decompress(), series[:2000])

    def test_lossy_cold_appends_runs_and_keeps_bound(self, series):
        eps = 5.0
        store = repro.TieredStore(seal_threshold=256, hot_codec="gorilla",
                                  cold_codec="neats_l",
                                  cold_params={"eps": eps})
        store.extend(series[:1024])
        store.consolidate()
        store.extend(series[1024:2048])
        store.consolidate()
        assert store.tier_report()["cold_runs"] == 2
        got = store.range(0, 2048)
        assert np.max(np.abs(got - series[:2048])) <= eps + 1e-9
        restored = repro.TieredStore.from_bytes(store.to_bytes())
        assert restored.tier_report() == store.tier_report()
        assert np.max(np.abs(restored.decompress() - series[:2048])) <= eps + 1e-9
        assert abs(restored.access(1500) - series[1500]) <= eps + 1e-9

    @pytest.mark.parametrize("make_codec", [
        lambda eps: get_codec("pla", eps=eps),    # registry proxy instance
        lambda eps: PlaCompressor(eps),           # bare compressor instance
    ])
    def test_instance_cold_codec_detected_as_lossy(self, series, make_codec):
        """A pre-built lossy compressor instance (proxy or bare) must take
        the append-a-run path too — never the lossless re-merge that would
        re-approximate the approximation."""
        eps = 5.0
        store = repro.TieredStore(seal_threshold=256, hot_codec="gorilla",
                                  cold_codec=make_codec(eps))
        for lo in (0, 1024):
            store.extend(series[lo : lo + 1024])
            store.consolidate()
        assert store.tier_report()["cold_runs"] == 2
        got = store.range(0, 2048)
        assert np.max(np.abs(got - series[:2048])) <= eps + 1e-9
