"""The mmap-backed lazy open path and the crash-safe archive writer.

Contract (see :mod:`repro.codecs.container`): ``repro.open(path,
lazy=True)`` maps the file, parses the compressed object on first touch,
and verifies the crc on the first decoding operation; eager opens keep
validating everything up front.  ``save`` is atomic (temp + fsync +
rename).
"""

import struct
import zlib

import numpy as np
import pytest

import repro
from repro.codecs import open_archive, save
from repro.codecs.container import ARCHIVE_MAGIC
from repro.codecs.serialize import KIND_VALUES, encode_values, write_frame

DIGITS = 2


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(11)
    y = 300 * np.sin(np.arange(6000) / 55) + np.cumsum(rng.integers(-3, 4, 6000))
    return y.astype(np.int64)


@pytest.fixture(
    scope="module", params=["gorilla", "dac", "leco", "alp", "neats", "zstd"]
)
def archive_path(request, series, tmp_path_factory):
    cid = request.param
    params = {"digits": DIGITS} if cid == "alp" else {}
    path = tmp_path_factory.mktemp("lazy") / f"{cid}.rpac"
    save(path, repro.compress(series, codec=cid, **params), digits=DIGITS)
    return path


class TestLazyOpen:
    def test_answers_match_eager(self, archive_path, series):
        eager = open_archive(archive_path)
        lazy = open_archive(archive_path, lazy=True)
        assert lazy.codec_id == eager.codec_id
        assert lazy.digits == eager.digits == DIGITS
        assert len(lazy) == len(eager) == len(series)
        for k in (0, 17, len(series) - 1):
            assert lazy.access(k) == series[k]
        assert np.array_equal(lazy.decompress(), series)
        assert np.array_equal(
            lazy.decompress_range(100, 900), series[100:900]
        )
        assert lazy.size_bits() == eager.size_bits()

    def test_metadata_without_materialising(self, archive_path, series):
        lazy = open_archive(archive_path, lazy=True)
        # codec id, digits, and length come from the headers alone.
        assert lazy._compressed is None
        assert len(lazy) == len(series)
        assert lazy.codec_id
        assert lazy._compressed is None

    def test_values_cached_and_readonly(self, archive_path, series):
        lazy = open_archive(archive_path, lazy=True)
        first = lazy.values()
        assert first is lazy.values()  # cached: no second decompression
        assert not first.flags.writeable
        assert np.allclose(first, series / 10.0**DIGITS)
        # the eager archive caches too
        eager = open_archive(archive_path)
        assert eager.values() is eager.values()


class TestLazyCrcDeferred:
    def _corrupt(self, path, tmp_path):
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        bad = tmp_path / "bad.rpac"
        bad.write_bytes(bytes(blob))
        return bad

    def test_eager_raises_at_open(self, tmp_path, series):
        path = tmp_path / "a.rpac"
        save(path, repro.compress(series, codec="gorilla"))
        with pytest.raises(ValueError, match="checksum"):
            open_archive(self._corrupt(path, tmp_path))

    def test_lazy_raises_at_first_decode(self, tmp_path, series):
        path = tmp_path / "a.rpac"
        save(path, repro.compress(series, codec="gorilla"))
        lazy = open_archive(self._corrupt(path, tmp_path), lazy=True)
        with pytest.raises(ValueError, match="checksum"):
            lazy.access(0)

    def test_lazy_structural_errors_still_eager(self, tmp_path):
        bad = tmp_path / "bad.rpac"
        bad.write_bytes(b"NOTMAGIC" + b"\x00" * 64)
        with pytest.raises(ValueError, match="not a repro archive"):
            open_archive(bad, lazy=True)
        empty = tmp_path / "empty.rpac"
        empty.write_bytes(b"")
        with pytest.raises(ValueError, match="not a repro archive"):
            open_archive(empty, lazy=True)


class TestBackwardCompatibility:
    def test_pre_native_rpac_archive_opens_lazy_and_eager(self, tmp_path, series):
        """An RPAC0001 file with a values-kind frame (as written before this
        change for DAC/LeCo/ALP) must open in both modes."""
        frame = write_frame("dac", {}, len(series), KIND_VALUES,
                            encode_values(series))
        blob = struct.pack("<8siIQ", ARCHIVE_MAGIC, DIGITS,
                           zlib.crc32(frame), len(frame)) + frame
        path = tmp_path / "old-dac.rpac"
        path.write_bytes(blob)
        for lazy in (False, True):
            archive = open_archive(path, lazy=lazy)
            assert archive.codec_id == "dac"
            assert archive.access(1234) == series[1234]
            assert np.array_equal(archive.decompress(), series)

    def test_legacy_ntsf_archive_opens_lazy(self, tmp_path, series):
        compressed = repro.NeaTS().compress(series)
        blob = (b"NTSF0001" + struct.pack("<i", 3)
                + compressed.storage.to_bytes())
        path = tmp_path / "old.neats"
        path.write_bytes(blob)
        archive = open_archive(path, lazy=True)
        assert archive.codec_id == "neats"
        assert archive.digits == 3
        assert archive.access(42) == series[42]


class TestAtomicSave:
    def test_no_tmp_file_left_and_size_reported(self, tmp_path, series):
        path = tmp_path / "a.rpac"
        nbytes = save(path, repro.compress(series, codec="gorilla"), DIGITS)
        assert path.stat().st_size == nbytes
        assert list(tmp_path.glob("*.tmp")) == []

    def test_overwrite_is_all_or_nothing(self, tmp_path, series, monkeypatch):
        """A failing rewrite must leave the previous archive intact."""
        path = tmp_path / "a.rpac"
        save(path, repro.compress(series, codec="gorilla"), DIGITS)
        before = path.read_bytes()

        import repro.codecs.container as container

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(container.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated"):
            save(path, repro.compress(series[:100], codec="gorilla"), DIGITS)
        monkeypatch.undo()
        assert path.read_bytes() == before
        archive = open_archive(path)
        assert np.array_equal(archive.decompress(), series)
