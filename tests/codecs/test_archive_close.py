"""Archive.close() and the context-manager protocol.

Contract (see :class:`repro.codecs.container.Archive`): ``close()`` is
idempotent, releases the mmap on the lazy path (deferred while zero-copy
arrays still reference it), and every subsequent decode raises a
``ValueError`` naming the path.  ``with repro.open(...)`` closes on exit.
"""

import numpy as np
import pytest

import repro
from repro.codecs import open_archive, save


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(23)
    return np.cumsum(rng.integers(-9, 10, 4000)).astype(np.int64)


@pytest.fixture(scope="module")
def archive_path(series, tmp_path_factory):
    path = tmp_path_factory.mktemp("close") / "series.rpac"
    save(path, repro.compress(series, codec="gorilla"))
    return path


@pytest.fixture(scope="module")
def appendable_path(series, tmp_path_factory):
    path = tmp_path_factory.mktemp("close") / "log.rpal"
    log = repro.append_open(path, codec="gorilla")
    log.append(series[:2000])
    log.append(series[2000:])  # durable on return: no explicit close needed
    return path


@pytest.mark.parametrize("lazy", [False, True], ids=["eager", "lazy"])
class TestClose:
    def test_post_close_decode_raises(self, archive_path, lazy):
        archive = open_archive(archive_path, lazy=lazy)
        archive.close()
        assert archive.closed
        with pytest.raises(ValueError, match="closed"):
            archive.decompress()
        with pytest.raises(ValueError, match="closed"):
            archive.access(0)

    def test_close_is_idempotent(self, archive_path, lazy):
        archive = open_archive(archive_path, lazy=lazy)
        archive.close()
        archive.close()
        assert archive.closed

    def test_context_manager_closes(self, archive_path, series, lazy):
        with open_archive(archive_path, lazy=lazy) as archive:
            assert np.array_equal(archive.decompress(), series)
            assert not archive.closed
        assert archive.closed

    def test_context_manager_closes_on_error(self, archive_path, lazy):
        with pytest.raises(RuntimeError, match="boom"):
            with open_archive(archive_path, lazy=lazy) as archive:
                raise RuntimeError("boom")
        assert archive.closed

    def test_metadata_survives_close(self, archive_path, lazy):
        archive = open_archive(archive_path, lazy=lazy)
        digits, codec = archive.digits, archive.codec_id
        archive.close()
        # Plain metadata stays readable; only decodes are gated.
        assert (archive.digits, archive.codec_id) == (digits, codec)

    def test_reopen_on_closed_path_fails(self, archive_path, lazy):
        archive = open_archive(archive_path, lazy=lazy)
        archive.close()
        with pytest.raises(ValueError, match="closed"):
            archive.__enter__()


def test_error_names_the_path(archive_path):
    archive = open_archive(archive_path, lazy=True)
    archive.close()
    with pytest.raises(ValueError, match=str(archive_path.name)):
        archive.decompress_range(0, 10)


def test_lazy_arrays_survive_deferred_close(archive_path, series):
    """Zero-copy arrays parsed off the map stay valid after close().

    ``close()`` drops the archive's references; the actual unmap is
    deferred until the last borrowing array dies, so data decoded *before*
    the close is never pulled out from under the caller.
    """
    archive = open_archive(archive_path, lazy=True)
    values = archive.decompress()
    archive.close()
    assert np.array_equal(values, series)  # still readable post-close


def test_appendable_close_eager_and_lazy(appendable_path, series):
    for lazy in (False, True):
        with open_archive(appendable_path, lazy=lazy) as archive:
            assert np.array_equal(archive.decompress(), series)
        with pytest.raises(ValueError, match="closed"):
            archive.decompress()


def test_seriesdb_close_flushes_and_reopens(tmp_path, series):
    with repro.SeriesDB(tmp_path / "db", hot_codec="gorilla") as db:
        db.ingest("s1", series)
    # close() flushed: a fresh handle reads everything back from disk.
    db2 = repro.SeriesDB(tmp_path / "db", hot_codec="gorilla")
    assert np.array_equal(db2.decompress("s1"), series)
    db2.close()
    # close() poisons the handle (idempotently): later calls raise the
    # contracted ValueError, and a fresh open still reads everything.
    db2.close()
    with pytest.raises(ValueError, match="closed"):
        db2.decompress("s1")
    with repro.SeriesDB(tmp_path / "db", hot_codec="gorilla") as db3:
        assert np.array_equal(db3.decompress("s1"), series)
