"""Property tests for the zero-copy frame path.

Two invariants, across *every* registered codec:

* parsing a frame from a ``memoryview`` (including a view over an mmapped
  file, at an arbitrary offset) yields an object identical to the plain
  bytes path — same values, same answers, bit-identical re-serialisation;
* for the codecs that gained native payloads (DAC, LeCo, ALP), the native
  frame and the old values-fallback frame decode to equivalent objects:
  same ``decompress()``, ``access(k)``, and ``size_bits()``.
"""

import mmap

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.baselines.base import Compressed
from repro.codecs import available_codecs, codec_spec
from repro.codecs.serialize import (
    KIND_VALUES,
    encode_values,
    read_frame,
    write_frame,
)

SETTINGS = dict(max_examples=20, deadline=None)
DIGITS = 1

int_series = st.lists(
    st.integers(-(2**40), 2**40), min_size=1, max_size=200
).map(lambda xs: np.array(xs, dtype=np.int64))


def _params(cid):
    return {"digits": DIGITS} if codec_spec(cid).needs_digits else {}


def _compress(cid, values):
    return repro.compress(values, codec=cid, **_params(cid))


# Bit-exact decompress() is the lossless contract; the lossy codecs' frame
# properties (identical approximation, eps preservation, mmap loads) are in
# tests/codecs/test_lossy_codecs.py.
LOSSLESS = sorted(c for c in available_codecs() if not codec_spec(c).lossy)


@pytest.mark.parametrize("cid", sorted(
    c for c in LOSSLESS if c not in ("neats", "leats", "sneats")
))
@given(values=int_series)
@settings(**SETTINGS)
def test_memoryview_load_equals_bytes_load(cid, values):
    frame = _compress(cid, values).to_bytes()
    via_bytes = Compressed.from_bytes(frame)
    via_view = Compressed.from_bytes(memoryview(frame))
    assert np.array_equal(via_view.decompress(), values)
    assert np.array_equal(via_bytes.decompress(), via_view.decompress())
    assert via_view.to_bytes() == frame
    assert via_view.size_bits() == via_bytes.size_bits()


@pytest.mark.parametrize("cid", LOSSLESS)
def test_mmap_slice_load_equals_bytes_load(cid, tmp_path):
    """Frames parsed from an mmapped file at an odd offset behave identically
    (covers the NeaTS family too — one fixed series, compression is slow)."""
    rng = np.random.default_rng(3)
    values = (200 * np.sin(np.arange(1200) / 25)
              + np.cumsum(rng.integers(-2, 3, 1200))).astype(np.int64)
    frame = _compress(cid, values).to_bytes()
    path = tmp_path / f"{cid}.bin"
    prefix = b"x" * 13  # force unaligned word offsets inside the map
    path.write_bytes(prefix + frame)
    with open(path, "rb") as fh:
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    view = memoryview(mapped)[len(prefix):]
    loaded = Compressed.from_bytes(view)
    assert np.array_equal(loaded.decompress(), values)
    assert loaded.access(600) == values[600]
    assert np.array_equal(loaded.decompress_range(37, 1100), values[37:1100])
    assert loaded.to_bytes() == frame


@pytest.mark.parametrize("cid", ["dac", "leco", "alp"])
@given(values=int_series)
@settings(**SETTINGS)
def test_native_frame_equals_values_fallback(cid, values):
    c = _compress(cid, values)
    native = Compressed.from_bytes(c.to_bytes())
    fallback_frame = write_frame(
        cid, c.codec_params or {}, len(values), KIND_VALUES,
        encode_values(values),
    )
    fallback = Compressed.from_bytes(fallback_frame)
    assert np.array_equal(native.decompress(), fallback.decompress())
    assert native.size_bits() == fallback.size_bits()
    for k in {0, len(values) // 2, len(values) - 1}:
        assert native.access(k) == fallback.access(k) == values[k]


@given(values=int_series)
@settings(**SETTINGS)
def test_read_frame_payload_is_a_view(values):
    """The parsed payload must alias the source buffer, not copy it."""
    frame = _compress("gorilla", values).to_bytes()
    parsed = read_frame(memoryview(frame))
    assert isinstance(parsed.payload, memoryview)
    assert bytes(parsed.payload) == frame[len(frame) - parsed.payload.nbytes:]


def test_read_frame_rejects_negative_n():
    frame = bytearray(write_frame("gorilla", {}, 1, KIND_VALUES,
                                  encode_values(np.array([1], dtype=np.int64))))
    # n sits at offset 12 in the header (<4sBBHIqQ), little-endian int64.
    frame[12:20] = (-5).to_bytes(8, "little", signed=True)
    with pytest.raises(ValueError, match="negative value count"):
        read_frame(bytes(frame))


def test_read_frame_rejects_payload_overflow():
    frame = bytearray(write_frame("gorilla", {}, 1, KIND_VALUES,
                                  encode_values(np.array([1], dtype=np.int64))))
    # paylen sits at offset 20, little-endian uint64: claim 2**63 bytes.
    frame[20:28] = (1 << 63).to_bytes(8, "little")
    with pytest.raises(ValueError, match="overflows"):
        read_frame(bytes(frame))
