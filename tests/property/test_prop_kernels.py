"""Cross-backend parity for every registered codec.

The contract the kernel layer must uphold (docs/kernels.md): for any
input series, any registered codec, and any pair of available backends,

* the serialised native frame is **byte-identical** — compression must
  not depend on which backend packed the bits;
* full decompression, point access, and range slices (bit-offset slices
  included) decode to identical values.

``REPRO_KERNELS=python`` is the reference; numpy (and numba when
importable) must match it exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
import repro.kernels as kernels
from repro.codecs.registry import available_codecs, codec_spec

SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

series_st = st.lists(
    st.integers(-(2**44), 2**44), min_size=1, max_size=300
).map(lambda xs: np.array(xs, dtype=np.int64))


def _params(cid):
    spec = codec_spec(cid)
    params = {}
    if "eps" in getattr(spec, "required_params", ()):
        params["eps"] = 4.0
    if getattr(spec, "needs_digits", False):
        params["digits"] = 2
    return params


def _decode(compressed):
    out = compressed.decompress()
    return np.asarray(out)


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    kernels.set_backend(None)


@pytest.mark.parametrize("cid", available_codecs())
@given(series=series_st)
@settings(**SETTINGS)
def test_cross_backend_parity(cid, series):
    params = _params(cid)
    with kernels.use_backend("python"):
        ref = repro.compress(series, codec=cid, **params)
        ref_payload = ref.to_payload()
        ref_out = _decode(ref)
    n = len(series)
    lo, hi = n // 3, n - n // 4
    for backend in kernels.available_backends()[1:]:
        with kernels.use_backend(backend):
            compressed = repro.compress(series, codec=cid, **params)
            assert bytes(compressed.to_payload()) == bytes(ref_payload), (
                f"{cid}: {backend} serialisation differs from python"
            )
            assert np.array_equal(_decode(compressed), ref_out)
            # decode the python-built object under the accelerated backend
            assert np.array_equal(_decode(ref), ref_out)
            if hasattr(ref, "decompress_range") and lo < hi:
                assert np.array_equal(
                    np.asarray(ref.decompress_range(lo, hi)), ref_out[lo:hi]
                )
            for k in {0, n // 2, n - 1}:
                assert ref.access(k) == ref_out[k]


@pytest.mark.parametrize("cid", ["gorilla", "chimp", "chimp128", "tsxor"])
def test_block_boundary_slices(cid):
    """Series crossing the 1000-value block boundary: slices that start,
    end, and straddle block edges must agree across backends."""
    rng = np.random.default_rng(17)
    n = 2500
    series = np.cumsum(rng.integers(-8, 9, n)).astype(np.int64)
    windows = [(0, n), (999, 1001), (1000, 2000), (1, 999), (1999, 2500),
               (998, 2003), (0, 1), (2499, 2500)]
    with kernels.use_backend("python"):
        compressed = repro.compress(series, codec=cid)
        want = {w: compressed.decompress_range(*w) for w in windows}
    for backend in kernels.available_backends()[1:]:
        with kernels.use_backend(backend):
            fresh = repro.compress(series, codec=cid)
            for w in windows:
                assert np.array_equal(fresh.decompress_range(*w), want[w]), w
                assert np.array_equal(compressed.decompress_range(*w), want[w])
    kernels.set_backend(None)
