"""Property test: a partitioned store is indistinguishable from a single one.

For arbitrary fleets of series and any partition count, a
:class:`PartitionedSeriesDB` must answer ``series_ids`` / ``count`` /
``access`` / ``range`` / ``decompress`` exactly like a single-directory
:class:`SeriesDB` ingesting the same data — partitioning is a layout
decision, never a semantic one.  Both stores also survive a flush/reopen
cycle with the same answers.
"""

import shutil

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.store import PartitionedSeriesDB, SeriesDB, open_store

SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

series = st.lists(
    st.integers(-(2**30), 2**30), min_size=1, max_size=120
).map(lambda xs: np.array(xs, dtype=np.int64))
fleets = st.dictionaries(
    st.sampled_from([f"id/{c}" for c in "abcdefghij"]),
    series,
    min_size=1,
    max_size=6,
)


@given(fleet=fleets, partitions=st.integers(min_value=1, max_value=5))
@settings(**SETTINGS)
def test_partitioned_equals_single(tmp_path, fleet, partitions):
    for name in ("single", "parted"):
        if (tmp_path / name).exists():
            shutil.rmtree(tmp_path / name)
    single = SeriesDB(tmp_path / "single", seal_threshold=64)
    parted = PartitionedSeriesDB(
        tmp_path / "parted", partitions=partitions, seal_threshold=64
    )
    single.ingest_many(fleet, workers=1)
    parted.ingest_many(fleet, workers=1)

    def check(a, b):
        assert sorted(a.series_ids()) == sorted(b.series_ids())
        for sid, values in fleet.items():
            assert a.count(sid) == b.count(sid) == len(values)
            k = len(values) // 2
            assert a.access(sid, k) == b.access(sid, k) == values[k]
            lo, hi = len(values) // 4, 3 * len(values) // 4 + 1
            assert np.array_equal(a.range(sid, lo, hi), values[lo:hi])
            assert np.array_equal(b.range(sid, lo, hi), values[lo:hi])
            assert np.array_equal(a.decompress(sid), b.decompress(sid))

    check(single, parted)
    single.flush()
    parted.flush()
    single.close()
    parted.close()
    single = open_store(tmp_path / "single")
    parted = open_store(tmp_path / "parted")
    assert isinstance(parted, PartitionedSeriesDB)
    check(single, parted)
    single.close()
    parted.close()
