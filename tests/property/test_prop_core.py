"""Property-based tests for the NeaTS core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import NeaTS, NeaTSLossy
from repro.core.convex import RangeLineFitter
from repro.core.models import get_model, make_approximation
from repro.core.piecewise import piecewise_approximation

SETTINGS = dict(max_examples=40, deadline=None)

int_series = st.lists(
    st.integers(-(10**9), 10**9), min_size=1, max_size=300
).map(lambda v: np.array(v, dtype=np.int64))

small_series = st.lists(
    st.integers(-(10**4), 10**4), min_size=1, max_size=150
).map(lambda v: np.array(v, dtype=np.int64))


class TestLosslessInvariant:
    @given(y=int_series)
    @settings(**SETTINGS)
    def test_roundtrip_any_input(self, y):
        """THE invariant: decompress(compress(y)) == y, for any int series."""
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)

    @given(y=small_series, data=st.data())
    @settings(**SETTINGS)
    def test_access_agrees_with_decompress(self, y, data):
        c = NeaTS().compress(y)
        k = data.draw(st.integers(0, len(y) - 1))
        assert c.access(k) == y[k]

    @given(y=small_series, data=st.data())
    @settings(**SETTINGS)
    def test_range_agrees_with_slice(self, y, data):
        c = NeaTS().compress(y)
        lo = data.draw(st.integers(0, len(y)))
        hi = data.draw(st.integers(lo, len(y)))
        assert np.array_equal(c.decompress_range(lo, hi), y[lo:hi])

    @given(y=small_series)
    @settings(**SETTINGS)
    def test_serialisation_preserves_content(self, y):
        from repro.core.storage import NeaTSStorage

        c = NeaTS().compress(y)
        st2 = NeaTSStorage.from_bytes(c.storage.to_bytes())
        assert np.array_equal(st2.decompress(), y)


class TestLossyInvariant:
    @given(
        y=small_series,
        eps=st.floats(0.5, 1000.0, allow_nan=False),
    )
    @settings(**SETTINGS)
    def test_linf_error_bound(self, y, eps):
        series = NeaTSLossy(eps).compress(y)
        assert series.max_error(y) <= eps + 1e-6

    @given(y=small_series, eps=st.floats(1.0, 100.0))
    @settings(**SETTINGS)
    def test_size_positive_and_fragments_cover(self, y, eps):
        series = NeaTSLossy(eps).compress(y)
        assert series.size_bits() > 0
        assert series.fragments[0].start == 0
        assert series.fragments[-1].end == len(y)


class TestFitterInvariants:
    @given(
        ranges=st.lists(
            st.tuples(st.floats(-100, 100), st.floats(0.1, 20)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(**SETTINGS)
    def test_accepted_prefix_always_feasible(self, ranges):
        """Whatever prefix the fitter accepts, the returned line stabs it."""
        fitter = RangeLineFitter()
        accepted = []
        t = 0.0
        for mid, half in ranges:
            t += 1.0
            if not fitter.add(t, mid - half, mid + half):
                break
            accepted.append((t, mid - half, mid + half))
        m, q = fitter.line()
        for t_, lo, hi in accepted:
            assert lo - 1e-6 <= m * t_ + q <= hi + 1e-6


class TestPiecewiseInvariants:
    @given(
        y=st.lists(st.integers(0, 10**5), min_size=1, max_size=200),
        eps=st.floats(0, 50),
    )
    @settings(**SETTINGS)
    def test_fragments_partition_domain(self, y, eps):
        z = np.array(y, dtype=np.float64) + 100.0
        frags = piecewise_approximation(z, "linear", eps)
        assert frags[0].start == 0
        assert frags[-1].end == len(z)
        assert all(a.end == b.start for a, b in zip(frags, frags[1:]))

    @given(
        y=st.lists(st.integers(0, 10**4), min_size=2, max_size=100),
        data=st.data(),
    )
    @settings(**SETTINGS)
    def test_fragment_error_bounded_every_model(self, y, data):
        model_name = data.draw(
            st.sampled_from(["linear", "exponential", "quadratic", "radical"])
        )
        eps = data.draw(st.floats(0.5, 100))
        z = np.array(y, dtype=np.float64) + eps + 1.0
        model = get_model(model_name)
        fit = make_approximation(z, 0, model, eps)
        xs = np.arange(1, fit.end + 1, dtype=np.float64)
        err = np.max(np.abs(model.evaluate(fit.params, xs) - z[: fit.end]))
        assert err <= eps + 1e-6
