"""Property tests for the appendable container's byte-level invariants.

Three invariants, over arbitrary batch sequences:

* **append/reopen** — N appends reopen (eager and lazy) to exactly the
  concatenated input, with one record per non-empty batch, and reading
  never modifies the file;
* **crash truncation** — cutting the file at *any* byte offset inside the
  record region yields, on reopen, exactly the values of the records that
  were wholly sealed below the cut (never garbage, never an error);
* **resume** — a writer reopened after a truncation continues from the
  sealed prefix, and the result equals appending the surviving batches to
  a fresh archive.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codecs import open_archive
from repro.codecs.container import _RECORD, AppendableArchive, _scan_append

# tmp_path is shared across examples; build() unlinks before writing, so
# every example starts from a fresh file regardless.
SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

batch = st.lists(
    st.integers(-(2**40), 2**40), min_size=1, max_size=60
).map(lambda xs: np.array(xs, dtype=np.int64))
batch_lists = st.lists(batch, min_size=1, max_size=6)


def build(tmp_path, batches, codec="gorilla", name="prop.rpal"):
    path = tmp_path / name
    if path.exists():
        path.unlink()
    log = AppendableArchive.create(path, codec=codec, digits=1)
    for values in batches:
        log.append(values)
    return path


@given(batches=batch_lists)
@settings(**SETTINGS)
def test_append_reopen_equals_concatenation(tmp_path, batches):
    path = build(tmp_path, batches)
    full = np.concatenate(batches)
    before = path.read_bytes()
    for lazy in (False, True):
        archive = open_archive(path, lazy=lazy)
        assert archive.compressed.num_runs == len(batches)
        assert len(archive) == len(full)
        assert np.array_equal(archive.decompress(), full)
        k = len(full) // 2
        assert archive.access(k) == full[k]
        lo, hi = len(full) // 3, 2 * len(full) // 3
        assert np.array_equal(archive.decompress_range(lo, hi), full[lo:hi])
    assert path.read_bytes() == before  # reading never mutates the file


@given(batches=batch_lists, data=st.data())
@settings(**SETTINGS)
def test_any_truncation_yields_sealed_prefix(tmp_path, batches, data):
    path = build(tmp_path, batches)
    blob = path.read_bytes()
    _, _, _, records, _ = _scan_append(blob, path)
    ends = [start + frame_len for start, frame_len, _, _ in records]
    header_end = records[0][0] - _RECORD.size  # first record header starts here
    cut = data.draw(st.integers(header_end, len(blob) - 1), label="cut")
    path.write_bytes(blob[:cut])
    survivors = sum(1 for end in ends if end <= cut)
    archive = open_archive(path)
    expected = (
        np.concatenate(batches[:survivors])
        if survivors
        else np.empty(0, dtype=np.int64)
    )
    assert archive.compressed.num_runs == survivors
    assert np.array_equal(archive.decompress(), expected)


@given(batches=batch_lists, extra=batch)
@settings(**SETTINGS)
def test_resume_after_truncation_matches_fresh_build(tmp_path, batches, extra):
    path = build(tmp_path, batches)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 1])  # tear the final record
    log = AppendableArchive.open(path)
    assert len(log) == sum(len(b) for b in batches[:-1])
    log.append(extra)
    fresh = build(tmp_path, batches[:-1] + [extra], name="fresh.rpal")
    assert np.array_equal(
        open_archive(path).decompress(), open_archive(fresh).decompress()
    )
    # and byte-identical files: the torn record leaves no residue
    assert path.read_bytes() == fresh.read_bytes()


@pytest.mark.parametrize("codec", ["gorilla", "zstd", "dac", "chimp"])
def test_multi_codec_append_roundtrip(tmp_path, codec):
    rng = np.random.default_rng(3)
    batches = [rng.integers(-1000, 1000, n).astype(np.int64) for n in (40, 700, 3)]
    path = build(tmp_path, batches, codec=codec)
    archive = open_archive(path, lazy=True)
    assert archive.codec_id == codec
    assert np.array_equal(archive.decompress(), np.concatenate(batches))
