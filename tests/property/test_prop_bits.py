"""Property-based tests (hypothesis) for the succinct data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bits import BitReader, BitVector, BitWriter, EliasFano, PackedArray, WaveletTree

SETTINGS = dict(max_examples=60, deadline=None)


@st.composite
def field_lists(draw):
    widths = draw(st.lists(st.integers(1, 64), min_size=1, max_size=80))
    return [(draw(st.integers(0, (1 << w) - 1)), w) for w in widths]


class TestBitIO:
    @given(fields=field_lists())
    @settings(**SETTINGS)
    def test_write_read_roundtrip(self, fields):
        w = BitWriter()
        for value, width in fields:
            w.write(value, width)
        r = BitReader(w.getbuffer(), w.bit_length)
        for value, width in fields:
            assert r.read(width) == value

    @given(values=st.lists(st.integers(0, 300), min_size=1, max_size=50))
    @settings(**SETTINGS)
    def test_unary_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            w.write_unary(v)
        r = BitReader(w.getbuffer(), w.bit_length)
        assert [r.read_unary() for _ in values] == values


class TestPackedArrayProps:
    @given(
        values=st.lists(st.integers(0, (1 << 30) - 1), max_size=200),
    )
    @settings(**SETTINGS)
    def test_roundtrip_and_vectorised_agreement(self, values):
        pa = PackedArray(values)
        assert list(pa) == values
        assert pa.to_numpy().tolist() == values

    @given(
        values=st.lists(st.integers(0, 255), min_size=2, max_size=100),
        data=st.data(),
    )
    @settings(**SETTINGS)
    def test_slice_matches(self, values, data):
        pa = PackedArray(values, width=8)
        a = data.draw(st.integers(0, len(values)))
        b = data.draw(st.integers(a, len(values)))
        assert pa.slice(a, b).tolist() == values[a:b]


class TestBitVectorProps:
    @given(bits=st.lists(st.booleans(), max_size=400))
    @settings(**SETTINGS)
    def test_rank_select_inverse(self, bits):
        bv = BitVector([1 if b else 0 for b in bits])
        ones = [i for i, b in enumerate(bits) if b]
        assert bv.count_ones == len(ones)
        for k, pos in enumerate(ones):
            assert bv.select1(k) == pos
            assert bv.rank1(pos) == k
            assert bv.rank1(pos + 1) == k + 1

    @given(bits=st.lists(st.booleans(), min_size=1, max_size=300), data=st.data())
    @settings(**SETTINGS)
    def test_rank_monotone(self, bits, data):
        bv = BitVector([1 if b else 0 for b in bits])
        i = data.draw(st.integers(0, len(bits)))
        j = data.draw(st.integers(i, len(bits)))
        assert bv.rank1(i) <= bv.rank1(j)
        assert bv.rank1(j) - bv.rank1(i) <= j - i


class TestEliasFanoProps:
    @given(
        values=st.lists(st.integers(0, 10**6), max_size=200).map(sorted),
        data=st.data(),
    )
    @settings(**SETTINGS)
    def test_access_and_rank(self, values, data):
        ef = EliasFano(values)
        assert ef.to_list() == values
        x = data.draw(st.integers(-10, 10**6 + 10))
        import bisect

        assert ef.rank(x) == bisect.bisect_right(values, x)

    @given(values=st.lists(st.integers(0, 10**5), min_size=1, max_size=150).map(sorted))
    @settings(**SETTINGS)
    def test_predecessor_law(self, values):
        ef = EliasFano(values)
        for x in (values[0], values[-1], values[len(values) // 2]):
            p = ef.predecessor(x)
            assert p <= x
            assert p in values


class TestWaveletProps:
    @given(
        symbols=st.lists(st.integers(0, 6), max_size=250),
        data=st.data(),
    )
    @settings(**SETTINGS)
    def test_access_rank_consistency(self, symbols, data):
        wt = WaveletTree(symbols, sigma=7)
        assert wt.to_list() == symbols
        if symbols:
            i = data.draw(st.integers(0, len(symbols)))
            s = data.draw(st.integers(0, 6))
            assert wt.rank(s, i) == symbols[:i].count(s)

    @given(symbols=st.lists(st.integers(0, 4), max_size=200))
    @settings(**SETTINGS)
    def test_ranks_partition_positions(self, symbols):
        wt = WaveletTree(symbols, sigma=5)
        total = sum(wt.count(s) for s in range(5))
        assert total == len(symbols)
