"""Property-based round-trip tests across every lossless compressor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.registry import make_compressor

SETTINGS = dict(max_examples=25, deadline=None)

# Fast compressors get the full hypothesis treatment; NeaTS variants are
# covered separately in test_prop_core (their compression is slower).
FAST = ["Xz", "Brotli*", "Zstd*", "Lz4*", "Snappy*",
        "Chimp128", "Chimp", "TSXor", "DAC", "Gorilla", "LeCo", "ALP"]

int_series = st.lists(
    st.integers(-(2**50), 2**50), min_size=1, max_size=250
).map(lambda v: np.array(v, dtype=np.int64))


@pytest.mark.parametrize("name", FAST)
class TestRoundTripProperty:
    @given(y=int_series)
    @settings(**SETTINGS)
    def test_decompress_inverse_of_compress(self, name, y):
        comp = make_compressor(name, digits=2)
        c = comp.compress(y)
        assert np.array_equal(c.decompress(), y)

    @given(y=int_series, data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_access_matches(self, name, y, data):
        comp = make_compressor(name, digits=2)
        c = comp.compress(y)
        k = data.draw(st.integers(0, len(y) - 1))
        assert c.access(k) == y[k]


class TestEdgeSeries:
    @pytest.mark.parametrize("name", FAST)
    def test_alternating_extremes(self, name):
        y = np.array([0, 2**50, 0, -(2**50), 1, -1] * 30, dtype=np.int64)
        c = make_compressor(name, digits=0).compress(y)
        assert np.array_equal(c.decompress(), y)

    @pytest.mark.parametrize("name", FAST)
    def test_all_equal(self, name):
        y = np.full(200, -123456, dtype=np.int64)
        c = make_compressor(name, digits=1).compress(y)
        assert np.array_equal(c.decompress(), y)

    @pytest.mark.parametrize("name", FAST)
    def test_strictly_increasing(self, name):
        y = np.arange(0, 5000, 7, dtype=np.int64)
        c = make_compressor(name, digits=0).compress(y)
        assert np.array_equal(c.decompress(), y)

    @pytest.mark.parametrize("name", FAST)
    def test_single_value(self, name):
        y = np.array([42], dtype=np.int64)
        c = make_compressor(name, digits=0).compress(y)
        assert np.array_equal(c.decompress(), y)
        assert c.access(0) == 42
