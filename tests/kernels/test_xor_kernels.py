"""Decode-kernel parity: every backend, every family, byte-identical."""

import numpy as np
import pytest

import repro.kernels as kernels
from repro.kernels.xor import _LZ_ROUND, resolve_chains
from repro.baselines import chimp as chimp_mod
from repro.baselines.chimp import chimp128_encode, chimp_encode
from repro.baselines.gorilla import gorilla_encode
from repro.baselines.tsxor import tsxor_decode, tsxor_encode
from repro.bits import BitWriter

ENCODERS = {
    "gorilla": gorilla_encode,
    "chimp": chimp_encode,
    "chimp128": chimp128_encode,
}


def _mixed_values(n, seed=0):
    """Repeats, near-repeats, and wild jumps: every control path."""
    rng = np.random.default_rng(seed)
    vals = np.empty(n, dtype=np.uint64)
    v = np.uint64(0x4059000000000000)
    for i in range(n):
        roll = rng.random()
        if roll < 0.25:
            pass  # exact repeat
        elif roll < 0.7:
            v ^= np.uint64(int(rng.integers(0, 2**14)) << int(rng.integers(0, 20)))
        else:
            v = rng.integers(0, 2**63, dtype=np.uint64)
        vals[i] = v
    return vals


def _encode(family, values):
    writer = BitWriter()
    ENCODERS[family](values.tolist(), writer)
    return writer.getbuffer(), writer.bit_length


class TestXorBlockParity:
    @pytest.mark.parametrize("family", kernels.XOR_FAMILIES)
    @pytest.mark.parametrize("n", [1, 2, 3, 64, 500])
    def test_all_backends_identical(self, family, n):
        values = _mixed_values(n, seed=n)
        words, bits = _encode(family, values)
        for backend in kernels.available_backends():
            with kernels.use_backend(backend):
                out = kernels.decode_xor_block(family, words, bits, n)
            assert out.dtype == np.uint64
            assert np.array_equal(out, values), (family, backend)

    @pytest.mark.parametrize("family", kernels.XOR_FAMILIES)
    def test_batch_equals_per_block(self, family):
        blocks = []
        expected = []
        for b in range(40):  # above _BATCH_MIN_BLOCKS: the lockstep path
            n = 17 + (b * 13) % 50
            values = _mixed_values(n, seed=b)
            words, bits = _encode(family, values)
            blocks.append((words, bits, n))
            expected.append(values)
        want = np.concatenate(expected)
        for backend in kernels.available_backends():
            with kernels.use_backend(backend):
                out = kernels.decode_xor_blocks(family, blocks)
            assert np.array_equal(out, want), (family, backend)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown XOR family"):
            kernels.decode_xor_block("zigzag", np.zeros(2, np.uint64), 64, 1)


class TestTSXorParity:
    @pytest.mark.parametrize("n", [1, 2, 3, 64, 500])
    def test_all_backends_identical(self, n):
        values = _mixed_values(n, seed=n + 1000)
        blob = tsxor_encode(values)
        want = tsxor_decode(blob, n)
        for backend in kernels.available_backends():
            with kernels.use_backend(backend):
                out = kernels.decode_tsxor_block(blob, n)
            assert np.array_equal(out, want), backend
        assert np.array_equal(want, values)

    def test_batch_equals_per_block(self):
        blocks = []
        expected = []
        for b in range(40):
            n = 11 + (b * 7) % 60
            values = _mixed_values(n, seed=b + 500)
            blocks.append((tsxor_encode(values), n))
            expected.append(values)
        want = np.concatenate(expected)
        for backend in kernels.available_backends():
            with kernels.use_backend(backend):
                out = kernels.decode_tsxor_blocks(blocks)
            assert np.array_equal(out, want), backend


class TestCorruptStreams:
    """The vectorised scans must fail as loudly as the scalar decoders."""

    def test_chimp_window_flag_before_window(self):
        # ctl == 1 (same-lz) as the very first control pair: no window yet.
        writer = BitWriter()
        writer.write(0x4041000000000000 >> 0, 64)  # first value, raw
        writer.write(0b01, 2)  # LSB-first ctl == 1
        writer.write(0, 30)
        words, bits = writer.getbuffer(), writer.bit_length
        for backend in kernels.available_backends():
            with kernels.use_backend(backend):
                with pytest.raises(ValueError, match="corrupt Chimp stream"):
                    kernels.decode_xor_block("chimp", words, bits, 2)

    def test_chimp_corrupt_inside_batch(self):
        good_blocks = []
        for b in range(40):
            values = _mixed_values(20, seed=b)
            words, bits = _encode("chimp", values)
            good_blocks.append((words, bits, 20))
        writer = BitWriter()
        writer.write(123456789, 64)
        writer.write(0b01, 2)
        writer.write(0, 30)
        bad = (writer.getbuffer(), writer.bit_length, 2)
        with kernels.use_backend("numpy"):
            with pytest.raises(ValueError, match="corrupt Chimp stream"):
                kernels.decode_xor_blocks("chimp", good_blocks + [bad])


class TestResolveChains:
    def test_matches_scalar_resolution(self):
        rng = np.random.default_rng(3)
        n = 2000
        values = rng.integers(0, 2**63, n, dtype=np.uint64)
        parents = np.empty(n, dtype=np.int64)
        for i in range(n):
            if i == 0 or rng.random() < 0.1:
                parents[i] = -1
            elif rng.random() < 0.6:
                parents[i] = i - 1
            else:
                parents[i] = rng.integers(max(0, i - 127), i)
        want = np.empty(n, dtype=np.uint64)
        for i in range(n):
            p = parents[i]
            want[i] = values[i] if p < 0 else values[i] ^ want[p]
        got = resolve_chains(values.copy(), parents, depth=n)
        assert np.array_equal(got, want)

    def test_all_roots_and_single_run(self):
        values = np.array([7, 9, 12, 40], dtype=np.uint64)
        roots = resolve_chains(values.copy(), np.full(4, -1, dtype=np.int64), 4)
        assert np.array_equal(roots, values)
        chain = resolve_chains(
            values.copy(), np.array([-1, 0, 1, 2], dtype=np.int64), 4
        )
        assert np.array_equal(chain, np.bitwise_xor.accumulate(values))


def test_lz_round_table_matches_chimp_reference():
    """The kernel's leading-zero rounding table must track the codec's."""
    assert _LZ_ROUND == tuple(
        chimp_mod._round_lz(lz) for lz in _LZ_ROUND
    )
    for lz in range(65):
        assert chimp_mod._round_lz(lz) in _LZ_ROUND
