"""Batched piecewise evaluation parity against the per-fragment loop."""

import numpy as np

from repro.core.models import get_model
from repro.kernels.segments import evaluate_fragments, position_ramp


def test_position_ramp():
    starts = np.array([0, 10, 12], dtype=np.int64)
    lengths = np.array([3, 2, 4], dtype=np.int64)
    assert position_ramp(starts, lengths).tolist() == [
        0, 1, 2, 10, 11, 12, 13, 14, 15,
    ]
    assert len(position_ramp(np.zeros(0, np.int64), np.zeros(0, np.int64))) == 0


def test_matches_per_fragment_evaluation_bitwise():
    rng = np.random.default_rng(1)
    names = ["linear", "quadratic", "exponential", "radical"]
    models = [get_model(name) for name in names]
    n = 500
    bounds = sorted(rng.choice(np.arange(1, n), 19, replace=False).tolist())
    edges = [0] + bounds + [n]
    kinds, starts, ends, params = [], [], [], []
    for a, b in zip(edges, edges[1:]):
        k = int(rng.integers(0, len(models)))
        kinds.append(k)
        starts.append(a)
        ends.append(b)
        params.append(tuple(rng.normal(1.0, 0.3, models[k].n_params)))
    got = evaluate_fragments(models, kinds, starts, ends, params, n)
    want = np.empty(n, dtype=np.float64)
    for k, a, b, p in zip(kinds, starts, ends, params):
        xs = np.arange(a + 1, b + 1, dtype=np.float64)
        want[a:b] = models[k].evaluate(p, xs)
    # broadcast and scalar-parameter evaluation must agree bit-for-bit,
    # or serialised NeaTS archives would decode differently per backend
    assert np.array_equal(got, want)


def test_single_kind_many_fragments():
    model = get_model("linear")
    starts = list(range(0, 100, 10))
    ends = list(range(10, 110, 10))
    params = [(float(i), 0.5 * i) for i in range(10)]
    got = evaluate_fragments([model], [0] * 10, starts, ends, params, 100)
    for i, (a, b) in enumerate(zip(starts, ends)):
        xs = np.arange(a + 1, b + 1, dtype=np.float64)
        assert np.array_equal(got[a:b], model.evaluate(params[i], xs))
