"""Backend selection: env var, overrides, and graceful degradation."""

import numpy as np
import pytest

import repro.kernels as kernels


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    kernels.set_backend(None)


class TestResolution:
    def test_default_is_an_accelerated_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        kernels.set_backend(None)
        assert kernels.get_backend() in ("numpy", "numba")

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "python")
        assert kernels.get_backend() == "python"
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert kernels.get_backend() == "numpy"

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "fortran")
        with pytest.raises(ValueError, match="not a kernel backend"):
            kernels.get_backend()

    def test_env_numba_without_numba_warns_and_degrades(self, monkeypatch):
        if kernels.numba_available():
            pytest.skip("numba is importable here")
        monkeypatch.setenv("REPRO_KERNELS", "numba")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert kernels.get_backend() == "numpy"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        kernels.set_backend("python")
        assert kernels.get_backend() == "python"
        kernels.set_backend(None)
        assert kernels.get_backend() == "numpy"


class TestSetBackend:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("cuda")

    def test_numba_raises_when_missing(self):
        if kernels.numba_available():
            pytest.skip("numba is importable here")
        with pytest.raises(ValueError, match="numba is not importable"):
            kernels.set_backend("numba")

    def test_use_backend_restores_on_exit(self):
        kernels.set_backend("numpy")
        with kernels.use_backend("python"):
            assert kernels.get_backend() == "python"
            with kernels.use_backend("numpy"):
                assert kernels.get_backend() == "numpy"
            assert kernels.get_backend() == "python"
        assert kernels.get_backend() == "numpy"

    def test_use_backend_restores_on_error(self):
        kernels.set_backend("numpy")
        with pytest.raises(RuntimeError):
            with kernels.use_backend("python"):
                raise RuntimeError("boom")
        assert kernels.get_backend() == "numpy"


def test_available_backends_always_lists_the_parity_pair():
    backends = kernels.available_backends()
    assert backends[:2] == ("python", "numpy")
    assert ("numba" in backends) == kernels.numba_available()


def test_backend_switch_changes_decode_route_not_result():
    rng = np.random.default_rng(0)
    values = rng.integers(0, 2**50, 500, dtype=np.uint64)
    from repro.bits import BitWriter
    from repro.baselines.gorilla import gorilla_encode

    writer = BitWriter()
    gorilla_encode([int(v) for v in values], writer)
    words, bits = writer.getbuffer(), writer.bit_length
    outs = {}
    for backend in kernels.available_backends():
        with kernels.use_backend(backend):
            outs[backend] = kernels.decode_xor_block(
                "gorilla", words, bits, len(values)
            )
    for backend, out in outs.items():
        assert np.array_equal(out, values), backend
