"""Vectorised bit packing: byte-identical to the BitWriter reference."""

import numpy as np
import pytest

from repro.bits import BitReader, BitWriter, PackedArray
from repro.kernels.bitpack import FieldGather, pack_bits
from repro.bits.packed import unpack_bits, unpack_fields

WIDTHS = [0, 1, 3, 5, 7, 8, 13, 16, 31, 32, 33, 47, 57, 58, 63, 64]


def _reference_words(values, width):
    writer = BitWriter()
    for v in values:
        writer.write(int(v), width)
    return writer.getbuffer(), writer.bit_length


class TestPackBits:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_byte_identical_to_bitwriter(self, width):
        rng = np.random.default_rng(width)
        hi = np.uint64(2**width - 1) if width else np.uint64(0)
        values = rng.integers(0, int(hi) + 1, 257, dtype=np.uint64)
        ref_words, ref_bits = _reference_words(values, width)
        words = pack_bits(values, width)
        assert words.dtype == np.uint64
        assert np.array_equal(words, ref_words)
        assert len(words) * 64 >= ref_bits

    def test_empty(self):
        ref_words, _ = _reference_words([], 13)
        assert np.array_equal(pack_bits(np.zeros(0, dtype=np.uint64), 13),
                              ref_words)

    @pytest.mark.parametrize("width", [1, 13, 57, 64])
    def test_roundtrip_via_unpack(self, width):
        rng = np.random.default_rng(width + 100)
        values = rng.integers(0, 2**min(width, 63), 100, dtype=np.uint64)
        words = pack_bits(values, width)
        assert np.array_equal(unpack_bits(words, width, len(values)), values)


class TestPackedArrayFastPath:
    """PackedArray.__init__ routes ndarrays through pack_bits; the layout
    and the error behaviour must match the scalar loop exactly."""

    @pytest.mark.parametrize("width", WIDTHS)
    def test_same_words_as_list_input(self, width):
        rng = np.random.default_rng(width)
        hi = np.uint64(2**width - 1) if width else np.uint64(0)
        values = rng.integers(0, int(hi) + 1, 123, dtype=np.uint64)
        fast = PackedArray(values, width=width)
        slow = PackedArray([int(v) for v in values], width=width)
        assert np.array_equal(fast.words, slow.words)
        assert fast.width == slow.width
        assert len(fast) == len(slow)
        assert list(fast) == list(slow)

    def test_width_inference_matches(self):
        values = np.array([3, 17, 200], dtype=np.int64)
        assert PackedArray(values).width == PackedArray([3, 17, 200]).width == 8

    def test_negative_value_error_message_parity(self):
        arr = np.array([1, -5, 2], dtype=np.int64)
        with pytest.raises(ValueError) as fast:
            PackedArray(arr, width=8)
        with pytest.raises(ValueError) as slow:
            PackedArray([1, -5, 2], width=8)
        assert str(fast.value) == str(slow.value)

    def test_overflow_error_message_parity(self):
        arr = np.array([1, 300, 2], dtype=np.uint64)
        with pytest.raises(ValueError) as fast:
            PackedArray(arr, width=8)
        with pytest.raises(ValueError) as slow:
            PackedArray([1, 300, 2], width=8)
        assert str(fast.value) == str(slow.value)

    def test_empty_ndarray(self):
        arr = PackedArray(np.zeros(0, dtype=np.int64))
        assert len(arr) == 0 and arr.width == 0


class TestFieldGather:
    def test_matches_bitreader_at_arbitrary_offsets(self):
        rng = np.random.default_rng(9)
        words = rng.integers(0, 2**63, 64, dtype=np.uint64)
        reader = BitReader(words, len(words) * 64)
        gather = FieldGather(words)
        for width in (1, 7, 13, 57, 58, 63, 64):
            starts = rng.integers(0, len(words) * 64 - width, 40)
            got = gather(starts, width)
            want = [reader.peek_at(int(s), width) for s in starts]
            assert got.tolist() == want, width

    def test_matches_unpack_fields(self):
        rng = np.random.default_rng(10)
        words = rng.integers(0, 2**63, 32, dtype=np.uint64)
        starts = np.sort(rng.integers(0, 31 * 64, 50))
        for width in (5, 31, 57):
            assert np.array_equal(
                FieldGather(words)(starts, width),
                unpack_fields(words, starts, width),
            )

    def test_zero_width_and_empty(self):
        gather = FieldGather(np.ones(4, dtype=np.uint64))
        assert gather(np.array([0, 5]), 0).tolist() == [0, 0]
        assert len(gather(np.zeros(0, dtype=np.int64), 13)) == 0
