"""Integration tests: the full pipeline over realistic dataset generators."""

import numpy as np
import pytest

from repro import NeaTS, NeaTSLossy, load
from repro.bench.registry import ALL_NAMES, make_compressor
from repro.data import DATASETS


class TestNeaTSOnDatasets:
    @pytest.mark.parametrize("name", list(DATASETS))
    def test_lossless_roundtrip_every_dataset(self, name):
        y = load(name, n=1500)
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)

    @pytest.mark.parametrize("name", ["IT", "US", "ECG", "BT"])
    def test_access_and_range_on_datasets(self, name, rng):
        y = load(name, n=1500)
        c = NeaTS().compress(y)
        for k in rng.integers(0, 1500, 30).tolist():
            assert c.access(k) == y[k]
        assert np.array_equal(c.decompress_range(300, 900), y[300:900])

    @pytest.mark.parametrize("name", ["IT", "AP", "DU"])
    def test_lossy_bound_on_datasets(self, name):
        y = load(name, n=1500)
        eps = 0.01 * (int(y.max()) - int(y.min()))
        series = NeaTSLossy(eps).compress(y)
        assert series.max_error(y) <= eps + 1e-6

    def test_neats_compresses_every_dataset_below_80pct(self):
        for name in DATASETS:
            y = load(name, n=1500)
            c = NeaTS().compress(y)
            assert c.compression_ratio() < 0.95, name


class TestCrossCompressorAgreement:
    def test_all_thirteen_agree_on_one_dataset(self, rng):
        """Every compressor in the Table III line-up reproduces the series and
        answers random access identically."""
        y = load("CT", n=1300)
        digits = DATASETS["CT"].digits
        positions = rng.integers(0, len(y), 15).tolist()
        for name in ALL_NAMES:
            comp = make_compressor(name, digits=digits)
            c = comp.compress(y)
            assert np.array_equal(c.decompress(), y), name
            for k in positions:
                assert c.access(k) == y[k], (name, k)

    def test_range_queries_agree(self, rng):
        y = load("DU", n=1200)
        digits = DATASETS["DU"].digits
        for name in ("Zstd*", "DAC", "LeCo", "ALP", "NeaTS"):
            comp = make_compressor(name, digits=digits)
            c = comp.compress(y)
            for lo, hi in [(0, 50), (500, 1100), (1195, 1200)]:
                assert np.array_equal(c.decompress_range(lo, hi), y[lo:hi]), name


class TestPaperShapeClaims:
    """The qualitative results of the paper, checked at reproduction scale."""

    def test_neats_best_special_purpose_ratio_on_most_datasets(self):
        special = ["Chimp128", "Chimp", "TSXor", "DAC", "Gorilla", "LeCo", "ALP"]
        wins = 0
        names = ["IT", "US", "AP", "DP", "DU", "BM"]
        for ds in names:
            y = load(ds, n=3000)
            digits = DATASETS[ds].digits
            neats_bits = make_compressor("NeaTS").compress(y).size_bits()
            best_other = min(
                make_compressor(c, digits=digits).compress(y).size_bits()
                for c in special
            )
            if neats_bits <= best_other:
                wins += 1
        assert wins >= len(names) - 1  # paper: best on 14/16

    def test_neats_l_beats_pla_on_nonlinear_data(self):
        from repro.baselines import PlaCompressor

        for ds in ("IT", "AP", "DU"):
            y = load(ds, n=2000)
            eps = 0.01 * (int(y.max()) - int(y.min()))
            nl = NeaTSLossy(eps).compress(y)
            pla = PlaCompressor(eps).compress(y)
            assert nl.size_bits() <= pla.size_bits(), ds

    def test_neats_random_access_faster_than_blockwise(self, rng):
        import time

        y = load("CT", n=3000)
        neats = make_compressor("NeaTS").compress(y)
        xz = make_compressor("Xz").compress(y)
        ks = rng.integers(0, len(y), 100).tolist()

        t0 = time.perf_counter()
        for k in ks:
            neats.access(k)
        t_neats = time.perf_counter() - t0

        t0 = time.perf_counter()
        for k in ks:
            xz.access(k)
        t_xz = time.perf_counter() - t0
        assert t_neats < t_xz  # paper: orders of magnitude

    def test_gorilla_weak_ratio_fast_family(self):
        y = load("US", n=2000)
        gorilla = make_compressor("Gorilla").compress(y)
        neats = make_compressor("NeaTS").compress(y)
        assert gorilla.size_bits() > neats.size_bits()
