"""Integration tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data import read_csv, write_csv


@pytest.fixture
def csv_file(tmp_path, rng):
    values = np.cumsum(rng.integers(-50, 51, 800)).astype(np.int64)
    path = tmp_path / "in.csv"
    write_csv(path, values, digits=2)
    return path, values


class TestCompressDecompress:
    def test_roundtrip(self, csv_file, tmp_path, capsys):
        path, values = csv_file
        archive = tmp_path / "out.neats"
        restored = tmp_path / "restored.csv"
        assert main(["compress", str(path), str(archive), "--digits", "2"]) == 0
        assert archive.exists()
        assert main(["decompress", str(archive), str(restored)]) == 0
        assert np.array_equal(read_csv(restored, 2), values)

    def test_custom_models(self, csv_file, tmp_path):
        path, values = csv_file
        archive = tmp_path / "out.neats"
        code = main([
            "compress", str(path), str(archive),
            "--digits", "2", "--models", "linear",
        ])
        assert code == 0

    def test_bitvector_rank_mode(self, csv_file, tmp_path):
        path, _ = csv_file
        archive = tmp_path / "out.neats"
        assert main([
            "compress", str(path), str(archive),
            "--digits", "2", "--rank-mode", "bitvector",
        ]) == 0


class TestInfoAccess:
    @pytest.fixture
    def archive(self, csv_file, tmp_path):
        path, values = csv_file
        archive = tmp_path / "a.neats"
        main(["compress", str(path), str(archive), "--digits", "2"])
        return archive, values

    def test_info(self, archive, capsys):
        path, values = archive
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"{len(values):,}" in out
        assert "fragments" in out

    def test_access(self, archive, capsys):
        path, values = archive
        assert main(["access", str(path), "0", "400"]) == 0
        out = capsys.readouterr().out
        assert f"{values[0] / 100:.2f}" in out
        assert f"{values[400] / 100:.2f}" in out

    def test_access_out_of_range(self, archive, capsys):
        path, _ = archive
        assert main(["access", str(path), "100000"]) == 1

    def test_info_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.neats"
        bad.write_bytes(b"garbage bytes here")
        with pytest.raises(ValueError):
            main(["info", str(bad)])


class TestCodecsCommand:
    def test_lists_every_codec_with_flags(self, capsys):
        from repro.codecs import available_codecs

        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        for cid in available_codecs():
            assert cid in out
        assert "lossy" in out and "eps" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["codecs", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_id = {row["id"]: row for row in rows}
        assert by_id["pla"]["lossy"] and by_id["pla"]["required_params"] == ["eps"]
        assert by_id["neats_l"]["native_random_access"]
        assert not by_id["gorilla"]["lossy"]
        assert by_id["alp"]["needs_digits"]
        assert all(row["native_loader"] for row in rows)


class TestLossyCompress:
    def test_compress_info_access_with_eps(self, csv_file, tmp_path, capsys):
        path, values = csv_file
        archive = tmp_path / "out.rpac"
        # --eps is in original value units; --digits 2 scales it by 100.
        assert main(["compress", str(path), str(archive),
                     "--codec", "pla", "--eps", "0.25", "--digits", "2"]) == 0
        assert "segments" in capsys.readouterr().out
        assert main(["info", str(archive), "--lazy"]) == 0
        out = capsys.readouterr().out
        assert "pla" in out and "lossy" in out and "0.25" in out
        assert main(["access", str(archive), "0", "400", "--lazy"]) == 0
        shown = capsys.readouterr().out
        for k in (0, 400):
            printed = float(shown.splitlines()[0 if k == 0 else 1].split()[1])
            assert abs(printed - values[k] / 100) <= 0.25 + 1e-9

    def test_decompress_writes_the_approximation(self, csv_file, tmp_path):
        path, values = csv_file
        archive = tmp_path / "out.rpac"
        restored = tmp_path / "restored.csv"
        assert main(["compress", str(path), str(archive),
                     "--codec", "aa", "--eps", "0.5", "--digits", "2"]) == 0
        assert main(["decompress", str(archive), str(restored)]) == 0
        got = read_csv(restored, 2)
        assert np.max(np.abs(got - values)) <= 50 + 1  # eps*100 + csv rounding

    def test_lossy_codec_without_eps_exits(self, csv_file, tmp_path):
        path, _ = csv_file
        with pytest.raises(SystemExit):
            main(["compress", str(path), str(tmp_path / "x.rpac"),
                  "--codec", "neats_l", "--digits", "2"])

    def test_codec_param_passthrough(self, csv_file, tmp_path, capsys):
        path, _ = csv_file
        archive = tmp_path / "out.rpac"
        assert main(["compress", str(path), str(archive), "--codec", "neats_l",
                     "--eps", "0.5", "--digits", "2",
                     "--codec-param", 'models=["linear"]']) == 0
        capsys.readouterr()
        assert main(["info", str(archive)]) == 0
        assert "models=['linear']" in capsys.readouterr().out

    def test_bad_codec_param_exits(self, csv_file, tmp_path):
        path, _ = csv_file
        with pytest.raises(SystemExit):
            main(["compress", str(path), str(tmp_path / "x.rpac"),
                  "--codec", "pla", "--eps", "1", "--codec-param", "notkv"])


class TestAppendCommand:
    def test_create_append_read_seal(self, tmp_path, rng, capsys):
        values = np.cumsum(rng.integers(-30, 31, 1200)).astype(np.int64)
        b1, b2 = tmp_path / "b1.csv", tmp_path / "b2.csv"
        write_csv(b1, values[:800], digits=2)
        write_csv(b2, values[800:], digits=2)
        log = tmp_path / "s.rpal"
        assert main(["append", str(log), str(b1), "--codec", "gorilla",
                     "--digits", "2"]) == 0
        assert main(["append", str(log), str(b2)]) == 0
        assert "2 record(s)" in capsys.readouterr().out
        assert main(["info", str(log), "--lazy"]) == 0
        out = capsys.readouterr().out
        assert "append runs:   2" in out
        assert "1,200" in out
        restored = tmp_path / "restored.csv"
        assert main(["decompress", str(log), str(restored)]) == 0
        assert np.array_equal(read_csv(restored, 2), values)
        assert main(["append", str(log), str(b2), "--seal"]) == 0
        assert log.read_bytes()[:8] == b"RPAC0001"

    def test_codec_conflict_fails_cleanly(self, tmp_path, rng, capsys):
        b1 = tmp_path / "b1.csv"
        write_csv(b1, np.arange(100, dtype=np.int64), digits=0)
        log = tmp_path / "s.rpal"
        assert main(["append", str(log), str(b1)]) == 0  # default: gorilla
        assert main(["append", str(log), str(b1), "--codec", "zstd"]) == 1
        assert "created with codec" in capsys.readouterr().err

    def test_digits_conflict_fails_cleanly(self, tmp_path, rng, capsys):
        b1 = tmp_path / "b1.csv"
        write_csv(b1, np.arange(100, dtype=np.int64), digits=1)
        log = tmp_path / "s.rpal"
        assert main(["append", str(log), str(b1), "--digits", "1"]) == 0
        assert main(["append", str(log), str(b1), "--digits", "3"]) == 1
        assert "mix scales" in capsys.readouterr().err


class TestGenerate:
    def test_generate_dataset(self, tmp_path, capsys):
        out = tmp_path / "it.csv"
        assert main(["generate", "IT", str(out), "--n", "200"]) == 0
        values = read_csv(out, 2)
        assert len(values) == 200

    def test_generate_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "NOPE", str(tmp_path / "x.csv")])


class TestDbFamily:
    @pytest.fixture
    def db_root(self, tmp_path):
        for name, scale in (("a", 1), ("b", 3)):
            values = (np.arange(1500) * scale).astype(np.int64)
            write_csv(tmp_path / f"{name}.csv", values, digits=0)
        root = tmp_path / "db"
        assert main(["db", "init", str(root), "--seal-threshold", "256",
                     "--cold-codec", "leats"]) == 0
        assert main(["db", "ingest", str(root), str(tmp_path / "a.csv"),
                     str(tmp_path / "b.csv"), "--workers", "2"]) == 0
        return root

    def test_init_twice_fails(self, db_root, capsys):
        assert main(["db", "init", str(db_root)]) == 1

    def test_info_lists_series(self, db_root, capsys):
        assert main(["db", "info", str(db_root)]) == 0
        out = capsys.readouterr().out
        assert "a: 1,500 values" in out and "b: 1,500 values" in out

    def test_query_at_and_range(self, db_root, capsys):
        assert main(["db", "query", str(db_root), "b", "--at", "7"]) == 0
        assert "b[7] 21" in capsys.readouterr().out
        assert main(["db", "query", str(db_root), "a",
                     "--range", "10", "13"]) == 0
        assert capsys.readouterr().out.split() == ["10", "11", "12"]

    def test_query_unknown_series(self, db_root, capsys):
        assert main(["db", "query", str(db_root), "nope"]) == 1

    def test_query_out_of_range(self, db_root, capsys):
        assert main(["db", "query", str(db_root), "a", "--at", "99999"]) == 1

    def test_query_range_out_of_bounds(self, db_root, capsys):
        assert main(["db", "query", str(db_root), "a",
                     "--range", "0", "99999"]) == 1
        assert "out of range" in capsys.readouterr().err
        assert main(["db", "query", str(db_root), "a",
                     "--range", "-5", "3"]) == 1

    def test_query_uses_recorded_digits(self, db_root, tmp_path, capsys):
        write_csv(tmp_path / "scaled.csv", np.arange(300, dtype=np.int64),
                  digits=0)
        assert main(["db", "ingest", str(db_root), str(tmp_path / "scaled.csv"),
                     "--digits", "2"]) == 0
        capsys.readouterr()
        # no --digits on query: the manifest's recorded scaling applies
        assert main(["db", "query", str(db_root), "scaled", "--at", "123"]) == 0
        assert "scaled[123] 123.00" in capsys.readouterr().out
        assert main(["db", "info", str(db_root)]) == 0
        assert "digits 2" in capsys.readouterr().out

    def test_compact_then_query(self, db_root, capsys):
        assert main(["db", "compact", str(db_root)]) == 0
        assert "compacted 2 shard(s)" in capsys.readouterr().out
        assert main(["db", "query", str(db_root), "b", "--at", "1000"]) == 0
        assert "b[1000] 3000" in capsys.readouterr().out

    def test_series_names_flag(self, db_root, tmp_path, capsys):
        write_csv(tmp_path / "c.csv", np.arange(300, dtype=np.int64), digits=0)
        assert main(["db", "ingest", str(db_root), str(tmp_path / "c.csv"),
                     "--series", "renamed"]) == 0
        assert main(["db", "query", str(db_root), "renamed"]) == 0
        assert "renamed: 300 values" in capsys.readouterr().out

    def test_series_names_count_mismatch(self, db_root, tmp_path):
        assert main(["db", "ingest", str(db_root), str(tmp_path / "a.csv"),
                     "--series", "x,y"]) == 1

    def test_lossy_cold_codec_needs_allow_lossy(self, tmp_path, capsys):
        root = tmp_path / "lossydb"
        assert main(["db", "init", str(root), "--cold-codec", "pla",
                     "--eps", "2"]) == 1
        assert "allow_lossy" in capsys.readouterr().err
        assert main(["db", "init", str(root), "--cold-codec", "pla"]) == 1
        assert "--eps" in capsys.readouterr().err
        assert main(["db", "init", str(root), "--cold-codec", "pla",
                     "--eps", "2", "--allow-lossy",
                     "--seal-threshold", "128"]) == 0

    def test_lossy_cold_compact_answers_within_eps(self, tmp_path, capsys):
        values = np.cumsum(np.ones(600, dtype=np.int64) * 3)
        write_csv(tmp_path / "s.csv", values, digits=0)
        root = tmp_path / "lossydb"
        assert main(["db", "init", str(root), "--cold-codec", "pla",
                     "--eps", "2", "--allow-lossy",
                     "--seal-threshold", "128"]) == 0
        assert main(["db", "ingest", str(root), str(tmp_path / "s.csv")]) == 0
        assert main(["db", "compact", str(root)]) == 0
        capsys.readouterr()
        assert main(["db", "query", str(root), "s", "--at", "100"]) == 0
        printed = float(capsys.readouterr().out.split()[1])
        assert abs(printed - values[100]) <= 2 + 1e-9

    def test_duplicate_stems_rejected(self, db_root, tmp_path, capsys):
        (tmp_path / "d1").mkdir()
        (tmp_path / "d2").mkdir()
        for d in ("d1", "d2"):
            write_csv(tmp_path / d / "same.csv",
                      np.arange(100, dtype=np.int64), digits=0)
        assert main(["db", "ingest", str(db_root),
                     str(tmp_path / "d1" / "same.csv"),
                     str(tmp_path / "d2" / "same.csv")]) == 1
        assert "duplicate series ids" in capsys.readouterr().err
