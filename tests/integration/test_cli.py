"""Integration tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import read_csv, write_csv


@pytest.fixture
def csv_file(tmp_path, rng):
    values = np.cumsum(rng.integers(-50, 51, 800)).astype(np.int64)
    path = tmp_path / "in.csv"
    write_csv(path, values, digits=2)
    return path, values


class TestCompressDecompress:
    def test_roundtrip(self, csv_file, tmp_path, capsys):
        path, values = csv_file
        archive = tmp_path / "out.neats"
        restored = tmp_path / "restored.csv"
        assert main(["compress", str(path), str(archive), "--digits", "2"]) == 0
        assert archive.exists()
        assert main(["decompress", str(archive), str(restored)]) == 0
        assert np.array_equal(read_csv(restored, 2), values)

    def test_custom_models(self, csv_file, tmp_path):
        path, values = csv_file
        archive = tmp_path / "out.neats"
        code = main([
            "compress", str(path), str(archive),
            "--digits", "2", "--models", "linear",
        ])
        assert code == 0

    def test_bitvector_rank_mode(self, csv_file, tmp_path):
        path, _ = csv_file
        archive = tmp_path / "out.neats"
        assert main([
            "compress", str(path), str(archive),
            "--digits", "2", "--rank-mode", "bitvector",
        ]) == 0


class TestInfoAccess:
    @pytest.fixture
    def archive(self, csv_file, tmp_path):
        path, values = csv_file
        archive = tmp_path / "a.neats"
        main(["compress", str(path), str(archive), "--digits", "2"])
        return archive, values

    def test_info(self, archive, capsys):
        path, values = archive
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"{len(values):,}" in out
        assert "fragments" in out

    def test_access(self, archive, capsys):
        path, values = archive
        assert main(["access", str(path), "0", "400"]) == 0
        out = capsys.readouterr().out
        assert f"{values[0] / 100:.2f}" in out
        assert f"{values[400] / 100:.2f}" in out

    def test_access_out_of_range(self, archive, capsys):
        path, _ = archive
        assert main(["access", str(path), "100000"]) == 1

    def test_info_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.neats"
        bad.write_bytes(b"garbage bytes here")
        with pytest.raises(ValueError):
            main(["info", str(bad)])


class TestGenerate:
    def test_generate_dataset(self, tmp_path, capsys):
        out = tmp_path / "it.csv"
        assert main(["generate", "IT", str(out), "--n", "200"]) == 0
        values = read_csv(out, 2)
        assert len(values) == 200

    def test_generate_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "NOPE", str(tmp_path / "x.csv")])
