"""Failure injection and adversarial-input tests."""

import numpy as np
import pytest

from repro import NeaTS
from repro.baselines import pylz
from repro.core.storage import NeaTSStorage


class TestCorruptArchives:
    @pytest.fixture
    def blob(self, smooth_series):
        return NeaTS().compress(smooth_series).storage.to_bytes()

    def test_truncated_archive_raises(self, blob):
        for cut in (4, len(blob) // 2, len(blob) - 8):
            with pytest.raises(Exception):
                st = NeaTSStorage.from_bytes(blob[:cut])
                st.decompress()  # either construction or decode must fail

    def test_wrong_magic_rejected(self, blob):
        corrupted = b"XXXXXXXX" + blob[8:]
        with pytest.raises(ValueError):
            NeaTSStorage.from_bytes(corrupted)

    def test_cli_rejects_non_archive(self, tmp_path):
        from repro.cli import main

        f = tmp_path / "noise.bin"
        f.write_bytes(bytes(range(256)) * 10)
        with pytest.raises(ValueError):
            main(["info", str(f)])


class TestPyLZCorruption:
    def test_truncated_stream(self):
        blob = pylz.compress(b"the quick brown fox " * 100)
        for cut in (1, len(blob) // 3, len(blob) - 2):
            with pytest.raises((ValueError, IndexError)):
                pylz.decompress(blob[:cut])

    def test_bad_offset_detected(self):
        # Hand-craft a stream with an offset pointing before the output start.
        from repro.bits.codes import encode_varint

        buf = bytearray()
        encode_varint(100, buf)   # claimed size
        encode_varint(2, buf)     # 2 literals
        buf += b"ab"
        encode_varint(50, buf)    # match length
        encode_varint(90, buf)    # offset > produced output
        with pytest.raises(ValueError):
            pylz.decompress(bytes(buf))


class TestAdversarialSeries:
    """Inputs engineered against specific code paths."""

    def test_sawtooth_forces_tiny_fragments(self):
        y = np.tile([0, 1000, -1000, 500], 300).astype(np.int64)
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_exact_function_shapes_roundtrip(self):
        xs = np.arange(1, 1500, dtype=np.float64)
        shapes = [
            (7 * xs + 3),
            (0.002 * xs * xs + 50),
            (40 * np.sqrt(xs) + 5),
            (100 * np.exp(0.002 * xs)),
        ]
        for shape in shapes:
            y = np.round(shape).astype(np.int64)
            c = NeaTS().compress(y)
            assert np.array_equal(c.decompress(), y)
            # exact shapes need few fragments (exponential data rounded to
            # integers deviates from the ideal curve, costing a few more)
            assert c.num_fragments <= 16

    def test_step_function(self):
        y = np.repeat(np.arange(20, dtype=np.int64) * 10**6, 100)
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_single_outlier_in_smooth_data(self, smooth_series):
        y = smooth_series.copy()
        y[997] = 2**55
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)
        assert c.access(997) == 2**55

    def test_min_int_range_values(self):
        # large magnitudes both signs; the shift must not overflow float64
        y = np.array([-(2**52), 2**52, 0, -(2**52), 2**52] * 50,
                     dtype=np.int64)
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_supported_domain_boundary(self):
        y = np.array([-(2**59), 2**59, 7], dtype=np.int64)
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_out_of_domain_rejected(self):
        y = np.array([1 << 61], dtype=np.int64)
        with pytest.raises(ValueError, match="2\\^60"):
            NeaTS().compress(y)

    def test_two_points(self):
        y = np.array([5, -5], dtype=np.int64)
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)

    def test_alternating_max_noise(self, rng):
        # worst case for functional approximation: pure white noise
        y = rng.integers(-(2**30), 2**30, 1000).astype(np.int64)
        c = NeaTS().compress(y)
        assert np.array_equal(c.decompress(), y)
        # incompressible data must not blow up beyond raw + small overhead
        assert c.compression_ratio() < 1.15
