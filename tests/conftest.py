"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_series(rng):
    """A small sine-plus-noise integer series (2000 points)."""
    n = 2000
    y = 1000 * np.sin(np.arange(n) / 60.0) + rng.normal(0, 15, n)
    return y.astype(np.int64)


@pytest.fixture
def walk_series(rng):
    """A random-walk integer series (1500 points)."""
    return np.cumsum(rng.integers(-50, 51, 1500)).astype(np.int64)


@pytest.fixture
def spiky_series(rng):
    """A bursty series with large outliers (1000 points)."""
    base = rng.integers(-20, 21, 1000)
    spikes = (rng.random(1000) < 0.02) * rng.integers(-100000, 100000, 1000)
    return (base + spikes).astype(np.int64)


@pytest.fixture
def constant_series():
    """A constant series (500 points)."""
    return np.full(500, 42, dtype=np.int64)
