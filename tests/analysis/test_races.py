"""Schedule-explorer-driven concurrency stress suite.

This is where the three pieces of the concurrency kit meet: the
:class:`~repro.analysis.schedule.Scheduler` serialises real threads
through seeded interleavings, the sanitizer's ``SanitizedLock`` turns
every SeriesDB lock boundary into a checkpoint, and the vector-clock
ledger judges whether the locks actually ordered the instrumented
accesses.  A correctly-locked SeriesDB must come out clean under *every*
explored interleaving; a reproducible trace means a failure here replays
exactly with ``Scheduler(seed=...)``.

Seeds can be pinned with ``REPRO_SCHED_SEED`` (one seed instead of the
default three) — the CI ``race`` job runs this file once per fixed seed.
"""

import json
import os
import threading

import numpy as np
import pytest

import repro
from repro.analysis.sanitizer import Ledger, active_ledger, disable, enable
from repro.analysis.schedule import Scheduler
from repro.codecs import open_archive, save
from repro.store import SeriesDB


def _seeds():
    pinned = os.environ.get("REPRO_SCHED_SEED")
    if pinned is not None:
        return [int(pinned)]
    return [0, 1, 2]


@pytest.fixture
def ledger():
    """Enable the sanitizer on a private ledger; always restore after."""
    was_active = active_ledger()
    if was_active is not None:
        disable()
    ledger = enable(Ledger())
    try:
        yield ledger
    finally:
        disable()
        if was_active is not None:
            enable(was_active)


def _values(seed, n=600):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.integers(-9, 10, n)).astype(np.int64)


class TestSeriesDBStress:
    @pytest.mark.parametrize("seed", _seeds())
    def test_ingest_compact_query_close_is_clean(self, ledger, tmp_path, seed):
        """Concurrent ingest + compact + query + close on ONE SeriesDB.

        Every public entry point takes the db lock, so no interleaving may
        produce a vector-clock race, a lock-order inversion, or an
        AttributeError — late tasks hitting the poisoned handle see the
        contracted ValueError and stop.
        """
        db = SeriesDB(tmp_path / f"stress-{seed}", seal_threshold=256,
                      cache_capacity=2)
        db.ingest("warm", _values(99))  # so query/compact have a target
        errors: list = []

        def guard(fn):
            def body():
                try:
                    fn()
                except ValueError as exc:  # the post-close contract
                    assert "closed" in str(exc)
                except BaseException as exc:  # pragma: no cover - fail loud
                    errors.append(exc)
                    raise

            return body

        def ingests():
            for chunk in range(3):
                db.ingest("hot", _values(chunk, 100))

        def compacts():
            for _ in range(2):
                db.compact()

        def queries():
            for _ in range(3):
                if "warm" in db:
                    db.access("warm", 5)
                    db.range("warm", 0, 50)

        def closes():
            db.flush()
            db.close()

        sched = Scheduler(seed, step_timeout=30.0)
        sched.add("ingest", guard(ingests))
        sched.add("compact", guard(compacts))
        sched.add("query", guard(queries))
        sched.add("close", guard(closes))
        trace = sched.run()
        db.close()  # idempotent no matter where the schedule stopped

        assert errors == []
        assert len(trace) > 4  # the tasks really interleaved
        report = ledger.report()
        assert report["races"] == []
        assert report["inversions"] == []

    def test_same_seed_same_trace(self, tmp_path):
        """The reproducibility contract, end-to-end on the real store."""

        def run(tag):
            root = tmp_path / tag
            db = SeriesDB(root, seal_threshold=256)
            sched = Scheduler(7)
            sched.add("ingest", lambda: db.ingest("s", _values(1, 50)))
            sched.add("query", lambda: db.count("s") if "s" in db else None)
            sched.add("close", db.close)
            try:
                # Under REPRO_SANITIZE the checkpoint labels carry the
                # sanitized lock's name, which embeds the db root —
                # canonicalise it so runs over distinct tmp dirs compare.
                return json.dumps(sched.run()).replace(str(root), "<root>")
            finally:
                db.close()

        assert run("a") == run("b")


class TestLazyArchiveStress:
    @pytest.mark.parametrize("seed", _seeds())
    def test_concurrent_decode_and_close(self, ledger, tmp_path, seed):
        """Concurrent lazy decode + close on one Archive.

        Whatever the interleaving, a decode either completes against the
        live map or raises the post-close ValueError — never a torn read,
        never a leaked map at exit.
        """
        series = _values(23, 4000)
        path = tmp_path / "series.rpac"
        save(path, repro.compress(series, codec="gorilla"))
        archive = open_archive(path, lazy=True)
        outcomes: list = []

        def decode(tag):
            def body():
                try:
                    got = archive.decompress()
                    assert np.array_equal(np.asarray(got), series)
                    outcomes.append((tag, "decoded"))
                except ValueError as exc:
                    assert "closed" in str(exc)
                    outcomes.append((tag, "closed"))

            return body

        sched = Scheduler(seed)
        sched.add("decode-1", decode("decode-1"))
        sched.add("decode-2", decode("decode-2"))
        sched.add("close", archive.close)
        sched.run()
        archive.close()

        assert len(outcomes) == 2
        assert {tag for tag, _ in outcomes} == {"decode-1", "decode-2"}
        report = ledger.report()
        assert report["leaks"] == []
        assert report["races"] == []


class TestDesynchronisedUnderSchedule:
    def test_scheduler_surfaces_the_race_deterministically(self, ledger):
        """A de-synchronised class races under the scheduler too — and the
        report carries both stacks, same as the free-running case."""

        class Unsafe:
            def __init__(self):
                self.items = []

            def poke(self):
                ledger.note_write("Unsafe.items")
                self.items.append(threading.current_thread().name)

        box = Unsafe()
        sched = Scheduler(0)
        sched.add("w1", box.poke)
        sched.add("w2", box.poke)
        sched.run()

        (race,) = ledger.races
        assert race["kind"] == "write-write"
        assert race["var"] == "Unsafe.items"
        assert race["stack"] and race["prior_stack"]
