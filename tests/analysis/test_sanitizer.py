"""The runtime sanitizer behind REPRO_SANITIZE.

Each test enables the sanitizer with its *own* ledger (so deliberate
violations never dirty the process-global one), provokes one behaviour —
a leaked map, a defended use-after-close, a lock-order inversion — and
asserts the ledger saw exactly that.  ``disable()`` in a finally restores
the unpatched functions for the rest of the suite.
"""

import threading

import numpy as np
import pytest

import repro
from repro.analysis.sanitizer import (
    Ledger,
    SanitizedLock,
    active_ledger,
    disable,
    enable,
)
from repro.codecs import open_archive, save


@pytest.fixture
def series():
    rng = np.random.default_rng(7)
    return np.cumsum(rng.integers(-5, 6, 3000)).astype(np.int64)


@pytest.fixture
def archive_path(series, tmp_path):
    path = tmp_path / "series.rpac"
    save(path, repro.compress(series, codec="gorilla"))
    return path


@pytest.fixture
def ledger():
    """Enable the sanitizer on a private ledger; always restore after."""
    was_active = active_ledger()
    if was_active is not None:
        disable()
    ledger = enable(Ledger())
    try:
        yield ledger
    finally:
        disable()
        if was_active is not None:
            # Re-enable the previous ledger (e.g. a REPRO_SANITIZE=1 run).
            enable(was_active)


class TestMapAccounting:
    def test_clean_usage_is_clean(self, ledger, archive_path, series):
        with open_archive(archive_path, lazy=True) as archive:
            assert np.array_equal(archive.decompress(), series)
        report = ledger.report()
        assert report["clean"]
        assert report["leaks"] == []

    def test_unclosed_map_is_a_leak(self, ledger, archive_path):
        archive = open_archive(archive_path, lazy=True)
        archive.decompress()
        (leak,) = ledger.live_maps()
        assert leak["path"] == str(archive_path)
        assert leak["stack"]  # the creating call stack came along
        assert not ledger.report()["clean"]
        # Closing clears the leak: verdict flips back to clean.
        archive.close()
        assert ledger.report()["clean"]

    def test_eager_open_never_maps(self, ledger, archive_path):
        archive = open_archive(archive_path)  # eager: read + parse, no mmap
        archive.decompress()
        assert ledger.live_maps() == []


class TestUseAfterClose:
    def test_defended_use_is_recorded_not_fatal(self, ledger, archive_path):
        archive = open_archive(archive_path, lazy=True)
        archive.close()
        with pytest.raises(ValueError, match="closed"):
            archive.decompress()
        report = ledger.report()
        (event,) = report["caught_use_after_close"]
        assert event["path"] == str(archive_path)
        # The archive already raised in the caller's face: informational,
        # not a verdict-flipping violation.
        assert report["clean"]


class TestLockOrder:
    def test_nested_consistent_order_is_clean(self, ledger):
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert ledger.report()["inversions"] == []

    def test_inversion_is_recorded(self, ledger):
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        (inversion,) = ledger.report()["inversions"]
        assert inversion["edge"] == "B -> A"
        assert inversion["reverse"] == "A -> B"
        assert not ledger.report()["clean"]

    def test_reentrant_acquire_is_fine(self, ledger):
        a = SanitizedLock("A", ledger)
        with a:
            with a:
                pass
        assert ledger.report()["inversions"] == []

    def test_cross_thread_inversion_detected(self, ledger):
        """Per-thread held stacks, one global order graph."""
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        with a:
            with b:
                pass

        def other_thread():
            with b:
                with a:
                    pass

        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
        assert len(ledger.report()["inversions"]) == 1

    def test_seriesdb_lock_is_wrapped(self, ledger, tmp_path, series):
        with repro.SeriesDB(tmp_path / "db", hot_codec="gorilla") as db:
            assert isinstance(db._lock, SanitizedLock)
            db.ingest("s1", series)
            assert np.array_equal(db.decompress("s1"), series)
        assert ledger.report()["inversions"] == []


class TestEnableDisable:
    def test_disable_restores_patches(self, ledger, archive_path):
        from repro.codecs import container

        patched = container.mmap_view
        disable()
        try:
            assert container.mmap_view is not patched
            assert active_ledger() is None
            # Unpatched: new maps are no longer recorded.
            archive = open_archive(archive_path, lazy=True)
            archive.decompress()
            assert ledger.live_maps() == []
            archive.close()
        finally:
            enable(ledger)  # the fixture's finally expects an active state

    def test_enable_is_idempotent(self, ledger):
        assert enable() is ledger  # re-enable keeps the active ledger
        other = Ledger()
        assert enable(other) is other  # ...unless a new one is handed in
        assert active_ledger() is other
        enable(ledger)

    def test_render_clean_and_dirty(self, ledger):
        assert ledger.render() == "repro sanitizer: clean"
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        rendered = ledger.render()
        assert "VIOLATIONS" in rendered
        assert "LOCK-ORDER INVERSION" in rendered
