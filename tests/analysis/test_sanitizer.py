"""The runtime sanitizer behind REPRO_SANITIZE.

Each test enables the sanitizer with its *own* ledger (so deliberate
violations never dirty the process-global one), provokes one behaviour —
a leaked map, a defended use-after-close, a lock-order inversion — and
asserts the ledger saw exactly that.  ``disable()`` in a finally restores
the unpatched functions for the rest of the suite.
"""

import threading

import numpy as np
import pytest

import repro
from repro.analysis.sanitizer import (
    Ledger,
    SanitizedLock,
    active_ledger,
    disable,
    enable,
)
from repro.codecs import open_archive, save


@pytest.fixture
def series():
    rng = np.random.default_rng(7)
    return np.cumsum(rng.integers(-5, 6, 3000)).astype(np.int64)


@pytest.fixture
def archive_path(series, tmp_path):
    path = tmp_path / "series.rpac"
    save(path, repro.compress(series, codec="gorilla"))
    return path


@pytest.fixture
def ledger():
    """Enable the sanitizer on a private ledger; always restore after."""
    was_active = active_ledger()
    if was_active is not None:
        disable()
    ledger = enable(Ledger())
    try:
        yield ledger
    finally:
        disable()
        if was_active is not None:
            # Re-enable the previous ledger (e.g. a REPRO_SANITIZE=1 run).
            enable(was_active)


class TestMapAccounting:
    def test_clean_usage_is_clean(self, ledger, archive_path, series):
        with open_archive(archive_path, lazy=True) as archive:
            assert np.array_equal(archive.decompress(), series)
        report = ledger.report()
        assert report["clean"]
        assert report["leaks"] == []

    def test_unclosed_map_is_a_leak(self, ledger, archive_path):
        archive = open_archive(archive_path, lazy=True)
        archive.decompress()
        (leak,) = ledger.live_maps()
        assert leak["path"] == str(archive_path)
        assert leak["stack"]  # the creating call stack came along
        assert not ledger.report()["clean"]
        # Closing clears the leak: verdict flips back to clean.
        archive.close()
        assert ledger.report()["clean"]

    def test_eager_open_never_maps(self, ledger, archive_path):
        archive = open_archive(archive_path)  # eager: read + parse, no mmap
        archive.decompress()
        assert ledger.live_maps() == []


class TestUseAfterClose:
    def test_defended_use_is_recorded_not_fatal(self, ledger, archive_path):
        archive = open_archive(archive_path, lazy=True)
        archive.close()
        with pytest.raises(ValueError, match="closed"):
            archive.decompress()
        report = ledger.report()
        (event,) = report["caught_use_after_close"]
        assert event["path"] == str(archive_path)
        # The archive already raised in the caller's face: informational,
        # not a verdict-flipping violation.
        assert report["clean"]


class TestLockOrder:
    def test_nested_consistent_order_is_clean(self, ledger):
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert ledger.report()["inversions"] == []

    def test_inversion_is_recorded(self, ledger):
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        (inversion,) = ledger.report()["inversions"]
        assert inversion["edge"] == "B -> A"
        assert inversion["reverse"] == "A -> B"
        assert not ledger.report()["clean"]

    def test_reentrant_acquire_is_fine(self, ledger):
        a = SanitizedLock("A", ledger)
        with a:
            with a:
                pass
        assert ledger.report()["inversions"] == []

    def test_cross_thread_inversion_detected(self, ledger):
        """Per-thread held stacks, one global order graph."""
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        with a:
            with b:
                pass

        def other_thread():
            with b:
                with a:
                    pass

        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
        assert len(ledger.report()["inversions"]) == 1

    def test_seriesdb_lock_is_wrapped(self, ledger, tmp_path, series):
        with repro.SeriesDB(tmp_path / "db", hot_codec="gorilla") as db:
            assert isinstance(db._lock, SanitizedLock)
            db.ingest("s1", series)
            assert np.array_equal(db.decompress("s1"), series)
        assert ledger.report()["inversions"] == []


class TestMultiThreadedLockOrder:
    """PR 7's bookkeeping under real contention: 8 interleaving threads."""

    def test_eight_threads_consistent_order_is_clean(self, ledger):
        locks = [SanitizedLock(f"L{i}", ledger) for i in range(4)]
        barrier = threading.Barrier(8)

        def worker(rounds: int = 25) -> None:
            barrier.wait()  # maximise real interleaving
            for _ in range(rounds):
                with locks[0]:
                    with locks[1]:
                        with locks[3]:
                            pass
                with locks[1]:
                    with locks[2]:
                        pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = ledger.report()
        assert report["inversions"] == []
        # Every thread drained its own held-stack back to empty.
        assert ledger._stack_of() == []

    def test_eight_threads_inversion_detected_once_per_edge(self, ledger):
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        barrier = threading.Barrier(8)
        # A plain (untracked) gate serialises the nested sections: the
        # ledger still sees both A->B and B->A orders, but the test can't
        # hit the real ABBA deadlock it is linting for.
        gate = threading.Lock()

        def forward():
            barrier.wait()
            for _ in range(10):
                with gate:
                    with a:
                        with b:
                            pass

        def backward():
            barrier.wait()
            for _ in range(10):
                with gate:
                    with b:
                        with a:
                            pass

        threads = [
            threading.Thread(target=forward if i % 2 else backward)
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        inversions = ledger.report()["inversions"]
        assert inversions  # both orders really happened
        edges = {(inv["edge"], inv["reverse"]) for inv in inversions}
        assert edges <= {("A -> B", "B -> A"), ("B -> A", "A -> B")}

    def test_per_thread_stacks_do_not_bleed(self, ledger):
        """A lock held in one thread is invisible to another's stack."""
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        a_held = threading.Event()
        release_a = threading.Event()
        seen: list[list[str]] = []

        def holder():
            with a:
                a_held.set()
                release_a.wait(5)

        def observer():
            a_held.wait(5)
            with b:
                seen.append(list(ledger._stack_of()))
            release_a.set()

        t1 = threading.Thread(target=holder)
        t2 = threading.Thread(target=observer)
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        assert seen == [["B"]]  # not ["A", "B"]: A is another thread's
        assert ledger.report()["inversions"] == []


class TestVectorClockRaces:
    def test_unordered_writes_race_with_both_stacks(self, ledger):
        """The acceptance fixture: a de-synchronised class, two threads."""

        class Desynchronised:
            def poke(self):
                ledger.note_write("Desynchronised.state")

        obj = Desynchronised()
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            obj.poke()

        t1 = threading.Thread(target=worker, name="racer-1")
        t2 = threading.Thread(target=worker, name="racer-2")
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        report = ledger.report()
        assert not report["clean"]
        (race,) = report["races"]
        assert race["kind"] == "write-write"
        assert race["var"] == "Desynchronised.state"
        assert {race["thread"], race["prior_thread"]} == {"racer-1", "racer-2"}
        assert race["stack"] and race["prior_stack"]  # both stacks attached
        assert any("poke" in frame for frame in race["stack"])
        rendered = ledger.render()
        assert "DATA RACE" in rendered
        assert "unordered with" in rendered

    def test_lock_ordered_writes_are_clean(self, ledger):
        lock = SanitizedLock("G", ledger)

        def worker():
            for _ in range(5):
                with lock:
                    ledger.note_write("guarded.state")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ledger.report()["races"] == []

    def test_fork_join_edges_order_accesses(self, ledger):
        """Parent-before-start and join-before-parent need no lock."""
        ledger.note_write("handoff.state")

        def child():
            ledger.note_write("handoff.state")

        t = threading.Thread(target=child)
        t.start()
        t.join()
        ledger.note_write("handoff.state")
        assert ledger.report()["races"] == []

    def test_write_read_race_detected(self, ledger):
        done = threading.Event()

        def writer():
            ledger.note_write("wr.state")
            done.set()  # plain Event: NOT a happens-before edge

        t = threading.Thread(target=writer, name="writer")
        t.start()
        done.wait(5)
        ledger.note_read("wr.state")  # before join: unordered
        t.join()
        (race,) = ledger.report()["races"]
        assert race["kind"] == "write-read"

    def test_read_after_join_is_ordered(self, ledger):
        def writer():
            ledger.note_write("rj.state")

        t = threading.Thread(target=writer)
        t.start()
        t.join()
        ledger.note_read("rj.state")
        assert ledger.report()["races"] == []

    def test_duplicate_races_report_once(self, ledger):
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            for _ in range(20):
                ledger.note_write("dup.state")

        t1 = threading.Thread(target=worker, name="d1")
        t2 = threading.Thread(target=worker, name="d2")
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        races = ledger.report()["races"]
        assert races  # detected...
        assert len(races) <= 4  # ...but deduplicated, not 20+ copies

    def test_held_by_current_thread(self, ledger):
        lock = SanitizedLock("H", ledger)
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
            with lock:  # re-entrant: still held
                assert lock.held_by_current_thread()
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

        observed = []

        def other():
            observed.append(lock.held_by_current_thread())

        with lock:
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert observed == [False]  # held, but not by that thread


class TestSeriesDBRaceHooks:
    def test_locked_concurrent_use_is_clean(self, ledger, tmp_path, series):
        """The whole-suite sanitize job's contract: correct use, no races."""
        db = repro.SeriesDB(tmp_path / "db", hot_codec="gorilla",
                            seal_threshold=256)
        db.ingest("s1", series)

        def hammer(sid):
            db.ingest(sid, series[:500])
            db.access(sid, 10)
            db.flush()

        threads = [
            threading.Thread(target=hammer, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        db.close()
        report = ledger.report()
        assert report["races"] == []
        assert report["inversions"] == []

    def test_unlocked_store_mutation_races(self, ledger, tmp_path, series):
        """Direct TieredStore mutation from two threads, no db lock: the
        armed ``_guard`` hook routes it into the happens-before check."""
        db = repro.SeriesDB(tmp_path / "db", hot_codec="gorilla",
                            seal_threshold=256)
        db.ingest("s1", series)
        store = db.store("s1")  # sanctioned direct handle
        barrier = threading.Barrier(2)

        def mutate():
            barrier.wait()
            store.extend(np.arange(10, dtype=np.int64))

        t1 = threading.Thread(target=mutate, name="m1")
        t2 = threading.Thread(target=mutate, name="m2")
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        races = ledger.report()["races"]
        assert races
        assert any(":store:s1" in race["var"] for race in races)


class TestEnableDisable:
    def test_disable_restores_patches(self, ledger, archive_path):
        from repro.codecs import container

        patched = container.mmap_view
        disable()
        try:
            assert container.mmap_view is not patched
            assert active_ledger() is None
            # Unpatched: new maps are no longer recorded.
            archive = open_archive(archive_path, lazy=True)
            archive.decompress()
            assert ledger.live_maps() == []
            archive.close()
        finally:
            enable(ledger)  # the fixture's finally expects an active state

    def test_enable_is_idempotent(self, ledger):
        assert enable() is ledger  # re-enable keeps the active ledger
        other = Ledger()
        assert enable(other) is other  # ...unless a new one is handed in
        assert active_ledger() is other
        enable(ledger)

    def test_render_clean_and_dirty(self, ledger):
        assert ledger.render() == "repro sanitizer: clean"
        a = SanitizedLock("A", ledger)
        b = SanitizedLock("B", ledger)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        rendered = ledger.render()
        assert "VIOLATIONS" in rendered
        assert "LOCK-ORDER INVERSION" in rendered
