"""Guarded-by inference lint (RPR801/802/803) on seeded fixtures.

Same harness as test_dataflow.py: write a fixture tree into ``tmp_path``,
run ``repro lint --dataflow`` over it, and assert the exact findings —
rule, line, and message shape — plus that the well-locked variants right
next to each violation stay quiet.  Ends with the package-clean gate and
the ``--explain`` catalogue contract.
"""

import textwrap
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.rules import RULE_CATALOGUE, RULE_EXAMPLES

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], check_registry=False, dataflow=True)


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# -- RPR802 + RPR803: public mutators and escaping guarded state ----------------

RACY_FIXTURE = """
    import threading


    class Racy:
        def __init__(self):
            self._lock = threading.Lock()
            self._state = {}
            self._count = 0

        def put(self, k, v):
            with self._lock:
                self._state[k] = v
                self._count += 1

        def reset(self):
            self._count = 0

        def bump(self):
            self._count += 1

        def snapshot(self):
            with self._lock:
                return self._state

        def items(self):
            with self._lock:
                out = self._state
            return out

        def safe(self):
            with self._lock:
                return dict(self._state)
"""


def test_rpr802_public_mutator_without_guard(tmp_path):
    findings = lint_tree(tmp_path, {"racy.py": RACY_FIXTURE})
    fired = by_rule(findings, "RPR802")
    # RPR802 anchors at the offending method's `def` line.
    assert sorted(f.line for f in fired) == [16, 19]
    messages = sorted(f.message for f in fired)
    assert "Racy.bump" in messages[0] and "self._count" in messages[0]
    assert "Racy.reset" in messages[1] and "never acquires" in messages[1]
    # RPR801 must NOT double-report the same methods: 802 subsumes it.
    assert by_rule(findings, "RPR801") == []


def test_rpr803_guarded_state_escapes(tmp_path):
    findings = lint_tree(tmp_path, {"racy.py": RACY_FIXTURE})
    fired = by_rule(findings, "RPR803")
    assert sorted(f.line for f in fired) == [24, 29]
    direct, aliased = sorted(fired, key=lambda f: f.line)
    assert "Racy.snapshot returns self._state" in direct.message
    assert "via alias 'out'" in aliased.message
    assert all("outlives the critical section" in f.message for f in fired)
    # safe() returns a copy: nothing fires past the alias escape.
    assert not [f for f in findings if f.line > 29]


# -- RPR801: mixed locked/bare writes -------------------------------------------

MIXED_FIXTURE = """
    import threading


    class Mixed:
        def __init__(self):
            self._lock = threading.RLock()
            self._count = 0
            self._log = []

        def add(self, v):
            with self._lock:
                self._count += v
            self._count = 0

        def _touch(self):
            self._log.append(1)

        def audited_touch(self):
            with self._lock:
                self._log.append(2)
            self._touch()
"""


def test_rpr801_mixed_guarded_and_bare_writes(tmp_path):
    findings = lint_tree(tmp_path, {"mixed.py": MIXED_FIXTURE})
    fired = by_rule(findings, "RPR801")
    assert sorted(f.line for f in fired) == [14, 17]
    same_method, via_call = sorted(fired, key=lambda f: f.line)
    # The write after the with-block in the very same method.
    assert "Mixed.add writes self._count" in same_method.message
    # The private helper with one call site outside the lock.
    assert "Mixed._touch writes self._log" in via_call.message
    assert all("data race" in f.message for f in fired)


# -- negative cases: well-locked classes stay quiet -----------------------------

CLEAN_FIXTURE = """
    import threading


    class Disciplined:
        def __init__(self):
            self._lock = threading.Lock()
            self._state = {}
            self._hits = 0
            self._unguarded = 0  # never touched under the lock

        def put(self, k, v):
            with self._lock:
                self._state[k] = v
                self._hits += 1

        def _flush(self):
            self._state.clear()

        def drain(self):
            with self._lock:
                self._flush()
                return dict(self._state)

        def tick(self):
            self._unguarded += 1


    class NoLocksAtAll:
        def __init__(self):
            self._state = {}

        def put(self, k, v):
            self._state[k] = v

        def snapshot(self):
            return self._state
"""


def test_disciplined_classes_are_clean(tmp_path):
    findings = lint_tree(tmp_path, {"clean.py": CLEAN_FIXTURE})
    assert [f for f in findings if f.rule.startswith("RPR80")] == []


INIT_FIXTURE = """
    import threading


    class WarmStart:
        def __init__(self):
            self._lock = threading.Lock()
            self._cache = {}
            self._prime()  # pre-sharing call: cannot race

        def _prime(self):
            self._cache["boot"] = 1

        def put(self, k, v):
            with self._lock:
                self._cache[k] = v
                self._prime()
"""


def test_init_call_sites_count_as_held(tmp_path):
    # __init__ runs before the object is shared; a helper reached only
    # from __init__ and from under the lock must not trip RPR801.
    findings = lint_tree(tmp_path, {"warm.py": INIT_FIXTURE})
    assert [f for f in findings if f.rule.startswith("RPR80")] == []


# -- package gate ---------------------------------------------------------------

def test_package_is_clean_of_guarded_by_findings():
    findings = run_lint(
        [str(REPO_ROOT / "src" / "repro")], check_registry=False, dataflow=True
    )
    fired = [f for f in findings if f.rule.startswith("RPR80")]
    assert fired == [], [f"{f.file}:{f.line} {f.rule} {f.message}" for f in fired]


# -- `repro lint --explain` catalogue contract ----------------------------------

def test_every_rule_has_an_explain_example():
    assert set(RULE_EXAMPLES) == set(RULE_CATALOGUE)
    for rule_id, example in RULE_EXAMPLES.items():
        assert example.strip(), rule_id


def test_explain_cli_prints_rationale_and_example(capsys):
    from repro.cli import main

    assert main(["lint", "--explain", "rpr801"]) == 0
    out = capsys.readouterr().out
    title, hint = RULE_CATALOGUE["RPR801"]
    assert "RPR801" in out and title in out
    assert "fix:" in out and hint in out
    assert "minimal failing example" in out

    assert main(["lint", "--explain", "RPR999"]) == 2
    err = capsys.readouterr().err
    assert "RPR999" in err
