"""repro fsck: the corruption matrix for both container formats.

Every header and frame field of the one-shot (``RPAC0001``) and appendable
(``RPAL0001``) containers gets bit-flipped or truncated, and fsck must
flag each mutation with the right problem code and a non-zero exit code —
while every archive the library itself writes passes clean.
"""

import json
import struct
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import fsck_archive, fsck_path
from repro.codecs import append_open, compress, save
from repro.codecs.container import _APPEND_HEADER, _HEADER, _RECORD


@pytest.fixture
def rpac(tmp_path, walk_series):
    """A valid one-shot archive on disk."""
    path = tmp_path / "series.rpac"
    save(path, compress(walk_series, codec="gorilla"), digits=2)
    return path


@pytest.fixture
def rpal(tmp_path, walk_series):
    """A valid appendable archive with three records on disk."""
    path = tmp_path / "series.rpal"
    archive = append_open(path, codec="gorilla", digits=2)
    for chunk in np.array_split(walk_series, 3):
        archive.append(chunk)
    return path


def codes(report):
    return {p.code for p in report.problems}


def mutate(path, offset, xor=0xFF):
    data = bytearray(path.read_bytes())
    data[offset] ^= xor
    path.write_bytes(bytes(data))


def patch(path, offset, blob):
    data = bytearray(path.read_bytes())
    data[offset:offset + len(blob)] = blob
    path.write_bytes(bytes(data))


# -- clean archives pass --------------------------------------------------------


def test_clean_oneshot_passes(rpac):
    report = fsck_archive(rpac, deep=True)
    assert report.ok and report.exit_code == 0
    assert report.kind == "archive"
    assert report.checked["frames"] == 1
    assert report.checked["decoded_values"] == 1500


def test_clean_appendable_passes(rpal):
    report = fsck_archive(rpal, deep=True)
    assert report.ok and report.exit_code == 0
    assert report.kind == "appendable"
    assert report.checked["records"] == 3
    assert report.checked["values"] == 1500


def test_json_report_shape(rpac):
    payload = fsck_archive(rpac, deep=True).to_json()
    assert payload["ok"] is True
    assert payload["exit_code"] == 0
    assert payload["kind"] == "archive"
    assert payload["problems"] == []
    json.dumps(payload)  # must be serialisable as-is


def test_missing_file_is_exit_2(tmp_path):
    report = fsck_path(tmp_path / "nope.rpac")
    assert codes(report) == {"FSK001"}
    assert report.exit_code == 2


def test_unknown_magic(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"GARBAGE!" + b"\x00" * 64)
    report = fsck_archive(path)
    assert codes(report) == {"FSK003"}
    assert report.exit_code == 1


# -- one-shot (RPAC0001) matrix: <8siIQ> header + frame -------------------------


def test_oneshot_flipped_magic(rpac):
    mutate(rpac, 3)
    assert codes(fsck_archive(rpac)) == {"FSK003"}


def test_oneshot_truncated_below_header(rpac):
    rpac.write_bytes(rpac.read_bytes()[: _HEADER.size - 4])
    assert codes(fsck_archive(rpac)) == {"FSK002"}


def test_oneshot_corrupt_length_field(rpac):
    mutate(rpac, 8 + 4 + 4)  # first byte of the Q length field
    assert codes(fsck_archive(rpac)) == {"FSK004"}


def test_oneshot_truncated_frame(rpac):
    rpac.write_bytes(rpac.read_bytes()[:-10])
    assert codes(fsck_archive(rpac)) == {"FSK004"}


def test_oneshot_corrupt_crc_field(rpac):
    mutate(rpac, 8 + 4)  # first byte of the I crc field
    assert codes(fsck_archive(rpac)) == {"FSK005"}


def test_oneshot_corrupt_frame_payload(rpac):
    mutate(rpac, _HEADER.size + 30)
    report = fsck_archive(rpac)
    assert codes(report) == {"FSK005"}
    assert report.exit_code == 1


def test_oneshot_corrupt_frame_header_behind_valid_crc(rpac):
    # Re-seal the crc over a frame whose own header is destroyed: the
    # container layer passes, the frame parse must catch it.
    data = bytearray(rpac.read_bytes())
    frame = bytearray(data[_HEADER.size:])
    frame[0] ^= 0xFF  # the RPCF frame magic
    data[_HEADER.size:] = frame
    data[12:16] = struct.pack("<I", zlib.crc32(bytes(frame)))
    rpac.write_bytes(bytes(data))
    assert codes(fsck_archive(rpac)) == {"FSK006"}


# -- appendable (RPAL0001) matrix: <8siHI> header + records ---------------------


def rpal_layout(path):
    """(first_record_offset, [(record_offset, frame_len, cum), ...])."""
    data = path.read_bytes()
    _, _, idlen, plen = _APPEND_HEADER.unpack_from(data)
    pos = _APPEND_HEADER.size + idlen + plen
    records = []
    while pos + _RECORD.size <= len(data):
        frame_len, _, cum = _RECORD.unpack_from(data, pos)
        records.append((pos, frame_len, cum))
        pos += _RECORD.size + frame_len
    return records


def test_appendable_flipped_magic(rpal):
    mutate(rpal, 0)
    assert codes(fsck_archive(rpal)) == {"FSK003"}


def test_appendable_truncated_below_header(rpal):
    rpal.write_bytes(rpal.read_bytes()[: _APPEND_HEADER.size - 2])
    assert codes(fsck_archive(rpal)) == {"FSK002"}


def test_appendable_idlen_overruns_file(rpal):
    patch(rpal, 12, struct.pack("<H", 0xFFFF))  # the H codec-id-len field
    assert codes(fsck_archive(rpal)) == {"FSK011"}


def test_appendable_corrupt_params_json(rpal):
    data = bytearray(rpal.read_bytes())
    _, _, idlen, plen = _APPEND_HEADER.unpack_from(data)
    assert plen > 0
    data[_APPEND_HEADER.size + idlen] ^= 0xFF  # first params byte
    rpal.write_bytes(bytes(data))
    assert "FSK011" in codes(fsck_archive(rpal))


def test_appendable_record_length_overrun(rpal):
    records = rpal_layout(rpal)
    patch(rpal, records[-1][0], struct.pack("<Q", 1 << 40))
    report = fsck_archive(rpal)
    assert {"FSK012", "FSK015"} <= codes(report)
    assert report.exit_code == 1


def test_appendable_record_crc_mismatch_keeps_walking(rpal):
    records = rpal_layout(rpal)
    # flip a byte deep in record 0's *payload* (past the frame header, so
    # the structural walk survives and only the checksum disagrees)
    mutate(rpal, records[0][0] + _RECORD.size + records[0][1] - 2)
    report = fsck_archive(rpal)
    assert codes(report) == {"FSK013"}
    # the walk continued past the bad record: the two later ones verified
    assert report.checked["records"] == 2


def test_appendable_nonmonotonic_cumulative_count(rpal):
    records = rpal_layout(rpal)
    # record 1's cumulative count dialled back below record 0's
    patch(rpal, records[1][0] + 12, struct.pack("<Q", 1))
    assert "FSK014" in codes(fsck_archive(rpal))


def test_appendable_frame_self_accounting_mismatch(rpal):
    records = rpal_layout(rpal)
    # shrink record 0's length: the frame then accounts for more bytes
    patch(rpal, records[0][0], struct.pack("<Q", records[0][1] - 8))
    assert "FSK016" in codes(fsck_archive(rpal))


def test_appendable_torn_tail_detected(rpal):
    rpal.write_bytes(rpal.read_bytes()[:-7])
    report = fsck_archive(rpal)
    assert "FSK015" in codes(report)
    assert report.exit_code == 1
    assert report.checked["records"] == 2  # complete records still verify


def test_appendable_garbage_tail_detected(rpal):
    with rpal.open("ab") as fh:
        fh.write(b"\x01\x02\x03")
    assert "FSK015" in codes(fsck_archive(rpal))


def test_appendable_count_vs_frame_header(rpal):
    records = rpal_layout(rpal)
    # inflate the last record's cumulative count: container promises more
    # values than its frame header records
    patch(rpal, records[-1][0] + 12, struct.pack("<Q", records[-1][2] + 5))
    assert "FSK008" in codes(fsck_archive(rpal))


# -- deep mode ------------------------------------------------------------------


def test_deep_decodes_and_counts(rpal):
    shallow = fsck_archive(rpal)
    deep = fsck_archive(rpal, deep=True)
    assert "decoded_values" not in shallow.checked
    assert deep.checked["decoded_values"] == 1500


def test_recovery_semantics_match_fsck(rpal, walk_series):
    """What fsck calls a torn tail, the opener recovers from."""
    rpal.write_bytes(rpal.read_bytes()[:-7])
    assert "FSK015" in codes(fsck_archive(rpal))
    archive = append_open(rpal)
    # the two complete records survive; the torn third is dropped
    parts = np.array_split(walk_series, 3)
    assert len(archive) == len(parts[0]) + len(parts[1])
    assert archive.num_records == 2
