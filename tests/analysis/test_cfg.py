"""The statement-level CFG behind the dataflow rules.

Each test parses one small function, builds its graph, and asks the exact
reachability question a rule would ask — can the exit be reached without
passing through node X, do exception edges land in the handler, does a
``finally`` intercept the abrupt paths.
"""

import ast
import textwrap

from repro.analysis.cfg import EXC, FLOW, build_cfg


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source).lstrip("\n"))
    func = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
    return build_cfg(func)


def node_at(cfg, line):
    """The first non-synthetic node whose statement starts at ``line``."""
    for node in cfg.nodes:
        if node.stmt is not None and node.line == line:
            return node
    raise AssertionError(f"no node at line {line}")


def test_straight_line_reaches_exit():
    cfg = cfg_of(
        """
        def f():
            a = 1
            b = 2
            return a + b
        """
    )
    assert cfg.exit_index in cfg.reachable(cfg.entry_index)


def test_avoid_blocks_the_only_path():
    cfg = cfg_of(
        """
        def f():
            a = 1
            b = 2
            return a + b
        """
    )
    gate = node_at(cfg, 3)  # b = 2
    reach = cfg.reachable(cfg.entry_index, avoid={gate.index})
    assert cfg.exit_index not in reach


def test_if_branches_merge():
    cfg = cfg_of(
        """
        def f(flag):
            if flag:
                x = 1
            else:
                x = 2
            return x
        """
    )
    then_node = node_at(cfg, 3)
    else_node = node_at(cfg, 5)
    ret = node_at(cfg, 6)
    assert ret.index in cfg.reachable(then_node.index)
    assert ret.index in cfg.reachable(else_node.index)
    # Avoiding one arm still reaches the return through the other.
    assert cfg.exit_index in cfg.reachable(
        cfg.entry_index, avoid={then_node.index}
    )


def test_early_return_skips_the_tail():
    cfg = cfg_of(
        """
        def f(flag):
            if flag:
                return None
            x = 1
            return x
        """
    )
    early = node_at(cfg, 3)
    tail = node_at(cfg, 4)
    # The early return goes straight to the exit, not into the tail.
    reach = cfg.reachable(early.index)
    assert cfg.exit_index in reach
    assert tail.index not in reach


def test_loop_has_back_edge_and_break_exits():
    cfg = cfg_of(
        """
        def f(items):
            for item in items:
                if item:
                    break
                use(item)
            return None
        """
    )
    head = node_at(cfg, 2)
    body = node_at(cfg, 5)  # use(item)
    brk = node_at(cfg, 4)
    # Body flows back to the header; break reaches the statement after.
    assert head.index in cfg.reachable(body.index)
    assert node_at(cfg, 6).index in cfg.reachable(brk.index)


def test_try_body_has_exception_edges_to_handler():
    cfg = cfg_of(
        """
        def f():
            try:
                risky()
            except ValueError:
                handle()
            return None
        """
    )
    risky = node_at(cfg, 3)
    handler_stmt = node_at(cfg, 5)
    kinds = {kind for succ, kind in risky.succs if succ == handler_stmt.index}
    assert kinds == {EXC}


def test_skip_exc_from_ignores_that_nodes_raise():
    cfg = cfg_of(
        """
        def f():
            try:
                risky()
            except ValueError:
                handle()
            return None
        """
    )
    risky = node_at(cfg, 3)
    handler_stmt = node_at(cfg, 5)
    reach = cfg.reachable(risky.index, skip_exc_from={risky.index})
    assert handler_stmt.index not in reach
    assert cfg.exit_index in reach


def test_return_routes_through_finally():
    cfg = cfg_of(
        """
        def f(fh):
            try:
                return fh.read()
            finally:
                fh.close()
        """
    )
    ret = node_at(cfg, 3)
    close = node_at(cfg, 5)
    # The return cannot reach the exit without executing the finally body.
    assert close.index in cfg.reachable(ret.index)
    assert cfg.exit_index not in cfg.reachable(ret.index, avoid={close.index})


def test_raise_routes_to_handler_then_flow_continues():
    cfg = cfg_of(
        """
        def f():
            try:
                raise ValueError("x")
            except ValueError:
                fallback()
            return None
        """
    )
    raise_node = node_at(cfg, 3)
    fallback = node_at(cfg, 5)
    kinds = {kind for succ, kind in raise_node.succs if succ == fallback.index}
    assert FLOW in kinds
    assert cfg.exit_index in cfg.reachable(raise_node.index)


def test_entry_and_exit_are_synthetic():
    cfg = cfg_of(
        """
        def f():
            return 1
        """
    )
    assert cfg.nodes[cfg.entry_index].stmt is None
    assert cfg.nodes[cfg.exit_index].stmt is None
    assert cfg.nodes[cfg.entry_index].line == 0
