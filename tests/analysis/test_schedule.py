"""Tests for the deterministic schedule explorer (repro.analysis.schedule)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis.schedule import Scheduler, checkpoint, explore


def _interleaver(name: str, log: list, steps: int = 3):
    """A task body that logs its name at each of ``steps`` checkpoints."""

    def body():
        for i in range(steps):
            log.append(f"{name}:{i}")
            checkpoint(f"step-{i}")

    return body


class TestDeterminism:
    def test_seeded_trace_is_byte_identical_across_runs(self):
        # The ISSUE acceptance criterion: same (tasks, seed) -> the same
        # interleaving, byte for byte, across two independent runs.
        def run_once(seed: int) -> tuple[str, list]:
            log: list = []
            sched = Scheduler(seed)
            sched.add("a", _interleaver("a", log))
            sched.add("b", _interleaver("b", log))
            sched.add("c", _interleaver("c", log))
            trace = sched.run()
            return json.dumps(trace), log

        first_trace, first_log = run_once(seed=42)
        second_trace, second_log = run_once(seed=42)
        assert first_trace == second_trace
        assert first_log == second_log

    def test_different_seeds_give_different_interleavings(self):
        # With 3 tasks x 4 checkpoints the schedule space is large; at
        # least one of a handful of seeds must diverge from seed 0.
        def trace_for(seed: int) -> str:
            sched = Scheduler(seed)
            log: list = []
            for name in ("a", "b", "c"):
                sched.add(name, _interleaver(name, log, steps=4))
            return json.dumps(sched.run())

        base = trace_for(0)
        assert any(trace_for(seed) != base for seed in (1, 2, 3, 4))

    def test_trace_is_json_serialisable_steps(self):
        sched = Scheduler(7)
        sched.add("only", _interleaver("only", []))
        trace = sched.run()
        # [[step, task, label], ...] with a final <exit> entry per task.
        assert trace[0][0] == 0
        assert [entry[1] for entry in trace] == ["only"] * len(trace)
        assert trace[-1][2] == "<exit>"
        assert [entry[2] for entry in trace[:-1]] == [
            "step-0", "step-1", "step-2"
        ]


class TestSchedulingSemantics:
    def test_single_task_runs_at_a_time(self):
        # Mutate shared state with no lock: under the scheduler this is
        # serial, so the unprotected counter never loses an update.
        counter = {"n": 0}

        def bump():
            for _ in range(50):
                value = counter["n"]
                checkpoint("read")
                counter["n"] = value + 1
                checkpoint("wrote")

        # Without cooperative scheduling two such tasks would be expected
        # to lose updates; the serialised run must not.  (Each task's
        # read..write window spans a checkpoint, so a preemptive
        # interleaving WOULD interleave them — the scheduler still keeps
        # exactly one task running between checkpoints, and lost updates
        # are possible only across checkpoints, which is precisely what
        # the race suite uses the scheduler to provoke.)
        sched = Scheduler(3)
        sched.add("a", bump)
        sched.add("b", bump)
        sched.run()
        # Updates may be lost ACROSS checkpoints (that's the point of the
        # tool), but the final count is a pure function of the seed.
        once = counter["n"]
        counter["n"] = 0
        sched2 = Scheduler(3)
        sched2.add("a", bump)
        sched2.add("b", bump)
        sched2.run()
        assert counter["n"] == once

    def test_checkpoint_is_noop_off_schedule(self):
        # Calling checkpoint() on a thread the scheduler does not own must
        # be harmless — instrumented library code runs in plain tests too.
        checkpoint("not-scheduled")
        result: list = []
        thread = threading.Thread(target=lambda: result.append(checkpoint()))
        thread.start()
        thread.join()
        assert result == [None]

    def test_task_errors_are_reraised(self):
        def boom():
            checkpoint("pre")
            raise ValueError("scheduled failure")

        sched = Scheduler(0)
        sched.add("boom", boom)
        with pytest.raises(ValueError, match="scheduled failure"):
            sched.run()

    def test_stuck_task_fails_loudly(self):
        # A task that blocks forever (here: on a lock nobody releases)
        # must trip the per-step timeout with a named error, not hang.
        stuck_lock = threading.Lock()
        stuck_lock.acquire()

        def stuck():
            checkpoint("about-to-block")
            stuck_lock.acquire()  # never succeeds

        sched = Scheduler(0, step_timeout=0.2)
        sched.add("wedged", stuck)
        try:
            with pytest.raises(RuntimeError, match="wedged"):
                sched.run()
        finally:
            stuck_lock.release()  # let the daemon thread exit

    def test_duplicate_task_names_rejected(self):
        sched = Scheduler(0)
        sched.add("a", lambda: None)
        with pytest.raises(ValueError, match="duplicate"):
            sched.add("a", lambda: None)

    def test_add_after_run_starts_rejected(self):
        sched = Scheduler(0)

        def adder():
            with pytest.raises(RuntimeError, match="running"):
                sched.add("late", lambda: None)

        sched.add("adder", adder)
        sched.run()

    def test_empty_scheduler_returns_empty_trace(self):
        assert Scheduler(0).run() == []


class TestExplore:
    def test_explore_runs_one_trace_per_seed(self):
        logs: dict[int, list] = {}

        def make(sched: Scheduler):
            log: list = []
            logs[sched.seed] = log
            sched.add("x", _interleaver("x", log))
            sched.add("y", _interleaver("y", log))

        traces = explore(make, seeds=(0, 1, 2))
        assert sorted(traces) == [0, 1, 2]
        for seed, trace in traces.items():
            assert len(trace) > 0
            assert len(logs[seed]) == 6  # 2 tasks x 3 steps each

    def test_explore_replays_identically(self):
        def make(sched: Scheduler):
            sched.add("x", _interleaver("x", []))
            sched.add("y", _interleaver("y", []))

        first = explore(make, seeds=(5,))
        second = explore(make, seeds=(5,))
        assert json.dumps(first) == json.dumps(second)
