"""repro lint --dataflow: every RPR5xx/6xx/7xx rule on seeded fixtures.

Mirrors test_lint.py's pattern: write a small fixture tree into
``tmp_path``, lint it with ``dataflow=True``, assert the expected code
fires at the expected line — and, just as important, that the *good*
variants right next to each violation stay quiet.  The final test runs the
dataflow rules over the real package and requires a clean bill.
"""

import textwrap
from pathlib import Path

from repro.analysis import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], check_registry=False, dataflow=True)


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# -- RPR501: escaping mmap views ------------------------------------------------

VIEW_FIXTURE = """
    from repro.codecs.container import mmap_view

    def leak_view(path):
        view = mmap_view(path)
        payload = view[16:]
        return payload  # derived view escapes without the map

    def alias_leaks_too(path):
        view = mmap_view(path)
        payload = view[16:]
        alias = payload
        return alias

    def direct_slice_leaks(path):
        view = mmap_view(path)
        return view[16:]

    def root_transfer_ok(path):
        view = mmap_view(path)
        return view  # root carries the map in .obj: ownership transfer

    def bytes_ok(path):
        view = mmap_view(path)
        return bytes(view[16:])  # materialised copy

    def tuple_with_owner_ok(path):
        view = mmap_view(path)
        payload = view[16:]
        return view, payload  # owner co-escapes
"""


def test_rpr501_escaping_views(tmp_path):
    findings = lint_tree(tmp_path, {"views.py": VIEW_FIXTURE})
    fired = by_rule(findings, "RPR501")
    assert sorted(f.line for f in fired) == [7, 13, 17]
    assert all("mmap-backed" in f.message for f in fired)
    # None of the three *_ok functions fired anything.
    assert not [f for f in findings if f.line > 17]


# -- RPR502: stashed view without owner -----------------------------------------

STASH_FIXTURE = """
    from repro.codecs.container import mmap_view

    class Leaky:
        def load(self, path):
            view = mmap_view(path)
            self._payload = view[8:]  # map pinned, no handle to close it

    class Owning:
        def load(self, path):
            view = mmap_view(path)
            self._view = view
            self._payload = view[8:]  # fine: the root is stored too
"""


def test_rpr502_stash_without_owner(tmp_path):
    findings = lint_tree(tmp_path, {"stash.py": STASH_FIXTURE})
    (finding,) = by_rule(findings, "RPR502")
    assert finding.line == 7
    assert "without also stashing" in finding.message


# -- RPR601: close on all paths -------------------------------------------------

RELEASE_FIXTURE = """
    import os

    def leaky(path, flag):
        fh = open(path, "rb")
        if flag:
            return None  # fh leaks on this branch
        data = fh.read()
        fh.close()
        return data

    def closed_in_finally(path):
        fh = open(path, "rb")
        try:
            return fh.read()
        finally:
            fh.close()

    def with_statement_ok(path):
        with open(path, "rb") as fh:
            return fh.read()

    def handoff_return_ok(path):
        fh = open(path, "rb")
        return fh  # caller owns it now

    def handoff_store_ok(self, path):
        fh = open(path, "rb")
        self._fh = fh  # the object owns it now

    def handoff_call_ok(path):
        fd = os.open(path, os.O_RDONLY)
        return os.fdopen(fd)  # fdopen adopts the descriptor

    def acquisition_may_raise_ok(path):
        fh = open(path, "rb")  # if open() raises there is nothing to close
        data = fh.read()
        fh.close()
        return data
"""


def test_rpr601_leak_on_one_path(tmp_path):
    findings = lint_tree(tmp_path, {"release.py": RELEASE_FIXTURE})
    (finding,) = by_rule(findings, "RPR601")
    assert finding.line == 5
    assert "'fh' = open(...)" in finding.message


# -- RPR602: use after close ----------------------------------------------------

UAC_FIXTURE = """
    def use_after_close(path):
        fh = open(path, "rb")
        fh.close()
        return fh.read()

    def close_then_rebind_ok(path):
        fh = open(path, "rb")
        fh.close()
        fh = open(path, "rb")
        data = fh.read()
        fh.close()
        return data

    def closed_check_ok(path):
        fh = open(path, "rb")
        fh.close()
        assert fh.closed  # .closed / double close are harmless
        fh.close()
        return fh is None
"""


def test_rpr602_use_after_close(tmp_path):
    findings = lint_tree(tmp_path, {"uac.py": UAC_FIXTURE})
    fired = by_rule(findings, "RPR602")
    assert [f.line for f in fired] == [5]
    assert "after fh.close() (line 4)" in fired[0].message


# -- RPR701: lock-order inversion -----------------------------------------------

INVERSION_FIXTURE = """
    import threading

    lock_a = threading.Lock()
    lock_b = threading.Lock()

    def ab():
        with lock_a:
            with lock_b:
                pass

    def ba():
        with lock_b:
            with lock_a:
                pass
"""

CONSISTENT_FIXTURE = """
    import threading

    lock_a = threading.Lock()
    lock_b = threading.Lock()

    def first():
        with lock_a:
            with lock_b:
                pass

    def second():
        with lock_a:
            with lock_b:
                pass
"""


def test_rpr701_inversion_reported_at_both_sites(tmp_path):
    findings = lint_tree(tmp_path, {"inv.py": INVERSION_FIXTURE})
    fired = by_rule(findings, "RPR701")
    assert sorted(f.line for f in fired) == [9, 14]
    assert all("inversion" in f.message for f in fired)


def test_rpr701_consistent_order_is_quiet(tmp_path):
    findings = lint_tree(tmp_path, {"ok.py": CONSISTENT_FIXTURE})
    assert not by_rule(findings, "RPR701")


def test_rpr701_spans_files(tmp_path):
    half_ab = INVERSION_FIXTURE.split("def ba():")[0]
    half_ba = (
        half_ab.split("def ab():")[0]
        + "def ba():\n    with lock_b:\n        with lock_a:\n            pass\n"
    )
    findings = lint_tree(tmp_path, {"m1.py": half_ab, "m2.py": half_ba})
    fired = by_rule(findings, "RPR701")
    # Same-named module-level locks in different files are distinct
    # identities (relpath-qualified), so no cross-file inversion here...
    assert not fired
    # ...but self-attribute locks unify by class name across files.
    cls_ab = """
        class Store:
            def a_then_b(self):
                with self.meta_lock:
                    with self.data_lock:
                        pass
    """
    cls_ba = """
        class Store:
            def b_then_a(self):
                with self.data_lock:
                    with self.meta_lock:
                        pass
    """
    findings = lint_tree(tmp_path / "cls", {"m1.py": cls_ab, "m2.py": cls_ba})
    assert len(by_rule(findings, "RPR701")) == 2


def test_rpr701_callee_expansion(tmp_path):
    source = """
        class Store:
            def outer(self):
                with self.meta_lock:
                    self.inner()  # acquires data_lock while meta held

            def inner(self):
                with self.data_lock:
                    pass

            def other(self):
                with self.data_lock:
                    with self.meta_lock:
                        pass
    """
    findings = lint_tree(tmp_path, {"store.py": source})
    fired = by_rule(findings, "RPR701")
    lines = sorted(f.line for f in fired)
    assert 5 in lines  # the self.inner() call site
    assert 13 in lines  # the explicit nested with


def test_rpr701_reentrant_same_lock_ok(tmp_path):
    source = """
        class Store:
            def reenter(self):
                with self._lock:
                    with self._lock:
                        pass
    """
    findings = lint_tree(tmp_path, {"re.py": source})
    assert not by_rule(findings, "RPR701")


# -- RPR702: bare acquire -------------------------------------------------------

BARE_FIXTURE = """
    def bare(my_lock):
        my_lock.acquire()
        return 1

    def released_in_finally(my_lock):
        my_lock.acquire()
        try:
            return 1
        finally:
            my_lock.release()

    def not_a_lock(conn):
        conn.acquire()  # no "lock" in the name: out of scope
        return 1
"""


def test_rpr702_bare_acquire(tmp_path):
    findings = lint_tree(tmp_path, {"bare.py": BARE_FIXTURE})
    (finding,) = by_rule(findings, "RPR702")
    assert finding.line == 3
    assert "my_lock.acquire()" in finding.message


# -- the real package -----------------------------------------------------------


def test_package_is_dataflow_clean():
    """The gate CI runs: zero dataflow findings on src/repro, no baseline."""
    findings = run_lint(
        [str(REPO_ROOT / "src" / "repro")], check_registry=False, dataflow=True
    )
    dataflow = [f for f in findings if f.rule >= "RPR500"]
    assert dataflow == []


def test_dataflow_off_by_default(tmp_path):
    findings = lint_tree(tmp_path, {"bare.py": BARE_FIXTURE})
    assert by_rule(findings, "RPR702")
    without = run_lint([str(tmp_path)], check_registry=False)
    assert not by_rule(without, "RPR702")
