"""repro lint: every rule class must catch a seeded violation.

Each test writes a small fixture tree into ``tmp_path``, runs the linter
over it (``check_registry=False`` — fixtures register nothing with the
live registry), and asserts the expected rule fires at the expected place.
The final tests run the linter over the *real* package and require it to
be clean modulo the committed baseline — the exact gate CI runs.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, apply_baseline, run_lint
from repro.analysis.findings import Finding

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_tree(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path and lint the tree."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], check_registry=False)


def rules_fired(findings):
    return {f.rule for f in findings}


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# -- RPR000: unparseable sources ------------------------------------------------


def test_syntax_error_is_reported_not_raised(tmp_path):
    findings = lint_tree(tmp_path, {"broken.py": "def f(:\n    pass\n"})
    (finding,) = by_rule(findings, "RPR000")
    assert finding.file == "broken.py"
    assert "syntax error" in finding.message


# -- RPR001: protocol conformance -----------------------------------------------

PROTOCOL_FIXTURE = """
    class Compressed:
        def to_bytes(self):
            pass

    class LossyCompressed(Compressed):
        pass

    class GoodCodec(Compressed):
        def size_bits(self):
            pass

        def decompress(self):
            pass

        def access(self, k):
            pass

    class BadCodec(Compressed):
        def size_bits(self):
            pass

    class AbstractMid(Compressed):
        @abstractmethod
        def extra(self):
            pass

    class BadLossy(LossyCompressed):
        def size_bits(self):
            pass

        def decompress(self):
            pass

        def access(self, k):
            pass
"""


def test_concrete_subclass_missing_methods_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"base.py": PROTOCOL_FIXTURE})
    flagged = {f.message.split()[1] for f in by_rule(findings, "RPR001")}
    assert "BadCodec" in flagged
    assert "GoodCodec" not in flagged
    assert "AbstractMid" not in flagged  # declares an abstractmethod
    bad = next(
        f for f in by_rule(findings, "RPR001") if "BadCodec" in f.message
    )
    assert "access" in bad.message and "decompress" in bad.message


def test_lossy_subclass_needs_reconstruct_and_segments(tmp_path):
    findings = lint_tree(tmp_path, {"base.py": PROTOCOL_FIXTURE})
    lossy = next(
        f for f in by_rule(findings, "RPR001") if "BadLossy" in f.message
    )
    assert "num_segments" in lossy.message and "reconstruct" in lossy.message


def test_methods_inherited_across_files_count(tmp_path):
    findings = lint_tree(tmp_path, {
        "base.py": PROTOCOL_FIXTURE,
        "mixin.py": """
            class AccessMixin:
                def access(self, k):
                    pass

                def decompress(self):
                    pass
        """,
        "codec.py": """
            class Inherits(AccessMixin, Compressed):
                def size_bits(self):
                    pass
        """,
    })
    assert not any("Inherits" in f.message for f in by_rule(findings, "RPR001"))


def test_no_compressed_root_means_no_protocol_findings(tmp_path):
    findings = lint_tree(tmp_path, {"app.py": """
        class Unrelated:
            pass
    """})
    assert by_rule(findings, "RPR001") == []


# -- RPR101: struct format arity ------------------------------------------------


def test_pack_arity_mismatch_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"fmt.py": """
        import struct

        def f():
            return struct.pack("<ii", 1)
    """})
    (finding,) = by_rule(findings, "RPR101")
    assert "2 field(s)" in finding.message and "1 value(s)" in finding.message


def test_struct_constant_unpack_target_mismatch(tmp_path):
    findings = lint_tree(tmp_path, {"fmt.py": """
        import struct

        HEADER = struct.Struct("<qq")

        def f(buf):
            a, b, c = HEADER.unpack(buf)
            return a + b + c
    """})
    (finding,) = by_rule(findings, "RPR101")
    assert "2 field(s)" in finding.message and "3 target(s)" in finding.message


def test_invalid_format_string_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"fmt.py": """
        import struct

        BAD = struct.Struct("<zq")
    """})
    assert any(
        "invalid struct format" in f.message
        for f in by_rule(findings, "RPR101")
    )


def test_correct_arity_is_clean(tmp_path):
    findings = lint_tree(tmp_path, {"fmt.py": """
        import struct

        HEADER = struct.Struct("<8siIQ")

        def f(buf):
            magic, digits, crc, length = HEADER.unpack_from(buf)
            return struct.pack("<qi", length, digits)
    """})
    assert by_rule(findings, "RPR101") == []


# -- RPR102: struct confinement -------------------------------------------------


def test_struct_import_outside_layout_modules_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"app/logic.py": "import struct\n"})
    (finding,) = by_rule(findings, "RPR102")
    assert finding.file == "app/logic.py"


def test_layout_modules_may_import_struct(tmp_path):
    findings = lint_tree(tmp_path, {
        "codecs/container.py": "import struct\n",
        "codecs/serialize.py": "from struct import Struct\n",
        "bits/io.py": "import struct\n",
    })
    assert by_rule(findings, "RPR102") == []


# -- RPR201: durability discipline ----------------------------------------------


def test_bare_binary_write_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"writer.py": """
        def save(path, blob):
            with open(path, "wb") as fh:
                fh.write(blob)
    """})
    (finding,) = by_rule(findings, "RPR201")
    assert "'wb'" in finding.message


def test_path_open_binary_write_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"writer.py": """
        def save(path, blob):
            with path.open("wb") as fh:
                fh.write(blob)
    """})
    assert len(by_rule(findings, "RPR201")) == 1


def test_mode_keyword_and_append_modes_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"writer.py": """
        def save(path, blob):
            fh = open(path, mode="r+b")
            fh.write(blob)
    """})
    assert len(by_rule(findings, "RPR201")) == 1


def test_reads_and_text_writes_are_not_durability_findings(tmp_path):
    findings = lint_tree(tmp_path, {"reader.py": """
        import os

        def load(path):
            os.open(path, 0)
            with open(path, "rb") as fh:
                return fh.read()

        def note(path, text):
            with open(path, "w") as fh:
                fh.write(text)
    """})
    assert by_rule(findings, "RPR201") == []


def test_sanctioned_writers_are_exempt(tmp_path):
    findings = lint_tree(tmp_path, {"codecs/container.py": """
        def write_atomic(path, blob):
            with open(path, "wb") as fh:
                fh.write(blob)

        class AppendableArchive:
            def append(self, values):
                with self._path.open("r+b") as fh:
                    fh.write(b"")
    """})
    assert by_rule(findings, "RPR201") == []


def test_same_function_name_elsewhere_is_not_exempt(tmp_path):
    findings = lint_tree(tmp_path, {"other.py": """
        def write_atomic(path, blob):
            with open(path, "wb") as fh:
                fh.write(blob)
    """})
    assert len(by_rule(findings, "RPR201")) == 1


# -- RPR301: lock discipline ----------------------------------------------------


def test_unlocked_guarded_state_access_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"db.py": """
        import threading

        class SeriesDB:
            def __init__(self):
                self._lock = threading.RLock()
                self._stores = {}

            def count(self, sid):
                return len(self._stores[sid])

            def access(self, sid, k):
                with self._lock:
                    return self._stores[sid][k]

            def _helper(self, sid):
                return self._stores[sid]
    """})
    flagged = by_rule(findings, "RPR301")
    assert len(flagged) == 1
    assert "count" in flagged[0].message  # access is locked, _helper private


def test_missing_lock_creation_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"db.py": """
        class SeriesDB:
            def __init__(self):
                self._stores = {}
    """})
    assert any(
        "does not create self._lock" in f.message
        for f in by_rule(findings, "RPR301")
    )


def test_public_dunders_need_the_lock_too(tmp_path):
    findings = lint_tree(tmp_path, {"db.py": """
        import threading

        class SeriesDB:
            def __init__(self):
                self._lock = threading.RLock()
                self._series = {}

            def __len__(self):
                return len(self._series)
    """})
    assert any("__len__" in f.message for f in by_rule(findings, "RPR301"))


# -- RPR401 / RPR402 / RPR403: bans --------------------------------------------


def test_pickle_import_banned(tmp_path):
    findings = lint_tree(tmp_path, {"p.py": "import pickle\n"})
    assert len(by_rule(findings, "RPR401")) == 1


def test_eval_and_exec_banned(tmp_path):
    findings = lint_tree(tmp_path, {"e.py": """
        def f(expr):
            eval(expr)
            exec(expr)
    """})
    assert len(by_rule(findings, "RPR402")) == 2


def test_write_through_frombuffer_array_flagged(tmp_path):
    findings = lint_tree(tmp_path, {"mv.py": """
        import numpy as np

        def patch(buf):
            values = np.frombuffer(buf, dtype="int64")
            values[0] = 1
            values.setflags(write=True)
            copy = values.copy()
            copy[0] = 2
    """})
    flagged = by_rule(findings, "RPR403")
    assert len(flagged) == 2  # the copy() mutation is fine


# -- the baseline ---------------------------------------------------------------


def _finding(rule, file, line):
    return Finding(rule, file, line, "msg", "hint")


def test_baseline_roundtrip(tmp_path):
    findings = [_finding("RPR102", "a.py", 3), _finding("RPR102", "a.py", 9)]
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    loaded = Baseline.load(path)
    assert loaded.counts == {"RPR102:a.py": 2}
    data = json.loads(path.read_text())
    assert data["version"] == 1


def test_missing_baseline_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "nope.json").counts == {}


def test_corrupt_baseline_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_baseline_grandfathers_exact_count(tmp_path):
    baseline = Baseline({"RPR102:a.py": 1})
    marked = apply_baseline(
        [_finding("RPR102", "a.py", 3), _finding("RPR102", "a.py", 9)],
        baseline,
    )
    assert [f.baselined for f in marked] == [True, False]


def test_baseline_survives_line_drift(tmp_path):
    baseline = Baseline({"RPR102:a.py": 1})
    (marked,) = apply_baseline([_finding("RPR102", "a.py", 999)], baseline)
    assert marked.baselined  # keyed rule:file, not by line


# -- the real package: the gate CI runs -----------------------------------------


def test_repo_lints_clean_modulo_baseline():
    baseline = Baseline.load(REPO_ROOT / ".repro-lint.json")
    findings = run_lint(baseline=baseline)
    fresh = [f for f in findings if not f.baselined]
    assert fresh == [], "\n".join(f.render() for f in fresh)


def test_repo_baseline_is_not_stale():
    """Fixed debt must leave the baseline (--update-baseline) promptly."""
    baseline = Baseline.load(REPO_ROOT / ".repro-lint.json")
    live = Baseline.from_findings(run_lint()).counts
    for key, allowed in baseline.counts.items():
        assert live.get(key, 0) >= allowed, (
            f"baseline allows {allowed} x {key} but only {live.get(key, 0)} "
            "remain: regenerate with `repro lint --update-baseline`"
        )
