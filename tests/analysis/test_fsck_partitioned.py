"""fsck over partitioned roots and group-commit WALs (FSK030-FSK034)."""

import json
import shutil

import numpy as np
import pytest

from repro.analysis import fsck_partitioned, fsck_path
from repro.store import PartitionedSeriesDB, SeriesDB


def _fleet(rng, k=6, n=400):
    return {
        f"s{i}": np.cumsum(rng.integers(-9, 10, n)).astype(np.int64)
        for i in range(k)
    }


@pytest.fixture
def proot(tmp_path, rng):
    root = tmp_path / "pdb"
    db = PartitionedSeriesDB(root, partitions=3)
    db.ingest_many(_fleet(rng), workers=1)
    db.flush()
    db.close()
    return root


def codes(report):
    return [p.code for p in report.problems]


class TestDispatch:
    def test_partitioned_root_gets_partitioned_kind(self, proot):
        report = fsck_path(proot, deep=True)
        assert report.kind == "partitioned"
        assert report.ok, [p.render() for p in report.problems]
        assert report.checked["partitions"] == 3
        assert report.checked["series"] == 6

    def test_single_dir_still_fscks_as_seriesdb(self, tmp_path, rng):
        db = SeriesDB(tmp_path / "db")
        db.ingest("a", _fleet(rng, k=1)["s0"])
        db.flush()
        db.close()
        assert fsck_path(tmp_path / "db").kind == "seriesdb"


class TestPartitionProblems:
    def test_missing_partition_dir_is_fsk031(self, proot):
        shutil.rmtree(proot / "p0001")
        report = fsck_path(proot)
        assert "FSK031" in codes(report)
        assert not report.ok

    def test_unmapped_and_orphan_series_are_fsk032(self, proot):
        manifest = json.loads((proot / "MANIFEST.json").read_text())
        dropped = next(iter(manifest["series"]))
        del manifest["series"][dropped]     # partition has it, map does not
        manifest["series"]["ghost"] = 0     # map has it, no partition does
        (proot / "MANIFEST.json").write_text(json.dumps(manifest))
        report = fsck_partitioned(proot)
        found = codes(report)
        assert found.count("FSK032") == 2
        messages = " ".join(p.message for p in report.problems)
        assert dropped in messages and "ghost" in messages

    def test_wrong_partition_mapping_is_fsk032(self, proot):
        manifest = json.loads((proot / "MANIFEST.json").read_text())
        sid, part = next(iter(manifest["series"].items()))
        manifest["series"][sid] = (part + 1) % manifest["partitions"]
        (proot / "MANIFEST.json").write_text(json.dumps(manifest))
        report = fsck_partitioned(proot)
        assert "FSK032" in codes(report)

    def test_bad_partition_count_is_fsk030(self, proot):
        manifest = json.loads((proot / "MANIFEST.json").read_text())
        manifest["partitions"] = 0
        (proot / "MANIFEST.json").write_text(json.dumps(manifest))
        assert codes(fsck_partitioned(proot)) == ["FSK030"]

    def test_partition_defect_keeps_its_own_code(self, proot):
        # corrupt one partition's manifest: the finding surfaces with the
        # single-dir code (FSK020), pathed inside the partition
        (proot / "p0000" / "MANIFEST.json").write_text("{nope")
        report = fsck_path(proot)
        found = [p for p in report.problems if p.code == "FSK020"]
        assert found and "p0000" in found[0].path


class TestGroupWalProblems:
    @pytest.fixture
    def groot(self, tmp_path, rng):
        """A single-dir group-commit DB abandoned with a live group log."""
        root = tmp_path / "gdb"
        db = SeriesDB(root, group_commit=True, hot_codec="gorilla")
        db.ingest_many(_fleet(rng, k=3), workers=1)
        del db  # crash-style: group log referenced by the manifest
        return root

    def _group_path(self, root):
        manifest = json.loads((root / "MANIFEST.json").read_text())
        return root / manifest["group_wal"]

    def test_clean_group_log_deep_ok(self, groot):
        report = fsck_path(groot, deep=True)
        assert report.ok, [p.render() for p in report.problems]
        assert report.checked["group_wals"] == 1
        assert report.checked["records"] == 3

    def test_bad_magic_is_fsk033(self, groot):
        path = self._group_path(groot)
        raw = bytearray(path.read_bytes())
        raw[:8] = b"XXXXXXXX"
        path.write_bytes(bytes(raw))
        assert "FSK033" in codes(fsck_path(groot))

    def test_record_corruption_is_fsk013(self, groot):
        path = self._group_path(groot)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert "FSK013" in codes(fsck_path(groot))

    def test_torn_tail_is_fsk015(self, groot):
        path = self._group_path(groot)
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        assert "FSK015" in codes(fsck_path(groot))

    def test_codec_conflict_is_fsk034(self, groot):
        manifest = json.loads((groot / "MANIFEST.json").read_text())
        manifest["hot_codec"] = "zstd"
        (groot / "MANIFEST.json").write_text(json.dumps(manifest))
        assert "FSK034" in codes(fsck_path(groot))

    def test_group_log_surfaces_through_partitioned_root(self, tmp_path, rng):
        root = tmp_path / "pdb"
        db = PartitionedSeriesDB(root, partitions=2)
        db.ingest_many(_fleet(rng, k=4), workers=1)
        del db  # group logs live in the partitions
        report = fsck_path(root, deep=True)
        assert report.ok, [p.render() for p in report.problems]
        assert report.checked["group_wals"] >= 1
