"""repro fsck over SeriesDB directories: manifest <-> shards <-> WAL.

The matrix: a healthy database (flushed, and with pending WAL records)
must pass ``--deep``; a deleted shard, a bit-rotted shard, a manifest that
lies about counts or digits, a corrupted WAL record, and files no manifest
entry references must each be flagged with their own problem code.
"""

import json
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import fsck_path, fsck_seriesdb
from repro.store import SeriesDB


@pytest.fixture
def db_root(tmp_path, walk_series):
    """A flushed two-series database plus un-flushed WAL records on 'cpu'."""
    root = tmp_path / "db"
    db = SeriesDB(root, seal_threshold=256)
    db.ingest("cpu", walk_series, digits=2)
    db.ingest("mem", walk_series[:700])
    db.flush()
    db.ingest("cpu", walk_series[:100], digits=2)  # durable, not flushed
    return root


def codes(report):
    return {p.code for p in report.problems}


def manifest(root):
    return json.loads((root / "MANIFEST.json").read_text())


def rewrite_manifest(root, data):
    (root / "MANIFEST.json").write_text(json.dumps(data))


def shard_path(root, sid):
    return root / manifest(root)["series"][sid]["shard"]


def wal_path(root, sid):
    return root / manifest(root)["series"][sid]["wal"]


# -- healthy databases ----------------------------------------------------------


def test_clean_db_passes_shallow_and_deep(db_root):
    shallow = fsck_seriesdb(db_root)
    deep = fsck_seriesdb(db_root, deep=True)
    assert shallow.ok and deep.ok
    assert deep.exit_code == 0
    assert deep.checked["series"] == 2
    assert deep.checked["shards"] == 2


def test_deep_replays_wal_on_top_of_snapshots(db_root, walk_series):
    report = fsck_seriesdb(db_root, deep=True)
    assert report.ok
    # the pending 100 WAL values count toward the replayed totals
    assert report.checked["decoded_values"] == len(walk_series) + 700


def test_directory_dispatch(db_root):
    assert fsck_path(db_root).kind == "seriesdb"


# -- manifest defects -----------------------------------------------------------


def test_missing_manifest_is_exit_2(tmp_path):
    (tmp_path / "empty").mkdir()
    report = fsck_path(tmp_path / "empty")
    assert codes(report) == {"FSK001"}
    assert report.exit_code == 2


def test_unparseable_manifest(db_root):
    (db_root / "MANIFEST.json").write_text("{not json")
    assert codes(fsck_seriesdb(db_root)) == {"FSK020"}


def test_wrong_manifest_format(db_root):
    data = manifest(db_root)
    data["format"] = "RPDB9999"
    rewrite_manifest(db_root, data)
    assert codes(fsck_seriesdb(db_root)) == {"FSK021"}


def test_malformed_series_entry(db_root):
    data = manifest(db_root)
    data["series"]["mem"] = {"count": 700}  # no shard reference
    rewrite_manifest(db_root, data)
    assert "FSK021" in codes(fsck_seriesdb(db_root))


# -- shard defects --------------------------------------------------------------


def test_deleted_shard_flagged(db_root):
    shard_path(db_root, "mem").unlink()
    report = fsck_seriesdb(db_root)
    assert "FSK022" in codes(report)
    assert report.exit_code == 1


def test_bitrotted_shard_fails_crc(db_root):
    path = shard_path(db_root, "mem")
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    assert "FSK023" in codes(fsck_seriesdb(db_root))


def test_swapped_shard_fails_crc(db_root):
    """A *valid* snapshot from the wrong series is still a defect."""
    cpu, mem = shard_path(db_root, "cpu"), shard_path(db_root, "mem")
    mem.write_bytes(cpu.read_bytes())
    assert "FSK023" in codes(fsck_seriesdb(db_root))


def test_wrong_magic_shard(db_root):
    path = shard_path(db_root, "mem")
    blob = b"XXXXXXXX" + path.read_bytes()[8:]
    path.write_bytes(blob)
    data = manifest(db_root)
    data["series"]["mem"]["crc32"] = zlib.crc32(blob)  # crc resealed
    rewrite_manifest(db_root, data)
    assert "FSK024" in codes(fsck_seriesdb(db_root))


def test_manifest_count_lie_caught_deep_only(db_root):
    data = manifest(db_root)
    data["series"]["mem"]["count"] += 13
    rewrite_manifest(db_root, data)
    assert "FSK025" not in codes(fsck_seriesdb(db_root))
    assert "FSK025" in codes(fsck_seriesdb(db_root, deep=True))


def test_dangling_shard_file_flagged(db_root):
    (db_root / "shards" / "orphan-9999.tier").write_bytes(b"leftover")
    assert "FSK028" in codes(fsck_seriesdb(db_root))


def test_tmp_files_are_not_dangling(db_root):
    (db_root / "shards" / "x.tier.tmp").write_bytes(b"in flight")
    assert fsck_seriesdb(db_root).ok


# -- WAL defects ----------------------------------------------------------------


def test_corrupt_wal_record_flagged(db_root):
    path = wal_path(db_root, "cpu")
    blob = bytearray(path.read_bytes())
    blob[-3] ^= 0xFF
    path.write_bytes(bytes(blob))
    report = fsck_seriesdb(db_root)
    assert "FSK026" in codes(report)
    assert report.exit_code == 1


def test_wal_digits_conflict(db_root):
    data = manifest(db_root)
    data["series"]["cpu"]["digits"] = 7  # WAL header says 2
    rewrite_manifest(db_root, data)
    assert "FSK027" in codes(fsck_seriesdb(db_root))


def test_wal_codec_conflict(db_root):
    data = manifest(db_root)
    data["hot_codec"] = "leco"  # the WAL was written with gorilla
    rewrite_manifest(db_root, data)
    assert "FSK027" in codes(fsck_seriesdb(db_root))


def test_stale_wal_generation_is_dangling(db_root):
    """A log file left behind by a crash mid-rotation has no reference."""
    data = manifest(db_root)
    stale = db_root / "shards" / "cpu-0099.wal"
    stale.write_bytes(wal_path(db_root, "cpu").read_bytes())
    rewrite_manifest(db_root, data)
    assert "FSK028" in codes(fsck_seriesdb(db_root))


def test_unopenable_db_caught_by_deep_backstop(db_root):
    """Deep mode ends with a real SeriesDB.open: fields the structural pass
    does not model (here: a vanished next_shard counter) still fail."""
    data = manifest(db_root)
    del data["next_shard"]
    rewrite_manifest(db_root, data)
    assert fsck_seriesdb(db_root).ok  # structurally fine...
    report = fsck_seriesdb(db_root, deep=True)
    assert "FSK029" in codes(report)  # ...but the database cannot open
    assert report.exit_code == 1


def test_replay_divergence_caught_by_deep_backstop(db_root, monkeypatch):
    """If replay ever disagrees with snapshot + WAL accounting, FSK029."""
    real = SeriesDB.count
    monkeypatch.setattr(
        SeriesDB, "count", lambda self, sid: real(self, sid) - 1
    )
    report = fsck_seriesdb(db_root, deep=True)
    assert "FSK029" in codes(report)


def test_exit_code_aggregation(db_root):
    shard_path(db_root, "mem").unlink()
    (db_root / "shards" / "orphan-9999.tier").write_bytes(b"leftover")
    report = fsck_seriesdb(db_root)
    assert {"FSK022", "FSK028"} <= codes(report)
    assert report.exit_code == 1
    payload = report.to_json()
    assert payload["exit_code"] == 1
    assert len(payload["problems"]) == len(report.problems)
