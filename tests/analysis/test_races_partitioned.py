"""Schedule-explorer stress suite for the partitioned façade.

Same contract as :mod:`tests.analysis.test_races`, one level up: the
façade lock orders partition-map mutations and every fan-out, and each
partition's own (sanitized) lock orders its WAL and shard-cache writes.
Under every explored interleaving of concurrent ingest / compact / query
/ close through one :class:`PartitionedSeriesDB`, the vector-clock ledger
must stay free of races and the façade-then-partition nesting free of
lock-order inversions.  All fan-outs run with ``workers=1`` so the
scheduler controls every thread in play.

Seeds can be pinned with ``REPRO_SCHED_SEED`` — the CI ``race`` job runs
this file once per fixed seed.
"""

import json
import os

import numpy as np
import pytest

from repro.analysis.sanitizer import Ledger, active_ledger, disable, enable
from repro.analysis.schedule import Scheduler
from repro.store import PartitionedSeriesDB


def _seeds():
    pinned = os.environ.get("REPRO_SCHED_SEED")
    if pinned is not None:
        return [int(pinned)]
    return [0, 1, 2]


@pytest.fixture
def ledger():
    """Enable the sanitizer on a private ledger; always restore after."""
    was_active = active_ledger()
    if was_active is not None:
        disable()
    ledger = enable(Ledger())
    try:
        yield ledger
    finally:
        disable()
        if was_active is not None:
            enable(was_active)


def _values(seed, n=400):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.integers(-9, 10, n)).astype(np.int64)


class TestPartitionedStress:
    @pytest.mark.parametrize("seed", _seeds())
    def test_ingest_compact_query_close_is_clean(self, ledger, tmp_path, seed):
        """Concurrent ingest + compact + query + close on ONE façade.

        New-series ingest mutates the shared partition map; queries
        scatter across partitions; close poisons everything.  No
        interleaving may produce a race or an inversion — late tasks see
        the contracted post-close ValueError and stop.
        """
        db = PartitionedSeriesDB(
            tmp_path / f"stress-{seed}", partitions=2, seal_threshold=128,
        )
        db.ingest_many({"warm/a": _values(90), "warm/b": _values(91)},
                       workers=1)
        errors: list = []

        def guard(fn):
            def body():
                try:
                    fn()
                except ValueError as exc:  # the post-close contract
                    assert "closed" in str(exc)
                except BaseException as exc:  # pragma: no cover - fail loud
                    errors.append(exc)
                    raise

            return body

        def ingests():
            for chunk in range(3):
                # new ids each round: every one mutates the partition map
                db.ingest_many({f"hot/{chunk}": _values(chunk, 80)}, workers=1)

        def compacts():
            for _ in range(2):
                db.compact(workers=1)

        def queries():
            for _ in range(3):
                if "warm/a" in db:
                    db.access("warm/a", 5)
                    db.range_many({"warm/a": (0, 40), "warm/b": (0, 40)},
                                  workers=1)

        def closes():
            db.flush()
            db.close()

        sched = Scheduler(seed, step_timeout=30.0)
        sched.add("ingest", guard(ingests))
        sched.add("compact", guard(compacts))
        sched.add("query", guard(queries))
        sched.add("close", guard(closes))
        trace = sched.run()
        db.close()  # idempotent no matter where the schedule stopped

        assert errors == []
        assert len(trace) > 4  # the tasks really interleaved
        report = ledger.report()
        assert report["races"] == []
        assert report["inversions"] == []

    def test_same_seed_same_trace(self, tmp_path):
        """Reproducibility holds through the façade's nested locking."""

        def run(tag):
            root = tmp_path / tag
            db = PartitionedSeriesDB(root, partitions=2, seal_threshold=128)

            def tolerant(fn):
                def body():
                    try:
                        fn()
                    except ValueError as exc:  # post-close, deterministic
                        assert "closed" in str(exc)

                return body

            sched = Scheduler(11)
            sched.add(
                "ingest",
                tolerant(
                    lambda: db.ingest_many({"s": _values(1, 50)}, workers=1)
                ),
            )
            sched.add(
                "query",
                tolerant(lambda: db.count("s") if "s" in db else None),
            )
            sched.add("close", db.close)
            try:
                # canonicalise the root embedded in sanitized-lock labels
                return json.dumps(sched.run()).replace(str(root), "<root>")
            finally:
                db.close()

        assert run("a") == run("b")
