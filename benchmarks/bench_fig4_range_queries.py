"""Figure 4 benchmark: range-query throughput vs range size.

The paper's shape: DAC is fastest for ranges below ~40 points (cheap per-
point native access), NeaTS overtakes for everything larger (one fragment
lookup amortised over a vectorised scan), block-wise compressors trail at
both ends.
"""

import numpy as np
import pytest

RANGE_SIZES = [10, 40, 160, 640]


def _starts(n, size, count=20):
    rng = np.random.default_rng(size)
    return rng.integers(0, max(n - size, 1), count).tolist()


@pytest.mark.parametrize("size", RANGE_SIZES)
@pytest.mark.parametrize("name", ["ALP", "DAC", "Lz4*", "NeaTS"])
def test_range_query(benchmark, compressed_by_name, bench_series, name, size):
    compressed = compressed_by_name[name]
    starts = _starts(len(bench_series), size)

    def run():
        for s in starts:
            compressed.decompress_range(s, s + size)

    benchmark(run)
    s = starts[0]
    assert np.array_equal(
        compressed.decompress_range(s, s + size), bench_series[s : s + size]
    )
    benchmark.extra_info["range_size"] = size
    benchmark.extra_info["queries_per_round"] = len(starts)
