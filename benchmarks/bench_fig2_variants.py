"""Figure 2 benchmark: NeaTS vs LeaTS vs SNeaTS compression speed.

The §IV-C1 in-text claims: LeaTS compresses ~5x and SNeaTS ~13x faster than
full NeaTS, at 0.89% and 8.18% worse compression ratio respectively.  The
ratio deltas land in ``extra_info``.
"""

import numpy as np
import pytest

from repro.core import NeaTS


@pytest.mark.parametrize("variant", ["NeaTS", "LeaTS", "SNeaTS"])
def test_variant_compression(benchmark, bench_series, variant):
    if variant == "NeaTS":
        comp = NeaTS()
    elif variant == "LeaTS":
        comp = NeaTS.linear_only()
    else:
        comp = NeaTS.with_model_selection()
    compressed = benchmark.pedantic(
        lambda: comp.compress(bench_series), rounds=1, iterations=1
    )
    assert np.array_equal(compressed.decompress(), bench_series)
    benchmark.extra_info["ratio_pct"] = round(
        100 * compressed.compression_ratio(), 2
    )
    benchmark.extra_info["fragments"] = compressed.num_fragments
