"""Ablation benchmarks: succinct-structure choices inside NeaTS.

Covers the design decisions DESIGN.md §5 calls out:

* Elias-Fano rank vs the O(1) bitvector rank for fragment lookup (§III-C);
* the E-grid density (stride) for Algorithm 1;
* micro-benchmarks of the underlying rank/select primitives.
"""

import numpy as np
import pytest

from repro.bits import BitVector, EliasFano, WaveletTree
from repro.core import NeaTS


@pytest.fixture(scope="module")
def access_positions(bench_series):
    rng = np.random.default_rng(1)
    return rng.integers(0, len(bench_series), 200).tolist()


@pytest.mark.parametrize("mode", ["ef", "bitvector"])
def test_rank_mode_access(benchmark, bench_series, access_positions, mode):
    compressed = NeaTS(rank_mode=mode).compress(bench_series)

    def run():
        acc = 0
        for k in access_positions:
            acc ^= compressed.access(k)
        return acc

    benchmark(run)
    benchmark.extra_info["size_bits"] = compressed.size_bits()


@pytest.mark.parametrize("stride", [1, 2, 4])
def test_eps_grid_stride(benchmark, bench_series, stride):
    comp = NeaTS(eps_stride=stride)
    compressed = benchmark.pedantic(
        lambda: comp.compress(bench_series), rounds=1, iterations=1
    )
    benchmark.extra_info["ratio_pct"] = round(
        100 * compressed.compression_ratio(), 2
    )


class TestPrimitives:
    @pytest.fixture(scope="class")
    def bv(self):
        rng = np.random.default_rng(2)
        return BitVector(rng.integers(0, 2, 100_000).tolist())

    @pytest.fixture(scope="class")
    def ef(self):
        rng = np.random.default_rng(3)
        return EliasFano(sorted(int(v) for v in rng.integers(0, 10**7, 20_000)))

    def test_bitvector_rank(self, benchmark, bv):
        positions = list(range(0, 100_000, 997))
        benchmark(lambda: [bv.rank1(i) for i in positions])

    def test_bitvector_select(self, benchmark, bv):
        ks = list(range(0, bv.count_ones, 499))
        benchmark(lambda: [bv.select1(k) for k in ks])

    def test_eliasfano_access(self, benchmark, ef):
        idxs = list(range(0, len(ef), 199))
        benchmark(lambda: [ef[i] for i in idxs])

    def test_eliasfano_rank(self, benchmark, ef):
        probes = list(range(0, 10**7, 99_991))
        benchmark(lambda: [ef.rank(x) for x in probes])

    def test_wavelet_rank(self, benchmark):
        rng = np.random.default_rng(4)
        wt = WaveletTree(rng.integers(0, 4, 50_000).tolist(), sigma=4)
        idxs = list(range(0, 50_000, 499))
        benchmark(lambda: [wt.rank(2, i) for i in idxs])
