"""Parallel compression benchmark: ``compress_many`` vs serial, plus SeriesDB.

Measures the tentpole claim of the store subsystem: fanning
``compress_many`` out over a 4-worker process pool is >= 2x faster than
serial ``repro.compress`` on 8 series of 100k values each (given >= 4
cores — the pool cannot beat serial on a single-core box, and the pytest
speedup check skips itself there).  Also verifies, at benchmark scale,
that a ``SeriesDB`` snapshot survives a save/load/query round-trip with
byte-identical shard frames.

Run the full-scale numbers as a script::

    PYTHONPATH=src python benchmarks/bench_parallel_compress.py
    PYTHONPATH=src python benchmarks/bench_parallel_compress.py \
        --series 8 --n 100000 --workers 4 --codec gorilla

or through pytest (explicit path; bench_* files are not swept by tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_compress.py -v
"""

import argparse
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.store import SeriesDB, compress_many_frames, default_workers

N_SERIES = 8
N_VALUES = 100_000
WORKERS = 4
CODEC = "gorilla"  # native payload: pooled frames decode without recompression


def make_fleet(n_series: int, n: int) -> dict:
    """Synthetic sensor fleet: distinct smooth-plus-walk series per id."""
    rng = np.random.default_rng(7)
    fleet = {}
    for i in range(n_series):
        smooth = 1000 * np.sin(np.arange(n) / (30 + 7 * i))
        walk = np.cumsum(rng.integers(-3, 4, n))
        fleet[f"series-{i:02d}"] = (smooth + walk).astype(np.int64)
    return fleet


def run_compress(n_series: int, n: int, workers: int, codec: str):
    """Time serial vs pooled compression; returns (t_serial, t_pool, frames)."""
    fleet = make_fleet(n_series, n)

    t0 = time.perf_counter()
    serial = {k: repro.compress(v, codec=codec).to_bytes()
              for k, v in fleet.items()}
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = compress_many_frames(fleet, codec=codec, workers=workers)
    t_pool = time.perf_counter() - t0

    assert pooled == serial, "pooled frames must be byte-identical to serial"
    return t_serial, t_pool, pooled


def run_seriesdb_roundtrip(n_series: int, n: int, workers: int, codec: str):
    """Flush a SeriesDB, reopen it, and compare shard bytes and answers."""
    fleet = make_fleet(n_series, n)
    root = Path(tempfile.mkdtemp(prefix="repro-bench-db-"))
    try:
        db = SeriesDB(root, seal_threshold=4096, hot_codec=codec,
                      cold_codec=codec)
        db.ingest_many(fleet, workers=workers)
        db.flush()
        shards = {
            sid: (root / db.info()["series"][sid]["shard"]).read_bytes()
            for sid in db.series_ids()
        }

        reopened = SeriesDB.open(root)
        for sid, values in fleet.items():
            assert reopened.access(sid, n // 2) == values[n // 2]
            assert np.array_equal(reopened.range(sid, 10, 400), values[10:400])
        reopened.mark_dirty(next(iter(fleet)))  # force one rewrite
        reopened.flush()
        for sid, blob in shards.items():
            path = root / reopened.info()["series"][sid]["shard"]
            assert path.read_bytes() == blob, (
                f"shard {sid} changed bytes across a load/flush cycle"
            )
        return sum(len(b) for b in shards.values())
    finally:
        shutil.rmtree(root, ignore_errors=True)


# -- pytest entry points -------------------------------------------------------


def test_pooled_frames_match_serial_small():
    """Determinism at small scale — runs everywhere, fast."""
    run_compress(n_series=4, n=5_000, workers=2, codec=CODEC)


def test_seriesdb_snapshot_roundtrip_small():
    run_seriesdb_roundtrip(n_series=3, n=9_000, workers=2, codec=CODEC)


@pytest.mark.skipif(default_workers() < 4,
                    reason="pool speedup needs >= 4 schedulable cores")
def test_pool_speedup_full_scale():
    """The acceptance bar: 4 workers >= 2x serial on 8 x 100k values."""
    t_serial, t_pool, _ = run_compress(N_SERIES, N_VALUES, WORKERS, CODEC)
    assert t_serial / t_pool >= 2.0, (
        f"serial {t_serial:.2f}s vs pooled {t_pool:.2f}s "
        f"({t_serial / t_pool:.2f}x)"
    )


# -- script entry point --------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--series", type=int, default=N_SERIES)
    parser.add_argument("--n", type=int, default=N_VALUES)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--codec", default=CODEC)
    args = parser.parse_args()

    print(f"fleet: {args.series} series x {args.n:,} values, "
          f"codec={args.codec}, cores available={default_workers()}")
    t_serial, t_pool, frames = run_compress(args.series, args.n,
                                            args.workers, args.codec)
    total = args.series * args.n
    print(f"serial : {t_serial:7.2f}s  {total / t_serial / 1e6:6.2f} Mvalues/s")
    print(f"pooled : {t_pool:7.2f}s  {total / t_pool / 1e6:6.2f} Mvalues/s "
          f"({args.workers} workers)")
    print(f"speedup: {t_serial / t_pool:.2f}x "
          f"(frames byte-identical to serial: yes)")

    shard_bytes = run_seriesdb_roundtrip(args.series, args.n,
                                         args.workers, args.codec)
    print(f"SeriesDB round-trip: byte-identical shards after reopen+reflush "
          f"({shard_bytes:,} shard bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
