"""Table II benchmark: lossy compression — AA vs PLA vs NeaTS-L.

Regenerates the paper's lossy comparison through the codec registry (the
ids ``aa``, ``pla``, ``neats_l``, each constructed with the required
``eps`` bound): per dataset, the three approaches are timed on compression,
and their compression ratios are reported through ``extra_info`` (the
paper's Table II columns).  Run with::

    pytest benchmarks/bench_table2_lossy.py --benchmark-only
"""

import pytest

import repro


def _eps_for(y):
    return max(0.01 * (int(y.max()) - int(y.min())), 1.0)


@pytest.mark.parametrize("dataset", ["IT", "US", "CT"])
class TestTable2Compression:
    def test_aa_compress(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        eps = _eps_for(y)
        result = benchmark(lambda: repro.compress(y, codec="aa", eps=eps))
        assert result.max_error(y) <= eps + 1e-6
        benchmark.extra_info["ratio_pct"] = round(100 * result.compression_ratio(), 2)
        benchmark.extra_info["segments"] = result.num_segments

    def test_pla_compress(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        eps = _eps_for(y)
        result = benchmark(lambda: repro.compress(y, codec="pla", eps=eps))
        assert result.max_error(y) <= eps + 1e-6
        benchmark.extra_info["ratio_pct"] = round(100 * result.compression_ratio(), 2)
        benchmark.extra_info["segments"] = result.num_segments

    def test_neats_l_compress(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        eps = _eps_for(y)
        result = benchmark(lambda: repro.compress(y, codec="neats_l", eps=eps))
        assert result.max_error(y) <= eps + 1e-6
        benchmark.extra_info["ratio_pct"] = round(100 * result.compression_ratio(), 2)
        benchmark.extra_info["fragments"] = result.num_segments


@pytest.mark.parametrize("dataset", ["IT"])
class TestTable2Decompression:
    def test_pla_reconstruct(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        series = repro.compress(y, codec="pla", eps=_eps_for(y))
        benchmark(series.reconstruct)

    def test_aa_reconstruct(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        series = repro.compress(y, codec="aa", eps=_eps_for(y))
        benchmark(series.reconstruct)

    def test_neats_l_reconstruct(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        series = repro.compress(y, codec="neats_l", eps=_eps_for(y))
        benchmark(series.reconstruct)


@pytest.mark.parametrize("codec", ["aa", "pla", "neats_l"])
class TestLossyFrameLoad:
    def test_native_frame_load(self, benchmark, bench_datasets, codec):
        """Loading a lossy frame is a direct parse — no re-fitting."""
        from repro.baselines.base import Compressed

        y = bench_datasets["IT"]
        frame = repro.compress(y, codec=codec, eps=_eps_for(y)).to_bytes()
        loaded = benchmark(Compressed.from_bytes, frame)
        assert loaded.to_bytes() == frame
