"""Table II benchmark: lossy compression — AA vs PLA vs NeaTS-L.

Regenerates the paper's lossy comparison: per dataset, the three approaches
are timed on compression, and their compression ratios are reported through
``extra_info`` (the paper's Table II columns).  Run with::

    pytest benchmarks/bench_table2_lossy.py --benchmark-only
"""

import pytest

from repro.baselines import AaCompressor, PlaCompressor
from repro.core import NeaTSLossy


def _eps_for(y):
    return max(0.01 * (int(y.max()) - int(y.min())), 1.0)


@pytest.mark.parametrize("dataset", ["IT", "US", "CT"])
class TestTable2Compression:
    def test_aa_compress(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        eps = _eps_for(y)
        result = benchmark(lambda: AaCompressor(eps).compress(y))
        assert result.max_error(y) <= eps + 1e-6
        benchmark.extra_info["ratio_pct"] = round(100 * result.compression_ratio(), 2)
        benchmark.extra_info["segments"] = result.num_segments

    def test_pla_compress(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        eps = _eps_for(y)
        result = benchmark(lambda: PlaCompressor(eps).compress(y))
        assert result.max_error(y) <= eps + 1e-6
        benchmark.extra_info["ratio_pct"] = round(100 * result.compression_ratio(), 2)
        benchmark.extra_info["segments"] = result.num_segments

    def test_neats_l_compress(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        eps = _eps_for(y)
        result = benchmark(lambda: NeaTSLossy(eps).compress(y))
        assert result.max_error(y) <= eps + 1e-6
        benchmark.extra_info["ratio_pct"] = round(100 * result.compression_ratio(), 2)
        benchmark.extra_info["fragments"] = len(result.fragments)


@pytest.mark.parametrize("dataset", ["IT"])
class TestTable2Decompression:
    def test_pla_reconstruct(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        series = PlaCompressor(_eps_for(y)).compress(y)
        benchmark(series.reconstruct)

    def test_aa_reconstruct(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        series = AaCompressor(_eps_for(y)).compress(y)
        benchmark(series.reconstruct)

    def test_neats_l_reconstruct(self, benchmark, bench_datasets, dataset):
        y = bench_datasets[dataset]
        series = NeaTSLossy(_eps_for(y)).compress(y)
        benchmark(series.reconstruct)
