"""Table III (bottom) benchmark: random access speed.

Reproduces the paper's key claim: NeaTS (and DAC/LeCo, the native-access
schemes) answer point queries orders of magnitude faster than the block-wise
compressors, which must decode a 1000-value block per access.
"""

import numpy as np
import pytest

QUERY_POSITIONS = None


def _positions(n, count=200):
    rng = np.random.default_rng(0)
    return rng.integers(0, n, count).tolist()


@pytest.mark.parametrize(
    "name", ["Xz", "Zstd*", "Lz4*", "DAC", "LeCo", "ALP", "NeaTS"]
)
def test_random_access(benchmark, compressed_by_name, bench_series, name):
    compressed = compressed_by_name[name]
    positions = _positions(len(bench_series))

    def run():
        acc = 0
        for k in positions:
            acc ^= compressed.access(k)
        return acc

    benchmark(run)
    # verify correctness outside the timed region
    for k in positions[:16]:
        assert compressed.access(k) == bench_series[k]
    benchmark.extra_info["queries_per_round"] = len(positions)
