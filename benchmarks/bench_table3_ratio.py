"""Table III (top) benchmark: lossless compression (ratio via extra_info).

Each test compresses one dataset with one compressor from the paper's
line-up; pytest-benchmark times the compression (the Figure 2 x-axis) and the
achieved compression ratio is attached as ``extra_info`` (the Table III top
panel).
"""

import numpy as np
import pytest

from repro.bench.registry import make_compressor
from repro.data import DATASETS

COMPRESSORS = ["Xz", "Zstd*", "Lz4*", "Chimp128", "Chimp", "TSXor",
               "DAC", "Gorilla", "LeCo", "ALP", "NeaTS"]


@pytest.mark.parametrize("name", COMPRESSORS)
def test_compression(benchmark, bench_series, name):
    comp = make_compressor(name, digits=DATASETS["IT"].digits)
    compressed = benchmark.pedantic(
        lambda: comp.compress(bench_series), rounds=1, iterations=1
    )
    assert np.array_equal(compressed.decompress(), bench_series)
    benchmark.extra_info["ratio_pct"] = round(
        100 * compressed.size_bits() / (64 * len(bench_series)), 2
    )
