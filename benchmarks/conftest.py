"""Shared fixtures for the pytest-benchmark suite.

Benchmarks run on small slices of the synthetic datasets (pure-Python
compression is the slow part); the full paper-scale tables come from
``python -m repro.bench`` instead (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.data import DATASETS

BENCH_N = 2000


@pytest.fixture(scope="session")
def bench_datasets():
    """Three representative datasets at benchmark scale."""
    return {
        name: DATASETS[name].generate(BENCH_N)
        for name in ("IT", "US", "CT")
    }


@pytest.fixture(scope="session")
def bench_series(bench_datasets):
    """A single default series for micro-benchmarks."""
    return bench_datasets["IT"]


@pytest.fixture(scope="session")
def compressed_by_name(bench_datasets):
    """Pre-compressed representations for query benchmarks."""
    from repro.bench.registry import make_compressor

    out = {}
    for name in ("Xz", "Zstd*", "Lz4*", "DAC", "LeCo", "ALP", "NeaTS"):
        comp = make_compressor(name, digits=DATASETS["IT"].digits)
        out[name] = comp.compress(bench_datasets["IT"])
    return out
