"""Append latency: the appendable container vs decode-everything rewrite.

Measures the two claims of the streaming ingest path:

* appending M values to an ``RPAL0001`` archive does O(M) work — latency
  is independent of the S values already sealed in the file (each append
  compresses only the new chunk and lands it as one fsync'd tail record);
* the append is far cheaper than what a one-shot ``RPAC0001`` archive
  forces: decode everything, concatenate, recompress, rewrite — O(S + M).

Run the full-scale numbers as a script::

    PYTHONPATH=src python benchmarks/bench_append.py
    PYTHONPATH=src python benchmarks/bench_append.py --sizes 10000 1000000
    PYTHONPATH=src python benchmarks/bench_append.py --smoke

or through pytest (explicit path; bench_* files are not swept by tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_append.py -v
"""

import argparse
import shutil
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.codecs.container import AppendableArchive, open_archive, save

SIZES = (10_000, 100_000, 1_000_000)  # sealed values already in the archive
BATCH = 5_000  # values appended per measurement
REPEATS = 5
CODEC = "gorilla"
CHUNK = 50_000  # build-time append granularity


def make_series(n: int) -> np.ndarray:
    """Smooth-plus-walk, the shape these codecs are built for."""
    rng = np.random.default_rng(7)
    smooth = 2000 * np.sin(np.arange(n) / 450)
    return (smooth + np.cumsum(rng.integers(-3, 4, n))).astype(np.int64)


def build_archives(values: np.ndarray, workdir: Path, tag: str) -> tuple[Path, Path]:
    """An appendable and a one-shot archive holding the same ``values``."""
    rpal = workdir / f"base-{tag}.rpal"
    log = AppendableArchive.create(rpal, codec=CODEC)
    for lo in range(0, len(values), CHUNK):
        log.append(values[lo : lo + CHUNK])
    rpac = workdir / f"base-{tag}.rpac"
    save(rpac, repro.compress(values, codec=CODEC))
    return rpal, rpac


def time_append(rpal: Path, batch: np.ndarray, repeats: int) -> float:
    """Median seconds for open -> one fsync'd append of ``batch``."""
    samples = []
    for i in range(repeats):
        work = rpal.with_name(f"{rpal.stem}-r{i}.rpal")
        shutil.copy(rpal, work)  # setup, not measured
        t0 = time.perf_counter()
        log = AppendableArchive.open(work)
        log.append(batch)
        samples.append(time.perf_counter() - t0)
        work.unlink()
    return statistics.median(samples)


def time_rewrite(rpac: Path, batch: np.ndarray, repeats: int) -> float:
    """Median seconds for the one-shot alternative: decode + recompress + save."""
    samples = []
    for i in range(repeats):
        work = rpac.with_name(f"{rpac.stem}-r{i}.rpac")
        shutil.copy(rpac, work)
        t0 = time.perf_counter()
        archive = open_archive(work)
        merged = np.concatenate([archive.decompress(), batch])
        save(work, repro.compress(merged, codec=CODEC), archive.digits)
        samples.append(time.perf_counter() - t0)
        work.unlink()
    return statistics.median(samples)


def run(sizes, batch_n: int, repeats: int, workdir: Path) -> list[dict]:
    batch = make_series(batch_n)
    out = []
    for n in sizes:
        rpal, rpac = build_archives(make_series(n), workdir, tag=str(n))
        append_s = time_append(rpal, batch, repeats)
        rewrite_s = time_rewrite(rpac, batch, repeats)
        out.append({
            "n": n,
            "batch": batch_n,
            "append_s": append_s,
            "rewrite_s": rewrite_s,
            "speedup": rewrite_s / append_s if append_s else float("inf"),
        })
    return out


# -- pytest entry points -------------------------------------------------------


def test_append_beats_full_rewrite(tmp_path):
    """One tail record must beat decode-everything + recompress + rewrite."""
    (row,) = run([60_000], batch_n=2_000, repeats=3, workdir=tmp_path)
    assert row["speedup"] > 1.0, (
        f"append {row['append_s']:.4f}s vs rewrite {row['rewrite_s']:.4f}s"
    )


def test_append_latency_independent_of_archive_size(tmp_path):
    """O(M) contract: sealed history size must not dominate append cost.

    The bound is deliberately loose (scan of the record headers and the
    file-system tail write are not perfectly free), but a rewrite-shaped
    O(S) append would blow through it by an order of magnitude.
    """
    rows = run([5_000, 200_000], batch_n=2_000, repeats=5, workdir=tmp_path)
    small, big = rows[0]["append_s"], rows[1]["append_s"]
    assert big < 10 * small, f"append at 200k values {big:.4f}s vs 5k {small:.4f}s"


# -- script entry point --------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SIZES),
                        help="sealed archive sizes to measure against")
    parser.add_argument("--batch", type=int, default=BATCH,
                        help="values per append")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    args = parser.parse_args()
    if args.smoke:
        args.sizes, args.batch, args.repeats = [5_000, 100_000], 2_000, 3

    with tempfile.TemporaryDirectory(prefix="repro-bench-append-") as tmp:
        rows = run(args.sizes, args.batch, args.repeats, Path(tmp))
    print(f"append {args.batch:,} values vs full rewrite [{CODEC}]:")
    for row in rows:
        print(f"  S={row['n']:>9,}: append {1e3 * row['append_s']:8.2f} ms   "
              f"rewrite {1e3 * row['rewrite_s']:8.2f} ms   "
              f"({row['speedup']:.1f}x)")
    appends = [row["append_s"] for row in rows]
    spread = max(appends) / min(appends) if min(appends) else float("inf")
    print(f"append latency spread across sizes: {spread:.2f}x "
          "(O(M) contract: should stay near 1)")
    ok = all(row["speedup"] > 1.0 for row in rows)
    print("append beats rewrite at every size: " + ("yes" if ok else "NO"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
