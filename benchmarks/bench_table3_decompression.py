"""Table III (middle) benchmark: decompression speed.

The paper's claim: NeaTS decompression is the fastest or near-fastest thanks
to per-fragment vectorised evaluation; the stdlib C codecs (Xz/Zstd* rows)
have an unfair compiled-code advantage here — see EXPERIMENTS.md.
"""

import numpy as np
import pytest


@pytest.mark.parametrize(
    "name", ["Xz", "Zstd*", "Lz4*", "DAC", "LeCo", "ALP", "NeaTS"]
)
def test_decompression(benchmark, compressed_by_name, bench_series, name):
    compressed = compressed_by_name[name]
    out = benchmark(compressed.decompress)
    assert np.array_equal(out, bench_series)
