"""Partitioned-store ingest scaling: partitions x group-commit durability.

Measures the partitioned façade's two throughput claims:

* **fan-out** — ``ingest_many`` through a ``PartitionedSeriesDB`` at
  1/2/4/8 partitions, fan-out width matching the partition count.  With
  >= 4 schedulable cores, 4 partitions must beat 1 by >= 1.5x (the pytest
  speedup check skips itself on smaller boxes — a process pool cannot
  beat serial on a single core);
* **group commit** — one steady-state batch costs one fsync per *touched
  partition* with ``group_commit=True``, against one fsync per *series*
  without it, measured by counting real ``os.fsync`` calls.

The tracked artefact (``BENCH_partition_ingest.json`` at the repo root)
is emitted by ``repro bench`` / :func:`repro.bench.runner.run_bench`,
which shares this workload; this script is the standalone view:

    PYTHONPATH=src python benchmarks/bench_partition_scaling.py
    PYTHONPATH=src python benchmarks/bench_partition_scaling.py --smoke

or through pytest (explicit path; bench_* files are not swept by tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_partition_scaling.py -v
"""

import argparse
import json

import pytest

from repro.bench.runner import bench_partition_ingest
from repro.store import default_workers

FULL_N = 800_000
SMOKE_N = 24_000


def run(n: int, repeats: int = 1, log=None) -> dict:
    return bench_partition_ingest(n, repeats, log=log)


# -- pytest entry points -------------------------------------------------------


@pytest.fixture(scope="module")
def payload():
    return run(SMOKE_N)


def test_every_config_is_measured(payload):
    expected = {
        f"p{p}_group_{g}" for p in (1, 2, 4, 8) for g in ("on", "off")
    }
    assert set(payload["configs"]) == expected
    for stats in payload["configs"].values():
        assert stats["ingest_seconds"] > 0
        assert stats["values_per_second"] > 0


def test_group_commit_coalesces_fsyncs(payload):
    """The durability claim, deterministic on any box: one fsync per
    touched partition with group commit, one per series without."""
    for partitions in (1, 2, 4, 8):
        on = payload["configs"][f"p{partitions}_group_on"]
        off = payload["configs"][f"p{partitions}_group_off"]
        assert on["fsyncs_per_batch"] <= partitions
        assert off["fsyncs_per_batch"] == payload["meta"]["num_series"]
    assert payload["configs"]["p1_group_on"]["fsyncs_per_batch"] == 1


@pytest.mark.skipif(default_workers() < 4,
                    reason="fan-out speedup needs >= 4 schedulable cores")
def test_four_partitions_beat_one_full_scale():
    """The acceptance bar: 4-way fan-out >= 1.5x one partition."""
    payload = run(FULL_N)
    speedup = payload["configs"]["p4_group_on"]["speedup_vs_1_partition"]
    assert speedup >= 1.5, f"4 partitions only {speedup}x vs 1"


# -- script entry point --------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--n", type=int, default=None,
                        help="total values across the fleet")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--smoke", action="store_true",
                        help="small series for CI smoke")
    args = parser.parse_args()
    n = args.n or (SMOKE_N if args.smoke else FULL_N)
    print(f"fleet: 8 series, {n:,} values total, "
          f"cores available={default_workers()}")
    payload = run(n, repeats=args.repeats, log=print)
    print(json.dumps(payload["configs"], indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
