"""Cold open latency: mmap-backed lazy archives and native codec payloads.

Measures the two claims of the zero-copy open path:

* ``repro.open(path, lazy=True)`` -> first ``access(k)`` beats the eager
  open on a large (>= 1M values) archive: the lazy path mmaps the file and
  parses the frame zero-copy off the map instead of reading, crc-ing, and
  copying the whole file up front;
* loading a native DAC / LeCo / ALP frame (a direct O(size) parse) beats
  loading the old values-fallback frame for the same data, which had to
  re-run the compressor.

Run the full-scale numbers as a script::

    PYTHONPATH=src python benchmarks/bench_open_latency.py
    PYTHONPATH=src python benchmarks/bench_open_latency.py --n 2000000
    PYTHONPATH=src python benchmarks/bench_open_latency.py --smoke

or through pytest (explicit path; bench_* files are not swept by tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_open_latency.py -v
"""

import argparse
import statistics
import struct
import tempfile
import time
import zlib
from pathlib import Path

import numpy as np

import repro
from repro.codecs import codec_spec, open_archive, save
from repro.codecs.container import ARCHIVE_MAGIC
from repro.codecs.serialize import KIND_VALUES, encode_values, write_frame

N_LAZY = 1_000_000  # archive size for the lazy-vs-eager comparison
N_NATIVE = 200_000  # series size for the native-vs-fallback comparison
REPEATS = 5
DIGITS = 2

NATIVE_CODECS = ("dac", "leco", "alp")


def make_series(n: int) -> np.ndarray:
    """Smooth-plus-walk, the shape these codecs are built for."""
    rng = np.random.default_rng(42)
    smooth = 2000 * np.sin(np.arange(n) / 450)
    return (smooth + np.cumsum(rng.integers(-3, 4, n))).astype(np.int64)


def _params(cid: str) -> dict:
    return {"digits": DIGITS} if codec_spec(cid).needs_digits else {}


def write_fallback_archive(path, compressed, digits: int = DIGITS) -> None:
    """An archive holding the pre-native (values-kind) frame for ``compressed``.

    This is byte-layout-identical to what the repo wrote before DAC, LeCo,
    and ALP gained native payloads — the backward-compatibility load path.
    """
    frame = write_frame(
        compressed.codec_id,
        compressed.codec_params or {},
        len(compressed),
        KIND_VALUES,
        encode_values(compressed.decompress()),
    )
    header = struct.pack(
        "<8siIQ", ARCHIVE_MAGIC, digits, zlib.crc32(frame), len(frame)
    )
    Path(path).write_bytes(header + frame)


def time_open_access(path, k: int, repeats: int, lazy: bool) -> float:
    """Median seconds for a cold open -> first ``access(k)``."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        archive = open_archive(path, lazy=lazy)
        value = archive.access(k)
        samples.append(time.perf_counter() - t0)
        del archive, value
    return statistics.median(samples)


def run_lazy_vs_eager(n: int, repeats: int, codec: str, workdir: Path) -> dict:
    """Open->first-access latency, eager vs mmap-backed lazy."""
    values = make_series(n)
    path = workdir / f"lazy-{codec}.rpac"
    save(path, repro.compress(values, codec=codec, **_params(codec)), DIGITS)
    k = n // 2
    eager = time_open_access(path, k, repeats, lazy=False)
    lazy = time_open_access(path, k, repeats, lazy=True)
    return {
        "codec": codec,
        "n": n,
        "bytes": path.stat().st_size,
        "eager_s": eager,
        "lazy_s": lazy,
        "speedup": eager / lazy if lazy else float("inf"),
    }


def run_native_vs_fallback(n: int, repeats: int, workdir: Path) -> list[dict]:
    """Open->first-access latency, native frame vs values-fallback frame."""
    values = make_series(n)
    out = []
    for cid in NATIVE_CODECS:
        compressed = repro.compress(values, codec=cid, **_params(cid))
        native_path = workdir / f"{cid}-native.rpac"
        fallback_path = workdir / f"{cid}-fallback.rpac"
        save(native_path, compressed, DIGITS)
        write_fallback_archive(fallback_path, compressed)
        k = n // 2
        native = time_open_access(native_path, k, repeats, lazy=False)
        fallback = time_open_access(fallback_path, k, repeats, lazy=False)
        out.append({
            "codec": cid,
            "n": n,
            "native_s": native,
            "fallback_s": fallback,
            "speedup": fallback / native if native else float("inf"),
        })
    return out


# -- pytest entry points -------------------------------------------------------


def test_native_load_beats_fallback_smoke(tmp_path):
    """Native parse must beat re-running the compressor, even at small scale."""
    for row in run_native_vs_fallback(20_000, repeats=3, workdir=tmp_path):
        assert row["speedup"] > 1.0, (
            f"{row['codec']}: native {row['native_s']:.4f}s vs "
            f"fallback {row['fallback_s']:.4f}s"
        )


def test_lazy_open_matches_eager_answers(tmp_path):
    """Lazy and eager opens answer identically (timing checked at full scale)."""
    values = make_series(30_000)
    path = tmp_path / "archive.rpac"
    save(path, repro.compress(values, codec="gorilla"), DIGITS)
    eager = open_archive(path)
    lazy = open_archive(path, lazy=True)
    assert len(lazy) == len(eager) == len(values)
    assert lazy.access(17_123) == eager.access(17_123) == values[17_123]
    assert np.array_equal(lazy.decompress(), eager.decompress())


# -- script entry point --------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--n", type=int, default=N_LAZY,
                        help="values in the lazy-vs-eager archive")
    parser.add_argument("--n-native", type=int, default=N_NATIVE,
                        help="values in the native-vs-fallback archives")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--codec", default="gorilla",
                        help="codec for the lazy-vs-eager archive")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    args = parser.parse_args()
    if args.smoke:
        args.n, args.n_native, args.repeats = 60_000, 20_000, 3

    with tempfile.TemporaryDirectory(prefix="repro-bench-open-") as tmp:
        workdir = Path(tmp)
        row = run_lazy_vs_eager(args.n, args.repeats, args.codec, workdir)
        # Informational only: at smoke sizes the lazy margin is a few percent
        # (it saves the read copy + crc, not the parse), which is inside
        # scheduler noise on shared CI runners — don't gate on it.
        print(f"lazy vs eager open -> first access "
              f"({row['codec']}, {row['n']:,} values, {row['bytes']:,} bytes):")
        print(f"  eager : {1e3 * row['eager_s']:8.2f} ms")
        print(f"  lazy  : {1e3 * row['lazy_s']:8.2f} ms   "
              f"({row['speedup']:.2f}x)")

        ok = True
        print(f"native vs values-fallback load ({args.n_native:,} values):")
        for r in run_native_vs_fallback(args.n_native, args.repeats, workdir):
            print(f"  {r['codec']:5s}: native {1e3 * r['native_s']:8.2f} ms   "
                  f"fallback {1e3 * r['fallback_s']:8.2f} ms   "
                  f"({r['speedup']:.2f}x)")
            ok = ok and r["speedup"] > 1.0
    print("native loads all faster than fallback: " + ("yes" if ok else "NO"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
