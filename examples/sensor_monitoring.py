"""IoT sensor archival: NeaTS vs streaming XOR compressors.

The scenario from the paper's introduction: an edge gateway stores years of
sensor history and must answer real-time dashboard queries (point reads,
recent windows) *without* decompressing everything.  This example compares
NeaTS with the streaming compressors typically used in TSDBs (Gorilla,
Chimp) and with a strong general-purpose codec (Xz) on the three metrics
that matter: space, point-query latency, and window-query latency.

Run with::

    python examples/sensor_monitoring.py
"""

import time

import numpy as np

import repro
from repro.codecs import codec_spec
from repro.data import DATASETS


def time_point_queries(compressed, positions):
    t0 = time.perf_counter()
    for k in positions:
        compressed.access(k)
    return (time.perf_counter() - t0) / len(positions)


def time_window_queries(compressed, starts, width):
    t0 = time.perf_counter()
    for s in starts:
        compressed.decompress_range(s, s + width)
    return (time.perf_counter() - t0) / len(starts)


def main() -> None:
    info = DATASETS["IT"]  # infrared biological temperature
    values = info.generate(20_000)
    print(f"dataset: {info.full_name} ({len(values):,} points, "
          f"{info.digits} decimal digits)\n")

    rng = np.random.default_rng(0)
    points = rng.integers(0, len(values), 300).tolist()
    windows = rng.integers(0, len(values) - 288, 50).tolist()

    header = (
        f"{'compressor':<10} {'ratio':>8} {'point query':>14} {'24h window':>14}"
    )
    print(header)
    print("-" * len(header))
    for cid in ("gorilla", "chimp", "xz", "neats"):
        params = {"digits": info.digits} if codec_spec(cid).needs_digits else {}
        compressed = repro.compress(values, codec=cid, **params)
        ratio = compressed.compression_ratio()
        p_lat = time_point_queries(compressed, points)
        w_lat = time_window_queries(compressed, windows, 288)  # 24h at 5min
        print(
            f"{cid:<10} {100 * ratio:7.2f}% {1e6 * p_lat:11.1f} us "
            f"{1e6 * w_lat:11.1f} us"
        )

    print(
        "\nNeaTS: compression near the Xz class, point and window queries"
        "\norders of magnitude closer to the native-access structures —"
        "\nexactly the trade-off of the paper's Figure 3."
    )


if __name__ == "__main__":
    main()
