"""A mini Table III: NeaTS vs the strongest baselines on all 16 datasets.

Runs the full dataset suite at a reduced scale and prints, per dataset, the
compression ratio of NeaTS against the best special-purpose and the best
general-purpose competitor — the summary view of the paper's headline
result.  Expect a few minutes of runtime.

Run with::

    python examples/dataset_tour.py [n_points]
"""

import sys

import repro
from repro.codecs import codec_spec
from repro.data import DATASETS


SPECIAL = ["chimp128", "chimp", "tsxor", "dac", "gorilla", "leco", "alp"]
GENERAL = ["xz", "brotli", "zstd", "lz4", "snappy"]


def best_ratio(codec_ids, values, digits):
    best_id, best_bits = None, None
    for cid in codec_ids:
        params = {"digits": digits} if codec_spec(cid).needs_digits else {}
        bits = repro.compress(values, codec=cid, **params).size_bits()
        if best_bits is None or bits < best_bits:
            best_id, best_bits = cid, bits
    return best_id, best_bits / (64 * len(values))


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    wins_special = wins_overall = 0
    print(f"{'dataset':<8} {'NeaTS':>8} {'best special':>20} "
          f"{'best general':>20}")
    print("-" * 60)
    for name, info in DATASETS.items():
        values = info.generate(min(n, info.default_n))
        neats = repro.compress(values, codec="neats")
        neats_ratio = neats.compression_ratio()
        sp_name, sp_ratio = best_ratio(SPECIAL, values, info.digits)
        gp_name, gp_ratio = best_ratio(GENERAL, values, info.digits)
        star = ""
        if neats_ratio <= sp_ratio:
            wins_special += 1
            star = "*"
        if neats_ratio <= min(sp_ratio, gp_ratio):
            wins_overall += 1
            star = "**"
        print(
            f"{name:<8} {100 * neats_ratio:7.2f}% "
            f"{sp_name:>11} {100 * sp_ratio:7.2f}% "
            f"{gp_name:>11} {100 * gp_ratio:7.2f}% {star}"
        )
    print("-" * 60)
    print(f"NeaTS best among special-purpose: {wins_special}/16 "
          f"(paper: 14/16); best overall: {wins_overall}/16 (paper: 4/16)")


if __name__ == "__main__":
    main()
