"""A mini Table III: NeaTS vs the strongest baselines on all 16 datasets.

Runs the full dataset suite at a reduced scale and prints, per dataset, the
compression ratio of NeaTS against the best special-purpose and the best
general-purpose competitor — the summary view of the paper's headline
result.  Expect a few minutes of runtime.

Run with::

    python examples/dataset_tour.py [n_points]
"""

import sys

from repro.bench.registry import make_compressor
from repro.data import DATASETS


SPECIAL = ["Chimp128", "Chimp", "TSXor", "DAC", "Gorilla", "LeCo", "ALP"]
GENERAL = ["Xz", "Brotli*", "Zstd*", "Lz4*", "Snappy*"]


def best_ratio(names, values, digits):
    best_name, best_bits = None, None
    for name in names:
        bits = make_compressor(name, digits=digits).compress(values).size_bits()
        if best_bits is None or bits < best_bits:
            best_name, best_bits = name, bits
    return best_name, best_bits / (64 * len(values))


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    wins_special = wins_overall = 0
    print(f"{'dataset':<8} {'NeaTS':>8} {'best special':>20} "
          f"{'best general':>20}")
    print("-" * 60)
    for name, info in DATASETS.items():
        values = info.generate(min(n, info.default_n))
        neats = make_compressor("NeaTS").compress(values)
        neats_ratio = neats.compression_ratio()
        sp_name, sp_ratio = best_ratio(SPECIAL, values, info.digits)
        gp_name, gp_ratio = best_ratio(GENERAL, values, info.digits)
        star = ""
        if neats_ratio <= sp_ratio:
            wins_special += 1
            star = "*"
        if neats_ratio <= min(sp_ratio, gp_ratio):
            wins_overall += 1
            star = "**"
        print(
            f"{name:<8} {100 * neats_ratio:7.2f}% "
            f"{sp_name:>11} {100 * sp_ratio:7.2f}% "
            f"{gp_name:>11} {100 * gp_ratio:7.2f}% {star}"
        )
    print("-" * 60)
    print(f"NeaTS best among special-purpose: {wins_special}/16 "
          f"(paper: 14/16); best overall: {wins_overall}/16 (paper: 4/16)")


if __name__ == "__main__":
    main()
