"""A fleet of series in one store: SeriesDB + parallel batch compression.

The paper's deployment sketch (§IV-C1) scaled out: instead of one
``TieredStore``, a :class:`repro.SeriesDB` keeps a whole fleet of series
— one tiered shard per series id, a JSON manifest, and a background
compaction policy.  Batch ingest fans the hot-tier compression of every
full block across a process pool (:func:`repro.compress_many` under the
hood), which is how a multi-tenant ingest node keeps up with many
streams on many cores.

Run with::

    python examples/series_db.py
"""

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import SeriesDB, compress_many
from repro.data import DATASETS


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-seriesdb-"))
    try:
        demo(root)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def demo(root: Path) -> None:
    # A fleet of tenants: eight synthetic sensors from the paper's datasets.
    names = ["IT", "US", "CT", "DP"]
    fleet = {
        f"{name.lower()}-{replica}": DATASETS[name].generate(6_000)
        for name in names
        for replica in (0, 1)
    }

    # --- parallel batch compression, no store involved -------------------------
    t0 = time.perf_counter()
    compressed = compress_many(fleet, codec="gorilla", workers=4)
    elapsed = time.perf_counter() - t0
    total = sum(len(v) for v in fleet.values())
    print(f"compress_many: {total:,} values / {len(fleet)} series "
          f"in {elapsed:.2f}s (gorilla, 4 workers)")
    worst = max(compressed, key=lambda k: compressed[k].compression_ratio())
    print(f"worst ratio: {worst} at "
          f"{100 * compressed[worst].compression_ratio():.1f}% of raw")

    # --- the durable store: ingest the same fleet -------------------------------
    db = SeriesDB(root, seal_threshold=1024, hot_codec="gorilla",
                  cold_codec="neats")
    db.ingest_many(fleet, workers=4)
    db.flush()
    print(f"\ningested into {db.root} "
          f"({len(db)} shards, manifest + one .tier file per series)")

    # Queries hit exactly one shard; opening the DB reads only the manifest.
    db = SeriesDB.open(root)
    sid = "it-0"
    assert db.access(sid, 4_321) == fleet[sid][4_321]
    window = db.range(sid, 2_000, 2_010)
    print(f"{sid}[2000:2010] = {window.tolist()}")

    # --- background recompression across the fleet ------------------------------
    before = sum(db.store(s).size_bits() for s in db.series_ids())
    compacted = db.compact(hot_threshold=0)  # every shard with sealed hot data
    after = sum(db.store(s).size_bits() for s in db.series_ids())
    print(f"\ncompacted {len(compacted)} shards: "
          f"{before / 8 / 1024:.0f} KiB -> {after / 8 / 1024:.0f} KiB "
          f"(NeaTS cold tier)")

    # Everything survives a reopen, bit-exactly.
    db = SeriesDB.open(root)
    for sid, values in fleet.items():
        assert np.array_equal(db.decompress(sid), values)
    print("reopened and verified every series bit-exactly")


if __name__ == "__main__":
    main()
