"""Quickstart: compress a time series with NeaTS, query it, persist it.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import NeaTS, NeaTSLossy
from repro.core.storage import NeaTSStorage


def main() -> None:
    # A synthetic hourly temperature-like series (integers: NeaTS compresses
    # fixed-precision decimals scaled to int64, see README).
    rng = np.random.default_rng(7)
    t = np.arange(20_000)  # one sample every 5 minutes
    celsius = (
        18
        + 7 * np.sin(2 * np.pi * t / 288)          # daily cycle
        + 5 * np.sin(2 * np.pi * t / (288 * 90))   # seasonal drift
        + rng.normal(0, 0.15, len(t))              # sensor noise
    )
    values = np.round(celsius * 100).astype(np.int64)  # 2 decimal digits

    # --- lossless compression -------------------------------------------------
    compressed = NeaTS().compress(values)
    print(f"points:            {len(values):,}")
    print(f"original size:     {8 * len(values):,} bytes")
    print(f"compressed size:   {compressed.size_bits() // 8:,} bytes")
    print(f"compression ratio: {100 * compressed.compression_ratio():.2f}%")
    print(f"fragments:         {compressed.num_fragments}")

    # --- exact queries on compressed data ---------------------------------------
    assert compressed.access(12_345) == values[12_345]
    window = compressed.decompress_range(5_000, 5_024)  # one day
    print(f"day mean at t=5000: {window.mean() / 100:.2f} C")
    assert np.array_equal(compressed.decompress(), values)
    print("lossless round-trip verified")

    # --- persistence -----------------------------------------------------------
    blob = compressed.storage.to_bytes()
    restored = NeaTSStorage.from_bytes(blob)
    assert restored.access(777) == values[777]
    print(f"serialised to {len(blob):,} bytes and restored")

    # --- lossy mode with an error guarantee --------------------------------------
    lossy = NeaTSLossy(eps=50).compress(values)  # +-0.50 C guarantee
    print(
        f"lossy ratio at eps=0.5C: {100 * lossy.compression_ratio():.2f}% "
        f"(measured max error {lossy.max_error(values) / 100:.2f} C)"
    )


if __name__ == "__main__":
    main()
