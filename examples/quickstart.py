"""Quickstart: compress a time series, query it, persist it — any codec.

The whole library sits behind three calls: ``repro.compress`` (values in,
compressed series out, any registered codec), ``repro.save`` / ``repro.open``
(one self-describing archive format for all of them).

Run with::

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro


def main() -> None:
    # A synthetic hourly temperature-like series (integers: NeaTS compresses
    # fixed-precision decimals scaled to int64, see README).
    rng = np.random.default_rng(7)
    t = np.arange(20_000)  # one sample every 5 minutes
    celsius = (
        18
        + 7 * np.sin(2 * np.pi * t / 288)          # daily cycle
        + 5 * np.sin(2 * np.pi * t / (288 * 90))   # seasonal drift
        + rng.normal(0, 0.15, len(t))              # sensor noise
    )
    values = np.round(celsius * 100).astype(np.int64)  # 2 decimal digits

    # --- lossless compression -------------------------------------------------
    compressed = repro.compress(values)  # default codec: "neats"
    print(f"points:            {len(values):,}")
    print(f"original size:     {8 * len(values):,} bytes")
    print(f"compressed size:   {compressed.size_bytes():,} bytes")
    print(f"compression ratio: {100 * compressed.compression_ratio():.2f}%")
    print(f"fragments:         {compressed.num_fragments}")

    # --- exact queries on compressed data ---------------------------------------
    assert compressed.access(12_345) == values[12_345]
    window = compressed.decompress_range(5_000, 5_024)  # one day
    print(f"day mean at t=5000: {window.mean() / 100:.2f} C")
    assert np.array_equal(compressed.decompress(), values)
    print("lossless round-trip verified")

    # --- every codec, one API ----------------------------------------------------
    print(f"\n{len(repro.available_codecs())} registered codecs:",
          ", ".join(repro.available_codecs()))
    for codec in ("gorilla", "zstd"):
        quick = repro.compress(values, codec=codec)
        print(f"  {codec:<8} ratio {100 * quick.compression_ratio():6.2f}%  "
              f"access(777) = {quick.access(777)}")

    # --- persistence: one archive format for all codecs ---------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "temperature.rpac"
        nbytes = repro.save(path, compressed, digits=2)
        archive = repro.open(path)
        assert archive.codec_id == "neats" and archive.digits == 2
        assert archive.access(777) == values[777]
        print(f"\nsaved {nbytes:,} bytes, reopened as codec "
              f"{archive.codec_id!r} with {len(archive):,} values")

    # --- lossy mode with an error guarantee --------------------------------------
    # Lossy codecs are registry peers: a required eps bound, the same save/
    # open path, and native persistence (the archive stores the fitted
    # segments, so reopening never re-runs the compressor).
    lossy = repro.compress(values, codec="neats_l", eps=50)  # +-0.50 C guarantee
    print(
        f"lossy ratio at eps=0.5C: {100 * lossy.compression_ratio():.2f}% "
        f"(measured max error {lossy.max_error(values) / 100:.2f} C)"
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "approx.rpac"
        repro.save(path, lossy, digits=2)
        archive = repro.open(path, lazy=True)
        assert np.array_equal(archive.decompress(), lossy.decompress())
        print(f"lossy archive reopened: codec {archive.codec_id!r}, "
              f"eps {archive.params['eps'] / 100:g} C, "
              f"{archive.params['segments']} segments")


if __name__ == "__main__":
    main()
