"""A miniature time series database built on the repro library.

Combines the extension modules into the deployment the paper sketches in
§IV-C1 and §VI: streaming ingestion (Gorilla hot tier), background NeaTS
consolidation, durable snapshots of the whole store, timestamped window
queries, and aggregate queries answered from the compressed representation.
Both tiers are ordinary registry codecs — swap ``hot_codec="zstd"`` or
``cold_codec="leats"`` and nothing else changes.

Run with::

    python examples/tiered_database.py
"""

import numpy as np

from repro.core import AggregateIndex, NeaTS, TieredStore, TimestampedSeries
from repro.data import DATASETS


def main() -> None:
    info = DATASETS["DP"]  # dew point temperature
    values = info.generate(12_000)

    # --- ingestion: stream into the tiered store -------------------------------
    store = TieredStore(seal_threshold=2048, hot_codec="gorilla",
                        cold_codec="neats")
    store.extend(values[:10_000])
    print("after streaming 10k points:", store.tier_report())

    store.consolidate()  # the paper's "run NeaTS in the background"
    print("after consolidation:      ", store.tier_report())

    store.extend(values[10_000:])  # ingestion continues seamlessly
    assert np.array_equal(store.decompress(), values)
    ratio = store.size_bits() / (64 * len(store))
    print(f"store footprint: {100 * ratio:.2f}% of raw, "
          f"point read #7777 = {store.access(7777)}")

    # --- durability: snapshot and restore the whole store -------------------------
    blob = store.to_bytes()  # buffer + hot frames + cold frame, no recompression
    restored = TieredStore.from_bytes(blob)
    assert np.array_equal(restored.decompress(), values)
    restored.extend(values[:100])  # a restored store keeps ingesting
    print(f"snapshot: {len(blob):,} bytes; restored store answers "
          f"access(7777) = {restored.access(7777)}")

    # --- time-window queries over irregular timestamps ---------------------------
    rng = np.random.default_rng(3)
    stamps = np.cumsum(rng.integers(30, 90, len(values))).astype(np.int64)
    series = TimestampedSeries(stamps, values)
    t0 = int(stamps[4_000])
    t1 = t0 + 3_600  # one hour of seconds
    win_t, win_v = series.window(t0, t1)
    print(f"\nwindow [{t0}, {t1}): {len(win_v)} samples, "
          f"mean {win_v.mean() / 10**info.digits:.3f}")
    print(f"timestamped store ratio: {100 * series.compression_ratio():.2f}% "
          f"of raw (timestamp, value) pairs")

    # --- aggregates from the compressed representation ----------------------------
    compressed = NeaTS().compress(values)
    agg = AggregateIndex(compressed.storage)
    lo, hi = 2_000, 9_000
    exact_sum = agg.sum(lo, hi)
    assert exact_sum == int(values[lo:hi].sum())
    min_b = agg.min_bounds(lo, hi)
    print(f"\nrange [{lo}, {hi}): exact sum {exact_sum:,} "
          f"(O(fragments), not O(points))")
    print(f"certified min bracket: [{min_b.low:.0f}, {min_b.high:.0f}] "
          f"(true min {values[lo:hi].min()}, zero decoding)")


if __name__ == "__main__":
    main()
