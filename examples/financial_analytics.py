"""Historical tick storage with error-bounded lossy tiers.

Exchanges archive decades of prices.  Cold history rarely needs full
precision: a maximum-error guarantee (say, one basis point of the price
range) is enough for backtesting coarse strategies, at a fraction of the
space.  This example builds a two-tier archive of a synthetic stock series:

* a **hot tier**: lossless NeaTS, exact values, random access;
* a **cold tier**: NeaTS-L at increasing error budgets, showing the paper's
  space/error trade-off (Table II machinery), plus moving-average analytics
  computed directly from the lossy representation.

Run with::

    python examples/financial_analytics.py
"""

import numpy as np

from repro import NeaTS, NeaTSLossy
from repro.data import DATASETS


def moving_average(series, width):
    kernel = np.ones(width) / width
    return np.convolve(series, kernel, mode="valid")


def main() -> None:
    info = DATASETS["US"]
    prices = info.generate(15_000)  # int64 cents
    value_range = int(prices.max()) - int(prices.min())
    print(f"dataset: {info.full_name}, {len(prices):,} ticks, "
          f"price range {value_range / 100:.2f} USD\n")

    # Hot tier: exact.
    hot = NeaTS().compress(prices)
    print(f"hot tier (lossless): {100 * hot.compression_ratio():6.2f}% of raw, "
          f"exact reads, e.g. tick #9999 = {hot.access(9999) / 100:.2f} USD")

    # Cold tiers: error budgets as fractions of the price range.
    print("\ncold tiers (NeaTS-L):")
    print(f"{'eps (% range)':>14} {'ratio':>9} {'measured max err':>18} "
          f"{'fragments':>10}")
    for frac in (0.001, 0.005, 0.02):
        eps = max(frac * value_range, 1.0)
        tier = NeaTSLossy(eps).compress(prices)
        print(
            f"{100 * frac:13.1f}% {100 * tier.compression_ratio():8.2f}% "
            f"{tier.max_error(prices) / 100:15.4f} USD {len(tier.fragments):>10}"
        )

    # Analytics straight from the lossy tier: a 50-tick moving average is
    # insensitive to a bounded per-tick error.
    eps = 0.005 * value_range
    tier = NeaTSLossy(eps).compress(prices)
    exact_ma = moving_average(prices.astype(np.float64), 50)
    lossy_ma = moving_average(tier.reconstruct(), 50)
    worst = np.max(np.abs(exact_ma - lossy_ma))
    print(
        f"\n50-tick moving average from the 0.5% tier: worst deviation "
        f"{worst / 100:.4f} USD (bounded by eps = {eps / 100:.2f} USD)"
    )


if __name__ == "__main__":
    main()
