"""Per-file AST lint rules: the invariants convention used to enforce.

Every rule here is a pure function over one parsed module (no imports of
the code under analysis); the cross-file protocol-conformance rules live in
:mod:`repro.analysis.protocol`.  The catalogue:

``RPR101`` **struct-format** — every literal ``struct`` format string must
    parse, and the argument count at ``pack``/tuple-unpack call sites must
    match the format's field arity.  Covers direct ``struct.pack(fmt,...)``
    calls and module-level ``struct.Struct`` constants (the idiom the
    container and frame layouts use).

``RPR102`` **struct-confinement** — raw ``struct`` use is confined to the
    modules that own a documented binary layout (``baselines/_native.py``,
    ``codecs/container.py``, ``codecs/serialize.py``, ``bits/io.py``).
    Everything else should reuse those layouts; stray ``import struct``
    elsewhere is existing debt tracked by the baseline.

``RPR201`` **durability-discipline** — a write-mode binary ``open`` is only
    legal inside the sanctioned writers (``write_atomic`` and the fsync'd
    tail-append path of ``AppendableArchive``).  A bare
    ``open(path, "wb").write(...)`` can be torn by a crash and must route
    through :func:`repro.codecs.container.write_atomic`.

``RPR301`` **lock-discipline** — public :class:`SeriesDB` methods touching
    the shared shard-cache / dirty-set / manifest state must hold
    ``self._lock``; private helpers are documented as
    called-under-lock.  Also checks that ``__init__`` creates the lock.

``RPR401`` **no-pickle** — ``pickle``/``dill``/``shelve`` deserialise
    arbitrary code; archives are the only persistence format.

``RPR402`` **no-eval** — ``eval``/``exec`` are banned outright.

``RPR403`` **no-memoryview-write** — arrays parsed zero-copy off an mmap
    (``np.frombuffer``) are views into shared file bytes: writing through
    them (item assignment, ``setflags(write=True)``) corrupts the mapped
    archive for every other reader.
"""

from __future__ import annotations

import ast
import struct as _struct
from dataclasses import dataclass

from .findings import Finding

__all__ = ["Module", "RULE_CATALOGUE", "PER_FILE_RULES", "run_per_file_rules"]


@dataclass(frozen=True)
class Module:
    """One parsed source file handed to the rules."""

    relpath: str  #: posix path relative to the lint root
    tree: ast.Module


#: rule id -> (one-line title, one-line remedy) — rendered by ``repro lint --rules``
RULE_CATALOGUE: dict[str, tuple[str, str]] = {
    "RPR000": (
        "source file must parse (syntax/encoding errors stop every other rule)",
        "fix the syntax or encoding error",
    ),
    "RPR001": (
        "codec protocol conformance: concrete Compressed subclasses must "
        "implement size_bits/decompress/access (and reconstruct/num_segments/"
        "from_payload when lossy)",
        "implement the missing methods or mark the class abstract",
    ),
    "RPR002": (
        "registry spec discipline: lossy codecs need a native loader and a "
        "required eps param; every factory must expose compress()",
        "fix the register_codec(...) call to match the codec's contract",
    ),
    "RPR101": (
        "struct format strings must parse and match call-site arity",
        "align the format string with the packed/unpacked fields",
    ),
    "RPR102": (
        "raw struct use is confined to the binary-layout modules",
        "reuse the documented layouts in codecs/container.py, "
        "codecs/serialize.py, baselines/_native.py, or bits/io.py",
    ),
    "RPR201": (
        "archive/manifest/WAL writes must be atomic or fsync'd",
        "route the write through repro.codecs.container.write_atomic "
        "(or the AppendableArchive append path)",
    ),
    "RPR301": (
        "SeriesDB shared state must be touched under self._lock",
        "wrap the method body in `with self._lock:` (public API boundary)",
    ),
    "RPR401": (
        "pickle/dill/shelve are banned (arbitrary code on load)",
        "persist through the archive container or JSON instead",
    ),
    "RPR402": (
        "eval/exec are banned",
        "replace with explicit parsing or dispatch",
    ),
    "RPR403": (
        "no writing through memoryview-backed (np.frombuffer) arrays",
        "copy() the array before mutating it",
    ),
    # Dataflow rules (repro lint --dataflow), implemented in dataflow.py.
    "RPR501": (
        "a memoryview derived from mmap_view must not escape without its "
        "owning map",
        "return bytes(view), the root view, or the map alongside it",
    ),
    "RPR502": (
        "a derived mmap view stashed on self needs its root/map stashed too",
        "store the root view (or view.obj) on self so it can be closed",
    ),
    "RPR601": (
        "acquired resources (open/os.open/os.fdopen/mmap.mmap) must be "
        "closed or handed off on every path",
        "use `with ...:` or close in a finally",
    ),
    "RPR602": (
        "no use of a local on a path after its .close()",
        "reorder the use before close(), or rebind the name",
    ),
    "RPR701": (
        "lock acquisition order must be globally consistent (no A->B with "
        "B->A elsewhere)",
        "pick one global acquisition order and stick to it",
    ),
    "RPR702": (
        "no bare lock.acquire() without release() in a finally",
        "use `with lock:`",
    ),
    # Guarded-by inference (repro lint --dataflow), implemented in
    # concurrency.py: inferred for every class creating a Lock/RLock.
    "RPR801": (
        "a field written both under and outside its inferred guard "
        "(one unguarded write is a data race)",
        "take the lock around every write, or stop guarding the field",
    ),
    "RPR802": (
        "a public method mutates guarded state but never acquires the guard",
        "wrap the method body in `with self._lock:` (the public API is "
        "the locking boundary)",
    ),
    "RPR803": (
        "guarded mutable state (dict/list/set/memoryview) escapes the lock "
        "region via return/yield/stash",
        "return a copy (dict(...)/list(...)/bytes(...)) instead of the "
        "live container",
    ),
}

#: rule id -> a minimal source example tripping it (``repro lint --explain``)
RULE_EXAMPLES: dict[str, str] = {
    "RPR000": 'def broken(:   # SyntaxError: no other rule can run\n    pass',
    "RPR001": (
        "class MyCodec(Compressed):   # concrete subclass...\n"
        "    def size_bits(self):     # ...missing decompress() and access()\n"
        "        return 0"
    ),
    "RPR002": (
        '# lossy codec registered without a required eps param:\n'
        'register_codec(CodecSpec("mylossy", factory, lossy=True, params={}))'
    ),
    "RPR101": 'struct.pack("<II", 1)   # format packs 2 fields, 1 value given',
    "RPR102": "import struct   # outside the binary-layout modules",
    "RPR201": (
        'open(path, "wb").write(blob)   # a crash mid-write tears the file;\n'
        "# route it through write_atomic() instead"
    ),
    "RPR301": (
        "class SeriesDB:\n"
        "    def count(self, sid):\n"
        "        return len(self._stores[sid])   # shared state, no self._lock"
    ),
    "RPR401": "import pickle   # arbitrary code execution on load",
    "RPR402": 'eval(expression)   # banned outright',
    "RPR403": (
        "arr = np.frombuffer(view, dtype=np.int64)\n"
        "arr[0] = 42   # writes through the shared mapped bytes"
    ),
    "RPR501": (
        "def frame(path):\n"
        "    view = mmap_view(path)\n"
        "    return view[8:16]   # derived view escapes without its map"
    ),
    "RPR502": (
        "def open_frame(self, path):\n"
        "    view = mmap_view(path)\n"
        "    self._frame = view[8:16]   # stashed; the root/map is not"
    ),
    "RPR601": (
        'def read(path):\n'
        '    fh = open(path, "rb")\n'
        "    data = parse(fh.read())   # if this raises, fh never closes\n"
        "    fh.close()\n"
        "    return data"
    ),
    "RPR602": (
        "fh.close()\n"
        "return fh.read()   # used on a path after its close()"
    ),
    "RPR701": (
        "# thread 1:                # thread 2:\n"
        "with lock_a:               with lock_b:\n"
        "    with lock_b: ...           with lock_a: ...   # A->B vs B->A"
    ),
    "RPR702": (
        "lock.acquire()\n"
        "do_work()        # raises -> the lock is never released\n"
        "lock.release()   # use `with lock:` instead"
    ),
    "RPR801": (
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n"
        "    def add(self):\n"
        "        with self._lock:\n"
        "            self._n += 1\n"
        "        self._n = 0   # also written outside the guard: a data race"
    ),
    "RPR802": (
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = {}\n"
        "    def put(self, k, v):\n"
        "        with self._lock:\n"
        "            self._state[k] = v\n"
        "    def clear(self):\n"
        "        self._state.clear()   # public mutator, never takes the lock"
    ),
    "RPR803": (
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = {}\n"
        "    def snapshot(self):\n"
        "        with self._lock:\n"
        "            return self._state   # the live dict outlives the lock\n"
        "            # return dict(self._state) is the sanctioned idiom"
    ),
}

# -- RPR101 / RPR102: binary-format discipline ---------------------------------

#: modules allowed to speak raw struct (they own a documented layout, or —
#: for the linter itself — validate format strings with struct.calcsize)
STRUCT_ALLOWED_SUFFIXES = (
    "baselines/_native.py",
    "codecs/container.py",
    "codecs/serialize.py",
    "bits/io.py",
    "analysis/rules.py",
)


def _struct_arity(fmt: str) -> int | None:
    """Number of values a format string packs/unpacks, or None if invalid."""
    try:
        _struct.calcsize(fmt)
    except _struct.error:
        return None
    body = fmt[1:] if fmt[:1] in "@=<>!" else fmt
    arity, repeat = 0, ""
    for ch in body:
        if ch.isdigit():
            repeat += ch
            continue
        if ch.isspace():
            repeat = ""
            continue
        count = int(repeat) if repeat else 1
        repeat = ""
        if ch in "sp":
            arity += 1  # a length-prefixed run is one python value
        elif ch != "x":
            arity += count
    return arity


def _literal_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
        try:
            return node.value.decode("ascii")
        except UnicodeDecodeError:
            return None
    return None


def _call_name(node: ast.Call) -> str:
    """Dotted name of the callee, best effort ('struct.pack', 'S.unpack')."""
    parts: list[str] = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
    return ".".join(reversed(parts))


def check_struct_formats(module: Module) -> list[Finding]:
    """RPR101: literal format validity plus pack/unpack arity at call sites."""
    findings: list[Finding] = []
    # Module-level `NAME = struct.Struct("<fmt>")` constants.
    constants: dict[str, int] = {}
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and _call_name(node.value) == "struct.Struct"
            and node.value.args
        ):
            fmt = _literal_str(node.value.args[0])
            if fmt is None:
                continue
            arity = _struct_arity(fmt)
            if arity is None:
                findings.append(Finding(
                    "RPR101", module.relpath, node.lineno,
                    f"invalid struct format string {fmt!r}",
                    "fix the format string (see the struct module docs)",
                ))
            else:
                constants[node.targets[0].id] = arity

    def expected_args(call: ast.Call) -> int | None:
        """Arity a pack-style call should receive, or None when unknown."""
        name = _call_name(call)
        if name == "struct.pack" and call.args:
            fmt = _literal_str(call.args[0])
            if fmt is not None:
                arity = _struct_arity(fmt)
                if arity is None:
                    findings.append(Finding(
                        "RPR101", module.relpath, call.lineno,
                        f"invalid struct format string {fmt!r}",
                        "fix the format string (see the struct module docs)",
                    ))
                    return None
                if not any(isinstance(a, ast.Starred) for a in call.args[1:]):
                    return arity + 1  # fmt itself plus the values
        elif "." in name:
            head, _, tail = name.rpartition(".")
            if tail == "pack" and head in constants:
                if not any(isinstance(a, ast.Starred) for a in call.args):
                    return constants[head]
        return None

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            want = expected_args(node)
            if want is not None and len(node.args) != want:
                name = _call_name(node)
                findings.append(Finding(
                    "RPR101", module.relpath, node.lineno,
                    f"{name}() packs {want - (1 if name == 'struct.pack' else 0)}"
                    f" field(s) but is given "
                    f"{len(node.args) - (1 if name == 'struct.pack' else 0)}"
                    " value(s)",
                    "match the argument list to the format string",
                ))
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            # Tuple-unpack arity: `a, b, c = S.unpack_from(buf, off)`.
            name = _call_name(node.value)
            head, _, tail = name.rpartition(".")
            if tail in ("unpack", "unpack_from"):
                arity = None
                if head in constants:
                    arity = constants[head]
                elif head == "struct" and node.value.args:
                    fmt = _literal_str(node.value.args[0])
                    arity = _struct_arity(fmt) if fmt is not None else None
                if arity is not None and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Tuple) and not any(
                        isinstance(e, ast.Starred) for e in target.elts
                    ) and len(target.elts) != arity:
                        findings.append(Finding(
                            "RPR101", module.relpath, node.lineno,
                            f"{name}() yields {arity} field(s) but "
                            f"{len(target.elts)} target(s) unpack it",
                            "match the unpack targets to the format string",
                        ))
    return findings


def check_struct_confinement(module: Module) -> list[Finding]:
    """RPR102: flag ``import struct`` outside the binary-layout modules."""
    if module.relpath.endswith(STRUCT_ALLOWED_SUFFIXES):
        return []
    findings = []
    for node in ast.walk(module.tree):
        names: list[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = [node.module]
        if any(name.split(".")[0] == "struct" for name in names):
            findings.append(Finding(
                "RPR102", module.relpath, node.lineno,
                "raw struct use outside the binary-layout modules",
                RULE_CATALOGUE["RPR102"][1],
            ))
    return findings


# -- RPR201: durability discipline ---------------------------------------------

#: (path suffix, qualified function name) pairs allowed to open for writing
DURABILITY_ALLOWED = (
    ("codecs/container.py", "write_atomic"),
    ("codecs/container.py", "AppendableArchive.open"),
    ("codecs/container.py", "AppendableArchive.append"),
    ("codecs/container.py", "AppendableArchive.append_many"),
    ("codecs/container.py", "GroupLog.open"),
    ("codecs/container.py", "GroupLog.append_group"),
)


def _is_write_mode(mode: str) -> bool:
    return "b" in mode and any(ch in mode for ch in "wa+")


def check_durability(module: Module) -> list[Finding]:
    """RPR201: binary write-mode open calls outside the sanctioned writers."""
    findings: list[Finding] = []
    allowed = {
        qual for suffix, qual in DURABILITY_ALLOWED
        if module.relpath.endswith(suffix)
    }

    def visit(node: ast.AST, stack: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack = stack + (node.name,)
        if isinstance(node, ast.Call):
            mode = None
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and len(node.args) >= 2
            ):
                mode = _literal_str(node.args[1])
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "open"
                and node.args
                # os.open takes flag constants, not a mode string
                and not (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "os"
                )
            ):
                mode = _literal_str(node.args[0])
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = _literal_str(kw.value)
            if mode is not None and _is_write_mode(mode):
                qual = ".".join(s for s in stack if s)
                if qual not in allowed:
                    findings.append(Finding(
                        "RPR201", module.relpath, node.lineno,
                        f"bare binary write (mode {mode!r}) can be torn by "
                        "a crash",
                        RULE_CATALOGUE["RPR201"][1],
                    ))
        for child in ast.iter_child_nodes(node):
            visit(child, stack)

    visit(module.tree, ())
    return findings


# -- RPR301: SeriesDB lock discipline ------------------------------------------

#: class name -> attributes that form its lock-guarded shared state
GUARDED_STATE: dict[str, frozenset[str]] = {
    "SeriesDB": frozenset({
        "_stores", "_dirty", "_cached_gen", "_series",
        "_wals", "_wal_synced", "_next_shard",
        "_group_name", "_group_log", "_group_pending",
    }),
    "PartitionedSeriesDB": frozenset({
        "_series_map", "_handles",
    }),
}

#: dunders that read shared state and are part of the public surface
_PUBLIC_DUNDERS = {"__contains__", "__len__", "__iter__", "__getitem__"}

#: methods that run before/without the object being shared across threads
_LOCK_EXEMPT = {"__init__", "__new__", "__repr__", "__enter__", "__exit__"}


def _is_self_lock(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "_lock"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def check_lock_discipline(module: Module) -> list[Finding]:
    """RPR301: guarded-state access in public methods must hold self._lock."""
    findings: list[Finding] = []
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef) or cls.name not in GUARDED_STATE:
            continue
        guarded = GUARDED_STATE[cls.name]
        init = next(
            (m for m in cls.body
             if isinstance(m, ast.FunctionDef) and m.name == "__init__"),
            None,
        )
        makes_lock = init is not None and any(
            isinstance(n, ast.Assign)
            and any(_is_self_lock(t) for t in n.targets)
            for n in ast.walk(init)
        )
        if not makes_lock:
            findings.append(Finding(
                "RPR301", module.relpath, cls.lineno,
                f"{cls.name}.__init__ does not create self._lock "
                "(threading.RLock) guarding its shared state",
                "assign self._lock = threading.RLock() in __init__",
            ))
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            public = not method.name.startswith("_") or (
                method.name in _PUBLIC_DUNDERS
            )
            if not public or method.name in _LOCK_EXEMPT:
                continue

            def visit(node: ast.AST, locked: bool,
                      method: ast.FunctionDef = method) -> None:
                if isinstance(node, ast.With) and any(
                    _is_self_lock(item.context_expr) for item in node.items
                ):
                    locked = True
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded
                    and not locked
                ):
                    findings.append(Finding(
                        "RPR301", module.relpath, node.lineno,
                        f"{cls.name}.{method.name} touches self.{node.attr} "
                        "without holding self._lock",
                        RULE_CATALOGUE["RPR301"][1],
                    ))
                for child in ast.iter_child_nodes(node):
                    visit(child, locked, method)

            visit(method, False)
    return findings


# -- RPR401 / RPR402 / RPR403: outright bans -----------------------------------

_BANNED_MODULES = {"pickle", "cPickle", "dill", "shelve"}


def check_bans(module: Module) -> list[Finding]:
    """RPR401/RPR402: pickle-family imports and eval/exec calls."""
    findings = []
    for node in ast.walk(module.tree):
        names: list[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = [node.module]
        if any(name.split(".")[0] in _BANNED_MODULES for name in names):
            findings.append(Finding(
                "RPR401", module.relpath, node.lineno,
                "pickle-family import (arbitrary code execution on load)",
                RULE_CATALOGUE["RPR401"][1],
            ))
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("eval", "exec")
        ):
            findings.append(Finding(
                "RPR402", module.relpath, node.lineno,
                f"call to {node.func.id}()",
                RULE_CATALOGUE["RPR402"][1],
            ))
    return findings


def check_memoryview_writes(module: Module) -> list[Finding]:
    """RPR403: mutation of arrays adopted zero-copy from a byte buffer."""
    findings: list[Finding] = []
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        adopted: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = _call_name(node.value)
                if callee.endswith("frombuffer") or callee == "memoryview":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            adopted.add(target.id)
        if not adopted:
            continue
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in adopted
                    ):
                        findings.append(Finding(
                            "RPR403", module.relpath, node.lineno,
                            f"writes into {target.value.id!r}, a buffer-"
                            "backed array adopted zero-copy",
                            RULE_CATALOGUE["RPR403"][1],
                        ))
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setflags"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in adopted
                and any(
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                )
            ):
                findings.append(Finding(
                    "RPR403", module.relpath, node.lineno,
                    f"re-enables writes on {node.func.value.id!r}, a "
                    "buffer-backed array adopted zero-copy",
                    RULE_CATALOGUE["RPR403"][1],
                ))
    return findings


PER_FILE_RULES = (
    check_struct_formats,
    check_struct_confinement,
    check_durability,
    check_lock_discipline,
    check_bans,
    check_memoryview_writes,
)


def run_per_file_rules(module: Module) -> list[Finding]:
    """Every per-file rule over one module."""
    findings: list[Finding] = []
    for rule in PER_FILE_RULES:
        findings.extend(rule(module))
    return findings
