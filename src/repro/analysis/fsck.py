"""``repro fsck``: offline structural verification of archives and SeriesDBs.

The read path verifies what it touches — lazily, and only on first decode —
so a cold archive can rot for months before anyone notices.  ``fsck`` walks
the *whole* structure up front, without decoding values unless asked:

* **one-shot archives** (``RPAC0001``): magic, fixed header, frame-length
  bounds against the file size, crc32 of the frame, and a frame-header
  parse (codec id known to the registry, non-negative count);
* **appendable archives** (``RPAL0001``): header and params, then every
  record in sequence — record-length bounds, per-frame crc32, cumulative-
  count monotonicity, frame self-accounting (``frame_span``) — and a torn
  tail (bytes past the last complete record) is reported as a defect: the
  format recovers from it, but the bytes are a lost append;
* **SeriesDB directories**: manifest format and entries, shard files
  present with matching crc32 and snapshot magic, WAL generation files
  consistent with the manifest (codec and digits match the configuration),
  dangling files in ``shards/`` no manifest entry references;
* ``--deep`` additionally decodes every frame/shard: value counts must
  match the recorded headers, manifest counts must equal snapshot + WAL
  replay, and lossy payloads must agree with their frame params (ε and
  segment count).

The struct layouts are imported from :mod:`repro.codecs.container`,
:mod:`repro.codecs.serialize`, and :mod:`repro.core.tiered` — fsck can
never drift from the parsers it audits.

Problem codes (``FSK###``) are machine-stable for ``--json`` consumers;
exit codes: 0 = clean, 1 = defects found, 2 = target unusable/missing.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..codecs import serialize
from ..codecs.container import (
    APPEND_MAGIC,
    ARCHIVE_MAGIC,
    GROUP_MAGIC,
    LEGACY_MAGIC,
    _APPEND_HEADER,
    _GROUP_HEADER,
    _GROUP_RECORD,
    _HEADER,
    _RECORD,
)
from ..codecs.registry import available_codecs, codec_spec, load_compressed
from ..store.partitioned import PARTITION_MANIFEST_FORMAT, _PART_DIR
from ..store.seriesdb import MANIFEST_FORMAT, MANIFEST_NAME

__all__ = ["Problem", "FsckReport", "fsck_path", "fsck_archive", "fsck_seriesdb",
           "fsck_partitioned", "PROBLEM_CODES"]

#: problem code -> one-line meaning (the catalogue README documents)
PROBLEM_CODES: dict[str, str] = {
    "FSK001": "file missing or unreadable",
    "FSK002": "file too short for its container header",
    "FSK003": "bad magic (not a repro archive)",
    "FSK004": "header length field inconsistent with the file size",
    "FSK005": "frame crc32 mismatch (payload corrupt)",
    "FSK006": "frame header unparseable",
    "FSK007": "codec id not in the registry",
    "FSK008": "decoded value count disagrees with the recorded count",
    "FSK009": "lossy payload disagrees with its frame params",
    "FSK010": "frame failed to decode",
    "FSK011": "appendable header/params corrupt",
    "FSK012": "record length field out of bounds",
    "FSK013": "record crc32 mismatch (record corrupt)",
    "FSK014": "cumulative counts not strictly increasing",
    "FSK015": "torn tail: bytes beyond the last complete record",
    "FSK016": "record frame self-accounting disagrees with record length",
    "FSK020": "manifest missing or unparseable",
    "FSK021": "manifest format/field invalid",
    "FSK022": "shard file missing",
    "FSK023": "shard crc32 disagrees with the manifest",
    "FSK024": "shard snapshot magic/structure invalid",
    "FSK025": "shard value count disagrees with the manifest",
    "FSK026": "WAL archive defective",
    "FSK027": "WAL configuration conflicts with the manifest (codec/digits)",
    "FSK028": "dangling file in shards/ (no manifest reference)",
    "FSK029": "series replay count (snapshot + WAL) inconsistent",
    "FSK030": "partitioned root manifest invalid",
    "FSK031": "partition directory missing or not a SeriesDB",
    "FSK032": "partition map / partition manifest disagree (overlap or orphan)",
    "FSK033": "group WAL structurally defective",
    "FSK034": "group WAL configuration conflicts with the manifest",
}


@dataclass(frozen=True)
class Problem:
    """One defect found by fsck."""

    code: str  #: FSK### (see PROBLEM_CODES)
    path: str  #: file (or directory) the defect is in
    message: str  #: specifics, one line

    def render(self) -> str:
        return f"{self.path}: {self.code} {self.message}"


@dataclass
class FsckReport:
    """Everything one fsck run found, JSON-serialisable."""

    target: str
    #: 'archive' | 'appendable' | 'legacy' | 'seriesdb' | 'partitioned'
    #: | 'unknown'
    kind: str
    deep: bool = False
    problems: list[Problem] = field(default_factory=list)
    #: structures positively verified (frames, records, series, shards)
    checked: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def exit_code(self) -> int:
        if any(p.code == "FSK001" for p in self.problems):
            return 2
        return 0 if self.ok else 1

    def add(self, code: str, path, message: str) -> None:
        self.problems.append(Problem(code, str(path), message))

    def tally(self, key: str, delta: int = 1) -> None:
        self.checked[key] = self.checked.get(key, 0) + delta

    def to_json(self) -> dict:
        return {
            "target": self.target,
            "kind": self.kind,
            "deep": self.deep,
            "ok": self.ok,
            "exit_code": self.exit_code,
            "checked": dict(self.checked),
            "problems": [
                {"code": p.code, "path": p.path, "message": p.message}
                for p in self.problems
            ],
        }

    def render(self) -> str:
        lines = [
            f"fsck {self.target} ({self.kind}"
            + (", deep)" if self.deep else ")")
        ]
        for problem in self.problems:
            lines.append(f"  {problem.render()}")
        counted = ", ".join(
            f"{v} {k}" for k, v in sorted(self.checked.items())
        ) or "nothing"
        lines.append(
            ("OK: " if self.ok else "FAILED: ") + f"verified {counted}, "
            f"{len(self.problems)} problem(s)"
        )
        return "\n".join(lines)


def fsck_path(target, *, deep: bool = False) -> FsckReport:
    """Dispatch: a directory fscks as a (partitioned) SeriesDB, a file as an archive.

    Directory dispatch reads the manifest's ``format`` field: a
    ``RPPD0001`` root recurses into every partition
    (:func:`fsck_partitioned`), anything else is checked as a single-dir
    SeriesDB — whose own manifest checks then report what is wrong.
    """
    target = Path(target)
    if target.is_dir():
        try:
            manifest = json.loads((target / MANIFEST_NAME).read_text("utf-8"))
        except (OSError, json.JSONDecodeError):
            manifest = None
        if (
            isinstance(manifest, dict)
            and manifest.get("format") == PARTITION_MANIFEST_FORMAT
        ):
            return fsck_partitioned(target, deep=deep)
        return fsck_seriesdb(target, deep=deep)
    return fsck_archive(target, deep=deep)


# -- archives ------------------------------------------------------------------


def _check_frame(
    report: FsckReport, path, label: str, frame, *, deep: bool,
    expect_n: int | None = None,
) -> None:
    """Frame-header sanity (and, deep, a full decode) for one codec frame."""
    try:
        parsed = serialize.read_frame(frame)
    except ValueError as exc:
        report.add("FSK006", path, f"{label}: {exc}")
        return
    if parsed.codec_id not in available_codecs():
        report.add(
            "FSK007", path,
            f"{label}: codec {parsed.codec_id!r} is not registered",
        )
        return
    if expect_n is not None and parsed.n != expect_n:
        report.add(
            "FSK008", path,
            f"{label}: frame header records {parsed.n} values, "
            f"container says {expect_n}",
        )
    report.tally("frames")
    if not deep:
        return
    try:
        compressed = load_compressed(frame)
        values = compressed.decompress()
    except Exception as exc:  # any decode failure is the finding itself
        report.add("FSK010", path, f"{label}: decode failed: {exc}")
        return
    if len(values) != parsed.n:
        report.add(
            "FSK008", path,
            f"{label}: decoded {len(values)} values, header says {parsed.n}",
        )
    spec = codec_spec(parsed.codec_id)
    if spec.lossy:
        eps = parsed.params.get("eps")
        have = getattr(compressed, "eps", None)
        if eps is not None and have is not None and float(eps) != float(have):
            report.add(
                "FSK009", path,
                f"{label}: frame params say eps={eps}, payload holds {have}",
            )
        segments = parsed.params.get("segments")
        have_seg = getattr(compressed, "num_segments", None)
        if (
            segments is not None
            and have_seg is not None
            and int(segments) != int(have_seg)
        ):
            report.add(
                "FSK009", path,
                f"{label}: frame params say {segments} segments, "
                f"payload holds {have_seg}",
            )
    report.tally("decoded_values", len(values))


def _fsck_oneshot(report: FsckReport, path: Path, data: bytes, deep: bool) -> None:
    report.kind = "archive"
    if len(data) < _HEADER.size:
        report.add(
            "FSK002", path,
            f"{len(data)} bytes, container header needs {_HEADER.size}",
        )
        return
    magic, digits, crc, frame_len = _HEADER.unpack_from(data)
    frame = data[_HEADER.size:]
    if len(frame) != frame_len:
        report.add(
            "FSK004", path,
            f"header says {frame_len} frame bytes, file holds {len(frame)}",
        )
        return
    if zlib.crc32(frame) != crc:
        report.add(
            "FSK005", path,
            f"frame crc32 {zlib.crc32(frame):#010x} != header {crc:#010x}",
        )
        return
    _check_frame(report, path, "frame", frame, deep=deep)


def _fsck_appendable(
    report: FsckReport, path: Path, data: bytes, deep: bool
) -> None:
    report.kind = "appendable"
    if len(data) < _APPEND_HEADER.size:
        report.add(
            "FSK002", path,
            f"{len(data)} bytes, appendable header needs {_APPEND_HEADER.size}",
        )
        return
    magic, digits, idlen, plen = _APPEND_HEADER.unpack_from(data)
    pos = _APPEND_HEADER.size
    if len(data) < pos + idlen + plen:
        report.add(
            "FSK011", path,
            f"header says {idlen}+{plen} id/params bytes, only "
            f"{len(data) - pos} present",
        )
        return
    try:
        codec_id = data[pos:pos + idlen].decode("utf-8")
        params = json.loads(data[pos + idlen:pos + idlen + plen])
        if not isinstance(params, dict):
            raise ValueError("params are not a JSON object")
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
        report.add("FSK011", path, f"corrupt codec id/params block: {exc}")
        return
    if codec_id not in available_codecs():
        report.add("FSK007", path, f"codec {codec_id!r} is not registered")
    pos += idlen + plen
    total, index = 0, 0
    # Unlike the recovering reader (_scan_append), fsck distinguishes *why*
    # the walk stopped: every structural break is reported, then whatever
    # bytes remain are the torn tail.
    while len(data) - pos >= _RECORD.size:
        frame_len, crc, cum = _RECORD.unpack_from(data, pos)
        start = pos + _RECORD.size
        label = f"record {index}"
        if start + frame_len > len(data):
            report.add(
                "FSK012", path,
                f"{label}: length {frame_len} overruns the file by "
                f"{start + frame_len - len(data)} bytes",
            )
            break
        if cum <= total:
            report.add(
                "FSK014", path,
                f"{label}: cumulative count {cum} not greater than "
                f"previous {total}",
            )
            break
        frame = data[start:start + frame_len]
        try:
            span = serialize.frame_span(frame)
        except ValueError as exc:
            report.add("FSK016", path, f"{label}: {exc}")
            break
        if span != frame_len:
            report.add(
                "FSK016", path,
                f"{label}: record says {frame_len} bytes, frame accounts "
                f"for {span}",
            )
            break
        if zlib.crc32(frame) != crc:
            report.add(
                "FSK013", path,
                f"{label}: frame crc32 {zlib.crc32(frame):#010x} != "
                f"recorded {crc:#010x}",
            )
            # structure (lengths, cumulative count) is sound: keep walking
            # the chain and account the record's values so later records
            # are judged against the right running total
            total = cum
            pos = start + frame_len
            index += 1
            continue
        _check_frame(
            report, path, label, frame, deep=deep, expect_n=cum - total,
        )
        report.tally("records")
        total = cum
        pos = start + frame_len
        index += 1
    if pos < len(data):
        report.add(
            "FSK015", path,
            f"{len(data) - pos} byte(s) beyond the last complete record "
            "(interrupted append; the next writer truncates them)",
        )
    report.tally("values", total)


def _fsck_legacy(report: FsckReport, path: Path, data: bytes, deep: bool) -> None:
    report.kind = "legacy"
    if len(data) < 12:
        report.add("FSK002", path, "truncated legacy NeaTS archive")
        return
    if not deep:
        report.tally("frames")
        return
    from ..core.storage import NeaTSStorage

    try:
        storage = NeaTSStorage.from_bytes(data[12:])
        report.tally("decoded_values", storage.n)
        report.tally("frames")
    except Exception as exc:
        report.add("FSK010", path, f"legacy payload failed to parse: {exc}")


def fsck_archive(path, *, deep: bool = False) -> FsckReport:
    """Structurally verify one archive file (any container format)."""
    path = Path(path)
    report = FsckReport(target=str(path), kind="unknown", deep=deep)
    try:
        data = path.read_bytes()
    except OSError as exc:
        report.add("FSK001", path, str(exc))
        return report
    if data[:8] == ARCHIVE_MAGIC:
        _fsck_oneshot(report, path, data, deep)
    elif data[:8] == APPEND_MAGIC:
        _fsck_appendable(report, path, data, deep)
    elif data[:8] == LEGACY_MAGIC:
        _fsck_legacy(report, path, data, deep)
    else:
        report.add(
            "FSK003", path,
            f"magic {data[:8]!r} is not a repro container",
        )
    return report


# -- SeriesDB directories ------------------------------------------------------

_TIER_MAGIC = b"RPTS0001"


def _fsck_shard(
    report: FsckReport, path: Path, entry: dict, sid: str, deep: bool
) -> int | None:
    """Verify one shard snapshot; returns its decoded count (deep only)."""
    try:
        data = path.read_bytes()
    except OSError as exc:
        report.add("FSK022", path, f"series {sid!r}: {exc}")
        return None
    if zlib.crc32(data) != int(entry.get("crc32", -1)):
        report.add(
            "FSK023", path,
            f"series {sid!r}: shard crc32 {zlib.crc32(data):#010x} != "
            f"manifest {int(entry.get('crc32', -1)):#010x}",
        )
        return None
    if data[:8] != _TIER_MAGIC:
        report.add(
            "FSK024", path,
            f"series {sid!r}: snapshot magic {data[:8]!r} != {_TIER_MAGIC!r}",
        )
        return None
    report.tally("shards")
    if not deep:
        return None
    from ..core.tiered import TieredStore

    try:
        store = TieredStore.from_bytes(data)
    except Exception as exc:
        report.add("FSK024", path, f"series {sid!r}: snapshot parse: {exc}")
        return None
    count = len(store)
    if count != int(entry.get("count", -1)):
        report.add(
            "FSK025", path,
            f"series {sid!r}: snapshot holds {count} values, manifest "
            f"says {entry.get('count')}",
        )
    report.tally("decoded_values", count)
    return count


def _fsck_group_log(
    report: FsckReport, path: Path, manifest: dict, deep: bool
) -> dict[str, int]:
    """Structurally verify one group-commit WAL (``RPGW0001``).

    Returns per-series value counts taken from the frame headers, so the
    caller can fold them into the deep replay cross-check (FSK029).
    """
    counts: dict[str, int] = {}
    try:
        data = path.read_bytes()
    except OSError as exc:
        report.add("FSK001", path, str(exc))
        return counts
    if data[:8] != GROUP_MAGIC:
        report.add(
            "FSK033", path,
            f"magic {data[:8]!r} is not a group WAL ({GROUP_MAGIC!r})",
        )
        return counts
    if len(data) < _GROUP_HEADER.size:
        report.add(
            "FSK033", path,
            f"{len(data)} bytes, group header needs {_GROUP_HEADER.size}",
        )
        return counts
    _, idlen, plen = _GROUP_HEADER.unpack_from(data)
    pos = _GROUP_HEADER.size
    if len(data) < pos + idlen + plen:
        report.add(
            "FSK033", path,
            f"header says {idlen}+{plen} id/params bytes, only "
            f"{len(data) - pos} present",
        )
        return counts
    try:
        codec_id = data[pos:pos + idlen].decode("utf-8")
        params = json.loads(data[pos + idlen:pos + idlen + plen])
        if not isinstance(params, dict):
            raise ValueError("params are not a JSON object")
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
        report.add("FSK033", path, f"corrupt codec id/params block: {exc}")
        return counts
    if codec_id not in available_codecs():
        report.add("FSK007", path, f"codec {codec_id!r} is not registered")
    hot_codec = manifest.get("hot_codec")
    if hot_codec and codec_id != hot_codec:
        report.add(
            "FSK034", path,
            f"group WAL codec {codec_id!r} != configured hot codec "
            f"{hot_codec!r}",
        )
    series = manifest.get("series")
    series = series if isinstance(series, dict) else {}
    pos += idlen + plen
    index = 0
    while len(data) - pos >= _GROUP_RECORD.size:
        sid_len, digits, frame_len, crc = _GROUP_RECORD.unpack_from(data, pos)
        sid_start = pos + _GROUP_RECORD.size
        frame_start = sid_start + sid_len
        label = f"record {index}"
        if sid_len == 0 or frame_start + frame_len > len(data):
            report.add(
                "FSK012", path,
                f"{label}: lengths {sid_len}+{frame_len} overrun the file "
                f"by {frame_start + frame_len - len(data)} bytes",
            )
            break
        try:
            sid = data[sid_start:frame_start].decode("utf-8")
        except UnicodeDecodeError as exc:
            report.add("FSK033", path, f"{label}: series id not UTF-8: {exc}")
            break
        frame = data[frame_start:frame_start + frame_len]
        entry = series.get(sid)
        if isinstance(entry, dict) and int(entry.get("digits", 0)) != digits:
            report.add(
                "FSK034", path,
                f"{label}: series {sid!r} digits {digits} != manifest "
                f"digits {entry.get('digits', 0)}",
            )
        try:
            span = serialize.frame_span(frame)
        except ValueError as exc:
            report.add("FSK016", path, f"{label}: {exc}")
            break
        if span != frame_len:
            report.add(
                "FSK016", path,
                f"{label}: record says {frame_len} frame bytes, frame "
                f"accounts for {span}",
            )
            break
        if zlib.crc32(frame) != crc:
            report.add(
                "FSK013", path,
                f"{label}: frame crc32 {zlib.crc32(frame):#010x} != "
                f"recorded {crc:#010x}",
            )
            # the chain structure is sound: keep walking the tail
            pos = frame_start + frame_len
            index += 1
            continue
        _check_frame(report, path, f"{label} (series {sid!r})", frame, deep=deep)
        try:
            counts[sid] = counts.get(sid, 0) + serialize.read_frame(frame).n
        except ValueError:
            pass  # _check_frame reported FSK006 for this frame already
        report.tally("records")
        pos = frame_start + frame_len
        index += 1
    if pos < len(data):
        report.add(
            "FSK015", path,
            f"{len(data) - pos} byte(s) beyond the last complete record "
            "(interrupted group append; the next writer truncates them)",
        )
    report.tally("group_wals")
    return counts


def fsck_seriesdb(root, *, deep: bool = False) -> FsckReport:
    """Cross-check a SeriesDB directory: manifest <-> shards <-> WALs."""
    root = Path(root)
    report = FsckReport(target=str(root), kind="seriesdb", deep=deep)
    manifest_path = root / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text("utf-8"))
    except OSError as exc:
        report.add("FSK001", manifest_path, str(exc))
        return report
    except json.JSONDecodeError as exc:
        report.add("FSK020", manifest_path, f"manifest is not JSON: {exc}")
        return report
    if manifest.get("format") != MANIFEST_FORMAT:
        report.add(
            "FSK021", manifest_path,
            f"manifest format {manifest.get('format')!r} != {MANIFEST_FORMAT!r}",
        )
        return report
    series = manifest.get("series")
    if not isinstance(series, dict):
        report.add("FSK021", manifest_path, "manifest has no series mapping")
        return report
    hot_codec = manifest.get("hot_codec")
    referenced: set[str] = set()
    expected_counts: dict[str, int] = {}
    for sid, entry in series.items():
        if not isinstance(entry, dict) or "shard" not in entry:
            report.add(
                "FSK021", manifest_path, f"series {sid!r}: malformed entry"
            )
            continue
        report.tally("series")
        shard_rel = entry["shard"]
        referenced.add(shard_rel)
        shard_path = root / shard_rel
        snapshot_count: int | None = None
        if shard_path.exists():
            snapshot_count = _fsck_shard(report, shard_path, entry, sid, deep)
        elif int(entry.get("count", 0)) != 0:
            report.add(
                "FSK022", shard_path,
                f"series {sid!r}: manifest records {entry.get('count')} "
                "values but the shard file is gone",
            )
        wal_rel = entry.get("wal")
        wal_count = 0
        if wal_rel:
            referenced.add(wal_rel)
            wal_path = root / wal_rel
            if wal_path.exists():
                sub = fsck_archive(wal_path, deep=deep)
                for problem in sub.problems:
                    report.problems.append(Problem(
                        "FSK026", problem.path,
                        f"series {sid!r} WAL: {problem.code} {problem.message}",
                    ))
                report.tally("wals")
                if sub.kind != "appendable" and sub.ok:
                    report.add(
                        "FSK026", wal_path,
                        f"series {sid!r}: WAL is a {sub.kind}, expected an "
                        "appendable archive",
                    )
                elif sub.ok:
                    try:
                        raw = wal_path.read_bytes()
                        _, wal_digits, idlen, _ = _APPEND_HEADER.unpack_from(raw)
                        wal_codec = raw[
                            _APPEND_HEADER.size:_APPEND_HEADER.size + idlen
                        ].decode("utf-8")
                        if hot_codec and wal_codec != hot_codec:
                            report.add(
                                "FSK027", wal_path,
                                f"series {sid!r}: WAL codec {wal_codec!r} != "
                                f"configured hot codec {hot_codec!r}",
                            )
                        recorded = int(entry.get("digits", 0))
                        if wal_digits != recorded:
                            report.add(
                                "FSK027", wal_path,
                                f"series {sid!r}: WAL digits {wal_digits} != "
                                f"manifest digits {recorded}",
                            )
                        wal_count = sub.checked.get("values", 0)
                    except Exception as exc:
                        report.add(
                            "FSK026", wal_path,
                            f"series {sid!r}: WAL header unreadable: {exc}",
                        )
        expected_counts[sid] = int(entry.get("count", 0)) + wal_count
    group_rel = manifest.get("group_wal")
    if group_rel:
        referenced.add(group_rel)
        if not bool(manifest.get("group_commit", False)):
            report.add(
                "FSK034", manifest_path,
                f"manifest references group WAL {group_rel!r} but "
                "group_commit is off",
            )
        group_path = root / group_rel
        # Absent is fine: group logs are created lazily at first append.
        if group_path.exists():
            group_counts = _fsck_group_log(report, group_path, manifest, deep)
            for sid, n in group_counts.items():
                expected_counts[sid] = expected_counts.get(sid, 0) + n
    shard_dir = root / "shards"
    if shard_dir.is_dir():
        for file in sorted(shard_dir.iterdir()):
            rel = file.relative_to(root).as_posix()
            if rel not in referenced and not file.name.endswith(".tmp"):
                report.add(
                    "FSK028", file,
                    "no manifest entry references this file (orphaned by a "
                    "crash mid-flush, or a stale generation)",
                )
    if deep and report.ok:
        # End-to-end recovery check: open the database (read-only — WAL
        # replay goes through open_archive, which never truncates) and
        # confirm every series replays to snapshot + WAL values.
        from ..store.seriesdb import SeriesDB

        try:
            db = SeriesDB.open(root)
        except Exception as exc:
            report.add("FSK029", root, f"database failed to open: {exc}")
        else:
            for sid, expected in expected_counts.items():
                try:
                    live = db.count(sid)
                except Exception as exc:
                    report.add(
                        "FSK029", root, f"series {sid!r}: replay failed: {exc}"
                    )
                    continue
                if live != expected:
                    report.add(
                        "FSK029", root,
                        f"series {sid!r}: replays to {live} values, "
                        f"snapshot + WAL account for {expected}",
                    )
    return report


# -- partitioned roots ---------------------------------------------------------


def fsck_partitioned(root, *, deep: bool = False) -> FsckReport:
    """Recursively verify a partitioned SeriesDB root (``RPPD0001``).

    The root manifest is checked first (FSK030 on any structural defect);
    then every partition directory is located (FSK031 when missing) and
    handed to :func:`fsck_seriesdb`, whose findings are merged verbatim —
    per-partition problems keep their original codes and paths, so
    ``--json`` consumers see exactly where inside the tree each defect
    lives.  Finally the root partition map is cross-checked against what
    each partition's own manifest claims: a series present in two
    partitions, present but unmapped, mapped to the wrong partition, or
    mapped but present nowhere all report FSK032.
    """
    root = Path(root)
    report = FsckReport(target=str(root), kind="partitioned", deep=deep)
    manifest_path = root / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text("utf-8"))
    except OSError as exc:
        report.add("FSK001", manifest_path, str(exc))
        return report
    except json.JSONDecodeError as exc:
        report.add("FSK020", manifest_path, f"manifest is not JSON: {exc}")
        return report
    if manifest.get("format") != PARTITION_MANIFEST_FORMAT:
        report.add(
            "FSK030", manifest_path,
            f"manifest format {manifest.get('format')!r} != "
            f"{PARTITION_MANIFEST_FORMAT!r}",
        )
        return report
    partitions = manifest.get("partitions")
    if not isinstance(partitions, int) or partitions < 1:
        report.add(
            "FSK030", manifest_path,
            f"partition count {partitions!r} is not a positive integer",
        )
        return report
    series_map = manifest.get("series")
    if not isinstance(series_map, dict):
        report.add("FSK030", manifest_path, "manifest has no partition map")
        return report
    for sid, part in series_map.items():
        if not isinstance(part, int) or not 0 <= part < partitions:
            report.add(
                "FSK030", manifest_path,
                f"series {sid!r} mapped to partition {part!r}, valid "
                f"range is 0..{partitions - 1}",
            )
    owned: dict[str, int] = {}
    readable: set[int] = set()
    for part in range(partitions):
        part_dir = root / _PART_DIR.format(part)
        part_manifest = part_dir / MANIFEST_NAME
        if not part_manifest.is_file():
            report.add(
                "FSK031", part_dir,
                f"partition {part}: directory missing or has no manifest",
            )
            continue
        sub = fsck_seriesdb(part_dir, deep=deep)
        report.problems.extend(sub.problems)
        for key, value in sub.checked.items():
            report.tally(key, value)
        report.tally("partitions")
        try:
            part_series = json.loads(
                part_manifest.read_text("utf-8")
            ).get("series")
        except (OSError, json.JSONDecodeError, AttributeError):
            continue  # fsck_seriesdb reported it; skip the cross-check
        if not isinstance(part_series, dict):
            continue
        readable.add(part)
        for sid in part_series:
            if sid in owned:
                report.add(
                    "FSK032", part_dir,
                    f"series {sid!r} present in partitions {owned[sid]} "
                    f"and {part}",
                )
                continue
            owned[sid] = part
            mapped = series_map.get(sid)
            if mapped is None:
                report.add(
                    "FSK032", part_dir,
                    f"series {sid!r} lives in partition {part} but the "
                    "partition map has no entry for it",
                )
            elif mapped != part:
                report.add(
                    "FSK032", part_dir,
                    f"series {sid!r} lives in partition {part}, the "
                    f"partition map places it in {mapped}",
                )
    for sid, part in series_map.items():
        if sid not in owned and isinstance(part, int) and part in readable:
            report.add(
                "FSK032", manifest_path,
                f"partition map claims series {sid!r} in partition "
                f"{part}, but that partition has no such series",
            )
    return report
