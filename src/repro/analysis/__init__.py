"""Static analysis & integrity: the machine-checked invariants of the repo.

Two tools live here, both wired into the CLI and CI:

* ``repro lint`` (:func:`run_lint`) — an AST-based linter (stdlib ``ast``,
  no dependencies) enforcing the conventions the paper's trust story rests
  on: codec-protocol conformance, binary-format discipline, durability
  discipline (atomic/fsync'd writes only), SeriesDB lock discipline, and
  bans on pickle/eval/memoryview-writes.  A committed baseline file
  (:class:`Baseline`) grandfathers existing debt so CI fails only on *new*
  violations.

* ``repro fsck`` (:func:`fsck_path`) — an offline structural verifier for
  everything the system persists: one-shot and appendable archives
  (header/bounds/crc/monotonicity/torn-tail) and SeriesDB directories
  (manifest <-> shards <-> WAL cross-checks), with ``--deep`` decoding
  every frame.

Two deeper layers extend the linter beyond syntax:

* ``repro lint --dataflow`` (:mod:`repro.analysis.cfg` +
  :mod:`repro.analysis.dataflow` + :mod:`repro.analysis.concurrency`) — an
  intraprocedural CFG/escape analysis adding buffer-lifetime (RPR5xx),
  resource-release (RPR6xx), lock-order (RPR7xx), and guarded-by
  inference (RPR80x) rules.

* ``REPRO_SANITIZE=1`` (:mod:`repro.analysis.sanitizer`) — a runtime
  sanitizer instrumenting ``mmap_view``, archive open/close, and
  ``SeriesDB._lock`` with a live ledger: use-after-close, lock-order
  inversions, and vector-clock data races on instrumented SeriesDB state
  are detected as they happen, and leaked maps are reported at
  interpreter exit.  CI runs the whole test suite under it.

* :mod:`repro.analysis.schedule` — a deterministic schedule explorer:
  seeded, replayable thread interleavings (checkpoints at sanitized-lock
  boundaries) driving the ``tests/analysis/test_races.py`` stress suite
  and CI's ``race`` job.

This subsystem is the correctness gate the ROADMAP's service layer runs
behind: invariants that were reviewer-checked through PR 5 are
machine-checked from here on.
"""

from .findings import Baseline, Finding, apply_baseline
from .fsck import (
    FsckReport,
    Problem,
    fsck_archive,
    fsck_partitioned,
    fsck_path,
    fsck_seriesdb,
)
from .linter import run_lint
from .rules import RULE_CATALOGUE, RULE_EXAMPLES
from .schedule import Scheduler, checkpoint, explore

__all__ = [
    "Baseline",
    "Finding",
    "FsckReport",
    "Problem",
    "RULE_CATALOGUE",
    "RULE_EXAMPLES",
    "Scheduler",
    "apply_baseline",
    "checkpoint",
    "explore",
    "fsck_archive",
    "fsck_partitioned",
    "fsck_path",
    "fsck_seriesdb",
    "run_lint",
]
