"""Guarded-by inference: which lock guards which attribute, checked statically.

The lock-discipline rule (RPR301) knows *one* class and *one* hand-written
attribute list.  This module infers the guarded-by relation for **every**
class that creates a ``threading.Lock``/``RLock`` in its ``__init__`` —
SeriesDB today, the server state of ``repro serve`` tomorrow — and checks
three invariants the happens-before race detector
(:mod:`repro.analysis.sanitizer`) can only confirm at runtime:

``RPR801`` **mixed-guard write** — an attribute written both *under* the
    lock and *outside* it.  One unguarded write is all a data race needs;
    either every write holds the guard or the field is not shared state.

``RPR802`` **unguarded mutating public method** — a public method that
    writes guarded state but never acquires the guard.  Public methods are
    the concurrency boundary: callers on other threads reach the state
    through them, so "the caller locks" is not a contract the class can
    rely on.

``RPR803`` **guarded state escapes the lock region** — a guarded mutable
    container (dict/list/set/bytearray/memoryview) returned, yielded, or
    stashed outside ``self``.  The reference outlives the critical section
    that produced it, so every later access through it is unsynchronised
    no matter how disciplined the class itself is.  Returning a *copy*
    (``dict(...)``, ``list(...)``, ``sorted(...)``, ``bytes(...)``) is the
    sanctioned idiom.

How a site is classified lock-held:

* lexically inside a ``with self.<guard>:`` region (any guard the class
  created); or
* inside a *private* method whose every intra-class ``self.method()`` call
  site is itself lock-held — the one-level-and-fixpoint callee expansion
  RPR701 pioneered, formalising SeriesDB's "private helpers are documented
  as called-under-lock" convention.

Scope notes (deliberate, so the rules stay quiet on legitimate code):
``__init__``/``__new__``/``__del__``/``__repr__``/``__enter__``/``__exit__``
run before or outside sharing and are exempt; a private method with *no*
intra-class call sites is unknown territory (externally driven, possibly
dead) and its sites are not classified at all; nested functions run on a
lock context of their own and are skipped; attributes only ever touched
outside the lock are not guarded state — the rules fire on *mixed* usage,
never on classes that simply happen to own a lock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .cfg import build_cfg
from .findings import Finding
from .rules import Module, _call_name

__all__ = ["check_guarded_by"]

#: callables whose result is a guard when assigned to self.<attr> in __init__
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "Lock", "RLock",
})

#: method names on a container that mutate it in place
_MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "popleft",
})

#: constructors (and literals, handled separately) marking an attr mutable
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "OrderedDict", "collections.OrderedDict",
    "defaultdict", "collections.defaultdict", "deque", "collections.deque",
    "bytearray", "memoryview",
})

#: copy/materialise wrappers: the escaping value is a snapshot, not the state
_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                     ast.SetComp)

#: methods that run before/without the object being shared across threads
_EXEMPT_METHODS = frozenset({
    "__init__", "__new__", "__del__", "__repr__", "__enter__", "__exit__",
    "__post_init__",
})


@dataclass
class _Site:
    """One read or write of ``self.<attr>`` inside a method."""

    attr: str
    line: int
    write: bool
    held: bool      # lexically inside a `with self.<guard>:` region
    method: str
    public: bool


@dataclass
class _Escape:
    """A guarded container leaving the class via return/yield/stash."""

    attr: str
    line: int
    verb: str       # "returns" / "yields" / "stashes"
    method: str


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guard_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes ``__init__`` binds to a ``threading.Lock``/``RLock``."""
    init = next(
        (m for m in cls.body
         if isinstance(m, ast.FunctionDef) and m.name == "__init__"),
        None,
    )
    if init is None:
        return set()
    guards: set[str] = set()
    for node in ast.walk(init):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _call_name(node.value) in _LOCK_FACTORIES
        ):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    guards.add(attr)
    return guards


def _mutable_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes ``__init__`` (or any method) binds to a mutable container."""
    mutable: set[str] = set()
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef):
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_mutable = isinstance(value, _MUTABLE_LITERALS) or (
                isinstance(value, ast.Call)
                and _call_name(value) in _MUTABLE_FACTORIES
            )
            if not is_mutable:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    mutable.add(attr)
    return mutable


class _ClassScan:
    """Every access site, call site, and escape in one guarded class."""

    def __init__(self, cls: ast.ClassDef, guards: set[str]) -> None:
        self.cls = cls
        self.guards = guards
        self.sites: list[_Site] = []
        self.escapes: list[_Escape] = []
        #: callee name -> [(caller, lexically_held)] for self.m() call sites
        self.calls: dict[str, list[tuple[str, bool]]] = {}
        #: methods that acquire a guard anywhere in their body
        self.acquirers: set[str] = set()
        self.methods: set[str] = {
            m.name for m in cls.body if isinstance(m, ast.FunctionDef)
        }
        for method in cls.body:
            if isinstance(method, ast.FunctionDef):
                self._scan_method(method)

    # -- per-method walk -------------------------------------------------------

    def _is_guard_acquire(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return any(
                _self_attr(item.context_expr) in self.guards
                for item in node.items
            )
        return False

    def _scan_method(self, method: ast.FunctionDef) -> None:
        name = method.name
        public = not name.startswith("_")
        consumed: set[int] = set()  # Attribute nodes already classified

        def record(attr: str | None, node: ast.AST, *, write: bool,
                   held: bool) -> None:
            if attr is None or attr in self.guards:
                return
            consumed.add(id(node))
            self.sites.append(_Site(
                attr, getattr(node, "lineno", method.lineno), write, held,
                name, public,
            ))

        def visit(node: ast.AST, held: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not method:
                    return  # nested defs run on a lock context of their own
            if self._is_guard_acquire(node):
                held = True
                self.acquirers.add(name)
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    # self.<attr>.<mutator>(...) mutates the container.
                    attr = _self_attr(func.value)
                    if attr is not None and func.attr in _MUTATOR_METHODS:
                        record(attr, func.value, write=True, held=held)
                    # self.<guard>.acquire() counts as acquiring (RPR702
                    # already polices the shape of the acquire itself).
                    if (
                        _self_attr(func.value) in self.guards
                        and func.attr == "acquire"
                    ):
                        self.acquirers.add(name)
                    # self.method(...) call sites feed the fixpoint.
                    method_name = _self_attr(func)
                    if method_name in self.methods:
                        self.calls.setdefault(method_name, []).append(
                            (name, held)
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        record(attr, target, write=True, held=held)
                    elif isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr is not None:  # self.attr[k] = v mutates attr
                            record(attr, target.value, write=True, held=held)
                    elif isinstance(target, ast.Attribute):
                        attr = _self_attr(target.value)
                        if attr is not None:  # self.attr.field = v
                            record(attr, target.value, write=True, held=held)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is None and isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        target = target.value
                    if attr is not None:
                        record(attr, target, write=True, held=held)
            elif isinstance(node, ast.Attribute) and id(node) not in consumed:
                attr = _self_attr(node)
                if attr is not None and isinstance(node.ctx, ast.Load):
                    record(attr, node, write=False, held=held)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        visit(method, False)

    # -- held classification ---------------------------------------------------

    def held_methods(self) -> set[str]:
        """Private methods whose every intra-class call site is lock-held.

        Fixpoint: a call site is held when it is lexically inside a guard
        region *or* sits in a method already known to be held.  Public
        methods never qualify — external callers reach them unheld.
        """
        held: set[str] = set()
        changed = True
        while changed:
            changed = False
            for method in self.methods:
                if method in held or not method.startswith("_"):
                    continue
                if method.startswith("__") and method.endswith("__"):
                    continue
                sites = self.calls.get(method, [])
                if not sites:
                    continue
                # A call from an exempt method (e.g. __init__) runs before
                # the object is shared: it cannot race, so it counts held.
                if all(
                    h or caller in held or caller in _EXEMPT_METHODS
                    for caller, h in sites
                ):
                    held.add(method)
                    changed = True
        return held

    def classify(self, site: _Site, held_methods: set[str]) -> bool | None:
        """True/False = held/unheld, None = unknowable (skip the site)."""
        if site.method in _EXEMPT_METHODS:
            return None
        if site.held:
            return True
        if site.public:
            return False
        if site.method in held_methods:
            return True
        if self.calls.get(site.method):
            return False  # called at least once from an unheld context
        return None  # private, never called in-class: unknown territory


# -- RPR803: escape detection --------------------------------------------------


def _bare_guarded(expr: ast.expr | None, candidates: set[str]) -> str | None:
    """The guarded attr ``expr`` leaks bare (incl. inside a tuple), or None."""
    if expr is None:
        return None
    attr = _self_attr(expr)
    if attr in candidates:
        return attr
    if isinstance(expr, (ast.Tuple, ast.List)):
        for element in expr.elts:
            leaked = _bare_guarded(element, candidates)
            if leaked is not None:
                return leaked
    return None


def _method_escapes(
    method: ast.FunctionDef, candidates: set[str]
) -> list[_Escape]:
    """Return/yield/stash escapes of guarded containers in one method."""
    escapes: list[_Escape] = []
    aliases: dict[str, list[ast.stmt]] = {}  # local -> assignment stmts
    for node in ast.walk(method):
        if isinstance(node, (ast.Return, ast.Yield)):
            attr = _bare_guarded(node.value, candidates)
            if attr is not None:
                verb = "returns" if isinstance(node, ast.Return) else "yields"
                escapes.append(_Escape(attr, node.lineno, verb, method.name))
        elif isinstance(node, ast.Assign):
            attr = _bare_guarded(node.value, candidates)
            if attr is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    owner = target.value
                    if not (isinstance(owner, ast.Name) and owner.id == "self"):
                        escapes.append(_Escape(
                            attr, node.lineno, "stashes", method.name,
                        ))
                elif isinstance(target, ast.Subscript):
                    base = target.value
                    if isinstance(base, ast.Name):  # out[k] = self._state
                        escapes.append(_Escape(
                            attr, node.lineno, "stashes", method.name,
                        ))
                elif isinstance(target, ast.Name):
                    aliases.setdefault(target.id, []).append(node)
    if aliases:
        escapes.extend(_alias_escapes(method, aliases, candidates))
    return escapes


def _alias_escapes(
    method: ast.FunctionDef,
    aliases: dict[str, list[ast.stmt]],
    candidates: set[str],
) -> list[_Escape]:
    """CFG pass: a local aliasing guarded state that reaches a return/yield.

    ``tmp = self._state`` followed (on some path, with no rebind of ``tmp``
    in between) by ``return tmp`` leaks the container exactly like
    ``return self._state`` — the alias just hides it from the syntactic
    check above.
    """
    escapes: list[_Escape] = []
    cfg = build_cfg(method)
    for local, assigns in aliases.items():
        rebinds = {
            n.index for n in cfg.nodes
            if n.stmt is not None and n.stmt not in assigns
            and any(
                isinstance(t, ast.Name) and t.id == local
                and isinstance(t.ctx, (ast.Store, ast.Del))
                for t in ast.walk(n.stmt)
            )
        }
        for assign in assigns:
            attr = _bare_guarded(assign.value, candidates)  # type: ignore[attr-defined]
            if attr is None:
                continue
            nodes = cfg.nodes_for(assign)
            if not nodes:
                continue
            for index in cfg.reachable(nodes[0].index, avoid=rebinds):
                stmt = cfg.nodes[index].stmt
                if stmt is None:
                    continue
                for node in ast.walk(stmt):
                    if not isinstance(node, (ast.Return, ast.Yield)):
                        continue
                    leaked = node.value
                    names = [
                        n for n in ast.walk(leaked) if leaked is not None
                        and isinstance(n, ast.Name) and n.id == local
                        and isinstance(n.ctx, ast.Load)
                    ] if leaked is not None else []
                    if isinstance(leaked, (ast.Name, ast.Tuple)) and names:
                        verb = (
                            "returns" if isinstance(node, ast.Return)
                            else "yields"
                        )
                        escapes.append(_Escape(
                            attr, node.lineno,
                            f"{verb} (via alias {local!r})", method.name,
                        ))
    return escapes


# -- the rule ------------------------------------------------------------------


def check_guarded_by(module: Module) -> list[Finding]:
    """RPR801/802/803 over every lock-owning class in one module."""
    findings: list[Finding] = []
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        guards = _guard_attrs(cls)
        if not guards:
            continue
        guard = sorted(guards)[0]
        scan = _ClassScan(cls, guards)
        held_methods = scan.held_methods()
        classified = [
            (site, held)
            for site in scan.sites
            if (held := scan.classify(site, held_methods)) is not None
        ]
        guarded = {
            site.attr for site, held in classified if held
        }
        # RPR802 first: a public mutating method that never acquires.
        unguarded_methods: set[str] = set()
        for method in sorted(scan.methods):
            if (
                method.startswith("_")
                or method in _EXEMPT_METHODS
                or method in scan.acquirers
            ):
                continue
            writes = sorted({
                site.attr for site in scan.sites
                if site.method == method and site.write
                and site.attr in guarded
            })
            if not writes:
                continue
            unguarded_methods.add(method)
            line = next(
                m.lineno for m in cls.body
                if isinstance(m, ast.FunctionDef) and m.name == method
            )
            listed = ", ".join(f"self.{attr}" for attr in writes)
            findings.append(Finding(
                "RPR802", module.relpath, line,
                f"public method {cls.name}.{method} mutates guarded state "
                f"({listed}) but never acquires self.{guard}",
                f"wrap the method body in `with self.{guard}:` "
                "(the public API is the locking boundary)",
            ))
        # RPR801: a field written both under and outside the guard.
        held_writes = {
            site.attr for site, held in classified if held and site.write
        }
        for site, held in classified:
            if (
                site.write and not held and site.attr in held_writes
                and site.method not in unguarded_methods
            ):
                findings.append(Finding(
                    "RPR801", module.relpath, site.line,
                    f"{cls.name}.{site.method} writes self.{site.attr} "
                    f"without holding self.{guard}, but other sites write "
                    "it under the lock (one unguarded write is a data race)",
                    f"take `with self.{guard}:` around this write, or stop "
                    "guarding the field everywhere",
                ))
        # RPR803: guarded mutable containers escaping the lock region.
        mutable_guarded = guarded & _mutable_attrs(cls)
        if mutable_guarded:
            for method in cls.body:
                if (
                    not isinstance(method, ast.FunctionDef)
                    or method.name in _EXEMPT_METHODS
                ):
                    continue
                for escape in _method_escapes(method, mutable_guarded):
                    findings.append(Finding(
                        "RPR803", module.relpath, escape.line,
                        f"{cls.name}.{escape.method} {escape.verb} "
                        f"self.{escape.attr}, mutable state guarded by "
                        f"self.{guard}: the reference outlives the critical "
                        "section",
                        "return a copy (dict(...)/list(...)/bytes(...)) or "
                        "transfer ownership explicitly",
                    ))
    return findings
