"""A small intraprocedural control-flow graph over stdlib ``ast``.

The dataflow rules of :mod:`repro.analysis.dataflow` need path questions —
"is every acquisition *closed on all paths* to the function exit?", "can
this name be used after ``close()``?" — that a plain AST walk cannot
answer.  :func:`build_cfg` turns one function body into a statement-level
graph precise enough for those questions while staying ~200 lines:

* one :class:`CFGNode` per simple statement, plus one per compound-statement
  *header* (the ``if``/``while``/``for`` test, the ``with`` items, the
  ``try`` keyword); bodies are recursed into;
* ``return``/``raise``/``break``/``continue`` edges, with ``return`` and
  ``raise`` routed **through enclosing ``finally`` blocks** before reaching
  the synthetic exit node — so a ``close()`` in a ``finally`` counts on the
  abrupt paths too;
* every statement inside a ``try`` body gets an *exception edge* (kind
  ``"exc"``) to each of its handlers, modelling "anything here may raise";
  analyses can ignore the exception edges leaving a specific node (e.g. an
  acquisition that failed never needs releasing);
* loops get back edges; ``break`` jumps to the loop's after-node.

Deliberate approximations (documented so rule authors can rely on them):
a ``finally`` body is materialised once and serves every path through it,
so its exits over-approximate (normal continuation *plus* the abrupt
destinations that were routed through it); ``break``/``continue`` do not
thread through ``finally`` blocks; nested function/class definitions are
opaque single statements (they get their own CFGs when the caller iterates
over them).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGNode", "build_cfg"]

#: edge kinds: normal control flow vs "this statement raised"
FLOW = "flow"
EXC = "exc"


@dataclass
class CFGNode:
    """One statement (or compound-statement header) in the graph."""

    index: int
    stmt: ast.AST | None  #: ``None`` for the synthetic entry/exit nodes
    succs: list[tuple[int, str]] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """The graph: nodes, a synthetic entry (index 0) and exit node."""

    def __init__(self, nodes: list[CFGNode], exit_index: int) -> None:
        self.nodes = nodes
        self.entry_index = 0
        self.exit_index = exit_index

    def nodes_for(self, stmt: ast.AST) -> list[CFGNode]:
        """Every node whose statement is ``stmt`` (headers match once)."""
        return [n for n in self.nodes if n.stmt is stmt]

    def reachable(
        self,
        start: int,
        *,
        avoid: frozenset[int] | set[int] = frozenset(),
        skip_exc_from: frozenset[int] | set[int] = frozenset(),
    ) -> set[int]:
        """Node indices reachable from ``start`` without entering ``avoid``.

        ``start`` itself is not traversed *into* (it is the origin, even if
        listed in ``avoid``), and exception edges leaving any node in
        ``skip_exc_from`` are ignored — the idiom for "the acquisition
        statement itself raising means nothing was acquired".
        """
        seen: set[int] = set()
        stack = [start]
        while stack:
            index = stack.pop()
            for succ, kind in self.nodes[index].succs:
                if kind == EXC and index in skip_exc_from:
                    continue
                if succ in seen or succ in avoid:
                    continue
                seen.add(succ)
                stack.append(succ)
        return seen


class _Builder:
    def __init__(self) -> None:
        self.nodes: list[CFGNode] = [CFGNode(0, None)]  # synthetic entry
        # Stacks of open contexts, innermost last.
        self._loops: list[dict] = []  # {"header": idx, "breaks": [idx]}
        self._finals: list[dict] = []  # {"sources": [idx], "to_exit": bool}
        self._tries: list[dict] = []  # {"raises": [idx]}
        self._returns: list[int] = []  # nodes that exit the function

    # -- plumbing --------------------------------------------------------------

    def _new(self, stmt: ast.AST | None, preds: set[int]) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index, stmt))
        for pred in preds:
            self.nodes[pred].succs.append((index, FLOW))
        return index

    def _route_abrupt(self, index: int) -> None:
        """Send ``index`` (a return-like node) through finallies to the exit."""
        if self._finals:
            ctx = self._finals[-1]
            ctx["sources"].append(index)
            ctx["to_exit"] = True
        else:
            self._returns.append(index)

    # -- statement dispatch ----------------------------------------------------

    def seq(self, stmts: list[ast.stmt], preds: set[int]) -> set[int]:
        for stmt in stmts:
            preds = self.stmt(stmt, preds)
        return preds

    def stmt(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        if isinstance(stmt, ast.If):
            head = self._new(stmt, preds)
            body_out = self.seq(stmt.body, {head})
            else_out = self.seq(stmt.orelse, {head}) if stmt.orelse else {head}
            return body_out | else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._new(stmt, preds)
            self._loops.append({"header": head, "breaks": []})
            body_out = self.seq(stmt.body, {head})
            for out in body_out:
                self.nodes[out].succs.append((head, FLOW))
            loop = self._loops.pop()
            exits = self.seq(stmt.orelse, {head}) if stmt.orelse else {head}
            return exits | set(loop["breaks"])
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._new(stmt, preds)
            return self.seq(stmt.body, {head})
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, ast.Return):
            index = self._new(stmt, preds)
            self._route_abrupt(index)
            return set()
        if isinstance(stmt, ast.Raise):
            index = self._new(stmt, preds)
            if self._tries:
                self._tries[-1]["raises"].append(index)
            else:
                self._route_abrupt(index)
            return set()
        if isinstance(stmt, ast.Break):
            index = self._new(stmt, preds)
            if self._loops:
                self._loops[-1]["breaks"].append(index)
            return set()
        if isinstance(stmt, ast.Continue):
            index = self._new(stmt, preds)
            if self._loops:
                self.nodes[index].succs.append((self._loops[-1]["header"], FLOW))
            return set()
        # Simple statement (including nested def/class, kept opaque).
        return {self._new(stmt, preds)}

    def _try(self, stmt: ast.Try, preds: set[int]) -> set[int]:
        if stmt.finalbody:
            self._finals.append({"sources": [], "to_exit": False})
        body_start = len(self.nodes)
        if stmt.handlers:
            self._tries.append({"raises": []})
        body_out = self.seq(stmt.body, preds)
        body_nodes = list(range(body_start, len(self.nodes)))
        handler_outs: set[int] = set()
        if stmt.handlers:
            try_ctx = self._tries.pop()
            for handler in stmt.handlers:
                entry = len(self.nodes)
                handler_outs |= self.seq(handler.body, set())
                # Anything in the body (or an explicit raise) may land here.
                for src in body_nodes:
                    self.nodes[src].succs.append((entry, EXC))
                for src in try_ctx["raises"]:
                    self.nodes[src].succs.append((entry, FLOW))
        else_out = self.seq(stmt.orelse, body_out) if stmt.orelse else body_out
        merged = else_out | handler_outs
        if not stmt.finalbody:
            return merged
        ctx = self._finals.pop()
        fin_start = len(self.nodes)
        fin_out = self.seq(stmt.finalbody, merged)
        for src in ctx["sources"]:
            self.nodes[src].succs.append((fin_start, FLOW))
        if ctx["to_exit"]:
            # The finally also forwards return/raise paths out of the function.
            for out in fin_out:
                self._route_abrupt_passthrough(out)
        return fin_out

    def _route_abrupt_passthrough(self, index: int) -> None:
        if self._finals:
            ctx = self._finals[-1]
            ctx["sources"].append(index)
            ctx["to_exit"] = True
        else:
            self._returns.append(index)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The CFG of one function body (synthetic entry 0, synthetic exit last)."""
    builder = _Builder()
    live = builder.seq(func.body, {0})
    exit_index = len(builder.nodes)
    builder.nodes.append(CFGNode(exit_index, None))
    for pred in live | set(builder._returns):
        builder.nodes[pred].succs.append((exit_index, FLOW))
    return CFG(builder.nodes, exit_index)
