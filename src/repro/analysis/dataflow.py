"""Dataflow lint rules: buffer lifetime, resource release, lock order.

These rules answer questions the syntactic rules of
:mod:`repro.analysis.rules` cannot: they track *values* through a function
(assignment chains, derived views, acquired handles) and *paths* through
its body (the CFG of :mod:`repro.analysis.cfg`).  They run behind
``repro lint --dataflow`` because they parse every function twice and build
graphs — still fast (<1s on this repo) but not free.

The families:

``RPR501`` **escaping mmap view** — a ``memoryview`` derived from
    :func:`repro.codecs.container.mmap_view` (a slice, an alias of a slice)
    must not be returned or yielded on its own: the caller receives bytes
    whose backing map it cannot close, and that the owner may close under
    it.  Returning the *root* view is fine (ownership transfer: the root
    carries the map in ``.obj``), as is materialising with ``bytes(...)``
    or returning the owner alongside the view.

``RPR502`` **stashed view without owner** — storing a derived view on
    ``self`` without also storing its root/map pins file bytes to the
    object's lifetime with no way to release them.

``RPR601`` **resource not closed on all paths** — every explicit
    acquisition (``open``/``os.open``/``os.fdopen``/``mmap.mmap`` assigned
    to a local) must reach a ``close`` (or be handed off: returned, stored,
    or passed to another callable, which transfers ownership) on every CFG
    path to the function exit.  Exception edges leaving the acquisition
    statement itself are ignored — if the acquisition raised, there is
    nothing to close.

``RPR602`` **use after close** — a local used on a path after its
    ``.close()`` with no rebind in between.

``RPR701`` **lock-order inversion** — the static lock graph across every
    linted module: nested ``with`` acquisitions (and one level of
    ``self.method()`` callee expansion) produce held→acquired edges;
    any A→B edge coexisting with a B→A edge is a potential deadlock and is
    reported at both sites.  Re-entrant A→A acquisitions are ignored
    (``SeriesDB._lock`` is an RLock by design).

``RPR702`` **bare lock acquire** — ``lock.acquire()`` without a matching
    ``release()`` in a ``finally`` leaks the lock if the critical section
    raises; use ``with lock:``.

Scope notes (deliberate, so the rules stay quiet on legitimate code):
only *locals assigned in the function* are tracked — parameters and
attributes are someone else's contract; ``with open(...) as f`` is always
fine (the context manager owns the close); anything whose name does not
look like a lock (no ``"lock"`` substring) is invisible to the RPR7xx
rules.
"""

from __future__ import annotations

import ast

from .cfg import CFG, build_cfg
from .findings import Finding
from .rules import Module, _call_name

__all__ = [
    "PER_FILE_DATAFLOW_RULES",
    "check_buffer_lifetime",
    "check_resource_release",
    "check_use_after_close",
    "check_bare_acquire",
    "check_lock_order",
    "run_dataflow_rules",
]


def _functions(tree: ast.Module):
    """Yield ``(func, enclosing_class_name_or_None)`` for every function."""

    def walk(node: ast.AST, cls: str | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from walk(child, None)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)


def _single_name_target(stmt: ast.stmt) -> str | None:
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return stmt.targets[0].id
    return None


def _loads(node: ast.AST, name: str) -> list[ast.Name]:
    return [
        n for n in ast.walk(node)
        if isinstance(n, ast.Name) and n.id == name
        and isinstance(n.ctx, ast.Load)
    ]


# -- RPR501 / RPR502: buffer lifetime ------------------------------------------


class _ViewTracking:
    """Which locals hold mmap-backed views, and which are derived slices."""

    def __init__(self, func: ast.AST) -> None:
        self.maps: set[str] = set()     # locals bound to mmap.mmap(...)
        self.roots: set[str] = set()    # locals bound to mmap_view(...) etc.
        self.derived: set[str] = set()  # slices/aliases of roots or derived
        changed = True
        while changed:
            changed = False
            for stmt in ast.walk(func):
                name = _single_name_target(stmt)
                if name is None or name in self.maps | self.roots | self.derived:
                    continue
                value = stmt.value  # type: ignore[union-attr]
                if isinstance(value, ast.Call):
                    callee = _call_name(value)
                    if callee in ("mmap.mmap",):
                        self.maps.add(name)
                        changed = True
                    elif callee.split(".")[-1] == "mmap_view":
                        self.roots.add(name)
                        changed = True
                    elif callee == "memoryview" and value.args:
                        arg = value.args[0]
                        if (
                            isinstance(arg, ast.Name) and arg.id in self.maps
                        ) or (
                            isinstance(arg, ast.Call)
                            and _call_name(arg) == "mmap.mmap"
                        ):
                            self.roots.add(name)
                            changed = True
                elif isinstance(value, ast.Attribute) and value.attr == "obj":
                    if (
                        isinstance(value.value, ast.Name)
                        and value.value.id in self.roots
                    ):
                        self.maps.add(name)
                        changed = True
                elif isinstance(value, ast.Subscript):
                    if (
                        isinstance(value.value, ast.Name)
                        and value.value.id in self.roots | self.derived
                    ):
                        self.derived.add(name)
                        changed = True
                elif isinstance(value, ast.Name):
                    if value.id in self.derived:
                        self.derived.add(name)
                        changed = True
                    elif value.id in self.roots:
                        self.roots.add(name)
                        changed = True

    @property
    def owners(self) -> set[str]:
        return self.maps | self.roots

    def escaping_name(self, expr: ast.expr | None) -> str | None:
        """The derived-view name ``expr`` leaks to the caller, or None.

        ``bytes(view)`` materialises (safe); a tuple containing an owner
        alongside the view co-escapes the map (safe); the root itself is an
        ownership transfer (safe).
        """
        if expr is None:
            return None
        if isinstance(expr, ast.Name) and expr.id in self.derived:
            return expr.id
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in self.roots | self.derived
        ):
            return expr.value.id
        if isinstance(expr, (ast.Tuple, ast.List)):
            if any(
                isinstance(e, ast.Name) and e.id in self.owners
                for e in expr.elts
            ):
                return None
            for element in expr.elts:
                leaked = self.escaping_name(element)
                if leaked is not None:
                    return leaked
        return None


def check_buffer_lifetime(module: Module) -> list[Finding]:
    """RPR501/RPR502: derived mmap views must not outlive their owner."""
    findings: list[Finding] = []
    for func, _cls in _functions(module.tree):
        tracking = _ViewTracking(func)
        if not tracking.roots:
            continue
        stores_owner = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name) and t.value.id == "self"
                for t in stmt.targets
            )
            and (
                (isinstance(stmt.value, ast.Name)
                 and stmt.value.id in tracking.owners)
                or (isinstance(stmt.value, ast.Attribute)
                    and stmt.value.attr == "obj"
                    and isinstance(stmt.value.value, ast.Name)
                    and stmt.value.value.id in tracking.roots)
            )
            for stmt in ast.walk(func)
        )
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield)):
                leaked = tracking.escaping_name(node.value)
                if leaked is not None:
                    verb = "returns" if isinstance(node, ast.Return) else "yields"
                    findings.append(Finding(
                        "RPR501", module.relpath, node.lineno,
                        f"{verb} {leaked!r}, a memoryview sliced from an "
                        "mmap-backed root view, without its owning map",
                        "return bytes(view) to materialise, or return the "
                        "root view / the map alongside it",
                    ))
            elif isinstance(node, ast.Assign) and not stores_owner:
                leaked = tracking.escaping_name(node.value)
                if leaked is not None and any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name) and t.value.id == "self"
                    for t in node.targets
                ):
                    findings.append(Finding(
                        "RPR502", module.relpath, node.lineno,
                        f"stashes a view derived from {leaked!r} on self "
                        "without also stashing its root view or map",
                        "store the root view (or view.obj) on self too, "
                        "so the map can be closed",
                    ))
    return findings


# -- RPR601 / RPR602: resource release -----------------------------------------

#: callables whose result is a resource the assignee must release
_ACQUIRERS = frozenset({"open", "os.open", "os.fdopen", "mmap.mmap"})


def _stmt_releases(stmt: ast.AST, name: str) -> bool:
    """True when ``stmt`` closes ``name`` or hands its ownership away."""
    if isinstance(stmt, (ast.Return, ast.Yield)):
        if _loads(stmt, name):
            return True  # escapes to the caller
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in ("close", "release")
                and isinstance(callee.value, ast.Name)
                and callee.value.id == name
            ):
                return True
            if _call_name(node) == "os.close" and any(
                isinstance(a, ast.Name) and a.id == name for a in node.args
            ):
                return True
            # Handing the handle to another callable transfers ownership
            # (os.fdopen(fd), memoryview(mm), constructor adoption, ...).
            if any(
                isinstance(a, ast.Name) and a.id == name
                for a in list(node.args) + [kw.value for kw in node.keywords]
            ):
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and _loads(node.value, name):
                    return True  # stored on an object: that owner closes it
                if (
                    isinstance(target, ast.Name) and target.id == name
                    and node.value is not None
                    and not _is_acquisition(node)
                ):
                    return True  # rebound: tracking stops (approximation)
    return False


def _is_acquisition(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Assign)
        and isinstance(stmt.value, ast.Call)
        and _call_name(stmt.value) in _ACQUIRERS
    )


def check_resource_release(module: Module) -> list[Finding]:
    """RPR601: acquisitions must be released/handed off on all CFG paths."""
    findings: list[Finding] = []
    for func, _cls in _functions(module.tree):
        acquisitions = [
            (stmt, _single_name_target(stmt))
            for stmt in ast.walk(func)
            if _is_acquisition(stmt) and _single_name_target(stmt) is not None
        ]
        if not acquisitions:
            continue
        cfg = build_cfg(func)  # type: ignore[arg-type]
        for stmt, name in acquisitions:
            nodes = cfg.nodes_for(stmt)
            if not nodes:
                continue  # inside a nested function: analysed separately
            acq = nodes[0].index
            releases = {
                n.index for n in cfg.nodes
                if n.stmt is not None and n.index != acq
                and _stmt_releases(n.stmt, name)  # type: ignore[arg-type]
            }
            reachable = cfg.reachable(
                acq, avoid=releases, skip_exc_from={acq},
            )
            if cfg.exit_index in reachable:
                resource = _call_name(stmt.value)  # type: ignore[union-attr]
                findings.append(Finding(
                    "RPR601", module.relpath, stmt.lineno,
                    f"{name!r} = {resource}(...) is not closed on every "
                    "path to the function exit",
                    "use `with ...:`, or close it in a finally "
                    "(hand-offs — return/store/pass — count as release)",
                ))
    return findings


def check_use_after_close(module: Module) -> list[Finding]:
    """RPR602: no use of a local on a path after its ``.close()``."""
    findings: list[Finding] = []
    for func, _cls in _functions(module.tree):
        closes: list[tuple[ast.stmt, str]] = []
        for stmt in ast.walk(func):
            if not isinstance(stmt, (ast.Expr, ast.Assign)):
                continue
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "close"
                    and isinstance(node.func.value, ast.Name)
                ):
                    closes.append((stmt, node.func.value.id))
        if not closes:
            continue
        cfg = build_cfg(func)  # type: ignore[arg-type]
        for stmt, name in closes:
            nodes = cfg.nodes_for(stmt)
            if not nodes:
                continue
            rebinds = {
                n.index for n in cfg.nodes
                if n.stmt is not None and _rebinds(n.stmt, name)
            }
            for index in cfg.reachable(nodes[0].index, avoid=rebinds):
                node = cfg.nodes[index]
                if node.stmt is None or not _uses_after_close(node.stmt, name):
                    continue
                findings.append(Finding(
                    "RPR602", module.relpath, node.line,
                    f"{name!r} is used here on a path after "
                    f"{name}.close() (line {stmt.lineno})",
                    "reorder the use before close(), or rebind the name",
                ))
    return findings


def _rebinds(stmt: ast.AST, name: str) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name) and node.id == name and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            return True
    return False


def _uses_after_close(stmt: ast.AST, name: str) -> bool:
    harmless: set[int] = set()
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in ("close", "closed")
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            harmless.add(id(node.value))
        elif isinstance(node, ast.Compare):
            # `x is None` / `x is not None` guards are liveness checks.
            for side in [node.left, *node.comparators]:
                if isinstance(side, ast.Name) and side.id == name:
                    harmless.add(id(side))
    return any(id(n) not in harmless for n in _loads(stmt, name))


# -- RPR701 / RPR702: lock order -----------------------------------------------


def _lock_id(expr: ast.expr, cls: str | None, relpath: str) -> str | None:
    """A stable identity for a lock expression, or None if not lock-ish."""
    if (
        isinstance(expr, ast.Attribute)
        and "lock" in expr.attr.lower()
        and isinstance(expr.value, ast.Name)
    ):
        owner = cls if expr.value.id == "self" and cls else expr.value.id
        return f"{owner}.{expr.attr}"
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return f"{relpath}:{expr.id}"
    return None


def check_lock_order(modules: list[Module]) -> list[Finding]:
    """RPR701: A→B and B→A acquisition edges together are a deadlock risk.

    Cross-file: the lock graph spans every linted module, with one level of
    ``self.method()`` callee expansion (holding A while calling a method of
    the same class that takes B adds the A→B edge).
    """
    # (edge, relpath, line, description) — sites come back in the findings
    edges: list[tuple[tuple[str, str], str, int, str]] = []
    direct: dict[tuple[str, str], set[str]] = {}  # (cls, method) -> lock ids
    pending: list[tuple[str, str, str, str, int]] = []  # held, cls, callee, file, line

    for module in modules:
        for func, cls in _functions(module.tree):
            held_locks: list[str] = []

            def visit(node: ast.AST, *, module=module, func=func, cls=cls,
                      held=held_locks) -> None:
                pushed = 0
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        lock = _lock_id(item.context_expr, cls, module.relpath)
                        if lock is None:
                            continue
                        if cls is not None:
                            direct.setdefault((cls, func.name), set()).add(lock)
                        for outer in held:
                            if outer != lock:
                                edges.append((
                                    (outer, lock), module.relpath, node.lineno,
                                    f"acquires {lock} while holding {outer}",
                                ))
                        held.append(lock)
                        pushed += 1
                elif (
                    isinstance(node, ast.Call)
                    and held
                    and cls is not None
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                ):
                    for outer in held:
                        pending.append((
                            outer, cls, node.func.attr,
                            module.relpath, node.lineno,
                        ))
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not func:
                        return  # nested defs run on their own lock stack
                for child in ast.iter_child_nodes(node):
                    visit(child)
                del held[len(held) - pushed:len(held)]

            visit(func)

    for outer, cls, method, relpath, line in pending:
        for inner in direct.get((cls, method), ()):
            if inner != outer:
                edges.append((
                    (outer, inner), relpath, line,
                    f"calls self.{method}() (which acquires {inner}) "
                    f"while holding {outer}",
                ))

    edge_set = {edge for edge, *_ in edges}
    findings = []
    seen: set[tuple[str, int, str]] = set()
    for (outer, inner), relpath, line, description in edges:
        if (inner, outer) not in edge_set:
            continue
        key = (relpath, line, f"{outer}->{inner}")
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(
            "RPR701", relpath, line,
            f"lock-order inversion: {description}, but the opposite order "
            f"{inner} -> {outer} also exists in the lock graph",
            "pick one global acquisition order and stick to it",
        ))
    return findings


def check_bare_acquire(module: Module) -> list[Finding]:
    """RPR702: ``lock.acquire()`` without a ``release()`` in a finally."""
    findings: list[Finding] = []
    for func, cls in _functions(module.tree):
        released: set[str] = set()
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Try):
                continue
            for fin in stmt.finalbody:
                for node in ast.walk(fin):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "release"
                    ):
                        released.add(ast.unparse(node.func.value))
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                continue
            receiver = node.func.value
            if _lock_id(receiver, cls, module.relpath) is None:
                continue
            if ast.unparse(receiver) in released:
                continue
            findings.append(Finding(
                "RPR702", module.relpath, node.lineno,
                f"bare {ast.unparse(receiver)}.acquire() with no release() "
                "in a finally: the lock leaks if the critical section raises",
                "use `with lock:` (or release in a finally)",
            ))
    return findings


PER_FILE_DATAFLOW_RULES = (
    check_buffer_lifetime,
    check_resource_release,
    check_use_after_close,
    check_bare_acquire,
)


def run_dataflow_rules(module: Module) -> list[Finding]:
    """Every per-file dataflow rule over one module."""
    findings: list[Finding] = []
    for rule in PER_FILE_DATAFLOW_RULES:
        findings.extend(rule(module))
    return findings
