"""Runtime sanitizer: live mmap/lock instrumentation behind ``REPRO_SANITIZE``.

The static rules of :mod:`repro.analysis.dataflow` prove what they can see;
this module watches what actually happens.  With ``REPRO_SANITIZE=1`` in
the environment, importing :mod:`repro` calls :func:`enable`, which
monkeypatches three chokepoints:

* :func:`repro.codecs.container.mmap_view` — every map created is entered
  into the ledger (with the path and the creating stack), and removed when
  it is closed or garbage-collected.  Maps still open *and* still
  referenced at interpreter exit are the leak report.
* :meth:`repro.codecs.container.Archive._check_open` — a post-close access
  (the ``ValueError`` the archive raises in the caller's face) is also
  recorded, so a test run shows *where* use-after-close happens even when
  every caller swallows the exception.
* :meth:`repro.store.seriesdb.SeriesDB.__init__` — ``self._lock`` is
  replaced with a :class:`SanitizedLock` that maintains a per-thread stack
  of held locks and a global acquisition-order graph: acquiring B while
  holding A when some other thread ever acquired A while holding B is a
  lock-order inversion, recorded the moment it happens.

The verdict (:meth:`Ledger.report`): ``leaks`` (live unclosed maps after a
``gc.collect()``) and ``inversions`` fail a sanitized run; ``caught``
use-after-close events are informational — the archive already raised, so
the caller was told — but carry the location for debugging.  CI runs the
whole test suite under ``REPRO_SANITIZE=1`` and then asserts the global
ledger is clean.

Instrumentation is all patch-on-enable / restore-on-disable: nothing in
the production modules imports this one, so the hot paths carry zero
sanitizer cost when it is off.  Tests pass their own :class:`Ledger` to
:func:`enable` so deliberate violations don't dirty the global one.
"""

from __future__ import annotations

import atexit
import gc
import sys
import threading
import traceback
import weakref

__all__ = ["Ledger", "SanitizedLock", "enable", "disable", "active_ledger"]

_STACK_DEPTH = 6  # frames of context kept per recorded event


def _stack_summary(skip: int = 2) -> list[str]:
    """The creating call stack, innermost last, repo frames only."""
    frames = traceback.extract_stack()[:-skip]
    return [
        f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
        for frame in frames[-_STACK_DEPTH:]
    ]


class Ledger:
    """The sanitizer's account book: live maps, lock stacks, violations."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._maps: dict[int, dict] = {}  # id(weakref) -> record
        self._held = threading.local()  # per-thread stack of lock names
        self._edges: dict[tuple[str, str], list[str]] = {}  # A->B : stack
        self.inversions: list[dict] = []
        self.caught: list[dict] = []  # defended use-after-close events

    # -- mmap accounting -------------------------------------------------------

    def record_map(self, mapped, path) -> None:
        """Track a live map; it drops off the ledger when collected."""

        def _gone(ref, ledger=self):
            with ledger._mutex:
                ledger._maps.pop(id(ref), None)

        ref = weakref.ref(mapped, _gone)
        with self._mutex:
            self._maps[id(ref)] = {
                "ref": ref,
                "path": str(path),
                "stack": _stack_summary(skip=3),
            }

    def live_maps(self) -> list[dict]:
        """Maps still referenced and not closed (collects garbage first)."""
        gc.collect()
        leaks = []
        with self._mutex:
            records = list(self._maps.values())
        for record in records:
            mapped = record["ref"]()
            if mapped is not None and not mapped.closed:
                leaks.append({"path": record["path"], "stack": record["stack"]})
        return leaks

    # -- use-after-close -------------------------------------------------------

    def record_use_after_close(self, path) -> None:
        with self._mutex:
            self.caught.append({
                "path": str(path),
                "stack": _stack_summary(skip=3),
            })

    # -- lock ordering ---------------------------------------------------------

    def _stack_of(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def note_acquire(self, name: str) -> None:
        """Called with the lock *held*: update the order graph, flag cycles."""
        held = self._stack_of()
        outers = [h for h in held if h != name]  # re-entrant A->A is fine
        held.append(name)
        if not outers:
            return
        with self._mutex:
            for outer in outers:
                edge = (outer, name)
                if edge not in self._edges:
                    self._edges[edge] = _stack_summary(skip=3)
                reverse = self._edges.get((name, outer))
                if reverse is not None:
                    self.inversions.append({
                        "edge": f"{outer} -> {name}",
                        "reverse": f"{name} -> {outer}",
                        "stack": _stack_summary(skip=3),
                        "reverse_stack": reverse,
                    })

    def note_release(self, name: str) -> None:
        held = self._stack_of()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    # -- the verdict -----------------------------------------------------------

    def report(self) -> dict:
        """Everything the sanitizer saw; ``clean`` is the pass/fail bit."""
        leaks = self.live_maps()
        with self._mutex:
            inversions = list(self.inversions)
            caught = list(self.caught)
        return {
            "clean": not leaks and not inversions,
            "leaks": leaks,
            "inversions": inversions,
            "caught_use_after_close": caught,
        }

    def render(self) -> str:
        report = self.report()
        lines = []
        for leak in report["leaks"]:
            lines.append(f"LEAKED MAP {leak['path']}")
            lines.extend(f"    {frame}" for frame in leak["stack"])
        for inv in report["inversions"]:
            lines.append(
                f"LOCK-ORDER INVERSION {inv['edge']} vs {inv['reverse']}"
            )
            lines.extend(f"    {frame}" for frame in inv["stack"])
        if report["caught_use_after_close"]:
            lines.append(
                f"(defended) use-after-close x"
                f"{len(report['caught_use_after_close'])}"
            )
        if not lines:
            return "repro sanitizer: clean"
        status = "CLEAN" if report["clean"] else "VIOLATIONS"
        return "\n".join([f"repro sanitizer: {status}"] + lines)


class SanitizedLock:
    """An RLock stand-in that narrates acquire/release to a :class:`Ledger`.

    Drop-in for the ``with self._lock:`` discipline the linter enforces:
    re-entrant, context-managed, with explicit ``acquire``/``release`` for
    completeness.  Lock identity (for the order graph) is the ``name``
    given at construction, e.g. ``"SeriesDB._lock@/path/to/db"``.
    """

    def __init__(self, name: str, ledger: Ledger) -> None:
        self.name = name
        self._ledger = ledger
        self._inner = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._ledger.note_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._ledger.note_release(self.name)

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


# -- enable / disable ----------------------------------------------------------

_active: Ledger | None = None
_saved: dict[str, object] = {}
_atexit_registered = False


def active_ledger() -> Ledger | None:
    """The ledger currently receiving events, or None when disabled."""
    return _active


def enable(ledger: Ledger | None = None, *, report_at_exit: bool = False) -> Ledger:
    """Instrument mmap_view, archive close checks, and SeriesDB locks.

    Idempotent per process: re-enabling swaps the target ledger without
    double-patching.  Returns the ledger in effect.
    """
    global _active, _atexit_registered
    if _active is not None:
        _active = ledger or _active
        return _active
    _active = ledger or Ledger()

    from ..codecs import container
    from ..store import seriesdb

    _saved["mmap_view"] = container.mmap_view
    _saved["seriesdb_mmap_view"] = seriesdb.mmap_view
    _saved["check_open"] = container.Archive._check_open
    _saved["db_init"] = seriesdb.SeriesDB.__init__

    original_view = container.mmap_view

    def traced_mmap_view(path):
        view = original_view(path)
        if view is not None and _active is not None:
            _active.record_map(view.obj, path)
        return view

    original_check = container.Archive._check_open

    def traced_check_open(self):
        try:
            original_check(self)
        except ValueError:
            if _active is not None:
                _active.record_use_after_close(self.path)
            raise

    original_init = seriesdb.SeriesDB.__init__

    def traced_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        if _active is not None:
            name = f"SeriesDB._lock@{getattr(self, '_root', '?')}"
            self._lock = SanitizedLock(name, _active)

    container.mmap_view = traced_mmap_view
    # seriesdb imported the function by name; patch its reference too.
    seriesdb.mmap_view = traced_mmap_view
    container.Archive._check_open = traced_check_open
    seriesdb.SeriesDB.__init__ = traced_init

    if report_at_exit and not _atexit_registered:
        _atexit_registered = True
        atexit.register(_report_at_exit)
    return _active


def disable() -> None:
    """Restore the unpatched functions and detach the ledger."""
    global _active
    if _active is None:
        return
    from ..codecs import container
    from ..store import seriesdb

    container.mmap_view = _saved.pop("mmap_view")
    seriesdb.mmap_view = _saved.pop("seriesdb_mmap_view")
    container.Archive._check_open = _saved.pop("check_open")
    seriesdb.SeriesDB.__init__ = _saved.pop("db_init")
    _active = None


def _report_at_exit() -> None:
    ledger = _active
    if ledger is None:
        return
    print(ledger.render(), file=sys.stderr)
