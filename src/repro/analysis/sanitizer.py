"""Runtime sanitizer: mmap/lock/race instrumentation behind ``REPRO_SANITIZE``.

The static rules of :mod:`repro.analysis.dataflow` and
:mod:`repro.analysis.concurrency` prove what they can see; this module
watches what actually happens.  With ``REPRO_SANITIZE=1`` in the
environment, importing :mod:`repro` calls :func:`enable`, which
monkeypatches the chokepoints:

* :func:`repro.codecs.container.mmap_view` — every map created is entered
  into the ledger (with the path and the creating stack), and removed when
  it is closed or garbage-collected.  Maps still open *and* still
  referenced at interpreter exit are the leak report.
* :meth:`repro.codecs.container.Archive._check_open` — a post-close access
  (the ``ValueError`` the archive raises in the caller's face) is also
  recorded, so a test run shows *where* use-after-close happens even when
  every caller swallows the exception.
* :meth:`repro.store.seriesdb.SeriesDB.__init__` — ``self._lock`` is
  replaced with a :class:`SanitizedLock` that maintains a per-thread stack
  of held locks and a global acquisition-order graph: acquiring B while
  holding A when some other thread ever acquired A while holding B is a
  lock-order inversion, recorded the moment it happens.
* ``threading.Thread.start``/``join`` plus the SeriesDB state mutators
  (``_load``/``_store_for_ingest``/``flush``/``_append_wal``/``close``) —
  the **happens-before race detector**.  Every thread carries a vector
  clock, advanced by lock release/acquire (release publishes the holder's
  clock onto the lock; acquire joins it) and by fork/join edges (``start``
  snapshots the parent clock onto the child; ``join`` merges the child's
  final clock back).  Each instrumented access to a named shared variable
  (``SeriesDB@<root>:shard-cache`` / ``:manifest`` / ``:wal`` /
  ``:store:<sid>``) is compared against the variable's last write epoch
  and per-thread read epochs: a write-write or write-read pair that no
  lock or fork/join edge orders is a **data race**, recorded with both
  stack traces.  The same patch arms each DB-owned
  :class:`~repro.core.tiered.TieredStore`'s ``_guard`` hook, so direct
  store mutation participates in the same happens-before check.  Fixture
  classes can join in by calling :meth:`Ledger.note_read` /
  :meth:`Ledger.note_write` themselves.
* :meth:`repro.store.partitioned.PartitionedSeriesDB.__init__` and
  ``_assign`` — the façade's ``RLock`` becomes a :class:`SanitizedLock`
  too (façade-then-partition nesting feeds the same inversion graph), and
  every partition-map mutation notes a write on
  ``PartitionedSeriesDB@<root>:partition-map``, so unordered concurrent
  placement of new series is reported as a data race.  Group-commit WAL
  appends (``_append_wal_group``) note the same ``:wal`` domain as
  per-series appends.

The verdict (:meth:`Ledger.report`): ``leaks`` (live unclosed maps after a
``gc.collect()``), ``inversions``, and ``races`` fail a sanitized run;
``caught`` use-after-close events are informational — the archive already
raised, so the caller was told — but carry the location for debugging.
CI runs the whole test suite under ``REPRO_SANITIZE=1`` and then asserts
the global ledger is clean, and the ``race`` job replays the
schedule-explorer stress suite (:mod:`repro.analysis.schedule`) across
fixed seeds.  :class:`SanitizedLock` yields to an active schedule at each
outermost acquire/release — while holding no sanitized lock, so the
cooperative scheduler can never park a lock-holder.

Instrumentation is all patch-on-enable / restore-on-disable: nothing in
the production modules imports this one, so the hot paths carry zero
sanitizer cost when it is off.  Tests pass their own :class:`Ledger` to
:func:`enable` so deliberate violations don't dirty the global one.
"""

from __future__ import annotations

import atexit
import functools
import gc
import itertools
import sys
import threading
import traceback
import weakref

from . import schedule

__all__ = ["Ledger", "SanitizedLock", "enable", "disable", "active_ledger"]

_STACK_DEPTH = 6  # frames of context kept per recorded event


def _stack_summary(skip: int = 2) -> list[str]:
    """The creating call stack, innermost last, repo frames only."""
    frames = traceback.extract_stack()[:-skip]
    return [
        f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
        for frame in frames[-_STACK_DEPTH:]
    ]


# Stable small thread ids: ``threading.get_ident()`` values are recycled
# when threads die, which would alias a dead thread's epochs onto a new
# thread; an attribute on the Thread object never is.
_tid_lock = threading.Lock()
_tid_counter = itertools.count(1)


def _tid_of(thread: threading.Thread) -> int:
    tid = getattr(thread, "_repro_san_tid", None)
    if tid is None:
        with _tid_lock:
            tid = getattr(thread, "_repro_san_tid", None)
            if tid is None:
                tid = next(_tid_counter)
                thread._repro_san_tid = tid  # type: ignore[attr-defined]
    return tid


class Ledger:
    """The sanitizer's account book: live maps, lock stacks, violations."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._maps: dict[int, dict] = {}  # id(weakref) -> record
        self._dead_refs: list[int] = []  # collected maps, drained lazily
        self._held = threading.local()  # per-thread stack of lock names
        self._edges: dict[tuple[str, str], list[str]] = {}  # A->B : stack
        self.inversions: list[dict] = []
        self.caught: list[dict] = []  # defended use-after-close events
        # Happens-before state (all mutated under _mutex):
        self._clocks: dict[int, dict[int, int]] = {}  # tid -> vector clock
        self._lock_clocks: dict[str, dict[int, int]] = {}  # lock name -> clock
        self._vars: dict[str, dict] = {}  # var -> {"write": epoch, "reads": {}}
        self.races: list[dict] = []
        self._race_keys: set[tuple] = set()  # dedup: report each pair once

    # -- mmap accounting -------------------------------------------------------

    def record_map(self, mapped, path) -> None:
        """Track a live map; it drops off the ledger when collected."""

        def _gone(ref, dead=self._dead_refs):
            # Weakref callbacks can fire from gc at ANY allocation — even
            # while this thread already holds _mutex (note_write allocates
            # under it).  list.append is atomic under the GIL, so enqueue
            # without locking and let the next ledger call drain it.
            dead.append(id(ref))

        ref = weakref.ref(mapped, _gone)
        with self._mutex:
            self._drain_dead()
            self._maps[id(ref)] = {
                "ref": ref,
                "path": str(path),
                "stack": _stack_summary(skip=3),
            }

    def _drain_dead(self) -> None:
        """Drop collected maps (call under ``_mutex``)."""
        while self._dead_refs:
            self._maps.pop(self._dead_refs.pop(), None)

    def live_maps(self) -> list[dict]:
        """Maps still referenced and not closed (collects garbage first)."""
        gc.collect()
        leaks = []
        with self._mutex:
            self._drain_dead()
            records = list(self._maps.values())
        for record in records:
            mapped = record["ref"]()
            if mapped is not None and not mapped.closed:
                leaks.append({"path": record["path"], "stack": record["stack"]})
        return leaks

    # -- use-after-close -------------------------------------------------------

    def record_use_after_close(self, path) -> None:
        with self._mutex:
            self.caught.append({
                "path": str(path),
                "stack": _stack_summary(skip=3),
            })

    # -- lock ordering + vector clocks -----------------------------------------

    def _stack_of(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _clock(self, tid: int, thread: threading.Thread) -> dict[int, int]:
        """The thread's vector clock (call under ``_mutex``); lazily forked.

        A clock starts at ``{tid: 1}`` merged with the fork snapshot the
        parent's patched ``Thread.start`` left on the thread object — the
        fork happens-before edge.  Own components start at 1 so an access
        by a never-synchronised thread is *not* vacuously ordered before
        everyone else's empty clock entries.
        """
        clock = self._clocks.get(tid)
        if clock is None:
            clock = {tid: 1}
            snap = getattr(thread, "_repro_san_fork", None)
            if snap is not None and snap[0] is self:
                for k, v in snap[1].items():
                    if k != tid and clock.get(k, 0) < v:
                        clock[k] = v
            self._clocks[tid] = clock
        return clock

    def note_fork(self, child: threading.Thread) -> None:
        """Parent is about to ``start()`` ``child``: snapshot, then advance."""
        thread = threading.current_thread()
        tid = _tid_of(thread)
        with self._mutex:
            clock = self._clock(tid, thread)
            child._repro_san_fork = (self, dict(clock))  # type: ignore[attr-defined]
            clock[tid] = clock.get(tid, 1) + 1

    def note_join(self, child: threading.Thread) -> None:
        """``child`` was joined: its whole history happens-before us now."""
        child_tid = getattr(child, "_repro_san_tid", None)
        thread = threading.current_thread()
        tid = _tid_of(thread)
        with self._mutex:
            clock = self._clock(tid, thread)
            if child_tid is not None:
                final = self._clocks.get(child_tid)
                if final:
                    for k, v in final.items():
                        if clock.get(k, 0) < v:
                            clock[k] = v

    def note_acquire(self, name: str) -> None:
        """Called with the lock *held*: join its clock, update the order graph."""
        thread = threading.current_thread()
        tid = _tid_of(thread)
        held = self._stack_of()
        outers = [h for h in held if h != name]  # re-entrant A->A is fine
        held.append(name)
        with self._mutex:
            clock = self._clock(tid, thread)
            lock_clock = self._lock_clocks.get(name)
            if lock_clock:
                for k, v in lock_clock.items():
                    if clock.get(k, 0) < v:
                        clock[k] = v
            for outer in outers:
                edge = (outer, name)
                if edge not in self._edges:
                    self._edges[edge] = _stack_summary(skip=3)
                reverse = self._edges.get((name, outer))
                if reverse is not None:
                    self.inversions.append({
                        "edge": f"{outer} -> {name}",
                        "reverse": f"{name} -> {outer}",
                        "stack": _stack_summary(skip=3),
                        "reverse_stack": reverse,
                    })

    def note_release(self, name: str) -> None:
        """Called *before* the lock is actually released: publish our clock.

        Publishing first matters — once the underlying lock drops, another
        thread's ``note_acquire`` may read the lock clock, and it must see
        everything this thread did while holding it.
        """
        thread = threading.current_thread()
        tid = _tid_of(thread)
        with self._mutex:
            clock = self._clock(tid, thread)
            self._lock_clocks[name] = dict(clock)
            clock[tid] = clock.get(tid, 1) + 1
        held = self._stack_of()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    # -- happens-before race detection -----------------------------------------

    def _ordered(self, clock: dict[int, int], epoch: dict, tid: int) -> bool:
        """Whether ``epoch`` (a prior access) happens-before the current one."""
        return epoch["tid"] == tid or clock.get(epoch["tid"], 0) >= epoch["clock"]

    def _race(self, kind: str, var: str, prior: dict, stack: list[str],
              thread_name: str) -> None:
        key = (
            var, kind, prior["tid"],
            prior["stack"][-1] if prior["stack"] else "",
            stack[-1] if stack else "",
        )
        if key in self._race_keys:
            return
        self._race_keys.add(key)
        self.races.append({
            "var": var,
            "kind": kind,
            "thread": thread_name,
            "stack": stack,
            "prior_thread": prior["thread"],
            "prior_stack": prior["stack"],
        })

    def note_write(self, var: str) -> None:
        """An instrumented write to shared variable ``var`` by this thread."""
        thread = threading.current_thread()
        tid = _tid_of(thread)
        stack = _stack_summary(skip=2)  # keep the racing access's own frame
        with self._mutex:
            clock = self._clock(tid, thread)
            rec = self._vars.setdefault(var, {"write": None, "reads": {}})
            write = rec["write"]
            if write is not None and not self._ordered(clock, write, tid):
                self._race("write-write", var, write, stack, thread.name)
            for read in rec["reads"].values():
                if not self._ordered(clock, read, tid):
                    self._race("read-write", var, read, stack, thread.name)
            rec["write"] = {
                "tid": tid, "clock": clock.get(tid, 1),
                "thread": thread.name, "stack": stack,
            }
            rec["reads"] = {}

    def note_read(self, var: str) -> None:
        """An instrumented read of shared variable ``var`` by this thread."""
        thread = threading.current_thread()
        tid = _tid_of(thread)
        stack = _stack_summary(skip=2)  # keep the racing access's own frame
        with self._mutex:
            clock = self._clock(tid, thread)
            rec = self._vars.setdefault(var, {"write": None, "reads": {}})
            write = rec["write"]
            if write is not None and not self._ordered(clock, write, tid):
                self._race("write-read", var, write, stack, thread.name)
            rec["reads"][tid] = {
                "tid": tid, "clock": clock.get(tid, 1),
                "thread": thread.name, "stack": stack,
            }

    # -- the verdict -----------------------------------------------------------

    def report(self) -> dict:
        """Everything the sanitizer saw; ``clean`` is the pass/fail bit."""
        leaks = self.live_maps()
        with self._mutex:
            inversions = list(self.inversions)
            caught = list(self.caught)
            races = list(self.races)
        return {
            "clean": not leaks and not inversions and not races,
            "leaks": leaks,
            "inversions": inversions,
            "races": races,
            "caught_use_after_close": caught,
        }

    def render(self) -> str:
        report = self.report()
        lines = []
        for leak in report["leaks"]:
            lines.append(f"LEAKED MAP {leak['path']}")
            lines.extend(f"    {frame}" for frame in leak["stack"])
        for inv in report["inversions"]:
            lines.append(
                f"LOCK-ORDER INVERSION {inv['edge']} vs {inv['reverse']}"
            )
            lines.extend(f"    {frame}" for frame in inv["stack"])
        for race in report["races"]:
            lines.append(f"DATA RACE ({race['kind']}) on {race['var']}")
            lines.append(f"  thread {race['thread']!r} at:")
            lines.extend(f"      {frame}" for frame in race["stack"])
            lines.append(
                f"  unordered with thread {race['prior_thread']!r} at:"
            )
            lines.extend(f"      {frame}" for frame in race["prior_stack"])
        if report["caught_use_after_close"]:
            lines.append(
                f"(defended) use-after-close x"
                f"{len(report['caught_use_after_close'])}"
            )
        if not lines:
            return "repro sanitizer: clean"
        status = "CLEAN" if report["clean"] else "VIOLATIONS"
        return "\n".join([f"repro sanitizer: {status}"] + lines)


class SanitizedLock:
    """An RLock stand-in that narrates acquire/release to a :class:`Ledger`.

    Drop-in for the ``with self._lock:`` discipline the linter enforces:
    re-entrant, context-managed, with explicit ``acquire``/``release`` for
    completeness.  Lock identity (for the order graph and the lock's
    vector clock) is the ``name`` given at construction, e.g.
    ``"SeriesDB._lock@/path/to/db"``.  Each outermost acquire/release also
    offers a :func:`repro.analysis.schedule.checkpoint` — only while the
    thread holds no sanitized lock, so the cooperative scheduler can never
    park a lock-holder and starve the next task.
    """

    def __init__(self, name: str, ledger: Ledger) -> None:
        self.name = name
        self._ledger = ledger
        self._inner = threading.RLock()
        self._owner: int | None = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if not self._ledger._stack_of():
            schedule.checkpoint(f"acquire:{self.name}")
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._count += 1
            self._ledger.note_acquire(self.name)
        return acquired

    def release(self) -> None:
        # Publish the vector clock BEFORE dropping the inner lock: the
        # next acquirer must observe everything done while it was held.
        self._ledger.note_release(self.name)
        self._count -= 1
        if self._count <= 0:
            self._owner = None
        self._inner.release()
        if not self._ledger._stack_of():
            schedule.checkpoint(f"release:{self.name}")

    def held_by_current_thread(self) -> bool:
        """Whether the calling thread currently holds this lock."""
        return self._owner == threading.get_ident()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


# -- enable / disable ----------------------------------------------------------

_active: Ledger | None = None
_saved: dict[str, object] = {}
_atexit_registered = False


def active_ledger() -> Ledger | None:
    """The ledger currently receiving events, or None when disabled."""
    return _active


def _note_store_mutation(var: str) -> None:
    """The ``TieredStore._guard`` hook: a DB-owned store was mutated."""
    ledger = _active
    if ledger is not None:
        ledger.note_write(var)


def _arm_store(db, store, series_id: str) -> None:
    if _active is not None and getattr(store, "_guard", None) is None:
        store._guard = functools.partial(
            _note_store_mutation, f"SeriesDB@{db._root}:store:{series_id}"
        )


def enable(ledger: Ledger | None = None, *, report_at_exit: bool = False) -> Ledger:
    """Instrument mmap_view, archive close checks, threads, and SeriesDB.

    Idempotent per process: re-enabling swaps the target ledger without
    double-patching.  Returns the ledger in effect.
    """
    global _active, _atexit_registered
    if _active is not None:
        _active = ledger or _active
        return _active
    _active = ledger or Ledger()

    from ..codecs import container
    from ..store import partitioned, seriesdb

    _saved["mmap_view"] = container.mmap_view
    _saved["seriesdb_mmap_view"] = seriesdb.mmap_view
    _saved["check_open"] = container.Archive._check_open
    _saved["db_init"] = seriesdb.SeriesDB.__init__
    _saved["thread_start"] = threading.Thread.start
    _saved["thread_join"] = threading.Thread.join
    _saved["db_load"] = seriesdb.SeriesDB._load
    _saved["db_store_for_ingest"] = seriesdb.SeriesDB._store_for_ingest
    _saved["db_flush"] = seriesdb.SeriesDB.flush
    _saved["db_append_wal"] = seriesdb.SeriesDB._append_wal
    _saved["db_append_wal_group"] = seriesdb.SeriesDB._append_wal_group
    _saved["db_close"] = seriesdb.SeriesDB.close
    _saved["pdb_init"] = partitioned.PartitionedSeriesDB.__init__
    _saved["pdb_assign"] = partitioned.PartitionedSeriesDB._assign

    original_view = container.mmap_view

    def traced_mmap_view(path):
        view = original_view(path)
        if view is not None and _active is not None:
            _active.record_map(view.obj, path)
        return view

    original_check = container.Archive._check_open

    def traced_check_open(self):
        try:
            original_check(self)
        except ValueError:
            if _active is not None:
                _active.record_use_after_close(self.path)
            raise

    original_init = seriesdb.SeriesDB.__init__

    def traced_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        if _active is not None:
            name = f"SeriesDB._lock@{getattr(self, '_root', '?')}"
            self._lock = SanitizedLock(name, _active)

    original_start = threading.Thread.start

    def traced_start(self):
        ledger = _active
        if ledger is not None:
            ledger.note_fork(self)
        return original_start(self)

    original_join = threading.Thread.join

    def traced_join(self, timeout=None):
        original_join(self, timeout)
        ledger = _active
        if ledger is not None and not self.is_alive():
            ledger.note_join(self)

    original_load = seriesdb.SeriesDB._load

    def traced_load(self, series_id):
        ledger = _active
        if ledger is not None:
            ledger.note_write(f"SeriesDB@{self._root}:shard-cache")
        store = original_load(self, series_id)
        _arm_store(self, store, series_id)
        return store

    original_sfi = seriesdb.SeriesDB._store_for_ingest

    def traced_store_for_ingest(self, series_id):
        ledger = _active
        if ledger is not None:
            ledger.note_write(f"SeriesDB@{self._root}:shard-cache")
        store = original_sfi(self, series_id)
        _arm_store(self, store, series_id)
        return store

    original_flush = seriesdb.SeriesDB.flush

    def traced_flush(self):
        # Take the (re-entrant) DB lock around the note so the access is
        # ordered exactly like the flush it describes — noting before the
        # lock would make two correctly-locked flushes look racy.
        with self._lock:
            ledger = _active
            if ledger is not None:
                ledger.note_write(f"SeriesDB@{self._root}:manifest")
            return original_flush(self)

    original_append_wal = seriesdb.SeriesDB._append_wal

    def traced_append_wal(self, series_id, values, **kwargs):
        ledger = _active
        if ledger is not None:
            ledger.note_write(f"SeriesDB@{self._root}:wal")
        return original_append_wal(self, series_id, values, **kwargs)

    original_append_wal_group = seriesdb.SeriesDB._append_wal_group

    def traced_append_wal_group(self, batches):
        # Group commit writes one shared log, but the guarded state is the
        # same WAL domain as per-series appends — use the same label so a
        # racy mix of the two modes is still a conflict on one variable.
        ledger = _active
        if ledger is not None:
            ledger.note_write(f"SeriesDB@{self._root}:wal")
        return original_append_wal_group(self, batches)

    original_close = seriesdb.SeriesDB.close

    def traced_close(self):
        with self._lock:  # see traced_flush: note under the same ordering
            ledger = _active
            if ledger is not None:
                ledger.note_write(f"SeriesDB@{self._root}:shard-cache")
                ledger.note_write(f"SeriesDB@{self._root}:wal")
            return original_close(self)

    original_pdb_init = partitioned.PartitionedSeriesDB.__init__

    def traced_pdb_init(self, *args, **kwargs):
        original_pdb_init(self, *args, **kwargs)
        if _active is not None:
            name = f"PartitionedSeriesDB._lock@{getattr(self, '_root', '?')}"
            self._lock = SanitizedLock(name, _active)

    original_assign = partitioned.PartitionedSeriesDB._assign

    def traced_assign(self, series_id):
        ledger = _active
        if ledger is not None:
            ledger.note_write(
                f"PartitionedSeriesDB@{self._root}:partition-map"
            )
        return original_assign(self, series_id)

    container.mmap_view = traced_mmap_view
    # seriesdb imported the function by name; patch its reference too.
    seriesdb.mmap_view = traced_mmap_view
    container.Archive._check_open = traced_check_open
    seriesdb.SeriesDB.__init__ = traced_init
    threading.Thread.start = traced_start  # type: ignore[method-assign]
    threading.Thread.join = traced_join  # type: ignore[method-assign]
    seriesdb.SeriesDB._load = traced_load
    seriesdb.SeriesDB._store_for_ingest = traced_store_for_ingest
    seriesdb.SeriesDB.flush = traced_flush
    seriesdb.SeriesDB._append_wal = traced_append_wal
    seriesdb.SeriesDB._append_wal_group = traced_append_wal_group
    seriesdb.SeriesDB.close = traced_close
    partitioned.PartitionedSeriesDB.__init__ = traced_pdb_init
    partitioned.PartitionedSeriesDB._assign = traced_assign

    if report_at_exit and not _atexit_registered:
        _atexit_registered = True
        atexit.register(_report_at_exit)
    return _active


def disable() -> None:
    """Restore the unpatched functions and detach the ledger."""
    global _active
    if _active is None:
        return
    from ..codecs import container
    from ..store import partitioned, seriesdb

    container.mmap_view = _saved.pop("mmap_view")
    seriesdb.mmap_view = _saved.pop("seriesdb_mmap_view")
    container.Archive._check_open = _saved.pop("check_open")
    seriesdb.SeriesDB.__init__ = _saved.pop("db_init")
    threading.Thread.start = _saved.pop("thread_start")  # type: ignore[method-assign]
    threading.Thread.join = _saved.pop("thread_join")  # type: ignore[method-assign]
    seriesdb.SeriesDB._load = _saved.pop("db_load")
    seriesdb.SeriesDB._store_for_ingest = _saved.pop("db_store_for_ingest")
    seriesdb.SeriesDB.flush = _saved.pop("db_flush")
    seriesdb.SeriesDB._append_wal = _saved.pop("db_append_wal")
    seriesdb.SeriesDB._append_wal_group = _saved.pop("db_append_wal_group")
    seriesdb.SeriesDB.close = _saved.pop("db_close")
    partitioned.PartitionedSeriesDB.__init__ = _saved.pop("pdb_init")
    partitioned.PartitionedSeriesDB._assign = _saved.pop("pdb_assign")
    _active = None


def _report_at_exit() -> None:
    ledger = _active
    if ledger is None:
        return
    print(ledger.render(), file=sys.stderr)
