"""Deterministic schedule explorer: seeded, replayable thread interleavings.

A race that shows up once a week under free-running threads is useless as a
CI signal.  This module turns concurrency tests into *deterministic* ones:
a :class:`Scheduler` owns a set of tasks (plain callables), runs each on a
real ``threading.Thread``, and serialises them cooperatively — exactly one
task runs at any moment, and control changes hands only at **checkpoints**.
Which task runs next is drawn from ``random.Random(seed)``, so an
interleaving is a pure function of ``(tasks, seed)``: the same seed replays
the same schedule byte-for-byte, and ``K`` seeds explore ``K`` different
interleavings (:func:`explore`).

Checkpoints come from two sources:

* explicit :func:`checkpoint` calls placed in the task body — a no-op on
  any thread the scheduler does not own, so instrumented helpers can be
  shared with normal tests;
* the sanitizer's :class:`~repro.analysis.sanitizer.SanitizedLock`, which
  (when ``REPRO_SANITIZE`` is on) checkpoints before each outermost
  ``acquire`` and after each outermost ``release``.  Together with the
  vector-clock race detector this is the payoff: the scheduler drives the
  threads through many lock-level interleavings, and the ledger reports
  any pair of accesses the locks failed to order.

Deadlock discipline (why this cannot hang): a task only ever *pauses* at a
checkpoint, and the lock-driven checkpoints fire only while the thread
holds **no** sanitized lock.  Hence every lock a resumed task may block on
is either free or held by the single running task, which runs until it
releases.  Explicit checkpoints must follow the same rule: never call
:func:`checkpoint` while holding a lock another task acquires.  A task
that blocks anyway (or runs away) trips the per-step timeout and fails the
run loudly, naming the stuck task, instead of hanging CI.

The trace is data: ``run()`` returns ``[[step, task, label], ...]`` —
JSON-serialisable, so tests assert byte-identical replays with
``json.dumps(trace)``.
"""

from __future__ import annotations

import random
import threading
from typing import Callable

__all__ = ["Scheduler", "checkpoint", "explore"]

#: attribute set on threads the scheduler owns: (scheduler, task)
_TASK_ATTR = "_repro_sched_task"


def checkpoint(label: str = "") -> None:
    """Yield control to the scheduler (no-op on non-scheduled threads).

    Task bodies (and the sanitizer's lock hooks) call this at the points
    where an interleaving may switch.  Never call it while holding a lock
    that another scheduled task acquires — the scheduler serialises tasks,
    so a paused lock-holder would starve whoever blocks on that lock (the
    run fails via the step timeout rather than hanging).
    """
    bound = getattr(threading.current_thread(), _TASK_ATTR, None)
    if bound is None:
        return
    scheduler, task = bound
    scheduler._yield(task, label)


class _Task:
    def __init__(self, name: str, fn: Callable[[], object]) -> None:
        self.name = name
        self.fn = fn
        self.gate = threading.Semaphore(0)  # released to let the task run
        self.thread: threading.Thread | None = None
        self.finished = False
        self.last_label = "<start>"
        self.error: BaseException | None = None


class Scheduler:
    """Run registered tasks under one seeded, serialised interleaving."""

    def __init__(self, seed: int = 0, *, step_timeout: float = 30.0) -> None:
        self.seed = int(seed)
        self.step_timeout = step_timeout
        self._tasks: list[_Task] = []
        self._done = threading.Semaphore(0)  # a task handed control back
        self._running = False

    def add(self, name: str, fn: Callable[[], object]) -> "Scheduler":
        """Register a task; registration order is part of the schedule key."""
        if self._running:
            raise RuntimeError("cannot add tasks to a running scheduler")
        if any(t.name == name for t in self._tasks):
            raise ValueError(f"duplicate task name {name!r}")
        self._tasks.append(_Task(name, fn))
        return self

    # -- the worker side -------------------------------------------------------

    def _body(self, task: _Task) -> None:
        setattr(threading.current_thread(), _TASK_ATTR, (self, task))
        task.gate.acquire()  # wait to be scheduled the first time
        try:
            task.fn()
        except BaseException as exc:  # reported by run(), not swallowed
            task.error = exc
        finally:
            task.finished = True
            task.last_label = "<exit>"
            self._done.release()

    def _yield(self, task: _Task, label: str) -> None:
        """The checkpoint protocol: hand the token back, wait for our turn."""
        if not self._running:
            return
        task.last_label = label
        self._done.release()
        task.gate.acquire()

    # -- the scheduler side ----------------------------------------------------

    def run(self) -> list[list]:
        """Execute one full interleaving; returns the trace.

        The trace records, per step, which task ran and the label of the
        checkpoint it stopped at (``<exit>`` when it finished).  Identical
        ``(tasks, seed)`` produce identical traces — the reproducibility
        contract the race suite is built on.
        """
        if not self._tasks:
            return []
        rng = random.Random(self.seed)
        self._running = True
        for task in self._tasks:
            task.thread = threading.Thread(
                target=self._body, args=(task,),
                name=f"sched-{task.name}", daemon=True,
            )
            task.thread.start()
        trace: list[list] = []
        step = 0
        try:
            while True:
                runnable = [t for t in self._tasks if not t.finished]
                if not runnable:
                    break
                task = rng.choice(runnable)
                task.gate.release()  # run until its next checkpoint
                if not self._done.acquire(timeout=self.step_timeout):
                    raise RuntimeError(
                        f"schedule stuck at step {step}: task {task.name!r} "
                        f"did not reach a checkpoint within "
                        f"{self.step_timeout}s (a paused task may be "
                        "holding a lock it checkpointed under)"
                    )
                trace.append([step, task.name, task.last_label])
                step += 1
        finally:
            self._running = False
            # Unblock anything still gated so threads can be joined.
            for task in self._tasks:
                task.gate.release()
            for task in self._tasks:
                if task.thread is not None:
                    task.thread.join(timeout=self.step_timeout)
        for task in self._tasks:
            if task.error is not None:
                raise task.error
        return trace


def explore(
    make_tasks: Callable[[Scheduler], None],
    *,
    seeds=(0, 1, 2),
    step_timeout: float = 30.0,
) -> dict[int, list[list]]:
    """Run one interleaving per seed; returns ``{seed: trace}``.

    ``make_tasks`` receives a fresh :class:`Scheduler` per seed and must
    register the tasks (building fresh fixtures each time — state must not
    leak between seeds, or the traces stop being functions of the seed).
    """
    traces: dict[int, list[list]] = {}
    for seed in seeds:
        scheduler = Scheduler(int(seed), step_timeout=step_timeout)
        make_tasks(scheduler)
        traces[int(seed)] = scheduler.run()
    return traces
