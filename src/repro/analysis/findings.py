"""Lint findings and the committed baseline that grandfathers old debt.

A :class:`Finding` is one rule violation: rule id, file, line, message, and
a one-line fix hint.  Findings are deliberately *location-fuzzy* in the
baseline: the committed baseline file records, per ``rule:file`` key, how
many violations existed when the baseline was written — not their line
numbers, which drift with every edit.  A lint run then fails only when a
key's count *exceeds* its baselined allowance: new violations fail CI, old
debt doesn't, and deleting a violation shrinks the allowance the next time
the baseline is regenerated (``repro lint --update-baseline``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Finding", "Baseline", "apply_baseline"]

BASELINE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    rule: str  #: rule id, e.g. "RPR201"
    file: str  #: path relative to the lint root (posix separators)
    line: int  #: 1-based line number
    message: str  #: what is wrong, one line
    hint: str = ""  #: how to fix it, one line
    #: set by apply_baseline: True when grandfathered by the baseline file
    baselined: bool = field(default=False, compare=False)

    @property
    def key(self) -> str:
        """The baseline bucket this finding counts against."""
        return f"{self.rule}:{self.file}"

    def render(self) -> str:
        mark = " [baselined]" if self.baselined else ""
        text = f"{self.file}:{self.line}: {self.rule} {self.message}{mark}"
        if self.hint and not self.baselined:
            text += f"\n    hint: {self.hint}"
        return text


class Baseline:
    """The committed debt ledger: ``rule:file`` -> allowed violation count."""

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file; a missing file means an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{path}: unreadable lint baseline: {exc}") from exc
        if not isinstance(data, dict) or "findings" not in data:
            raise ValueError(f"{path}: not a lint baseline file")
        counts = data["findings"]
        if not isinstance(counts, dict) or not all(
            isinstance(v, int) and v >= 0 for v in counts.values()
        ):
            raise ValueError(f"{path}: corrupt lint baseline counts")
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.key] = counts.get(finding.key, 0) + 1
        return cls(counts)

    def save(self, path) -> None:
        """Write the baseline, atomically (it gates CI, same as a manifest)."""
        from ..codecs.container import write_atomic

        blob = json.dumps(
            {"version": BASELINE_VERSION, "findings": dict(sorted(self.counts.items()))},
            indent=2,
        ).encode("utf-8")
        write_atomic(path, blob + b"\n")


def apply_baseline(findings: list[Finding], baseline: Baseline) -> list[Finding]:
    """Mark grandfathered findings; returns the findings with flags set.

    Within each ``rule:file`` bucket the *first* ``allowance`` findings (in
    line order) are marked baselined — which ones is arbitrary but stable,
    and all that matters downstream is the count of non-baselined ones.
    """
    used: dict[str, int] = {}
    out: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.file, f.line, f.rule)):
        allowance = baseline.counts.get(finding.key, 0)
        taken = used.get(finding.key, 0)
        if taken < allowance:
            used[finding.key] = taken + 1
            finding = Finding(
                rule=finding.rule,
                file=finding.file,
                line=finding.line,
                message=finding.message,
                hint=finding.hint,
                baselined=True,
            )
        out.append(finding)
    return out
