"""The lint engine: collect sources, run every rule, apply the baseline.

``run_lint`` is the library surface (the CLI and CI call it; tests point it
at fixture trees).  It parses every target file once, feeds the per-file
rules of :mod:`repro.analysis.rules` and the cross-file rules of
:mod:`repro.analysis.protocol`, and returns findings sorted by location.
``lint_paths`` resolves what to analyse: given nothing it lints the
installed ``repro`` package sources — so ``repro lint`` works from any
checkout or install without configuration.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path

from .findings import Baseline, Finding, apply_baseline
from .protocol import check_protocol_conformance, check_registry_specs
from .rules import Module, run_per_file_rules

__all__ = ["default_root", "lint_paths", "run_lint"]


def default_root() -> Path:
    """The source tree ``repro lint`` analyses by default: this package."""
    return Path(__file__).resolve().parent.parent


def lint_paths(paths: list | None = None) -> tuple[Path, list[Path]]:
    """Resolve CLI arguments to ``(root, files)``.

    No arguments: the installed ``repro`` package.  Directories expand to
    every ``*.py`` beneath them; explicit files pass through.  The root
    (findings are reported relative to it) is the common parent.
    """
    if not paths:
        root = default_root()
        return root.parent, sorted(root.rglob("*.py"))
    resolved = [Path(p).resolve() for p in paths]
    files: list[Path] = []
    for path in resolved:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    roots = [p if p.is_dir() else p.parent for p in resolved]
    common = os.path.commonprefix([r.parts for r in roots])
    root = Path(*common) if common else Path.cwd()
    return root, files


def _parse(root: Path, files: list[Path]) -> tuple[list[Module], list[Finding]]:
    modules: list[Module] = []
    findings: list[Finding] = []
    for path in files:
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            source = path.read_text("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(
                "RPR000", relpath, 0, f"unreadable source file: {exc}",
                "fix the file encoding or permissions",
            ))
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings.append(Finding(
                "RPR000", relpath, exc.lineno or 0,
                f"syntax error: {exc.msg}", "fix the syntax error",
            ))
            continue
        modules.append(Module(relpath=relpath, tree=tree))
    return modules, findings


def run_lint(
    paths: list | None = None,
    *,
    check_registry: bool = True,
    baseline: Baseline | None = None,
    dataflow: bool = False,
) -> list[Finding]:
    """Lint ``paths`` (default: the repro package) and return all findings.

    ``check_registry`` gates the RPR002 live-registry cross-check (tests
    linting fixture trees turn it off — fixtures register nothing).
    ``dataflow`` additionally runs the CFG-based RPR5xx/6xx/7xx rules of
    :mod:`repro.analysis.dataflow` (buffer lifetime, resource release,
    lock order).  When a ``baseline`` is given, grandfathered findings come
    back flagged ``baselined``; the caller decides whether those fail the
    run.
    """
    root, files = lint_paths(paths)
    modules, findings = _parse(root, files)
    for module in modules:
        findings.extend(run_per_file_rules(module))
    findings.extend(check_protocol_conformance(modules))
    if check_registry:
        findings.extend(check_registry_specs(modules))
    if dataflow:
        from .concurrency import check_guarded_by
        from .dataflow import check_lock_order, run_dataflow_rules

        for module in modules:
            findings.extend(run_dataflow_rules(module))
            findings.extend(check_guarded_by(module))
        findings.extend(check_lock_order(modules))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    if baseline is not None:
        findings = apply_baseline(findings, baseline)
    return findings
