"""Cross-file codec-protocol conformance (rules RPR001 / RPR002).

The system-wide invariant behind the whole repo: *every* compressed object,
whatever codec produced it, answers the full :class:`Compressed` surface —
``size_bits``/``decompress``/``access`` (the abstract core the container,
store, CLI, and benchmarks drive), with ``to_bytes``/``from_bytes``/
``compression_ratio`` inherited from the base — and every lossy object
additionally answers ``reconstruct``/``num_segments`` plus parses back via
``from_payload``.  PR 1-5 enforced this by review; these rules enforce it
structurally:

* **RPR001** builds a class graph from the parsed ASTs (no imports), finds
  every class that descends from ``Compressed``/``LossyCompressed`` by
  name, and reports any concrete subclass with a required method
  unimplemented anywhere along its visible ancestry.  A class that itself
  declares new ``@abstractmethod``\\ s is an abstract intermediate and is
  skipped.

* **RPR002** cross-checks the *live* :class:`repro.codecs.registry.CodecSpec`
  table at lint time: every ``lossy=True`` codec must carry a native
  payload loader (the values fallback cannot reproduce an approximation)
  and a required ``eps`` param, and every factory must expose
  ``compress``.  Findings are anchored at the ``register_codec(...)`` call
  site located in the ASTs.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field

from .findings import Finding
from .rules import Module, RULE_CATALOGUE, _call_name

__all__ = ["check_protocol_conformance", "check_registry_specs"]

#: the abstract core every concrete Compressed subclass must implement
REQUIRED_METHODS = frozenset({"size_bits", "decompress", "access"})
#: the extras a concrete LossyCompressed subclass must add
REQUIRED_LOSSY_METHODS = frozenset({"reconstruct", "num_segments"})
#: the concrete surface the roots provide (flagged only if the roots vanish)
ROOT_PROVIDED = frozenset({
    "to_bytes", "from_bytes", "compression_ratio", "size_bytes",
    "decompress_range",
})

_ROOT = "Compressed"
_LOSSY_ROOT = "LossyCompressed"


@dataclass
class _ClassInfo:
    name: str
    relpath: str
    lineno: int
    bases: tuple[str, ...]
    concrete: set[str] = field(default_factory=set)
    abstract: set[str] = field(default_factory=set)


def _base_name(node: ast.expr) -> str | None:
    """Last dotted segment of a base-class expression ('base.Compressed')."""
    while isinstance(node, ast.Subscript):  # Generic[...] bases
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_abstract_decorator(node: ast.expr) -> bool:
    name = node.attr if isinstance(node, ast.Attribute) else (
        node.id if isinstance(node, ast.Name) else ""
    )
    return name in ("abstractmethod", "abstractproperty")


def _collect_classes(modules: list[Module]) -> dict[str, _ClassInfo]:
    """Class name -> info, across all modules (first definition wins)."""
    classes: dict[str, _ClassInfo] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name in classes:
                continue
            info = _ClassInfo(
                name=node.name,
                relpath=module.relpath,
                lineno=node.lineno,
                bases=tuple(
                    b for b in (_base_name(base) for base in node.bases) if b
                ),
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if any(_is_abstract_decorator(d) for d in item.decorator_list):
                        info.abstract.add(item.name)
                    else:
                        info.concrete.add(item.name)
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            info.concrete.add(target.id)
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    info.concrete.add(item.target.id)
            classes[node.name] = info
    return classes


def _ancestry(name: str, classes: dict[str, _ClassInfo]) -> list[_ClassInfo]:
    """The class plus every AST-visible ancestor, MRO-ish depth first."""
    seen: list[_ClassInfo] = []
    names: set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop(0)
        if current in names or current not in classes:
            continue
        names.add(current)
        info = classes[current]
        seen.append(info)
        stack.extend(info.bases)
    return seen


def check_protocol_conformance(modules: list[Module]) -> list[Finding]:
    """RPR001 over the whole analyzed file set."""
    classes = _collect_classes(modules)
    if _ROOT not in classes:
        return []  # not the repro codebase (e.g. a test fixture without base)
    findings: list[Finding] = []
    for info in classes.values():
        if info.name in (_ROOT, _LOSSY_ROOT):
            continue
        chain = _ancestry(info.name, classes)
        chain_names = {c.name for c in chain}
        if _ROOT not in chain_names:
            continue
        if info.abstract:
            continue  # an explicitly abstract intermediate
        required = set(REQUIRED_METHODS)
        if _LOSSY_ROOT in chain_names:
            required |= REQUIRED_LOSSY_METHODS
        concrete: set[str] = set()
        for ancestor in chain:
            concrete |= ancestor.concrete
        missing = sorted(required - concrete)
        if missing:
            findings.append(Finding(
                "RPR001", info.relpath, info.lineno,
                f"class {info.name} is a concrete Compressed subclass but "
                f"never implements: {', '.join(missing)}",
                RULE_CATALOGUE["RPR001"][1],
            ))
    return findings


def _registration_sites(modules: list[Module]) -> dict[str, tuple[str, int]]:
    """codec id -> (file, line) of its ``register_codec(...)`` call."""
    sites: dict[str, tuple[str, int]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and _call_name(node).split(".")[-1] == "register_codec"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                sites.setdefault(
                    node.args[0].value, (module.relpath, node.lineno)
                )
    return sites


def check_registry_specs(modules: list[Module]) -> list[Finding]:
    """RPR002: the live CodecSpec table vs the codec contract."""
    from ..codecs.registry import available_codecs, codec_spec

    sites = _registration_sites(modules)
    findings: list[Finding] = []

    def site(codec_id: str) -> tuple[str, int]:
        return sites.get(codec_id, ("<registry>", 0))

    for codec_id in available_codecs():
        spec = codec_spec(codec_id)
        file, line = site(codec_id)
        if spec.lossy and spec.load_native is None:
            findings.append(Finding(
                "RPR002", file, line,
                f"lossy codec {codec_id!r} registered without a native "
                "payload loader: the values fallback cannot reproduce an "
                "approximation",
                "pass load_native=... to register_codec",
            ))
        if spec.lossy and "eps" not in spec.required_params:
            findings.append(Finding(
                "RPR002", file, line,
                f"lossy codec {codec_id!r} does not require an explicit "
                "eps param: an error bound is a contract, never a default",
                "add required_params=('eps',) to register_codec",
            ))
        factory = spec.factory
        target = factory if inspect.isclass(factory) else None
        if target is not None and not hasattr(target, "compress"):
            findings.append(Finding(
                "RPR002", file, line,
                f"codec {codec_id!r} factory {target.__name__} has no "
                "compress() method",
                "factories must build objects exposing compress(values)",
            ))
    return findings
