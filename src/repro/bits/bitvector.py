"""Bitvectors with constant-time rank and sampled select.

This is the classic two-level rank directory (Jacobson [49], Clark [50] in the
paper's references): absolute popcounts every 512-bit superblock and relative
counts every 64-bit word give ``rank1`` in O(1); ``select1``/``select0`` use
position sampling plus a bounded scan.

The paper uses this structure in two places:

* the alternative O(1)-time representation of the fragment-start array ``S``
  (a length-``n`` bitvector with a one per fragment start, §III-C), and
* inside the Elias-Fano encoding and the wavelet tree.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .io import BitReader, BitWriter

__all__ = ["BitVector"]

_WORDS_PER_SUPER = 8  # 512-bit superblocks
_SELECT_SAMPLE = 512  # one sampled position every this many ones/zeros


def _popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-word popcount of a uint64 array."""
    return np.bitwise_count(words).astype(np.uint32)


class BitVector:
    """A static bitvector supporting ``rank`` and ``select`` queries.

    Parameters
    ----------
    bits:
        Either an iterable of 0/1 values, or a ``(words, length)`` pair from a
        :class:`~repro.bits.io.BitWriter`.
    """

    def __init__(self, bits: Iterable[int] | tuple[np.ndarray, int]) -> None:
        if isinstance(bits, tuple):
            words, length = bits
            words = np.asarray(words, dtype=np.uint64)
            needed = (length + 63) // 64
            if len(words) < needed:
                words = np.concatenate(
                    [words, np.zeros(needed - len(words), dtype=np.uint64)]
                )
            self._words = words[:needed].copy() if needed else np.zeros(0, np.uint64)
        else:
            writer = BitWriter()
            length = 0
            for b in bits:
                writer.write(1 if b else 0, 1)
                length += 1
            self._words = writer.getbuffer()[: (length + 63) // 64]
        # Zero any bits past `length` so popcounts are exact.
        tail = length % 64
        if tail and len(self._words):
            self._words[-1] &= np.uint64((1 << tail) - 1)
        self.length = length
        self._reader = BitReader(self._words, length)
        self._build_rank()
        self._build_select()

    # -- construction ------------------------------------------------------

    def _build_rank(self) -> None:
        counts = _popcount_words(self._words)
        n_words = len(self._words)
        n_super = (n_words + _WORDS_PER_SUPER - 1) // _WORDS_PER_SUPER
        self._super = np.zeros(n_super + 1, dtype=np.uint64)
        self._word_rel = np.zeros(n_words, dtype=np.uint32)
        running = 0
        for s in range(n_super):
            self._super[s] = running
            rel = 0
            base = s * _WORDS_PER_SUPER
            for w in range(base, min(base + _WORDS_PER_SUPER, n_words)):
                self._word_rel[w] = rel
                rel += int(counts[w])
            running += rel
        self._super[n_super] = running
        self.count_ones = running
        self._word_ints = self._words.tolist()

    def _build_select(self) -> None:
        # Sample the position of every SELECT_SAMPLE-th one (and zero).
        ones_pos = []
        zeros_pos = []
        seen1 = seen0 = 0
        for w, word in enumerate(self._word_ints):
            base = w * 64
            limit = min(64, self.length - base)
            for b in range(limit):
                if (word >> b) & 1:
                    if seen1 % _SELECT_SAMPLE == 0:
                        ones_pos.append(base + b)
                    seen1 += 1
                else:
                    if seen0 % _SELECT_SAMPLE == 0:
                        zeros_pos.append(base + b)
                    seen0 += 1
        self._sample1 = np.array(ones_pos, dtype=np.int64)
        self._sample0 = np.array(zeros_pos, dtype=np.int64)

    # -- queries -----------------------------------------------------------

    @property
    def words(self) -> np.ndarray:
        """The underlying ``uint64`` word buffer (for serialisation).

        Rebuilding via ``BitVector((words, length))`` reproduces this vector
        exactly, rank directory and select samples included.
        """
        return self._words

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self.length:
            raise IndexError(i)
        return (self._word_ints[i >> 6] >> (i & 63)) & 1

    def rank1(self, i: int) -> int:
        """Number of ones in positions ``[0, i)``; ``i`` may equal length."""
        if i <= 0:
            return 0
        if i >= self.length:
            return self.count_ones
        w, b = divmod(i, 64)
        if w == len(self._word_ints):
            return self.count_ones
        acc = int(self._super[w // _WORDS_PER_SUPER]) + int(self._word_rel[w])
        if b:
            acc += ((self._word_ints[w] & ((1 << b) - 1))).bit_count()
        return acc

    def rank0(self, i: int) -> int:
        """Number of zeros in positions ``[0, i)``."""
        i = min(max(i, 0), self.length)
        return i - self.rank1(i)

    def select1(self, k: int) -> int:
        """Position of the ``k``-th one (0-based).  O(1) expected."""
        if not 0 <= k < self.count_ones:
            raise IndexError(f"select1({k}) with {self.count_ones} ones")
        start = int(self._sample1[k // _SELECT_SAMPLE])
        w = start >> 6
        # Skip ones before `start` inside its word.
        need = k - self.rank1(start)
        word = self._word_ints[w] >> (start & 63)
        pos = start
        while True:
            ones = word.bit_count()
            if need < ones:
                # The answer is inside `word`.
                for _ in range(need):
                    word &= word - 1
                return pos + ((word & -word).bit_length() - 1)
            need -= ones
            w += 1
            pos = w << 6
            word = self._word_ints[w]

    def select0(self, k: int) -> int:
        """Position of the ``k``-th zero (0-based)."""
        total0 = self.length - self.count_ones
        if not 0 <= k < total0:
            raise IndexError(f"select0({k}) with {total0} zeros")
        start = int(self._sample0[k // _SELECT_SAMPLE])
        w = start >> 6
        need = k - self.rank0(start)
        mask = (1 << 64) - 1
        word = (~self._word_ints[w] & mask) >> (start & 63)
        pos = start
        while True:
            zeros = word.bit_count()
            if need < zeros:
                for _ in range(need):
                    word &= word - 1
                return pos + ((word & -word).bit_length() - 1)
            need -= zeros
            w += 1
            pos = w << 6
            word = ~self._word_ints[w] & mask

    def predecessor1(self, i: int) -> int:
        """Largest position ``p <= i`` with a one bit, or -1 if none."""
        r = self.rank1(min(i, self.length - 1) + 1)
        if r == 0:
            return -1
        return self.select1(r - 1)

    def to_numpy(self) -> np.ndarray:
        """Decode to a 0/1 ``uint8`` vector (vectorised)."""
        if self.length == 0:
            return np.zeros(0, dtype=np.uint8)
        bits = np.unpackbits(
            self._words.view(np.uint8), bitorder="little"
        )
        return bits[: self.length]

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Decode bits ``[start, stop)`` into a 0/1 ``uint8`` vector."""
        if not 0 <= start <= stop <= self.length:
            raise IndexError((start, stop))
        if start == stop:
            return np.zeros(0, dtype=np.uint8)
        w0, w1 = start >> 6, (stop - 1) >> 6
        bits = np.unpackbits(
            self._words[w0 : w1 + 1].view(np.uint8), bitorder="little"
        )
        off = start - (w0 << 6)
        return bits[off : off + (stop - start)]

    def size_bits(self) -> int:
        """Space occupancy of a tightly packed layout.

        The in-memory Python object trades space for simplicity (uint32
        relative counts, int64 samples); the accounted size models the
        standard succinct layout instead — a rank directory at 25% of the
        payload (sdsl's ``rank_support_v``) and 32-bit select samples —
        because that is what the compression-ratio comparison against the
        paper's sdsl/sux-based implementation should charge.
        """
        payload = len(self._words) * 64
        rank_directory = payload // 4
        samples = (len(self._sample1) + len(self._sample0)) * 32
        return payload + rank_directory + samples
