"""Succinct data structures and bit-level I/O (the paper's sdsl/sux substrate)."""

from .bitvector import BitVector
from .codes import (
    decode_varint,
    encode_varint,
    read_delta,
    read_gamma,
    write_delta,
    write_gamma,
    zigzag_decode,
    zigzag_encode,
)
from .eliasfano import EliasFano
from .io import BitReader, BitWriter
from .packed import PackedArray, min_width
from .wavelet import WaveletTree

__all__ = [
    "BitReader",
    "BitWriter",
    "BitVector",
    "EliasFano",
    "PackedArray",
    "WaveletTree",
    "min_width",
    "zigzag_encode",
    "zigzag_decode",
    "write_gamma",
    "read_gamma",
    "write_delta",
    "read_delta",
    "encode_varint",
    "decode_varint",
]
