"""Fixed-width packed integer arrays.

The paper stores every auxiliary array (``B``, ``K`` when uniform, the
parameter arrays ``P``) in "cells whose bit size is just enough to contain the
largest value stored in them" (§III-C).  :class:`PackedArray` is that cell
array: ``m`` unsigned integers of exactly ``width`` bits each, with O(1)
random access.

A vectorised bulk decoder (:meth:`PackedArray.to_numpy`) is provided because
full decompression (Algorithm 2) touches every correction and would otherwise
be bottlenecked by per-element Python calls.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from .io import BitReader, BitWriter

__all__ = ["PackedArray", "min_width"]


def min_width(max_value: int) -> int:
    """Smallest bit width able to store ``max_value`` (0 -> 0 bits)."""
    if max_value < 0:
        raise ValueError("packed arrays store non-negative integers")
    return int(max_value).bit_length()


class PackedArray(Sequence[int]):
    """An immutable sequence of ``width``-bit unsigned integers."""

    __slots__ = ("_reader", "_width", "_length")

    def __init__(self, values: Iterable[int], width: int | None = None) -> None:
        if isinstance(values, np.ndarray) and values.dtype.kind in "iu":
            if width is None:
                width = min_width(int(values.max()) if len(values) else 0)
            if 0 <= width <= 64:
                self._init_packed(values, width)
                return
            values = values.tolist()
        values = list(values)
        if width is None:
            width = min_width(max(values, default=0))
        writer = BitWriter()
        for v in values:
            if v < 0 or (width < 64 and v >> width):
                raise ValueError(f"value {v} does not fit in {width} bits")
            writer.write(v, width)
        self._reader = BitReader(writer.getbuffer(), writer.bit_length)
        self._width = width
        self._length = len(values)

    def _init_packed(self, values: np.ndarray, width: int) -> None:
        """Compress-side fast path: vectorised packing of an integer array.

        Produces the exact word buffer the per-element ``BitWriter`` loop
        would, so serialised layouts do not depend on which path packed
        them; the loop remains for non-array inputs and out-of-range
        widths.
        """
        from ..kernels.bitpack import pack_bits  # deferred: import cycle

        unsigned = values.astype(np.uint64)
        bad = np.zeros(len(values), dtype=bool)
        if values.dtype.kind == "i":
            bad |= values < 0
        if width < 64 and len(values):
            bad |= (unsigned >> np.uint64(width)) != 0
        if bad.any():
            v = int(values[int(np.argmax(bad))])
            raise ValueError(f"value {v} does not fit in {width} bits")
        words = pack_bits(unsigned, width)
        self._reader = BitReader(words, len(values) * width)
        self._width = width
        self._length = len(values)

    @classmethod
    def from_words(cls, words: np.ndarray, width: int, length: int) -> "PackedArray":
        """Rebuild an array directly from its packed word buffer.

        This is the deserialisation fast path: ``words`` is the buffer a
        previous array exposed through ``_reader.words`` (e.g. read back from
        a native codec frame), adopted without the per-element
        :class:`~repro.bits.io.BitWriter` loop of ``__init__``.  Bits past
        ``length * width`` must be zero, as the writer guarantees.
        """
        if width < 0 or width > 64:
            raise ValueError(f"width must be in [0, 64], got {width}")
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        words = np.asarray(words, dtype=np.uint64)
        if len(words) * 64 < length * width:
            raise ValueError(
                f"packed buffer holds {len(words) * 64} bits, "
                f"{length}x{width}-bit elements need {length * width}"
            )
        self = object.__new__(cls)
        self._reader = BitReader(words, length * width)
        self._width = width
        self._length = length
        return self

    @property
    def width(self) -> int:
        """Bits per element."""
        return self._width

    @property
    def words(self) -> np.ndarray:
        """The underlying packed word buffer (for serialisation)."""
        return self._reader.words

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._length))]
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._reader.peek_at(index * self._width, self._width)

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self._reader.peek_at(i * self._width, self._width)

    def to_numpy(self) -> np.ndarray:
        """Decode the whole array into a ``uint64`` numpy vector (vectorised)."""
        return unpack_bits(self._reader.words, self._width, self._length)

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Decode elements ``[start, stop)`` into a ``uint64`` vector."""
        if not 0 <= start <= stop <= self._length:
            raise IndexError((start, stop))
        return unpack_bits(
            self._reader.words, self._width, stop - start, start * self._width
        )

    def size_bits(self) -> int:
        """Space occupancy: payload plus the width byte."""
        return self._length * self._width + 8


def unpack_bits(
    words: np.ndarray, width: int, count: int, bit_offset: int = 0
) -> np.ndarray:
    """Vectorised extraction of ``count`` contiguous ``width``-bit fields.

    Fields are LSB-first starting at absolute ``bit_offset``, matching
    :class:`~repro.bits.io.BitWriter` layout.
    """
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    starts = bit_offset + np.arange(count, dtype=np.int64) * width
    return unpack_fields(words, starts, width)


def unpack_fields(words: np.ndarray, starts: np.ndarray, width: int) -> np.ndarray:
    """Vectorised extraction of ``width``-bit fields at arbitrary bit offsets."""
    count = len(starts)
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    if width > 57:
        # Cross-word fields wider than 57 bits cannot be fetched with a single
        # unaligned 8-byte load; fall back to a scalar loop (rare: only P
        # arrays could be this wide, and those are small).
        reader = BitReader(words, len(words) * 64)
        return np.array(
            [reader.peek_at(int(s), width) for s in starts], dtype=np.uint64
        )
    data = words.tobytes()
    # Ensure an 8-byte load at the last field's byte offset stays in bounds.
    data += b"\x00" * 8
    raw = np.frombuffer(data, dtype=np.uint8)
    byte_off = starts >> 3
    bit_off = (starts & 7).astype(np.uint64)
    # Gather 8 bytes per field as a little-endian u64, then shift and mask.
    gathered = np.lib.stride_tricks.sliding_window_view(raw, 8)[byte_off]
    as_u64 = gathered.view(np.uint64).reshape(count)
    mask = np.uint64((1 << width) - 1)
    return (as_u64 >> bit_off) & mask
