"""Classic integer codes used by the baseline compressors.

Zigzag maps signed residuals to unsigned (Gorilla/DAC/LeCo), varint is the
byte-oriented code in TSXor and PyLZ, and Elias gamma/delta are used for
self-delimiting headers.
"""

from __future__ import annotations

from .io import BitReader, BitWriter

__all__ = [
    "zigzag_encode",
    "zigzag_decode",
    "write_gamma",
    "read_gamma",
    "write_delta",
    "read_delta",
    "encode_varint",
    "decode_varint",
]


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one (0, -1, 1, -2, ... -> 0, 1, 2, 3)."""
    return (value << 1) ^ (value >> 63) if value >= -(1 << 62) else (-value << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def write_gamma(writer: BitWriter, value: int) -> None:
    """Elias gamma code for ``value >= 1``."""
    if value < 1:
        raise ValueError("gamma codes positive integers")
    width = value.bit_length()
    writer.write_unary(width - 1)
    if width > 1:
        writer.write(value & ((1 << (width - 1)) - 1), width - 1)


def read_gamma(reader: BitReader) -> int:
    """Decode an Elias gamma code."""
    width = reader.read_unary() + 1
    if width == 1:
        return 1
    return (1 << (width - 1)) | reader.read(width - 1)


def write_delta(writer: BitWriter, value: int) -> None:
    """Elias delta code for ``value >= 1``."""
    if value < 1:
        raise ValueError("delta codes positive integers")
    width = value.bit_length()
    write_gamma(writer, width)
    if width > 1:
        writer.write(value & ((1 << (width - 1)) - 1), width - 1)


def read_delta(reader: BitReader) -> int:
    """Decode an Elias delta code."""
    width = read_gamma(reader)
    if width == 1:
        return 1
    return (1 << (width - 1)) | reader.read(width - 1)


def encode_varint(value: int, out: bytearray) -> None:
    """LEB128 encoding of a non-negative integer into ``out``."""
    if value < 0:
        raise ValueError("varint codes non-negative integers")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes | bytearray, pos: int) -> tuple[int, int]:
    """Decode a LEB128 varint at ``pos``; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
