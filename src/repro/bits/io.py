"""Bit-level I/O over numpy ``uint64`` words.

These are the lowest-level building blocks of the repository: every succinct
structure (packed arrays, bitvectors, Elias-Fano, wavelet trees) and every
bit-oriented baseline compressor (Gorilla, Chimp, TSXor headers, DAC) sits on
top of :class:`BitWriter` and :class:`BitReader`.

The layout convention is LSB-first within a word: bit ``i`` of the stream is
bit ``i % 64`` of word ``i // 64``.  Multi-bit fields are stored with their
least significant bit first, which makes ``write(v, w)`` followed by
``read(w)`` an exact round-trip for any ``0 <= v < 2**w``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader"]

_WORD = 64
_MASKS = [(1 << w) - 1 for w in range(_WORD + 1)]


class BitWriter:
    """An append-only bit buffer.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write(5, 3)
    >>> w.write(1, 1)
    >>> r = BitReader(w.getbuffer(), w.bit_length)
    >>> r.read(3), r.read(1)
    (5, 1)
    """

    def __init__(self) -> None:
        self._words: list[int] = [0]
        self._bit = 0  # bits used in the last word

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return (len(self._words) - 1) * _WORD + self._bit

    def write(self, value: int, width: int) -> None:
        """Append ``width`` low bits of non-negative ``value``."""
        if width == 0:
            return
        if width < 0 or width > _WORD:
            raise ValueError(f"width must be in [0, 64], got {width}")
        value &= _MASKS[width]
        free = _WORD - self._bit
        if width <= free:
            self._words[-1] |= value << self._bit
            self._bit += width
            if self._bit == _WORD:
                self._words.append(0)
                self._bit = 0
        else:
            self._words[-1] |= (value << self._bit) & _MASKS[_WORD]
            self._words.append(value >> free)
            self._bit = width - free

    def write_unary(self, value: int) -> None:
        """Append ``value`` zero bits followed by a one bit."""
        if value < 0:
            raise ValueError("unary values must be non-negative")
        while value >= _WORD:
            self.write(0, _WORD)
            value -= _WORD
        self.write(1 << value, value + 1)

    def write_bool(self, flag: bool) -> None:
        """Append a single bit."""
        self.write(1 if flag else 0, 1)

    def write_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit``."""
        word = _MASKS[_WORD] if bit else 0
        while count >= _WORD:
            self.write(word, _WORD)
            count -= _WORD
        if count:
            self.write(word & _MASKS[count], count)

    def extend(self, other: "BitWriter") -> None:
        """Append the contents of another writer, bit by word."""
        reader = BitReader(other.getbuffer(), other.bit_length)
        remaining = other.bit_length
        while remaining >= _WORD:
            self.write(reader.read(_WORD), _WORD)
            remaining -= _WORD
        if remaining:
            self.write(reader.read(remaining), remaining)

    def getbuffer(self) -> np.ndarray:
        """Return the underlying words as a ``uint64`` array (copy)."""
        return np.array(self._words, dtype=np.uint64)

    def tobytes(self) -> bytes:
        """Serialise to bytes (little-endian words)."""
        return self.getbuffer().tobytes()


class BitReader:
    """Sequential + random-access reader over a ``uint64`` word buffer."""

    def __init__(self, words: np.ndarray, bit_length: int) -> None:
        if words.dtype != np.uint64:
            words = words.astype(np.uint64)
        self._words = words
        self._ints = words.tolist()  # python ints: faster single-bit math
        self.bit_length = bit_length
        self.pos = 0

    @classmethod
    def frombytes(cls, data: bytes, bit_length: int | None = None) -> "BitReader":
        """Build a reader from a bytes object produced by ``tobytes``."""
        pad = (-len(data)) % 8
        if pad:
            data = data + b"\x00" * pad
        words = np.frombuffer(data, dtype=np.uint64)
        if bit_length is None:
            bit_length = 8 * len(data)
        return cls(words.copy(), bit_length)

    def seek(self, bit: int) -> None:
        """Move the cursor to absolute bit offset ``bit``."""
        if bit < 0 or bit > self.bit_length:
            raise ValueError(f"seek out of range: {bit}")
        self.pos = bit

    def read(self, width: int) -> int:
        """Read ``width`` bits at the cursor and advance."""
        value = self.peek_at(self.pos, width)
        self.pos += width
        return value

    def read_bool(self) -> bool:
        """Read a single bit as a boolean."""
        return bool(self.read(1))

    def read_unary(self) -> int:
        """Read a unary code (count of zeros before the next one bit)."""
        count = 0
        word_idx, bit_idx = divmod(self.pos, _WORD)
        while True:
            if word_idx >= len(self._ints):
                raise EOFError("unary code ran past end of stream")
            chunk = self._ints[word_idx] >> bit_idx
            if chunk:
                tz = (chunk & -chunk).bit_length() - 1
                count += tz
                self.pos = word_idx * _WORD + bit_idx + tz + 1
                return count
            count += _WORD - bit_idx
            word_idx += 1
            bit_idx = 0

    def peek_at(self, bit: int, width: int) -> int:
        """Read ``width`` bits at absolute offset ``bit`` without moving."""
        if width == 0:
            return 0
        if width < 0 or width > _WORD:
            raise ValueError(f"width must be in [0, 64], got {width}")
        if bit + width > self.bit_length:
            raise EOFError(
                f"read past end: bit={bit} width={width} length={self.bit_length}"
            )
        word_idx, bit_idx = divmod(bit, _WORD)
        value = self._ints[word_idx] >> bit_idx
        got = _WORD - bit_idx
        if got < width:
            value |= self._ints[word_idx + 1] << got
        return value & _MASKS[width]

    def bit_at(self, bit: int) -> int:
        """Return the single bit at absolute offset ``bit``."""
        word_idx, bit_idx = divmod(bit, _WORD)
        return (self._ints[word_idx] >> bit_idx) & 1

    @property
    def words(self) -> np.ndarray:
        """The underlying word buffer."""
        return self._words
