"""Elias-Fano encoding of monotone integer sequences.

NeaTS stores the fragment-start array ``S`` and the cumulative correction
offsets ``O`` with Elias-Fano (paper §III-C): ``m`` non-decreasing integers
bounded by ``u`` take ``m * (2 + ceil(log2(u/m)))`` bits and support

* ``access(i)`` in O(1) (a ``select1`` on the high bits), and
* ``rank(x)`` — the number of elements ``<= x`` — in
  O(min(log m, log(u/m))) via a ``select0`` jump plus a bounded scan,
  which is exactly the operation Algorithm 3 uses to find the fragment
  covering a queried position.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .bitvector import BitVector
from .io import BitWriter
from .packed import PackedArray

__all__ = ["EliasFano"]


class EliasFano(Sequence[int]):
    """Compressed storage of a non-decreasing sequence of integers."""

    def __init__(self, values: Sequence[int], universe: int | None = None) -> None:
        values = list(values)
        if any(b < a for a, b in zip(values, values[1:])):
            raise ValueError("Elias-Fano requires a non-decreasing sequence")
        if values and values[0] < 0:
            raise ValueError("Elias-Fano stores non-negative integers")
        self._m = len(values)
        if universe is None:
            universe = (values[-1] + 1) if values else 1
        if values and universe <= values[-1]:
            raise ValueError("universe must exceed the maximum value")
        self._u = universe
        m = max(self._m, 1)
        self._low_bits = max(0, (universe // m).bit_length() - 1)
        low_mask = (1 << self._low_bits) - 1
        self._low = PackedArray(
            (v & low_mask for v in values), width=self._low_bits
        )
        writer = BitWriter()
        prev_high = 0
        for v in values:
            high = v >> self._low_bits
            writer.write_run(0, high - prev_high)
            writer.write(1, 1)
            prev_high = high
        # Trailing zeros so that select0 can always find a bucket boundary.
        writer.write_run(0, (universe >> self._low_bits) + 1 - prev_high)
        self._high = BitVector((writer.getbuffer(), writer.bit_length))

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._m

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._m))]
        if index < 0:
            index += self._m
        if not 0 <= index < self._m:
            raise IndexError(index)
        high = self._high.select1(index) - index
        return (high << self._low_bits) | self._low[index]

    # -- queries ---------------------------------------------------------------

    @property
    def universe(self) -> int:
        """The exclusive upper bound on stored values."""
        return self._u

    def rank(self, x: int) -> int:
        """Number of stored elements ``<= x``."""
        if self._m == 0 or x < 0:
            return 0
        if x >= self._u:
            return self._m
        hx = x >> self._low_bits
        # Elements with high part < hx all precede position `lo`.
        if hx == 0:
            lo = 0
        else:
            # select0(hx - 1) is the end of bucket hx-1 in the high bits.
            pos = self._high.select0(hx - 1)
            lo = self._high.rank1(pos)
        # Elements with high part <= hx end at position `hi`.
        pos = self._high.select0(hx)
        hi = self._high.rank1(pos)
        # Scan the (short) bucket for the predecessor among equal-high values.
        count = lo
        low_x = x & ((1 << self._low_bits) - 1)
        for i in range(lo, hi):
            if self._low_bits == 0 or self._low[i] <= low_x:
                count = i + 1
            else:
                break
        return count

    def predecessor(self, x: int) -> int:
        """Largest stored value ``<= x``; raises if none exists."""
        r = self.rank(x)
        if r == 0:
            raise ValueError(f"no element <= {x}")
        return self[r - 1]

    def successor(self, x: int) -> int:
        """Smallest stored value ``>= x``; raises if none exists."""
        r = self.rank(x - 1)
        if r >= self._m:
            raise ValueError(f"no element >= {x}")
        return self[r]

    def to_list(self) -> list[int]:
        """Decode the full sequence."""
        if self._m == 0:
            return []
        lows = self._low.to_numpy().astype(np.int64)
        highs = np.zeros(self._m, dtype=np.int64)
        idx = 0
        high = 0
        bits = self._high.to_numpy()
        for b in bits:
            if b:
                highs[idx] = high
                idx += 1
                if idx == self._m:
                    break
            else:
                high += 1
        return ((highs << self._low_bits) | lows).tolist()

    def size_bits(self) -> int:
        """Space occupancy of low and high parts (with rank directories)."""
        return self._low.size_bits() + self._high.size_bits() + 64
