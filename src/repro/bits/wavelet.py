"""Balanced wavelet tree over a small alphabet.

The paper represents the per-fragment function-kind array ``K`` as a wavelet
tree (Grossi-Gupta-Vitter [48]) so that ``K.rank_f(i)`` — the number of
occurrences of kind ``f`` in ``K[1, i]`` — runs in O(log |F|) time, which is
how random access locates a fragment's parameters inside the per-kind
parameter array ``P_f`` (Algorithm 3, line 4).
"""

from __future__ import annotations

from collections.abc import Sequence

from .bitvector import BitVector

__all__ = ["WaveletTree"]


class WaveletTree(Sequence[int]):
    """Static sequence over ``{0, ..., sigma - 1}`` with access and rank."""

    def __init__(self, symbols: Sequence[int], sigma: int | None = None) -> None:
        symbols = list(symbols)
        if sigma is None:
            sigma = max(symbols, default=0) + 1
        if any(not 0 <= s < sigma for s in symbols):
            raise ValueError("symbol out of alphabet range")
        self._sigma = max(sigma, 1)
        self._n = len(symbols)
        self._bits_per_symbol = max(1, (self._sigma - 1).bit_length())
        # Level-order array of (bitvector, span) nodes; nodes are addressed by
        # (level, code-prefix) and laid out in a dict for sparse alphabets.
        self._nodes: dict[tuple[int, int], BitVector] = {}
        self._build(symbols, level=0, prefix=0)

    def _build(self, symbols: list[int], level: int, prefix: int) -> None:
        if level == self._bits_per_symbol or not symbols:
            return
        shift = self._bits_per_symbol - level - 1
        bits = [(s >> shift) & 1 for s in symbols]
        self._nodes[(level, prefix)] = BitVector(bits)
        left = [s for s, b in zip(symbols, bits) if not b]
        right = [s for s, b in zip(symbols, bits) if b]
        self._build(left, level + 1, prefix << 1)
        self._build(right, level + 1, (prefix << 1) | 1)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet size."""
        return self._sigma

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._n))]
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(index)
        symbol = 0
        prefix = 0
        i = index
        for level in range(self._bits_per_symbol):
            node = self._nodes.get((level, prefix))
            if node is None:
                break
            bit = node[i]
            symbol = (symbol << 1) | bit
            if bit:
                i = node.rank1(i)
            else:
                i = i - node.rank1(i)
            prefix = (prefix << 1) | bit
        else:
            return symbol
        return symbol << (self._bits_per_symbol - level)

    # -- rank ------------------------------------------------------------------

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in positions ``[0, i)``."""
        if not 0 <= symbol < self._sigma:
            raise ValueError(f"symbol {symbol} out of range")
        i = min(max(i, 0), self._n)
        prefix = 0
        for level in range(self._bits_per_symbol):
            node = self._nodes.get((level, prefix))
            if node is None:
                return 0
            shift = self._bits_per_symbol - level - 1
            bit = (symbol >> shift) & 1
            if bit:
                i = node.rank1(i)
            else:
                i = i - node.rank1(i)
            prefix = (prefix << 1) | bit
            if i == 0:
                return 0
        return i

    def count(self, symbol: int) -> int:
        """Total occurrences of ``symbol``."""
        return self.rank(symbol, self._n)

    def to_list(self) -> list[int]:
        """Decode the full sequence."""
        return [self[i] for i in range(self._n)]

    def size_bits(self) -> int:
        """Total space of all node bitvectors."""
        return sum(node.size_bits() for node in self._nodes.values()) + 64
