"""JIT-compiled XOR/TSXor decoders (the optional ``numba`` backend).

Importing this module requires ``numba``; the dispatchers in
:mod:`repro.kernels.xor` / :mod:`repro.kernels.tsxor` only import it after
:func:`repro.kernels.numba_available` confirmed it can load.  Each decoder
is a direct single-pass port of the scalar reference in
:mod:`repro.baselines` — same control flow, same corrupt-stream errors —
compiled over the raw word/byte buffers.  Shift counts are kept as
``np.uint64`` throughout: mixing ``uint64`` with signed operands would
promote to float64 under numpy semantics and silently corrupt the bits.
"""

from __future__ import annotations

import numba
import numpy as np

__all__ = ["decode_xor", "decode_tsxor"]

_MASKS = np.zeros(65, dtype=np.uint64)
for _w in range(64):
    _MASKS[_w] = np.uint64((1 << _w) - 1)
_MASKS[64] = np.uint64((1 << 64) - 1)

# Chimp's quantised leading-zero table (see repro.baselines.chimp).
_LZ_ROUND = np.array([0, 8, 12, 16, 18, 20, 22, 24], dtype=np.int64)

_ZERO = np.uint64(0)


@numba.njit(cache=False, inline="always")
def _peek(words, pos, width):  # pragma: no cover - exercised via numba only
    """``width`` bits at absolute bit offset ``pos`` (LSB-first layout)."""
    if width == 0:
        return _ZERO
    w = pos >> 6
    b = pos & 63
    v = words[w] >> np.uint64(b)
    got = 64 - b
    if got < width:
        v |= words[w + 1] << np.uint64(got)
    return v & _MASKS[width]


@numba.njit(cache=False)
def _gorilla(words, count):  # pragma: no cover - exercised via numba only
    out = np.empty(count, np.uint64)
    prev = words[0]
    out[0] = prev
    pos = 64
    prev_lz = 0
    prev_len = 0
    for i in range(1, count):
        ctl = int(_peek(words, pos, 2))
        if ctl & 1 == 0:
            pos += 1
            out[i] = prev
            continue
        if ctl & 2 != 0:
            pos += 2
            hdr = int(_peek(words, pos, 11))
            prev_lz = hdr & 31
            prev_len = ((hdr >> 5) & 63) + 1
            pos += 11
        else:
            pos += 2
        bits = _peek(words, pos, prev_len)
        pos += prev_len
        shift = 64 - prev_lz - prev_len
        if shift < 0:
            raise ValueError("corrupt XOR stream: window wider than 64 bits")
        if shift < 64:
            prev = prev ^ (bits << np.uint64(shift))
        out[i] = prev
    return out


@numba.njit(cache=False)
def _chimp(words, count):  # pragma: no cover - exercised via numba only
    out = np.empty(count, np.uint64)
    prev = words[0]
    out[0] = prev
    pos = 64
    prev_lz = -1
    for i in range(1, count):
        ctl = int(_peek(words, pos, 2))
        pos += 2
        if ctl == 0:  # stream bits (0,0): repeat
            prev_lz = -1
        elif ctl == 2:  # stream bits (0,1): many trailing zeros
            hdr = int(_peek(words, pos, 9))
            pos += 9
            lz = _LZ_ROUND[hdr & 7]
            center = (hdr >> 3) & 63
            bits = _peek(words, pos, center)
            pos += center
            shift = 64 - lz - center
            if shift < 64:
                prev = prev ^ (bits << np.uint64(shift))
            prev_lz = -1
        elif ctl == 1:  # stream bits (1,0): same leading-zero count
            if prev_lz < 0:
                raise ValueError("corrupt Chimp stream: window flag before window")
            width = 64 - prev_lz
            prev = prev ^ _peek(words, pos, width)
            pos += width
        else:  # stream bits (1,1): new leading-zero count
            prev_lz = _LZ_ROUND[int(_peek(words, pos, 3))]
            pos += 3
            width = 64 - prev_lz
            prev = prev ^ _peek(words, pos, width)
            pos += width
        out[i] = prev
    return out


@numba.njit(cache=False)
def _chimp128(words, count):  # pragma: no cover - exercised via numba only
    out = np.empty(count, np.uint64)
    out[0] = words[0]
    pos = 64
    prev_lz = -1
    for i in range(1, count):
        ctl = int(_peek(words, pos, 2))
        pos += 2
        if ctl == 0:  # exact window match
            ref = int(_peek(words, pos, 7))
            pos += 7
            out[i] = out[i - 1 - ref]
            prev_lz = -1
        elif ctl == 2:  # window match with centre bits
            ref = int(_peek(words, pos, 7))
            pos += 7
            lz = _LZ_ROUND[int(_peek(words, pos, 3))]
            pos += 3
            center = int(_peek(words, pos, 6))
            pos += 6
            bits = _peek(words, pos, center)
            pos += center
            shift = 64 - lz - center
            xor = _ZERO
            if shift < 64:
                xor = bits << np.uint64(shift)
            out[i] = out[i - 1 - ref] ^ xor
            prev_lz = -1
        elif ctl == 1:  # previous value, same leading zeros
            if prev_lz < 0:
                raise ValueError("corrupt Chimp stream: window flag before window")
            width = 64 - prev_lz
            out[i] = out[i - 1] ^ _peek(words, pos, width)
            pos += width
        else:  # previous value, new leading zeros
            prev_lz = _LZ_ROUND[int(_peek(words, pos, 3))]
            pos += 3
            width = 64 - prev_lz
            out[i] = out[i - 1] ^ _peek(words, pos, width)
            pos += width
    return out


@numba.njit(cache=False)
def _tsxor(data, count):  # pragma: no cover - exercised via numba only
    out = np.empty(count, np.uint64)
    pos = 0
    for i in range(count):
        hdr = int(data[pos])
        pos += 1
        if hdr == 0xFF:  # raw 8-byte value
            v = _ZERO
            for k in range(8):
                v |= np.uint64(data[pos + k]) << np.uint64(8 * k)
            pos += 8
            out[i] = v
        elif hdr == 0x7F:  # XOR against a window reference
            age = int(data[pos])
            ol = int(data[pos + 1])
            pos += 2
            first = ol >> 4
            length = (ol & 0x0F) + 1
            x = _ZERO
            for k in range(length):
                x |= np.uint64(data[pos + k]) << np.uint64(8 * k)
            pos += length
            out[i] = out[i - 1 - age] ^ (x << np.uint64(8 * first))
        else:  # exact window match
            out[i] = out[i - 1 - hdr]
    return out


def decode_xor(family: str, words: np.ndarray, count: int) -> np.ndarray:
    """Decode one XOR-family block with the compiled decoders."""
    if count <= 0:
        return np.zeros(0, dtype=np.uint64)
    # One spare zero word keeps 2-bit control peeks near the end in bounds.
    padded = np.zeros(len(words) + 1, dtype=np.uint64)
    padded[:-1] = words
    if family == "gorilla":
        return _gorilla(padded, count)
    if family == "chimp":
        return _chimp(padded, count)
    return _chimp128(padded, count)


def decode_tsxor(data: np.ndarray, count: int) -> np.ndarray:
    """Decode one TSXor byte stream (``data`` already zero-padded)."""
    return _tsxor(data, count)
