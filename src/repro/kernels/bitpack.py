"""Bit-packing kernels: vectorised fixed-width pack and unpack.

The unpack side (:func:`unpack_bits` / :func:`unpack_fields`) is the
bit-offset-aware bulk extractor shared by every fixed-width consumer —
``PackedArray``/``BitVector`` slices, DAC/LeCo/ALP range decoding, NeaTS
corrections, and the XOR block kernels.  It lives in
:mod:`repro.bits.packed` (next to the structures whose layout it decodes)
and is re-exported here so kernel users have one import point.

The pack side is the compress-time counterpart: :func:`pack_bits` lays
``n`` ``width``-bit fields into a ``uint64`` word buffer with two
vectorised scatters instead of a per-element
:class:`~repro.bits.io.BitWriter` loop, producing a buffer byte-identical
to the writer's (including the trailing spare word, so serialised layouts
do not depend on the backend that packed them).
"""

from __future__ import annotations

import numpy as np

from ..bits.packed import unpack_bits, unpack_fields

__all__ = ["FieldGather", "pack_bits", "unpack_bits", "unpack_fields"]


class FieldGather:
    """Repeated unaligned field extraction over one word buffer.

    :func:`unpack_fields` copies the buffer to bytes on every call; the
    batch block decoders gather dozens of width groups (plus split halves
    of 64-bit fields) from the *same* stream, so this helper builds the
    padded byte window once and amortises it across calls.
    """

    __slots__ = ("_win",)

    def __init__(self, words: np.ndarray) -> None:
        data = np.ascontiguousarray(words, dtype=np.uint64).tobytes()
        raw = np.frombuffer(data + b"\x00" * 16, dtype=np.uint8)
        self._win = np.lib.stride_tricks.sliding_window_view(raw, 8)

    def __call__(self, starts: np.ndarray, width: int) -> np.ndarray:
        """``width``-bit fields at absolute bit offsets ``starts``."""
        count = len(starts)
        if count == 0 or width == 0:
            return np.zeros(count, dtype=np.uint64)
        if width > 57:
            # Too wide for one unaligned 8-byte load: two vectorised halves.
            lo = self(starts, 32)
            hi = self(starts + 32, width - 32)
            return lo | (hi << np.uint64(32))
        gathered = self._win[starts >> 3].view(np.uint64).reshape(count)
        off = (np.asarray(starts) & 7).astype(np.uint64)
        return (gathered >> off) & np.uint64((1 << width) - 1)


def pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack ``values`` as contiguous LSB-first ``width``-bit fields.

    ``values`` must be ``uint64`` with every element below ``2**width``
    (callers validate; out-of-range bits would corrupt neighbouring
    fields).  Returns the exact word buffer ``BitWriter`` would produce
    for the same sequence of ``write(v, width)`` calls: ``total_bits // 64
    + 1`` words, bits past the payload zero.
    """
    if width < 0 or width > 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint64)
    n = len(values)
    total = n * width
    words = np.zeros(total // 64 + 1, dtype=np.uint64)
    if width == 0 or n == 0:
        return words
    starts = np.arange(n, dtype=np.uint64) * np.uint64(width)
    idx = (starts >> np.uint64(6)).astype(np.int64)
    off = starts & np.uint64(63)
    # Low part: shifting uint64 left is modular, exactly the in-word bits.
    np.bitwise_or.at(words, idx, values << off)
    spill = off.astype(np.int64) + width > 64
    if spill.any():
        hi = values[spill] >> (np.uint64(64) - off[spill])
        np.bitwise_or.at(words, idx[spill] + 1, hi)
    return words
