"""Batched piecewise-function evaluation.

Full decompression of a NeaTS/LeaTS/PLA/AA representation evaluates one
fitted function per fragment.  The scalar path loops over fragments,
building a fresh ``np.arange`` and paying the numpy dispatch overhead per
fragment — painful when fragments are short.  This kernel evaluates *all*
fragments of each model kind in one vectorised pass: per-position abscissae
come from a single ramp construction, per-position parameters from one
``np.repeat`` of the parameter matrix columns.

Every registered :class:`~repro.core.models.Model` evaluates element-wise,
so broadcasting array parameters produces bit-identical float64 results to
the scalar per-fragment calls — the property the cross-backend parity
suite pins down.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["evaluate_fragments", "position_ramp"]


def position_ramp(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``[s, s+1, ..., s+len)`` ranges as one int64 array."""
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    resets = np.cumsum(lengths) - lengths
    ramp = np.arange(total, dtype=np.int64) - np.repeat(resets, lengths)
    return np.repeat(np.asarray(starts, dtype=np.int64), lengths) + ramp


def evaluate_fragments(
    models: Sequence,
    kinds: Sequence[int],
    starts: Sequence[int],
    ends: Sequence[int],
    params: Sequence[tuple],
    n: int,
) -> np.ndarray:
    """Evaluate a piecewise approximation over positions ``1..n``.

    ``models[k]`` is the :class:`~repro.core.models.Model` for kind ``k``;
    fragment ``i`` covers 0-based positions ``[starts[i], ends[i])`` with
    kind ``kinds[i]`` and parameter tuple ``params[i]``.  Fragments must
    cover ``[0, n)`` (as every storage layout guarantees); the returned
    float64 array holds ``f(x)`` at ``x = position + 1``.
    """
    out = np.empty(n, dtype=np.float64)
    if not len(kinds):
        return out
    kinds_arr = np.asarray(kinds, dtype=np.int64)
    starts_arr = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(ends, dtype=np.int64) - starts_arr
    for k, model in enumerate(models):
        sel = np.nonzero(kinds_arr == k)[0]
        if not len(sel):
            continue
        ls = lengths[sel]
        idx = position_ramp(starts_arr[sel], ls)
        if not len(idx):
            continue
        xs = (idx + 1).astype(np.float64)
        mat = np.array([params[i] for i in sel], dtype=np.float64)
        cols = tuple(np.repeat(mat[:, j], ls) for j in range(mat.shape[1]))
        out[idx] = model.evaluate(cols, xs)
    return out
