"""Vectorised block decoders for the XOR family (Gorilla, Chimp, Chimp128).

The scalar decoders in :mod:`repro.baselines` pay 2-4 ``BitReader`` method
calls per value.  The numpy backend replaces them with a two-pass scheme:

1. **Scan** — one cheap sequential pass consuming only the variable-rate
   *control* bits (flags, window headers) and recording, per value, where
   its XOR payload starts, how wide it is, and how far it must be shifted.
   Control reads are merged (a Gorilla ``11`` header's 5-bit lz + 6-bit
   length is one 11-bit peek), so the scan does a fraction of the scalar
   decoder's work.
2. **Extract + resolve** — the payloads are pulled out in bulk with
   :class:`~repro.kernels.bitpack.FieldGather`, grouped by distinct width
   (there are at most a few dozen), shifted vectorised, and the
   previous-value XOR chain is resolved with a single
   ``np.bitwise_xor.accumulate``.  Chimp128 references arbitrary window
   slots, so its chain is resolved by pointer doubling instead.

Single blocks scan in Python (:func:`decode_block`); full decompression
goes through :func:`decode_blocks`, which scans *all* blocks in lockstep —
iterating over the within-block value index while every per-step operation
is vectorised across blocks.  A 1M-value stream is ~1000 blocks, so the
sequential dimension collapses from 1M Python iterations to ~1000 numpy
steps.

All backends return the same ``uint64`` array, bit for bit; the parity
suite in ``tests/kernels`` enforces it per codec and per block boundary.
"""

from __future__ import annotations

import numpy as np

from . import get_backend
from .bitpack import FieldGather

__all__ = ["XOR_FAMILIES", "decode_block", "decode_blocks"]

#: family keys understood by :func:`decode_block`
XOR_FAMILIES = ("gorilla", "chimp", "chimp128")

# Chimp's 3-bit quantised leading-zero table.  Kept in sync with
# repro.baselines.chimp._LZ_ROUND (asserted by tests/kernels); duplicating
# the eight constants here avoids a kernels -> baselines import cycle.
_LZ_ROUND = (0, 8, 12, 16, 18, 20, 22, 24)
_LZ_ARR = np.array(_LZ_ROUND, dtype=np.int64)

#: below this many blocks the per-block scan beats the lockstep batch
_BATCH_MIN_BLOCKS = 32

_CORRUPT_CHIMP = "corrupt Chimp stream: window flag before window"
_CORRUPT_SHIFT = "corrupt XOR stream: window wider than 64 bits"


# -- pass 1: per-block control-bit scans ---------------------------------------
#
# Each scan walks the stream over ``ints`` (the block's words as Python
# ints, padded with one zero word so a 2-bit peek near the end never
# indexes past the buffer) and returns, per value after the first, the
# payload's absolute bit start, width, and left shift.  A width of zero
# means "XOR is zero" (nothing to extract).


def _scan_gorilla(ints: list[int], count: int):
    n = count - 1
    starts = [0] * n
    widths = [0] * n
    shifts = [0] * n
    pos = 64
    prev_lz = 0
    prev_len = 0
    for i in range(n):
        w, b = divmod(pos, 64)
        ctl = ints[w] >> b
        if b == 63:
            ctl |= ints[w + 1] << 1
        if not ctl & 1:  # '0': repeat
            pos += 1
            continue
        if ctl & 2:  # '11': new window, 5-bit lz + 6-bit (len - 1)
            pos += 2
            w, b = divmod(pos, 64)
            hdr = ints[w] >> b
            if b > 53:
                hdr |= ints[w + 1] << (64 - b)
            prev_lz = hdr & 31
            prev_len = ((hdr >> 5) & 63) + 1
            pos += 11
        else:  # '10': reuse the previous window
            pos += 2
        starts[i] = pos
        widths[i] = prev_len
        shifts[i] = 64 - prev_lz - prev_len
        pos += prev_len
    return starts, widths, shifts


def _scan_chimp(ints: list[int], count: int):
    n = count - 1
    starts = [0] * n
    widths = [0] * n
    shifts = [0] * n
    pos = 64
    prev_lz = -1
    for i in range(n):
        w, b = divmod(pos, 64)
        ctl = ints[w] >> b
        if b > 62:
            ctl |= ints[w + 1] << (64 - b)
        ctl &= 3
        pos += 2
        if ctl == 0:  # stream bits (0,0): repeat
            prev_lz = -1
        elif ctl == 2:  # stream bits (0,1): many trailing zeros
            w, b = divmod(pos, 64)
            hdr = ints[w] >> b
            if b > 55:
                hdr |= ints[w + 1] << (64 - b)
            lz = _LZ_ROUND[hdr & 7]
            center = (hdr >> 3) & 63
            pos += 9
            starts[i] = pos
            widths[i] = center
            shifts[i] = 64 - lz - center
            pos += center
            prev_lz = -1
        elif ctl == 1:  # stream bits (1,0): same leading-zero count
            if prev_lz < 0:
                raise ValueError(_CORRUPT_CHIMP)
            starts[i] = pos
            widths[i] = 64 - prev_lz
            pos += 64 - prev_lz
        else:  # stream bits (1,1): new leading-zero count
            w, b = divmod(pos, 64)
            code = ints[w] >> b
            if b > 61:
                code |= ints[w + 1] << (64 - b)
            prev_lz = _LZ_ROUND[code & 7]
            pos += 3
            starts[i] = pos
            widths[i] = 64 - prev_lz
            pos += 64 - prev_lz
    return starts, widths, shifts


def _scan_chimp128(ints: list[int], count: int):
    n = count - 1
    starts = [0] * n
    widths = [0] * n
    shifts = [0] * n
    refs = [0] * n  # 0-based output index each value XORs against
    pos = 64
    prev_lz = -1
    for i in range(n):
        w, b = divmod(pos, 64)
        ctl = ints[w] >> b
        if b > 62:
            ctl |= ints[w + 1] << (64 - b)
        ctl &= 3
        pos += 2
        if ctl == 0:  # exact window match: 7-bit reference offset
            w, b = divmod(pos, 64)
            ref = ints[w] >> b
            if b > 57:
                ref |= ints[w + 1] << (64 - b)
            refs[i] = i - (ref & 127)
            pos += 7
            prev_lz = -1
        elif ctl == 2:  # window match with centre bits
            w, b = divmod(pos, 64)
            hdr = ints[w] >> b
            if b > 48:
                hdr |= ints[w + 1] << (64 - b)
            refs[i] = i - (hdr & 127)
            lz = _LZ_ROUND[(hdr >> 7) & 7]
            center = (hdr >> 10) & 63
            pos += 16
            starts[i] = pos
            widths[i] = center
            shifts[i] = 64 - lz - center
            pos += center
            prev_lz = -1
        elif ctl == 1:  # previous value, same leading zeros
            if prev_lz < 0:
                raise ValueError(_CORRUPT_CHIMP)
            refs[i] = i
            starts[i] = pos
            widths[i] = 64 - prev_lz
            pos += 64 - prev_lz
        else:  # previous value, new leading zeros
            w, b = divmod(pos, 64)
            code = ints[w] >> b
            if b > 61:
                code |= ints[w + 1] << (64 - b)
            prev_lz = _LZ_ROUND[code & 7]
            refs[i] = i
            pos += 3
            starts[i] = pos
            widths[i] = 64 - prev_lz
            pos += 64 - prev_lz
    return starts, widths, shifts, refs


# -- pass 2: bulk payload extraction -------------------------------------------


_MASK_TABLE = np.zeros(65, dtype=np.uint64)
for _w in range(64):
    _MASK_TABLE[_w] = np.uint64((1 << _w) - 1)
_MASK_TABLE[64] = np.uint64((1 << 64) - 1)
del _w


def _extract_xors(gather: FieldGather, starts, widths, shifts) -> np.ndarray:
    """All XOR payloads as shifted ``uint64`` values, in one pass.

    Rather than grouping by distinct width, gather the maximal 57-bit
    window for every payload and mask per element; only the rare fields
    wider than 57 bits need a second 7-bit gather for their top bits.
    """
    n = len(starts)
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    widths_arr = np.asarray(widths, dtype=np.int64)
    starts_arr = np.asarray(starts, dtype=np.int64)
    shifts_arr = np.asarray(shifts, dtype=np.int64)
    has = widths_arr > 0
    if bool(((shifts_arr < 0) & has).any()):
        raise ValueError(_CORRUPT_SHIFT)
    vals = gather(starts_arr, 57) & _MASK_TABLE[widths_arr]
    wide = widths_arr > 57
    if bool(wide.any()):
        hi = gather(starts_arr[wide] + 57, 7) & _MASK_TABLE[widths_arr[wide] - 57]
        vals[wide] |= hi << np.uint64(57)
    # Zero-width entries carry no payload; clamp their (meaningless) shift
    # so no uint64 is ever shifted by >= 64.
    return vals << np.where(has, shifts_arr, 0).astype(np.uint64)


# -- lockstep batch scans ------------------------------------------------------
#
# ``pos``/state live in per-block arrays; each loop step advances every
# block by one value.  Finished blocks keep their position frozen (their
# stored rows are dropped by the validity mask).  Header peeks merge the
# control bits with the widest possible header, so each step is one gather
# plus a handful of vectorised mask/where ops.


#: control-bit length by the low two header bits (LSB-first: an even code
#: is the 1-bit repeat flag), per family
_G_CTL = np.array([1, 2, 1, 13], dtype=np.int64)
_C_CTL = np.array([2, 2, 11, 5], dtype=np.int64)
_C128_CTL = np.array([9, 2, 18, 5], dtype=np.int64)


def _scan_blocks_gorilla(gather, bit_base, counts, valid):
    nb = len(counts)
    steps = valid.shape[0]
    starts2 = np.zeros((steps, nb), dtype=np.int64)
    widths2 = np.zeros((steps, nb), dtype=np.int64)
    shifts2 = np.zeros((steps, nb), dtype=np.int64)
    pos = bit_base + 64
    prev_lz = np.zeros(nb, dtype=np.int64)
    prev_len = np.zeros(nb, dtype=np.int64)
    # While every lane is still inside its block, position updates need no
    # mask; frozen-lane handling only matters for the ragged tail steps.
    full = int(counts.min()) - 1
    for i in range(steps):
        hdr = gather(pos, 13).astype(np.int64)
        c2 = hdr & 3
        is0 = (c2 & 1) == 0
        is11 = c2 == 3
        body = hdr >> 2
        prev_lz = np.where(is11, body & 31, prev_lz)
        prev_len = np.where(is11, ((body >> 5) & 63) + 1, prev_len)
        ctl = _G_CTL[c2]
        width = np.where(is0, 0, prev_len)
        starts2[i] = pos + ctl
        widths2[i] = width
        shifts2[i] = 64 - prev_lz - prev_len
        adv = ctl + width
        pos = pos + adv if i < full else np.where(valid[i], pos + adv, pos)
    return starts2, widths2, shifts2, None


def _scan_blocks_chimp(gather, bit_base, counts, valid):
    nb = len(counts)
    steps = valid.shape[0]
    starts2 = np.zeros((steps, nb), dtype=np.int64)
    widths2 = np.zeros((steps, nb), dtype=np.int64)
    shifts2 = np.zeros((steps, nb), dtype=np.int64)
    pos = bit_base + 64
    prev_lz = np.full(nb, -1, dtype=np.int64)
    full = int(counts.min()) - 1
    for i in range(steps):
        hdr = gather(pos, 11).astype(np.int64)
        ctl = hdr & 3
        body = hdr >> 2
        is0 = ctl == 0
        is1 = ctl == 1
        is2 = ctl == 2
        is3 = ctl == 3
        err = is1 & (prev_lz < 0)
        if i >= full:
            err &= valid[i]
        if bool(err.any()):
            raise ValueError(_CORRUPT_CHIMP)
        lz = _LZ_ARR[body & 7]  # 3-bit code sits right after ctl for 2 and 3
        center = (body >> 3) & 63
        prev_lz = np.where(is3, lz, np.where(is0 | is2, -1, prev_lz))
        width = np.where(is0, 0, np.where(is2, center, 64 - prev_lz))
        ctl_len = _C_CTL[ctl]
        starts2[i] = pos + ctl_len
        widths2[i] = width
        shifts2[i] = np.where(is2, 64 - lz - center, 0)
        adv = ctl_len + width
        pos = pos + adv if i < full else np.where(valid[i], pos + adv, pos)
    return starts2, widths2, shifts2, None


def _scan_blocks_chimp128(gather, bit_base, counts, valid):
    nb = len(counts)
    steps = valid.shape[0]
    starts2 = np.zeros((steps, nb), dtype=np.int64)
    widths2 = np.zeros((steps, nb), dtype=np.int64)
    shifts2 = np.zeros((steps, nb), dtype=np.int64)
    refs2 = np.zeros((steps, nb), dtype=np.int64)
    pos = bit_base + 64
    prev_lz = np.full(nb, -1, dtype=np.int64)
    full = int(counts.min()) - 1
    for i in range(steps):
        hdr = gather(pos, 18).astype(np.int64)
        ctl = hdr & 3
        body = hdr >> 2
        is0 = ctl == 0
        is1 = ctl == 1
        is2 = ctl == 2
        is3 = ctl == 3
        err = is1 & (prev_lz < 0)
        if i >= full:
            err &= valid[i]
        if bool(err.any()):
            raise ValueError(_CORRUPT_CHIMP)
        is02 = is0 | is2
        ref = body & 127
        lz2 = _LZ_ARR[(body >> 7) & 7]
        center = (body >> 10) & 63
        prev_lz = np.where(is3, _LZ_ARR[body & 7], np.where(is02, -1, prev_lz))
        width = np.where(is0, 0, np.where(is2, center, 64 - prev_lz))
        ctl_len = _C128_CTL[ctl]
        refs2[i] = np.where(is02, i - ref, i)
        starts2[i] = pos + ctl_len
        widths2[i] = width
        shifts2[i] = np.where(is2, 64 - lz2 - center, 0)
        adv = ctl_len + width
        pos = pos + adv if i < full else np.where(valid[i], pos + adv, pos)
    return starts2, widths2, shifts2, refs2


_BLOCK_SCANS = {
    "gorilla": _scan_blocks_gorilla,
    "chimp": _scan_blocks_chimp,
    "chimp128": _scan_blocks_chimp128,
}


def resolve_chains(values: np.ndarray, parents: np.ndarray, depth: int) -> np.ndarray:
    """XOR every value with its chain of ancestors.

    ``parents[i] < i`` names the value ``i`` XORs against (``-1`` for
    roots, whose ``values`` entry is already final); ``depth`` bounds the
    longest chain.  This is how Chimp128/TSXor window references resolve
    without a per-value Python loop: runs where each value chains to its
    immediate predecessor — the overwhelmingly common case — collapse
    under one global ``bitwise_xor.accumulate``, and only the run *heads*
    (arbitrary window references and roots) go through pointer doubling,
    on an array of run count rather than value count.
    """
    n = len(values)
    idx = np.arange(n, dtype=np.int64)
    is_head = (parents != idx - 1) | (parents < 0)
    heads = np.nonzero(is_head)[0]
    nseg = len(heads)
    seg_lens = np.diff(np.append(heads, n))
    # Within a run, out[j] = xor(values[head..j]) ^ out[parent(head)]: one
    # inclusive prefix-xor minus each run's exclusive prefix gives the
    # first term for every element at once.
    acc = np.bitwise_xor.accumulate(values)
    head_excl = np.where(heads > 0, acc[np.maximum(heads - 1, 0)], np.uint64(0))
    within = acc ^ np.repeat(head_excl, seg_lens)
    # Each run head still owes the chain through its parent's run; that
    # chain strictly descends through runs, so double over runs only.
    seg_id = np.cumsum(is_head) - 1
    hp = parents[heads]
    rooted = hp < 0
    hp_safe = np.maximum(hp, 0)
    sentinel = nseg  # virtual root contributing zero forever
    x = np.zeros(nseg + 1, dtype=np.uint64)
    x[:nseg] = np.where(rooted, np.uint64(0), within[hp_safe])
    r = np.empty(nseg + 1, dtype=np.int64)
    r[:nseg] = np.where(rooted, sentinel, seg_id[hp_safe])
    r[nseg] = sentinel
    rounds = max(1, int(np.ceil(np.log2(max(2, min(depth, nseg))))))
    for _ in range(rounds):
        x, r = x ^ x[r], r[r]
        if bool((r == sentinel).all()):  # every chain fully absorbed
            break
    return within ^ np.repeat(x[:nseg], seg_lens)


def _decode_blocks_numpy(family: str, blocks) -> np.ndarray:
    counts = np.array([count for _, _, count in blocks], dtype=np.int64)
    word_lens = np.array([len(words) for words, _, _ in blocks], dtype=np.int64)
    total = int(counts.sum())
    all_words = np.concatenate(
        [np.ascontiguousarray(words, dtype=np.uint64) for words, _, _ in blocks]
    )
    word_base = np.cumsum(word_lens) - word_lens
    bit_base = word_base * 64
    firsts = all_words[word_base]
    base_idx = np.cumsum(counts) - counts
    steps = int(counts.max()) - 1
    out = np.empty(total, dtype=np.uint64)
    if steps <= 0:  # every block holds a single value
        out[:] = firsts
        return out
    gather = FieldGather(all_words)
    valid = np.arange(steps, dtype=np.int64)[:, None] < (counts - 1)[None, :]
    starts2, widths2, shifts2, refs2 = _BLOCK_SCANS[family](
        gather, bit_base, counts, valid
    )
    # Flatten to block-major order (all of block 0's values, then block 1's).
    sel = valid.T
    xors = _extract_xors(gather, starts2.T[sel], widths2.T[sel], shifts2.T[sel])
    first_mask = np.zeros(total, dtype=bool)
    first_mask[base_idx] = True
    if family == "chimp128":
        # refs are within-block output indices; lift to global indices.
        parents = refs2.T[sel] + np.repeat(base_idx, counts - 1)
        out[first_mask] = firsts
        out[~first_mask] = xors
        gparents = np.full(total, -1, dtype=np.int64)
        gparents[~first_mask] = parents
        return resolve_chains(out, gparents, int(counts.max()))
    out[first_mask] = firsts
    out[~first_mask] = xors
    # One global prefix-XOR resolves every previous-value chain; values in
    # block b then carry the spurious prefix of blocks 0..b-1, which the
    # first element recovers (out[start] == prefix ^ first) and one
    # repeat+XOR removes.
    np.bitwise_xor.accumulate(out, out=out)
    corrections = out[base_idx] ^ firsts
    out ^= np.repeat(corrections, counts)
    return out


# -- backend dispatch ----------------------------------------------------------


def _decode_python(family: str, words: np.ndarray, bit_length: int,
                   count: int) -> np.ndarray:
    from ..baselines import chimp, gorilla  # deferred: avoids an import cycle
    from ..bits.io import BitReader

    decode = {
        "gorilla": gorilla.gorilla_decode,
        "chimp": chimp.chimp_decode,
        "chimp128": chimp.chimp128_decode,
    }[family]
    return np.array(decode(BitReader(words, bit_length), count), dtype=np.uint64)


def _decode_numpy(family: str, words: np.ndarray, bit_length: int,
                  count: int) -> np.ndarray:
    if count <= 0:
        return np.zeros(0, dtype=np.uint64)
    ints = words.tolist()
    ints.append(0)  # lets 2-bit control peeks near the end stay in bounds
    first = ints[0]
    if count == 1:
        return np.array([first], dtype=np.uint64)
    gather = FieldGather(words)
    if family == "chimp128":
        starts, widths, shifts, refs = _scan_chimp128(ints, count)
        xors = _extract_xors(gather, starts, widths, shifts).tolist()
        out = [first]
        append = out.append
        for ref, x in zip(refs, xors):
            append(out[ref] ^ x)
        return np.array(out, dtype=np.uint64)
    scan = _scan_gorilla if family == "gorilla" else _scan_chimp
    starts, widths, shifts = scan(ints, count)
    out = np.empty(count, dtype=np.uint64)
    out[0] = first
    out[1:] = _extract_xors(gather, starts, widths, shifts)
    # Every value XORs its immediate predecessor: one accumulate resolves
    # the whole chain.
    np.bitwise_xor.accumulate(out, out=out)
    return out


def _decode_numba(family: str, words: np.ndarray, bit_length: int,
                  count: int) -> np.ndarray:
    from . import _numba

    return _numba.decode_xor(family, np.ascontiguousarray(words), count)


def decode_block(family: str, words: np.ndarray, bit_length: int,
                 count: int) -> np.ndarray:
    """Decode one XOR-family block into a ``uint64`` array.

    ``family`` is one of :data:`XOR_FAMILIES`; ``words``/``bit_length`` are
    the block's bit stream exactly as :class:`~repro.bits.io.BitWriter`
    produced it, ``count`` the number of encoded values.
    """
    if family not in XOR_FAMILIES:
        raise ValueError(f"unknown XOR family {family!r}")
    backend = get_backend()
    if backend == "python":
        return _decode_python(family, words, bit_length, count)
    if backend == "numba":
        return _decode_numba(family, words, bit_length, count)
    return _decode_numpy(family, words, bit_length, count)


def decode_blocks(family: str, blocks) -> np.ndarray:
    """Decode a whole stream — ``(words, bit_length, count)`` blocks — at once.

    Returns the concatenated ``uint64`` values.  On the numpy backend
    large streams use the lockstep batch scan; small ones (and the other
    backends) fall back to per-block decoding.
    """
    if family not in XOR_FAMILIES:
        raise ValueError(f"unknown XOR family {family!r}")
    blocks = list(blocks)
    if not blocks:
        return np.zeros(0, dtype=np.uint64)
    if (
        get_backend() == "numpy"
        and len(blocks) >= _BATCH_MIN_BLOCKS
        and all(count > 0 and len(words) > 0 for words, _, count in blocks)
    ):
        return _decode_blocks_numpy(family, blocks)
    return np.concatenate(
        [decode_block(family, words, bl, count) for words, bl, count in blocks]
    )
