"""Block decoders for TSXor's byte-aligned window XOR streams.

TSXor values reference arbitrary slots of a 127-value sliding window, so
— unlike Gorilla/Chimp — the value chain cannot be resolved with one
``xor.accumulate``.  The numpy backend still wins on the byte level: a
scan records each value's header (reference age, significant-byte span),
then every XOR payload is gathered in one vectorised unaligned 8-byte
load + mask + shift, and the window-reference chains resolve by pointer
doubling (:func:`repro.kernels.xor.resolve_chains`).

:func:`decode_block` handles one block; :func:`decode_blocks` scans all
blocks of a stream in lockstep — the sequential loop runs over the
within-block value index while each step is vectorised across blocks —
which is what full decompression uses.
"""

from __future__ import annotations

import numpy as np

from . import get_backend

__all__ = ["decode_block", "decode_blocks"]

_XOR_HDR = 0x7F
_RAW_HDR = 0xFF

#: below this many blocks the per-block scan beats the lockstep batch
_BATCH_MIN_BLOCKS = 32

#: mask for a little-endian value spanning ``k`` significant bytes
_SPAN_MASKS = np.array(
    [(1 << (8 * k)) - 1 for k in range(8)] + [(1 << 64) - 1], dtype=np.uint64
)


def _decode_numpy(data, count: int) -> np.ndarray:
    buf = bytes(data)
    ages = [0] * count
    starts = [0] * count
    spans = [0] * count
    firsts = [0] * count
    pos = 0
    for i in range(count):
        hdr = buf[pos]
        pos += 1
        if hdr == _RAW_HDR:
            ages[i] = -1
            starts[i] = pos
            spans[i] = 8
            pos += 8
        elif hdr == _XOR_HDR:
            ages[i] = buf[pos]
            ol = buf[pos + 1]
            starts[i] = pos + 2
            spans[i] = (ol & 0x0F) + 1
            firsts[i] = ol >> 4
            pos += 2 + spans[i]
        else:  # exact window match: payload stays zero
            ages[i] = hdr
    raw = np.frombuffer(buf + b"\x00" * 8, dtype=np.uint8)
    gathered = np.lib.stride_tricks.sliding_window_view(raw, 8)[starts]
    as_u64 = gathered.view(np.uint64).reshape(count)
    payload = as_u64 & _SPAN_MASKS[spans]
    payload <<= np.asarray(firsts, dtype=np.uint64) << np.uint64(3)
    xors = payload.tolist()
    # Resolve the window-reference chain.  ``out[-1 - age]`` is exactly the
    # scalar decoder's ``history[-1 - age]``: the window only ever holds the
    # most recent values, and negative indexing counts from the same end.
    out: list[int] = []
    append = out.append
    for age, x in zip(ages, xors):
        append(x if age < 0 else out[-1 - age] ^ x)
    return np.array(out, dtype=np.uint64)


def _decode_blocks_numpy(blocks) -> np.ndarray:
    from .xor import resolve_chains

    counts = np.array([count for _, count in blocks], dtype=np.int64)
    blobs = [bytes(blob) for blob, _ in blocks]
    byte_lens = np.array([len(b) for b in blobs], dtype=np.int64)
    total = int(counts.sum())
    nbytes = int(byte_lens.sum())
    raw = np.frombuffer(b"".join(blobs) + b"\x00" * 16, dtype=np.uint8)
    win8 = np.lib.stride_tricks.sliding_window_view(raw, 8)
    base_off = np.cumsum(byte_lens) - byte_lens
    nb = len(blobs)
    steps = int(counts.max())
    # A value's byte span depends only on its own header bytes — no carried
    # state — so "position of the next value" is a pure per-position
    # function.  Precompute it for every byte offset once; the sequential
    # lockstep loop then collapses to a single gather per step.
    hdrs = raw[:nbytes]
    is_xor_all = hdrs == _XOR_HDR
    adv = np.where(
        hdrs == _RAW_HDR,
        np.int32(9),
        np.where(is_xor_all, (raw[2 : nbytes + 2] & 0x0F).astype(np.int32) + 4, 1),
    )
    next_pos = np.empty(nbytes + 9, dtype=np.int32)
    next_pos[:nbytes] = np.arange(nbytes, dtype=np.int32) + adv
    next_pos[nbytes:] = nbytes  # finished lanes freeze at end-of-stream
    valid = np.arange(steps, dtype=np.int64)[:, None] < counts[None, :]
    positions2 = np.empty((steps, nb), dtype=np.int32)
    pos = base_off.astype(np.int32)
    for i in range(steps):
        positions2[i] = pos
        pos = np.where(valid[i], next_pos[pos], pos)
    # Flatten to block-major order; decode every header in one pass.
    positions = positions2.T[valid.T].astype(np.int64)
    hdr = raw[positions].astype(np.int64)
    ol = raw[positions + 2].astype(np.int64)
    is_raw = hdr == _RAW_HDR
    is_xor = hdr == _XOR_HDR
    ages = np.where(
        is_raw, -1, np.where(is_xor, raw[positions + 1].astype(np.int64), hdr)
    )
    spans = np.where(is_raw, 8, np.where(is_xor, (ol & 0x0F) + 1, 0))
    starts = np.where(is_raw, positions + 1, np.where(is_xor, positions + 3, 0))
    payload = win8[starts].view(np.uint64).reshape(total)
    payload &= _SPAN_MASKS[spans]
    payload <<= np.where(is_xor, ol >> 4, 0).astype(np.uint64) << np.uint64(3)
    idx = np.arange(total, dtype=np.int64)
    parents = np.where(ages < 0, -1, idx - 1 - ages)
    return resolve_chains(payload, parents, int(counts.max()))


def decode_block(data, count: int) -> np.ndarray:
    """Decode ``count`` values of one TSXor byte stream (any byte buffer)."""
    if count <= 0:
        return np.zeros(0, dtype=np.uint64)
    backend = get_backend()
    if backend == "python":
        from ..baselines.tsxor import tsxor_decode  # deferred: import cycle

        return tsxor_decode(data, count)
    if backend == "numba":
        from . import _numba

        return _numba.decode_tsxor(
            np.frombuffer(bytes(data) + b"\x00" * 8, dtype=np.uint8), count
        )
    return _decode_numpy(data, count)


def decode_blocks(blocks) -> np.ndarray:
    """Decode a whole stream — ``(data, count)`` blocks — at once."""
    blocks = list(blocks)
    if not blocks:
        return np.zeros(0, dtype=np.uint64)
    if (
        get_backend() == "numpy"
        and len(blocks) >= _BATCH_MIN_BLOCKS
        and all(count > 0 and len(blob) > 0 for blob, count in blocks)
    ):
        return _decode_blocks_numpy(blocks)
    return np.concatenate([decode_block(blob, count) for blob, count in blocks])
