"""Kernel dispatch: the vectorised/compiled decode hot paths.

Every decode inner loop that dominates a benchmark — block-level XOR
decoding (Gorilla/Chimp/TSXor), piecewise segment evaluation (NeaTS and the
lossy codecs), and fixed-width bit packing — routes through this package, so
one switch selects the implementation everywhere:

* ``python`` — the original scalar loops (``BitReader`` per value).  Always
  available; the reference every other backend is parity-tested against.
* ``numpy``  — word-level vectorised decoders: one cheap control-bit scan
  followed by bulk field extraction and a single ``bitwise_xor.accumulate``
  (or ``np.repeat`` segment evaluation) over the whole block.
* ``numba``  — optional JIT-compiled single-pass loops; auto-detected and
  used by default when ``numba`` is importable, never required.

Selection
---------
``REPRO_KERNELS=python|numpy|numba`` picks the backend for a process;
:func:`set_backend` / :func:`use_backend` override it programmatically.
With nothing set, the default is ``numba`` when available, else ``numpy``.
Requesting ``numba`` through the environment when it is not importable
falls back to ``numpy`` with a warning; :func:`set_backend` raises instead
(an explicit API call should not be silently ignored).

All backends are bit-for-bit interchangeable: the parity suite
(``tests/kernels``) asserts byte-identical decode output across backends
for every registered codec, including bit-offset slices and block
boundaries.  See ``docs/kernels.md`` for how to add a kernel.
"""

from __future__ import annotations

import contextlib
import importlib
import os
import warnings
from collections.abc import Iterator

__all__ = [
    "BACKENDS",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "numba_available",
    "pack_bits",
    "unpack_bits",
    "unpack_fields",
    "decode_xor_block",
    "decode_xor_blocks",
    "decode_tsxor_block",
    "decode_tsxor_blocks",
    "evaluate_fragments",
    "XOR_FAMILIES",
]

#: every backend name this package knows about
BACKENDS = ("python", "numpy", "numba")

_ENV_VAR = "REPRO_KERNELS"
_override: str | None = None
_has_numba: bool | None = None


def numba_available() -> bool:
    """Whether the optional compiled backend can be used (cached probe)."""
    global _has_numba
    if _has_numba is None:
        try:
            importlib.import_module("numba")
        except Exception:
            _has_numba = False
        else:
            _has_numba = True
    return _has_numba


def available_backends() -> tuple[str, ...]:
    """The backends usable in this process, slowest first."""
    if numba_available():
        return BACKENDS
    return BACKENDS[:2]


def get_backend() -> str:
    """The active kernel backend name.

    Resolution order: :func:`set_backend` override, then the
    ``REPRO_KERNELS`` environment variable, then the auto-detected default
    (``numba`` when importable, ``numpy`` otherwise).
    """
    if _override is not None:
        return _override
    env = os.environ.get(_ENV_VAR, "").strip().lower()
    if env:
        if env not in BACKENDS:
            raise ValueError(
                f"{_ENV_VAR}={env!r} is not a kernel backend; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        if env == "numba" and not numba_available():
            warnings.warn(
                f"{_ENV_VAR}=numba but numba is not importable; "
                "falling back to the numpy backend",
                RuntimeWarning,
                stacklevel=2,
            )
            return "numpy"
        return env
    return "numba" if numba_available() else "numpy"


def set_backend(name: str | None) -> None:
    """Force the backend for this process (``None`` restores resolution).

    Unlike the environment variable, asking for an unavailable backend here
    raises: an explicit call expresses intent that must not silently degrade.
    """
    global _override
    if name is None:
        _override = None
        return
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"expected one of {', '.join(BACKENDS)}"
        )
    if name == "numba" and not numba_available():
        raise ValueError("the numba backend was requested but numba is not importable")
    _override = name


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Context manager: run a block under a specific backend."""
    global _override
    previous = _override
    set_backend(name)
    try:
        yield
    finally:
        _override = previous


# The kernel modules import get_backend from here, so they load last.
from .bitpack import pack_bits, unpack_bits, unpack_fields  # noqa: E402
from .segments import evaluate_fragments  # noqa: E402
from .tsxor import decode_block as decode_tsxor_block  # noqa: E402
from .tsxor import decode_blocks as decode_tsxor_blocks  # noqa: E402
from .xor import XOR_FAMILIES  # noqa: E402
from .xor import decode_block as decode_xor_block  # noqa: E402
from .xor import decode_blocks as decode_xor_blocks  # noqa: E402
