"""Table II: lossy compressors — AA vs PLA vs NeaTS-L (§IV-B).

For every dataset the paper picks the smallest ε such that NeaTS-L compresses
better than lossless NeaTS, expresses it as a percentage of the value range,
and compares the compression ratio of the three lossy approaches, their MAPE,
and their compression/decompression speeds.

All compressors are obtained through the codec registry — the same
``get_codec("neats_l", eps=...)`` path the CLI and the stores use — so the
harness exercises exactly what a user gets, provenance included.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..codecs import get_codec
from ..data import DATASETS
from .render import render_table

__all__ = ["Table2Row", "calibrate_eps", "run_table2", "render_table2"]

#: the paper's three lossy approaches, by registry id
LOSSY_CODECS = (("AA", "aa"), ("PLA", "pla"), ("NeaTS-L", "neats_l"))

_EPS_FRACTIONS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 6e-2)
_QUICK_FRACTION = 5e-3


@dataclass
class Table2Row:
    """One dataset line of Table II, plus the speed/MAPE side-metrics."""

    dataset: str
    eps: float
    eps_pct_of_range: float
    ratio_aa: float
    ratio_pla: float
    ratio_neats_l: float
    mape_aa: float
    mape_pla: float
    mape_neats_l: float
    speeds: dict

    @property
    def improvement_vs_aa(self) -> float:
        """NeaTS-L ratio improvement over AA, in percent."""
        return 100.0 * (self.ratio_aa - self.ratio_neats_l) / self.ratio_aa

    @property
    def improvement_vs_pla(self) -> float:
        """NeaTS-L ratio improvement over PLA, in percent."""
        return 100.0 * (self.ratio_pla - self.ratio_neats_l) / self.ratio_pla


def calibrate_eps(y: np.ndarray, quick: bool = False) -> float:
    """Pick ε per the paper: smallest bound making NeaTS-L beat NeaTS.

    ``quick=True`` skips the search and uses a fixed fraction of the range
    (the search needs one lossless NeaTS run plus several lossy runs).
    """
    value_range = float(int(y.max()) - int(y.min())) or 1.0
    if quick:
        return max(_QUICK_FRACTION * value_range, 1.0)
    lossless_ratio = get_codec("neats").compress(y).compression_ratio()
    for frac in _EPS_FRACTIONS:
        eps = max(frac * value_range, 1.0)
        lossy = get_codec("neats_l", eps=eps).compress(y)
        if lossy.compression_ratio() < lossless_ratio:
            return eps
    return max(_EPS_FRACTIONS[-1] * value_range, 1.0)


def run_table2(
    datasets: list[str] | None = None,
    n: int | None = None,
    quick: bool = False,
) -> list[Table2Row]:
    """Reproduce Table II over the requested datasets."""
    datasets = datasets or list(DATASETS)
    rows = []
    for name in datasets:
        info = DATASETS[name]
        y = info.generate(n)
        eps = calibrate_eps(y, quick=quick)
        value_range = float(int(y.max()) - int(y.min())) or 1.0

        timings = {}
        by_label = {}
        for label, cid in LOSSY_CODECS:
            t0 = time.perf_counter()
            series = get_codec(cid, eps=eps).compress(y)
            timings[f"{label}_compress"] = time.perf_counter() - t0
            by_label[label] = series
        aa, pla, nl = by_label["AA"], by_label["PLA"], by_label["NeaTS-L"]
        for label, series in by_label.items():
            t0 = time.perf_counter()
            series.reconstruct()
            timings[f"{label}_decompress"] = time.perf_counter() - t0
            err = series.max_error(y)
            # float64 geometry: allow relative slack at large eps scales
            if err > eps * (1 + 1e-9) + 1e-6:
                raise AssertionError(f"{label} exceeded eps on {name}: {err} > {eps}")

        rows.append(
            Table2Row(
                dataset=name,
                eps=eps,
                eps_pct_of_range=100.0 * eps / value_range,
                ratio_aa=aa.compression_ratio(),
                ratio_pla=pla.compression_ratio(),
                ratio_neats_l=nl.compression_ratio(),
                mape_aa=aa.mape(y),
                mape_pla=pla.mape(y),
                mape_neats_l=nl.mape(y),
                speeds=timings,
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    """Format the rows like the paper's Table II."""
    headers = [
        "Dataset", "eps(%)", "AA", "PLA", "NeaTS-L",
        "impr. vs AA(%)", "impr. vs PLA(%)",
    ]
    body = [
        [
            r.dataset,
            f"{r.eps_pct_of_range:.2E}",
            f"{100 * r.ratio_aa:.2f}",
            f"{100 * r.ratio_pla:.2f}",
            f"{100 * r.ratio_neats_l:.2f}",
            f"{r.improvement_vs_aa:.2f}",
            f"{r.improvement_vs_pla:.2f}",
        ]
        for r in rows
    ]
    table = render_table(
        headers, body, title="Table II: lossy compression ratios (%)"
    )
    mape_avg = (
        float(np.mean([r.mape_aa for r in rows])),
        float(np.mean([r.mape_neats_l for r in rows])),
        float(np.mean([r.mape_pla for r in rows])),
    )
    summary = (
        f"\nMAPE on average: AA={mape_avg[0]:.2f}%  "
        f"NeaTS-L={mape_avg[1]:.2f}%  PLA={mape_avg[2]:.2f}%"
        f"\n(paper: AA=2.47%, NeaTS-L=2.85%, PLA=4.37% — AA best, PLA worst)"
    )
    return table + summary
