"""Figure 4: range-query throughput across range sizes (§IV-C4).

The paper restricts this experiment to the best compressors by random access
or decompression speed — ALP, DAC, Lz4, and NeaTS — and measures queries per
second for range sizes ``10·2^0 .. 10·2^16`` averaged over the largest
datasets.  A range query is a random access (to locate the first point)
followed by a scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data import DATASETS
from .measure import measure_range_throughput
from .registry import make_compressor
from .render import render_table

__all__ = ["Fig4Result", "run_fig4", "render_fig4"]

FIG4_COMPRESSORS = ["ALP", "DAC", "Lz4*", "NeaTS"]


@dataclass
class Fig4Result:
    """Throughput (queries/s) per compressor per range size."""

    range_sizes: list[int]
    throughput: dict[str, list[float]] = field(default_factory=dict)


def run_fig4(
    datasets: list[str] | None = None,
    n: int | None = None,
    max_exponent: int = 10,
    queries: int = 30,
    compressors: list[str] | None = None,
    verbose: bool = True,
) -> Fig4Result:
    """Measure range-query throughput averaged over ``datasets``."""
    datasets = datasets or ["IT", "US", "WD"]
    compressors = compressors or FIG4_COMPRESSORS
    range_sizes = [10 * (1 << k) for k in range(max_exponent + 1)]
    sums = {c: [0.0] * len(range_sizes) for c in compressors}

    for ds in datasets:
        info = DATASETS[ds]
        y = info.generate(n)
        for comp_name in compressors:
            comp = make_compressor(comp_name, digits=info.digits)
            compressed = comp.compress(y)
            for i, size in enumerate(range_sizes):
                if size > len(y):
                    sums[comp_name][i] += float("nan")
                    continue
                qps = measure_range_throughput(
                    compressed, y, size, queries=queries
                )
                sums[comp_name][i] += qps
            if verbose:
                print(f"  [{ds}] {comp_name} done")

    result = Fig4Result(range_sizes=range_sizes)
    for c in compressors:
        result.throughput[c] = [s / len(datasets) for s in sums[c]]
    return result


def render_fig4(result: Fig4Result) -> str:
    """Format throughput like the paper's Figure 4 (one row per size)."""
    headers = ["Range size"] + list(result.throughput)
    rows = []
    for i, size in enumerate(result.range_sizes):
        row = [str(size)]
        vals = [result.throughput[c][i] for c in result.throughput]
        row.extend(f"{v:.0f}" for v in vals)
        rows.append(row)
    table = render_table(
        headers, rows, title="Figure 4: range query throughput (queries/s)"
    )
    return table + (
        "\n(paper shape: DAC fastest below ~40 points, NeaTS fastest above)"
    )
