"""Command-line entry point: ``python -m repro.bench --experiment table3``.

Experiments
-----------
``table2``     lossy: AA vs PLA vs NeaTS-L (ratio, MAPE)
``table3``     lossless: ratio / decompression / random access, all compressors
``fig2``       ratio vs compression speed (incl. LeaTS, SNeaTS)
``fig3``       ratio vs decompression and random-access speed
``fig4``       range-query throughput across range sizes
``ablations``  variant/structure/grid/model-set ablations
``all``        everything above
"""

from __future__ import annotations

import argparse
import sys

from ..data import DATASETS
from . import ablations
from .evaluation import render_fig2, render_fig3, render_table3, run_evaluation
from .fig4 import render_fig4, run_fig4
from .table2 import render_table2, run_table2

_EXPERIMENTS = ("table2", "table3", "fig2", "fig3", "fig4", "ablations", "all")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the NeaTS evaluation (tables and figures).",
    )
    parser.add_argument("--experiment", "-e", choices=_EXPERIMENTS, default="all")
    parser.add_argument(
        "--datasets", "-d", nargs="*", default=None,
        help=f"dataset codes (default: all 16); known: {', '.join(DATASETS)}",
    )
    parser.add_argument(
        "--n", type=int, default=None,
        help="points per dataset (default: per-dataset reproduction scale)",
    )
    parser.add_argument(
        "--queries", type=int, default=500, help="random access queries"
    )
    parser.add_argument(
        "--quick-calibration", action="store_true",
        help="table2: use a fixed eps fraction instead of the paper's search",
    )
    parser.add_argument(
        "--output", "-o", default=None, help="also write the report to a file"
    )
    args = parser.parse_args(argv)

    if args.datasets:
        unknown = set(args.datasets) - set(DATASETS)
        if unknown:
            parser.error(f"unknown datasets: {', '.join(sorted(unknown))}")

    sections: list[str] = []
    wants = lambda name: args.experiment in (name, "all")

    if wants("table2"):
        print("== Running Table II (lossy) ==", flush=True)
        rows = run_table2(args.datasets, args.n, quick=args.quick_calibration)
        sections.append(render_table2(rows))

    if wants("table3") or wants("fig2") or wants("fig3"):
        print("== Running lossless evaluation ==", flush=True)
        result = run_evaluation(
            args.datasets, n=args.n, access_queries=args.queries,
            include_variants=True,
        )
        if wants("table3"):
            sections.append(render_table3(result))
        if wants("fig2"):
            sections.append(render_fig2(result))
        if wants("fig3"):
            sections.append(render_fig3(result))

    if wants("fig4"):
        print("== Running Figure 4 (range queries) ==", flush=True)
        result4 = run_fig4(args.datasets, n=args.n)
        sections.append(render_fig4(result4))

    if wants("ablations"):
        print("== Running ablations ==", flush=True)
        sections.append(ablations.run_variant_ablation(args.datasets, args.n))
        sections.append(ablations.run_rank_ablation(args.datasets, args.n))
        sections.append(ablations.run_eps_grid_ablation(args.datasets, args.n))
        sections.append(ablations.run_model_set_ablation(args.datasets, args.n))

    report = "\n\n".join(sections)
    print()
    print(report)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report + "\n")
        print(f"\n(report written to {args.output})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
