"""Benchmark harness regenerating every table and figure of the paper."""

from .evaluation import (
    EvaluationResult,
    render_fig2,
    render_fig3,
    render_table3,
    run_evaluation,
)
from .fig4 import Fig4Result, render_fig4, run_fig4
from .measure import (
    CompressorStats,
    measure_lossless,
    measure_random_access,
    measure_range_throughput,
)
from .registry import ALL_NAMES, make_compressor
from .table2 import Table2Row, calibrate_eps, render_table2, run_table2

__all__ = [
    "run_table2",
    "render_table2",
    "Table2Row",
    "calibrate_eps",
    "run_evaluation",
    "render_table3",
    "render_fig2",
    "render_fig3",
    "EvaluationResult",
    "run_fig4",
    "render_fig4",
    "Fig4Result",
    "CompressorStats",
    "measure_lossless",
    "measure_random_access",
    "measure_range_throughput",
    "ALL_NAMES",
    "make_compressor",
]
