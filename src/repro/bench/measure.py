"""Measurement primitives shared by all table/figure reproductions.

Speeds follow the paper's units: MB/s where a "byte" is a byte of the
*uncompressed* representation (8 per value), and random access speed counts
8 bytes per accessed value (Table III bottom).  Absolute numbers are
interpreter-bound (see DESIGN.md §3); the harness is about *relative* shapes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CompressorStats", "measure_lossless", "measure_random_access",
           "measure_range_throughput"]


@dataclass
class CompressorStats:
    """Everything Table III reports for one (compressor, dataset) pair."""

    name: str
    dataset: str
    n: int
    compressed_bits: int
    compress_seconds: float
    decompress_seconds: float
    access_seconds_per_query: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Compressed size / original size (paper: 'compression ratio (%)')."""
        return self.compressed_bits / (64 * self.n)

    @property
    def ratio_pct(self) -> float:
        """The same ratio expressed as a percentage."""
        return 100.0 * self.ratio

    @property
    def compress_mb_s(self) -> float:
        """Compression speed over the uncompressed byte count."""
        return self._mb(self.compress_seconds)

    @property
    def decompress_mb_s(self) -> float:
        """Decompression speed over the uncompressed byte count."""
        return self._mb(self.decompress_seconds)

    @property
    def access_mb_s(self) -> float:
        """Random access speed: 8 bytes per query / seconds per query."""
        if self.access_seconds_per_query <= 0:
            return 0.0
        return 8.0 / self.access_seconds_per_query / 1e6

    def _mb(self, seconds: float) -> float:
        if seconds <= 0:
            return float("inf")
        return (8.0 * self.n) / seconds / 1e6


def measure_lossless(
    compressor, values: np.ndarray, dataset: str = "?", repeats: int = 1
) -> CompressorStats:
    """Compress, verify the round-trip, and time both directions."""
    best_c = float("inf")
    compressed = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        compressed = compressor.compress(values)
        best_c = min(best_c, time.perf_counter() - t0)
    best_d = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = compressed.decompress()
        best_d = min(best_d, time.perf_counter() - t0)
    if not np.array_equal(out, values):
        raise AssertionError(
            f"{compressor.name} failed the lossless round-trip on {dataset}"
        )
    stats = CompressorStats(
        name=compressor.name,
        dataset=dataset,
        n=len(values),
        compressed_bits=compressed.size_bits(),
        compress_seconds=best_c,
        decompress_seconds=best_d,
    )
    stats.extras["compressed"] = compressed
    return stats


def measure_random_access(
    compressed, values: np.ndarray, queries: int = 1000, seed: int = 0
) -> float:
    """Seconds per random access query, verified against the original."""
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, len(values), queries)
    t0 = time.perf_counter()
    acc = 0
    for k in positions.tolist():
        acc ^= compressed.access(k)
    elapsed = time.perf_counter() - t0
    # Verify a sample (outside the timed region).
    for k in positions[:32].tolist():
        got = compressed.access(k)
        if got != int(values[k]):
            raise AssertionError(f"random access mismatch at {k}: {got} != {values[k]}")
    return elapsed / queries


def measure_range_throughput(
    compressed,
    values: np.ndarray,
    range_size: int,
    queries: int = 50,
    seed: int = 0,
) -> float:
    """Range queries per second for a fixed range size (Figure 4)."""
    n = len(values)
    range_size = min(range_size, n)
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, max(n - range_size, 1), queries)
    t0 = time.perf_counter()
    for s in starts.tolist():
        compressed.decompress_range(s, s + range_size)
    elapsed = time.perf_counter() - t0
    # Spot-check correctness outside the timed region.
    s = int(starts[0])
    got = compressed.decompress_range(s, s + range_size)
    if not np.array_equal(got, values[s : s + range_size]):
        raise AssertionError("range query returned wrong values")
    return queries / elapsed if elapsed > 0 else float("inf")
