"""Tracked kernel benchmarks: the committed ``BENCH_*.json`` artefacts.

Unlike the paper-reproduction harness (tables/figures), this runner tracks
the *repository's own* hot paths across PRs:

* ``BENCH_table3_decompression.json`` — full-decompression wall time for
  the XOR family under the scalar (``python``) and vectorised (``numpy``)
  kernel backends, with the speedup per codec.
* ``BENCH_open_latency.json`` — eager vs lazy archive open latency, and
  the cost of the first point query on each.
* ``BENCH_random_access.json`` — per-query latency and blocks decoded for
  point/range access on a lazily-opened block-structured archive.
* ``BENCH_partition_ingest.json`` — ``ingest_many`` throughput through a
  :class:`~repro.store.partitioned.PartitionedSeriesDB` at 1/2/4/8
  partitions, group-commit on vs off, plus the measured fsyncs per
  steady-state batch (group commit coalesces a whole batch into one
  fsync per partition).

Timings are best-of-``repeats`` (containerised CI timers are noisy; the
minimum is the most stable location statistic).  ``--quick`` shrinks the
series so the pipeline can run as a CI smoke test; the committed artefacts
come from a full run.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from .. import kernels

__all__ = ["run_bench", "BENCH_FILES"]

#: the block-structured XOR-family codecs the decode kernels accelerate
XOR_CODECS = ("gorilla", "chimp", "chimp128", "tsxor")

BENCH_FILES = (
    "BENCH_table3_decompression.json",
    "BENCH_open_latency.json",
    "BENCH_random_access.json",
    "BENCH_partition_ingest.json",
)

_FULL_N = 1_000_000
_QUICK_N = 20_000


def _series(n: int, seed: int = 42) -> np.ndarray:
    """A deterministic mixed series: smooth cycles, a walk, a flat stretch.

    The mix exercises every control path of the XOR codecs — repeats,
    window reuse, and fresh windows — so the timings are representative.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    smooth = 2000.0 * np.sin(t / 900.0)
    walk = np.cumsum(rng.integers(-6, 7, n))
    y = (smooth + walk).astype(np.int64)
    y[n // 3 : n // 3 + n // 20] = y[n // 3]
    return y


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _meta(n: int, repeats: int) -> dict:
    return {
        "n": n,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "backends": kernels.available_backends(),
    }


def bench_decompression(n: int, repeats: int, log=None) -> dict:
    """Scalar vs vectorised full decompression for the XOR family."""
    import repro

    series = _series(n)
    codecs = {}
    for cid in XOR_CODECS:
        if log:
            log(f"  {cid}: compressing {n:,} values")
        compressed = repro.compress(series, codec=cid)
        with kernels.use_backend("python"):
            t_python = _best(compressed.decompress, repeats)
        with kernels.use_backend("numpy"):
            decoded = compressed.decompress()
            t_numpy = _best(compressed.decompress, repeats)
        if not np.array_equal(decoded, series):
            raise AssertionError(f"{cid}: vectorised decode mismatch")
        codecs[cid] = {
            "python_seconds": round(t_python, 6),
            "numpy_seconds": round(t_numpy, 6),
            "speedup": round(t_python / t_numpy, 2),
            "numpy_mb_s": round(8.0 * n / t_numpy / 1e6, 1),
        }
        if log:
            log(f"  {cid}: python={t_python:.3f}s numpy={t_numpy:.3f}s "
                f"({codecs[cid]['speedup']}x)")
    return {"meta": _meta(n, repeats), "codecs": codecs}


def bench_open_latency(n: int, repeats: int, log=None) -> dict:
    """Eager vs lazy archive open, and the first point query on each."""
    import repro
    from ..codecs import open_archive, save

    series = _series(n)
    out = {"meta": _meta(n, repeats), "codecs": {}}
    with tempfile.TemporaryDirectory() as tmp:
        for cid in ("gorilla", "chimp"):
            path = Path(tmp) / f"{cid}.rpac"
            save(path, repro.compress(series, codec=cid))

            def eager_open():
                open_archive(path).close()

            def lazy_open():
                open_archive(path, lazy=True).close()

            def lazy_first_access():
                with open_archive(path, lazy=True) as archive:
                    archive.access(n // 2)

            out["codecs"][cid] = {
                "eager_open_ms": round(_best(eager_open, repeats) * 1e3, 3),
                "lazy_open_ms": round(_best(lazy_open, repeats) * 1e3, 3),
                "lazy_first_access_ms": round(
                    _best(lazy_first_access, repeats) * 1e3, 3
                ),
            }
            if log:
                stats = out["codecs"][cid]
                log(f"  {cid}: eager={stats['eager_open_ms']}ms "
                    f"lazy={stats['lazy_open_ms']}ms")
    return out


def bench_random_access(n: int, repeats: int, log=None) -> dict:
    """Point/range queries on a lazily-opened block-structured archive."""
    import repro
    from ..codecs import open_archive, save

    series = _series(n)
    rng = np.random.default_rng(7)
    points = rng.integers(0, n, 256)
    out = {"meta": _meta(n, repeats), "codecs": {}}
    with tempfile.TemporaryDirectory() as tmp:
        for cid in ("gorilla", "tsxor"):
            path = Path(tmp) / f"{cid}.rpac"
            save(path, repro.compress(series, codec=cid))
            with open_archive(path, lazy=True) as archive:
                values = archive.values()
                t0 = time.perf_counter()
                for k in points:
                    values[int(k)]
                per_query = (time.perf_counter() - t0) / len(points)
                decoded = archive.compressed.blocks_decoded
                t_range = _best(lambda: values[n // 4 : n // 4 + 2048], repeats)
            out["codecs"][cid] = {
                "point_query_us": round(per_query * 1e6, 2),
                "blocks_decoded_for_point_queries": int(decoded),
                "range_2048_ms": round(t_range * 1e3, 3),
            }
            if log:
                stats = out["codecs"][cid]
                log(f"  {cid}: point={stats['point_query_us']}us "
                    f"({decoded} blocks for {len(points)} queries)")
    return out


def bench_partition_ingest(n: int, repeats: int, log=None) -> dict:
    """Batch-ingest throughput vs partition count, group commit on/off.

    The fleet (8 series, ``n`` values total) is ingested into a fresh
    :class:`~repro.store.partitioned.PartitionedSeriesDB` per
    configuration, with the fan-out width matching the partition count.
    Durability cost is measured separately on a steady-state second batch
    (serial, so every fsync happens in-process and can be counted): group
    commit must coalesce the batch to one fsync per touched partition,
    against one per *series* without it.
    """
    import os

    from ..store import PartitionedSeriesDB

    num_series = 8
    per = max(256, n // num_series)
    fleet = {f"series/{i:02d}": _series(per, seed=i) for i in range(num_series)}
    tail = {sid: values[: max(64, per // 10)] for sid, values in fleet.items()}
    out = {
        "meta": {**_meta(n, repeats), "num_series": num_series,
                 "values_per_series": per, "cpus": os.cpu_count() or 1},
        "configs": {},
    }
    for partitions in (1, 2, 4, 8):
        for group in (True, False):
            key = f"p{partitions}_group_{'on' if group else 'off'}"

            def ingest_once():
                with tempfile.TemporaryDirectory() as tmp:
                    db = PartitionedSeriesDB(
                        Path(tmp) / "db", partitions=partitions,
                        group_commit=group,
                    )
                    db.ingest_many(fleet, workers=partitions)
                    db.flush()
                    db.close()

            seconds = _best(ingest_once, repeats)

            # steady-state durability: fsyncs for one whole batch
            with tempfile.TemporaryDirectory() as tmp:
                db = PartitionedSeriesDB(
                    Path(tmp) / "db", partitions=partitions,
                    group_commit=group,
                )
                db.ingest_many(fleet, workers=1)
                db.flush()
                db.ingest_many(tail, workers=1)  # pays any log creation
                real_fsync = os.fsync
                fsyncs = 0

                def counting(fd):
                    nonlocal fsyncs
                    fsyncs += 1
                    real_fsync(fd)

                os.fsync = counting
                try:
                    db.ingest_many(tail, workers=1)
                finally:
                    os.fsync = real_fsync
                db.close()

            total = num_series * per
            out["configs"][key] = {
                "partitions": partitions,
                "group_commit": group,
                "ingest_seconds": round(seconds, 4),
                "values_per_second": round(total / seconds),
                "fsyncs_per_batch": fsyncs,
            }
            if log:
                log(f"  {key}: {seconds:.3f}s "
                    f"({out['configs'][key]['values_per_second']:,} val/s, "
                    f"{fsyncs} fsyncs/batch)")
    base = out["configs"]["p1_group_on"]["ingest_seconds"]
    for partitions in (2, 4, 8):
        cfg = out["configs"][f"p{partitions}_group_on"]
        cfg["speedup_vs_1_partition"] = round(base / cfg["ingest_seconds"], 2)
    return out


def run_bench(
    out_dir, quick: bool = False, n: int | None = None, log=None
) -> list[Path]:
    """Run the tracked pipeline; write one JSON per benchmark.

    Returns the written paths.  ``quick`` shrinks the series (CI smoke);
    ``n`` overrides the series length outright.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    n = n or (_QUICK_N if quick else _FULL_N)
    repeats = 1 if quick else 3
    suites = (
        ("BENCH_table3_decompression.json", bench_decompression),
        ("BENCH_open_latency.json", bench_open_latency),
        ("BENCH_random_access.json", bench_random_access),
        ("BENCH_partition_ingest.json", bench_partition_ingest),
    )
    written = []
    for filename, suite in suites:
        if log:
            log(f"{filename}:")
        payload = suite(n, repeats, log=log)
        path = out_dir / filename
        path.write_text(json.dumps(payload, indent=2) + "\n")
        written.append(path)
    return written
