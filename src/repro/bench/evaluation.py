"""The full lossless evaluation: Table III and Figures 2-3 share these runs.

Running every compressor on every dataset is the expensive part, so the
result object caches all measurements; the table and figure renderers then
slice it without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import DATASETS
from .measure import CompressorStats, measure_lossless, measure_random_access
from .registry import ALL_NAMES, make_compressor
from .render import render_scatter, render_table

__all__ = [
    "EvaluationResult",
    "run_evaluation",
    "render_table3",
    "render_fig2",
    "render_fig3",
]


@dataclass
class EvaluationResult:
    """All measurements for a set of datasets × compressors."""

    stats: dict[str, dict[str, CompressorStats]] = field(default_factory=dict)
    datasets: list[str] = field(default_factory=list)
    compressors: list[str] = field(default_factory=list)

    def average(self, metric: str) -> dict[str, float]:
        """Average a :class:`CompressorStats` property across datasets."""
        out = {}
        for comp in self.compressors:
            vals = [
                getattr(self.stats[ds][comp], metric)
                for ds in self.datasets
                if comp in self.stats[ds]
            ]
            out[comp] = float(np.mean(vals)) if vals else float("nan")
        return out


def run_evaluation(
    datasets: list[str] | None = None,
    compressors: list[str] | None = None,
    n: int | None = None,
    access_queries: int = 500,
    include_variants: bool = False,
    verbose: bool = True,
) -> EvaluationResult:
    """Measure ratio, speeds, and random access for the whole line-up."""
    datasets = datasets or list(DATASETS)
    compressors = list(compressors or ALL_NAMES)
    if include_variants:
        for extra in ("LeaTS", "SNeaTS"):
            if extra not in compressors:
                compressors.append(extra)

    result = EvaluationResult(datasets=datasets, compressors=compressors)
    for ds in datasets:
        info = DATASETS[ds]
        y = info.generate(n)
        result.stats[ds] = {}
        for comp_name in compressors:
            comp = make_compressor(comp_name, digits=info.digits)
            stats = measure_lossless(comp, y, dataset=ds)
            compressed = stats.extras.pop("compressed")
            stats.access_seconds_per_query = measure_random_access(
                compressed, y, queries=access_queries
            )
            result.stats[ds][comp_name] = stats
            if verbose:
                print(
                    f"  [{ds}] {comp_name:10s} ratio {stats.ratio_pct:6.2f}%  "
                    f"comp {stats.compress_mb_s:8.3f} MB/s  "
                    f"dec {stats.decompress_mb_s:8.2f} MB/s  "
                    f"ra {stats.access_mb_s:8.3f} MB/s"
                )
    return result


def _table_for_metric(
    result: EvaluationResult, metric: str, fmt: str, title: str, best: str
) -> str:
    headers = ["Dataset"] + result.compressors
    rows = []
    highlight = {}
    for r_idx, ds in enumerate(result.datasets):
        row = [ds]
        vals = []
        for comp in result.compressors:
            v = getattr(result.stats[ds][comp], metric)
            vals.append(v)
            row.append(fmt % v)
        chooser = min if best == "min" else max
        best_idx = vals.index(chooser(vals))
        highlight[(r_idx, best_idx + 1)] = "*"
        rows.append(row)
    return render_table(headers, rows, title=title, highlight=highlight)


def render_table3(result: EvaluationResult) -> str:
    """The three panels of Table III (best value per row marked ``*``)."""
    parts = [
        _table_for_metric(
            result, "ratio_pct", "%.2f",
            "Table III (top): compression ratio (%)", "min",
        ),
        _table_for_metric(
            result, "decompress_mb_s", "%.2f",
            "Table III (middle): decompression speed (MB/s)", "max",
        ),
        _table_for_metric(
            result, "access_mb_s", "%.3f",
            "Table III (bottom): random access speed (MB/s)", "max",
        ),
    ]
    return "\n\n".join(parts)


def render_fig2(result: EvaluationResult) -> str:
    """Figure 2: compression ratio vs compression speed (averages)."""
    ratios = result.average("ratio_pct")
    speeds = result.average("compress_mb_s")
    points = {c: (ratios[c], speeds[c]) for c in result.compressors}
    plot = render_scatter(
        points,
        xlabel="compression ratio (%)",
        ylabel="compression speed (MB/s, log)",
        title="Figure 2: ratio vs compression speed (averaged over datasets)",
        log_y=True,
    )
    listing = "\n".join(
        f"  {c:10s} ratio {ratios[c]:6.2f}%  speed {speeds[c]:10.4f} MB/s"
        for c in sorted(result.compressors, key=lambda c: ratios[c])
    )
    return plot + "\n" + listing


def render_fig3(result: EvaluationResult) -> str:
    """Figure 3: ratio vs decompression speed and vs random access speed."""
    ratios = result.average("ratio_pct")
    dec = result.average("decompress_mb_s")
    acc = result.average("access_mb_s")
    left = render_scatter(
        {c: (ratios[c], dec[c]) for c in result.compressors},
        xlabel="compression ratio (%)",
        ylabel="decompression speed (MB/s)",
        title="Figure 3 (left): ratio vs decompression speed",
    )
    right = render_scatter(
        {c: (ratios[c], acc[c]) for c in result.compressors},
        xlabel="compression ratio (%)",
        ylabel="random access speed (MB/s, log)",
        title="Figure 3 (right): ratio vs random access speed",
        log_y=True,
    )
    listing = "\n".join(
        f"  {c:10s} ratio {ratios[c]:6.2f}%  dec {dec[c]:9.2f} MB/s  "
        f"ra {acc[c]:8.3f} MB/s"
        for c in sorted(result.compressors, key=lambda c: ratios[c])
    )
    return left + "\n\n" + right + "\n" + listing
