"""Ablation studies for the design choices called out in DESIGN.md §5.

These go beyond the paper's headline tables and quantify:

1. **Variants** — NeaTS vs LeaTS vs SNeaTS compression time and ratio
   (the §IV-C1 in-text claims: LeaTS ≈5x and SNeaTS ≈13x faster, ratios
   0.89% and 8.18% worse);
2. **Rank structures** — Elias-Fano rank vs the O(1) bitvector rank for the
   fragment lookup of Algorithm 3 (§III-C last paragraph);
3. **Error-bound grid** — the ``E`` stride: denser grids cost partitioning
   time, sparser grids cost compression ratio;
4. **Model set** — leave-one-out over the default four function kinds.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import NeaTS
from ..core.models import DEFAULT_MODELS
from ..data import DATASETS
from .measure import measure_random_access
from .render import render_table

__all__ = [
    "run_variant_ablation",
    "run_rank_ablation",
    "run_eps_grid_ablation",
    "run_model_set_ablation",
]


def _time_compress(compressor, y) -> tuple[float, object]:
    t0 = time.perf_counter()
    compressed = compressor.compress(y)
    return time.perf_counter() - t0, compressed


def run_variant_ablation(datasets=None, n=None) -> str:
    """NeaTS vs LeaTS vs SNeaTS: ratio and compression time."""
    datasets = datasets or ["IT", "US", "CT"]
    rows = []
    for ds in datasets:
        y = DATASETS[ds].generate(n)
        variants = {
            "NeaTS": NeaTS(),
            "LeaTS": NeaTS.linear_only(),
            "SNeaTS": NeaTS.with_model_selection(),
        }
        base_time = base_ratio = None
        for name, comp in variants.items():
            secs, compressed = _time_compress(comp, y)
            assert np.array_equal(compressed.decompress(), y)
            ratio = compressed.compression_ratio()
            if name == "NeaTS":
                base_time, base_ratio = secs, ratio
            rows.append([
                ds, name, f"{100 * ratio:.2f}", f"{secs:.2f}",
                f"{base_time / secs:.2f}x" if secs else "-",
                f"{100 * (ratio - base_ratio) / base_ratio:+.2f}%",
            ])
    return render_table(
        ["Dataset", "Variant", "Ratio(%)", "Time(s)", "Speedup", "Ratio delta"],
        rows,
        title="Ablation: NeaTS variants (paper §IV-C1: LeaTS ~5x, SNeaTS ~13x)",
    )


def run_rank_ablation(datasets=None, n=None, queries=2000) -> str:
    """Elias-Fano rank vs bitvector rank for random access."""
    datasets = datasets or ["IT", "US"]
    rows = []
    for ds in datasets:
        y = DATASETS[ds].generate(n)
        for mode in ("ef", "bitvector"):
            compressed = NeaTS(rank_mode=mode).compress(y)
            spq = measure_random_access(compressed, y, queries=queries)
            rows.append([
                ds, mode, f"{100 * compressed.compression_ratio():.2f}",
                f"{1e6 * spq:.2f}",
            ])
    return render_table(
        ["Dataset", "S.rank via", "Ratio(%)", "us/query"],
        rows,
        title="Ablation: fragment lookup structure (§III-C, O(1) alternative)",
    )


def run_eps_grid_ablation(datasets=None, n=None) -> str:
    """The ``E`` grid density: stride 1 (full) vs 2 (default) vs 4."""
    datasets = datasets or ["IT", "CT"]
    rows = []
    for ds in datasets:
        y = DATASETS[ds].generate(n)
        for stride in (1, 2, 4):
            secs, compressed = _time_compress(NeaTS(eps_stride=stride), y)
            rows.append([
                ds, str(stride),
                f"{100 * compressed.compression_ratio():.2f}",
                f"{secs:.2f}", str(compressed.num_fragments),
            ])
    return render_table(
        ["Dataset", "E stride", "Ratio(%)", "Time(s)", "Fragments"],
        rows,
        title="Ablation: error-bound grid density (E of §III-B)",
    )


def run_model_set_ablation(datasets=None, n=None) -> str:
    """Leave-one-out on the default model set F."""
    datasets = datasets or ["IT", "ECG"]
    rows = []
    for ds in datasets:
        y = DATASETS[ds].generate(n)
        full = NeaTS().compress(y)
        rows.append([ds, "all four", f"{100 * full.compression_ratio():.2f}", "-"])
        for dropped in DEFAULT_MODELS:
            models = tuple(m for m in DEFAULT_MODELS if m != dropped)
            compressed = NeaTS(models=models).compress(y)
            delta = (
                compressed.compression_ratio() - full.compression_ratio()
            ) / full.compression_ratio()
            rows.append([
                ds, f"- {dropped}",
                f"{100 * compressed.compression_ratio():.2f}",
                f"{100 * delta:+.2f}%",
            ])
    return render_table(
        ["Dataset", "Model set F", "Ratio(%)", "Delta"],
        rows,
        title="Ablation: leave-one-out over the function kinds (F of §IV-A)",
    )
