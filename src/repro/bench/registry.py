"""The compressor line-up of the paper's evaluation (§IV-A2).

Factories take the dataset's decimal ``digits`` (only ALP uses it) and return
a fresh compressor.  Order matches Table III: 5 general-purpose, then the
special-purpose family with NeaTS last.
"""

from __future__ import annotations

import numpy as np

from ..baselines import (
    AlpCompressor,
    BrotliLikeCompressor,
    Chimp128Compressor,
    ChimpCompressor,
    DacCompressor,
    GorillaCompressor,
    LeCoCompressor,
    Lz4LikeCompressor,
    SnappyLikeCompressor,
    TSXorCompressor,
    XzCompressor,
    ZstdLikeCompressor,
)
from ..baselines.base import LosslessCompressor
from ..core import NeaTS

__all__ = [
    "NeaTSCompressor",
    "LeaTSCompressor",
    "SNeaTSCompressor",
    "GENERAL_NAMES",
    "SPECIAL_NAMES",
    "ALL_NAMES",
    "make_compressor",
]


class NeaTSCompressor(LosslessCompressor):
    """Adapter presenting :class:`~repro.core.NeaTS` as a baseline-style compressor."""

    name = "NeaTS"
    native_random_access = True

    def __init__(self, **kwargs) -> None:
        self._inner = NeaTS(**kwargs)

    def compress(self, values: np.ndarray):
        return self._inner.compress(self._check_input(values))


class LeaTSCompressor(NeaTSCompressor):
    """LeaTS: the linear-only variant (§IV-C1)."""

    name = "LeaTS"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("models", ("linear",))
        super().__init__(**kwargs)


class SNeaTSCompressor(LosslessCompressor):
    """SNeaTS: model selection on the first 10% of the series (§IV-C1)."""

    name = "SNeaTS"
    native_random_access = True

    def __init__(self, **kwargs) -> None:
        self._inner = NeaTS.with_model_selection(**kwargs)

    def compress(self, values: np.ndarray):
        return self._inner.compress(self._check_input(values))


GENERAL_NAMES = ["Xz", "Brotli*", "Zstd*", "Lz4*", "Snappy*"]
SPECIAL_NAMES = [
    "Chimp128",
    "Chimp",
    "TSXor",
    "DAC",
    "Gorilla",
    "LeCo",
    "ALP",
    "NeaTS",
]
ALL_NAMES = GENERAL_NAMES + SPECIAL_NAMES

_FACTORIES = {
    "Xz": lambda digits: XzCompressor(),
    "Brotli*": lambda digits: BrotliLikeCompressor(),
    "Zstd*": lambda digits: ZstdLikeCompressor(),
    "Lz4*": lambda digits: Lz4LikeCompressor(),
    "Snappy*": lambda digits: SnappyLikeCompressor(),
    "Chimp128": lambda digits: Chimp128Compressor(),
    "Chimp": lambda digits: ChimpCompressor(),
    "TSXor": lambda digits: TSXorCompressor(),
    "DAC": lambda digits: DacCompressor(),
    "Gorilla": lambda digits: GorillaCompressor(),
    "LeCo": lambda digits: LeCoCompressor(),
    "ALP": lambda digits: AlpCompressor(digits=digits),
    "NeaTS": lambda digits: NeaTSCompressor(),
    "LeaTS": lambda digits: LeaTSCompressor(),
    "SNeaTS": lambda digits: SNeaTSCompressor(),
}


def make_compressor(name: str, digits: int = 0):
    """Instantiate a compressor from the Table III line-up by name."""
    try:
        return _FACTORIES[name](digits)
    except KeyError:
        raise ValueError(
            f"unknown compressor {name!r}; known: {', '.join(_FACTORIES)}"
        ) from None
