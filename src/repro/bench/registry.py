"""The compressor line-up of the paper's evaluation (§IV-A2) — a thin shim.

The codecs themselves live in the first-class registry of
:mod:`repro.codecs`; this module only maps the paper's Table III display
names (``"Xz"``, ``"Brotli*"``, ..., ``"NeaTS"``) onto stable codec ids and
keeps the historical benchmark API (:func:`make_compressor`, ``ALL_NAMES``)
working.  Order matches Table III: 5 general-purpose, then the
special-purpose family with NeaTS last.
"""

from __future__ import annotations

from ..codecs import codec_spec, get_codec
from ..codecs.adapters import (
    LeaTSCompressor,
    NeaTSCompressor,
    SNeaTSCompressor,
)

__all__ = [
    "NeaTSCompressor",
    "LeaTSCompressor",
    "SNeaTSCompressor",
    "GENERAL_NAMES",
    "SPECIAL_NAMES",
    "ALL_NAMES",
    "TABLE_TO_CODEC_ID",
    "make_compressor",
]

GENERAL_NAMES = ["Xz", "Brotli*", "Zstd*", "Lz4*", "Snappy*"]
SPECIAL_NAMES = [
    "Chimp128",
    "Chimp",
    "TSXor",
    "DAC",
    "Gorilla",
    "LeCo",
    "ALP",
    "NeaTS",
]
ALL_NAMES = GENERAL_NAMES + SPECIAL_NAMES

#: Table III display name -> codec registry id
TABLE_TO_CODEC_ID = {
    "Xz": "xz",
    "Brotli*": "brotli",
    "Zstd*": "zstd",
    "Lz4*": "lz4",
    "Snappy*": "snappy",
    "Chimp128": "chimp128",
    "Chimp": "chimp",
    "TSXor": "tsxor",
    "DAC": "dac",
    "Gorilla": "gorilla",
    "LeCo": "leco",
    "ALP": "alp",
    "NeaTS": "neats",
    "LeaTS": "leats",
    "SNeaTS": "sneats",
}


def make_compressor(name: str, digits: int = 0):
    """Instantiate a compressor from the Table III line-up by name.

    Accepts both the paper's display names (``"Brotli*"``) and registry ids
    (``"brotli"``); ``digits`` is forwarded to codecs that consume it (ALP).
    """
    codec_id = TABLE_TO_CODEC_ID.get(name, name)
    try:
        spec = codec_spec(codec_id)
    except ValueError:
        known = ", ".join(list(TABLE_TO_CODEC_ID))
        raise ValueError(f"unknown compressor {name!r}; known: {known}") from None
    params = {"digits": digits} if spec.needs_digits else {}
    return get_codec(codec_id, **params)
