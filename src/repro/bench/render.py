"""Plain-text rendering of the reproduced tables and figures."""

from __future__ import annotations

__all__ = ["render_table", "render_scatter"]


def render_table(
    headers: list[str],
    rows: list[list[str]],
    title: str = "",
    highlight: dict[tuple[int, int], str] | None = None,
) -> str:
    """Fixed-width ASCII table.  ``highlight`` maps (row, col) to a marker."""
    highlight = highlight or {}
    cells = [list(map(str, row)) for row in rows]
    for (r, c), marker in highlight.items():
        if 0 <= r < len(cells) and 0 <= c < len(cells[r]):
            cells[r][c] = f"{cells[r][c]}{marker}"
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_scatter(
    points: dict[str, tuple[float, float]],
    xlabel: str,
    ylabel: str,
    title: str = "",
    width: int = 68,
    height: int = 20,
    log_y: bool = False,
) -> str:
    """A labelled ASCII scatter plot (one marker per named series point).

    Used for the figure reproductions: each compressor contributes one
    (x, y) trade-off point, mirroring the paper's Figures 2 and 3.
    """
    import math

    if not points:
        return "(no points)"
    xs = [p[0] for p in points.values()]
    ys = [p[1] for p in points.values()]
    if log_y:
        ys = [math.log10(max(y, 1e-12)) for y in ys]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    x_span = (x1 - x0) or 1.0
    y_span = (y1 - y0) or 1.0

    grid = [[" "] * width for _ in range(height)]
    labels = []
    for idx, (name, (px, py)) in enumerate(sorted(points.items())):
        if log_y:
            py = math.log10(max(py, 1e-12))
        col = int((px - x0) / x_span * (width - 1))
        row = height - 1 - int((py - y0) / y_span * (height - 1))
        marker = chr(ord("A") + idx % 26)
        grid[row][col] = marker
        labels.append(f"  {marker} = {name}")
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} (top={'10^%.2f' % y1 if log_y else f'{y1:.1f}'})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel}: {x0:.1f} .. {x1:.1f}")
    lines.extend(labels)
    return "\n".join(lines)
