"""NeaTS: learned compression of nonlinear time series with random access.

A pure-Python reproduction of the ICDE 2025 paper, including the lossless
NeaTS compressor (with LeaTS and SNeaTS variants), the lossy NeaTS-L, every
baseline of the paper's evaluation, synthetic versions of its 16 datasets,
and a benchmark harness regenerating every table and figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import NeaTS
>>> y = (100 * np.sin(np.arange(5000) / 50)).astype(np.int64)
>>> c = NeaTS().compress(y)
>>> bool(np.array_equal(c.decompress(), y))
True
"""

from .core import (
    CompressedSeries,
    LossySeries,
    NeaTS,
    NeaTSLossy,
    default_eps_set,
)
from .data import dataset_names, load

__version__ = "1.0.0"

__all__ = [
    "NeaTS",
    "NeaTSLossy",
    "CompressedSeries",
    "LossySeries",
    "default_eps_set",
    "load",
    "dataset_names",
    "__version__",
]
