"""NeaTS: learned compression of nonlinear time series with random access.

A pure-Python reproduction of the ICDE 2025 paper, including the lossless
NeaTS compressor (with LeaTS and SNeaTS variants), the lossy NeaTS-L, every
baseline of the paper's evaluation, synthetic versions of its 16 datasets,
and a benchmark harness regenerating every table and figure.

All compressors are first-class codecs behind one facade: pick any id from
:func:`available_codecs` — ``"neats"``, ``"gorilla"``, ``"zstd"``, ... —
compress, query, and persist through the same API.  That includes the
paper's *lossy* side (Table II): ``"neats_l"``, ``"pla"``, and ``"aa"``
register with ``lossy=True`` and a required ``eps`` bound, produce
:class:`~repro.baselines.base.LossyCompressed` objects guaranteeing
``|f(x_k) - y_k| <= eps``, and persist natively — a saved lossy archive
reopens into the identical approximation without re-running the
compressor::

    lossy = repro.compress(y, codec="pla", eps=0.5)
    lossy.max_error(y)                         # measured, <= 0.5
    repro.save("approx.rpac", lossy)           # fitted segments, not values

Quickstart
----------
>>> import numpy as np
>>> import repro
>>> y = (100 * np.sin(np.arange(5000) / 50)).astype(np.int64)
>>> c = repro.compress(y)                      # default codec: "neats"
>>> bool(np.array_equal(c.decompress(), y))
True
>>> int(c.access(1234)) == int(y[1234])        # random access, no decode
True
>>> g = repro.compress(y, codec="gorilla")     # same API, any codec
>>> c.compression_ratio() < g.compression_ratio()
True

Persistence (any codec, one self-describing archive format)::

    repro.save("series.rpac", c, digits=2)     # atomic: temp + fsync + rename
    archive = repro.open("series.rpac")        # knows its codec and digits
    archive.access(1234); archive.decompress_range(100, 200)

Cold-query fast path: ``repro.open(path, lazy=True)`` memory-maps the
archive and parses it zero-copy on first touch — every codec loads its
native byte layout directly off the map, no recompression, crc checked on
first decode.

Streaming ingest: :func:`append_open` opens (or creates) an *appendable*
archive — every ``append(values)`` compresses only the new chunk and lands
it as one fsync'd tail record, O(new values) however large the sealed
history, and ``seal()`` compacts the records into a one-shot archive.
``repro.open`` reads appendable archives transparently (eager or lazy,
with per-record crc checks), and a tail record torn by a crash is detected
and skipped with every sealed record intact::

    log = repro.append_open("ingest.rpal", codec="gorilla")
    log.append(batch); log.append(more)        # durable on return
    repro.open("ingest.rpal").decompress()     # one logical series
    log.seal()                                 # compact to RPAC0001

Many series at once: :func:`compress_many` fans compression out over a
process pool, and :class:`SeriesDB` is a durable shard-per-series store
(one tiered-store shard per series id, pooled batch ingest, background
compaction)::

    out = repro.compress_many(series_by_id, codec="gorilla", workers=4)
    db = repro.SeriesDB("dbdir", hot_codec="gorilla", cold_codec="neats")
    db.ingest_many(series_by_id, workers=4); db.compact(); db.flush()

Past one directory: :class:`PartitionedSeriesDB` shards the keyspace over
N independent SeriesDB partitions (hash-placed series, per-partition
locks/WALs, group-commit fsyncs, process fan-out for ingest and
compaction, scatter-gather reads), behind the same ``SeriesStore``
protocol — :func:`open_store` opens either kind::

    pdb = repro.PartitionedSeriesDB("bigdir", partitions=4)
    pdb.ingest_many(series_by_id, workers=4)   # one fsync per partition
    repro.open_store("bigdir").access("cpu", 123)

Integrity tooling: :func:`fsck` structurally verifies any archive or
SeriesDB directory offline (``deep=True`` decodes every frame), and
:func:`run_lint` runs the repo's AST-based invariant linter — both also
exposed as ``repro fsck`` / ``repro lint`` on the CLI::

    report = repro.fsck("series.rpac", deep=True)
    report.ok, report.exit_code                # scripting-friendly

Lower-level entry points remain available: :class:`NeaTS` for direct use,
``repro.codecs`` for the registry, ``repro.store`` for the store
subsystem, ``repro.analysis`` for the integrity tools, ``repro.bench``
for the paper's harness.
"""

from .analysis import FsckReport, fsck_path as fsck, run_lint

from .baselines import Compressed, LossyCompressed
from .codecs import (
    AppendableArchive,
    Archive,
    append_open,
    available_codecs,
    codec_spec,
    compress,
    get_codec,
    open_archive,
    register_codec,
    save,
)
from .codecs import open_archive as open  # noqa: A001  (facade: repro.open)
from .core import (
    CompressedSeries,
    LossySeries,
    NeaTS,
    NeaTSLossy,
    TieredStore,
    default_eps_set,
)
from .data import dataset_names, load
from .store import (
    PartitionedSeriesDB,
    SeriesDB,
    SeriesStore,
    compress_many,
    compress_many_frames,
    open_store,
)

__version__ = "2.6.0"

# REPRO_SANITIZE=1 turns on the runtime sanitizer for the whole process:
# mmap/lock instrumentation with a leak report at interpreter exit (see
# repro.analysis.sanitizer).  Opt-in via environment so production imports
# carry zero overhead.
import os as _os

if _os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
    "", "0", "false", "off",
):
    from .analysis.sanitizer import enable as _sanitizer_enable

    _sanitizer_enable(report_at_exit=True)

# NOTE: "open" is deliberately absent from __all__ — `from repro import *`
# must not shadow the builtin; use repro.open or open_archive explicitly.
__all__ = [
    "compress",
    "compress_many",
    "compress_many_frames",
    "SeriesDB",
    "SeriesStore",
    "PartitionedSeriesDB",
    "open_store",
    "save",
    "open_archive",
    "append_open",
    "Archive",
    "AppendableArchive",
    "Compressed",
    "LossyCompressed",
    "available_codecs",
    "codec_spec",
    "get_codec",
    "register_codec",
    "NeaTS",
    "NeaTSLossy",
    "TieredStore",
    "CompressedSeries",
    "LossySeries",
    "default_eps_set",
    "load",
    "dataset_names",
    "fsck",
    "FsckReport",
    "run_lint",
    "__version__",
]
