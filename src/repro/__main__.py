"""``python -m repro`` — the compression CLI (see :mod:`repro.cli`)."""

import sys

from .cli import main

sys.exit(main())
