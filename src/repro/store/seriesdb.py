"""SeriesDB: a multi-series store with one shard per series id.

The ROADMAP's "shard-per-series store", grown out of the single-series
:class:`~repro.core.tiered.TieredStore`: a :class:`SeriesDB` is a
directory holding one tiered-store snapshot (``TieredStore.to_bytes``)
per series, plus a JSON manifest mapping series id -> shard path, codec
ids, value counts, and a crc32 of the shard bytes::

    db-root/
      MANIFEST.json
      shards/
        cpu-0000.tier        # TieredStore snapshot (RPTS0001)
        mem-0001.tier

Ingestion follows the paper's §IV-C1 deployment: values stream into each
shard's hot tier (a cheap codec like Gorilla), and :meth:`compact`
plays the "run NeaTS later on (or in the background)" role across the
whole fleet of shards — any shard whose hot tier exceeds a threshold is
consolidated into its strongly-compressed cold tier.  Batch ingest fans
hot-block compression out over a process pool via
:func:`repro.store.compress_many_frames`.

>>> import numpy as np, tempfile
>>> from repro.store import SeriesDB
>>> root = tempfile.mkdtemp()
>>> db = SeriesDB(root, seal_threshold=256, cold_codec="leats")
>>> counts = db.ingest_many({"a": np.arange(1000), "b": np.arange(500) * 2})
>>> db.flush(); db2 = SeriesDB.open(root)
>>> int(db2.access("b", 10)), int(db2.count("a"))
(20, 1000)

Shards load on demand (opening a database touches only the manifest) and
sit in a bounded LRU cache: up to ``cache_capacity`` clean open shards are
kept parsed in memory, so repeated ``access``/``range`` calls on hot
series skip the load entirely.  Dirty shards (unflushed mutations) are
pinned — the cache never evicts work — and a cached shard is dropped and
re-read whenever its manifest generation (the shard filename) changes
under it.  With ``lazy=True`` shard files are memory-mapped and their
frames parsed zero-copy off the map (the lazy open path of
:mod:`repro.codecs.container`) instead of being read and copied.

Ingested values are durable *before* :meth:`flush`: every ``ingest`` /
``ingest_many`` first lands the new values in the series' **write-ahead
append log** — an appendable archive (``RPAL0001``, see
:class:`repro.codecs.container.AppendableArchive`) compressed with the hot
codec, one fsync'd tail record per batch — and only then mutates the
in-memory shard.  The manifest references the log before any data lands
in it, so after a crash the next open finds the log, replays it on top of
the shard snapshot, and re-marks the shard dirty; a record torn by a
mid-append crash is detected and skipped, keeping every completed batch.
:meth:`flush` consolidates: the snapshot absorbs the logged values, the
manifest commit rotates to a fresh (empty) log generation, and the old
log file is dropped post-commit.

All other mutations stay in memory until :meth:`flush`, and every shard
read is crc-checked on the way back in — a swapped or bit-rotted shard
file fails loudly instead of answering queries from the wrong series.

Thread safety: every public method takes the database's re-entrant lock
(``self._lock``), so one :class:`SeriesDB` handle can be shared by many
threads — the shard cache, dirty set, WAL writers, and manifest state are
only ever mutated under it.  Private helpers are documented as
called-under-lock (the lock is taken at the public API boundary), and the
``repro lint`` lock-discipline rule (RPR301) enforces the convention
structurally.  The lock serialises whole operations; finer-grained
multi-reader/single-writer locking per series is the ROADMAP's service
layer work.
"""

from __future__ import annotations

import json
import re
import threading
import zlib
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..baselines.base import Compressed
from ..codecs.container import (
    AppendableArchive,
    GroupLog,
    mmap_view,
    open_archive,
    read_group_log,
)
from ..codecs.container import write_atomic as _write_atomic
from ..core.tiered import TieredStore
from .parallel import compress_many_frames

__all__ = ["SeriesDB"]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "RPDB0001"
DEFAULT_CACHE_CAPACITY = 16
_SHARD_DIR = "shards"
_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


class SeriesDB:
    """A durable multi-series store: one :class:`TieredStore` shard per id.

    Parameters
    ----------
    root:
        Database directory.  Created (with a fresh manifest) when it does
        not yet hold one; opening an existing database ignores the codec
        arguments in favour of the persisted configuration.
    seal_threshold / hot_codec / cold_codec / hot_params / cold_params:
        Per-shard :class:`TieredStore` configuration, recorded in the
        manifest at creation time.  Codecs must be registry ids (shards
        are persisted).
    allow_lossy:
        Tier codecs are lossless by default: a lossy cold tier silently
        replacing exact history is a data-loss decision, so it must be
        opted into explicitly.  With ``allow_lossy=True`` a lossy
        ``cold_codec`` (e.g. ``"neats_l"`` with ``cold_params={"eps":
        ...}``) is accepted and recorded in the manifest; queries over
        compacted ranges then answer within that ε.  The *hot* tier can
        never be lossy — consolidation decodes it, and re-approximating
        an approximation would compound the error beyond any bound.
    group_commit:
        Durability layout, fixed at creation time and recorded in the
        manifest.  ``False`` (the default) keeps one append log per
        series: an ``ingest_many`` batch touching K series costs K
        fsyncs.  ``True`` replaces them with ONE shared group log
        (:class:`~repro.codecs.container.GroupLog`): each record carries
        its series id, so a whole batch lands as a single fsync'd tail
        write — the group commit.  Recovery regroups records per series
        and replays them exactly like per-series logs.
    cache_capacity:
        Maximum number of *clean* open shards kept parsed in the LRU
        cache (``None`` = unbounded).  Dirty shards are pinned until
        :meth:`flush` and never count against evictions.  A runtime
        option — not persisted in the manifest.
    lazy:
        When true, shard files are memory-mapped and parsed zero-copy
        instead of read into a bytes copy.  The map stays referenced by
        the parsed blocks, so it remains valid even after a later flush
        replaces the shard file.  Also a runtime option.
    """

    def __init__(
        self,
        root,
        *,
        seal_threshold: int = 4096,
        hot_codec: str = "gorilla",
        cold_codec: str = "neats",
        hot_params: dict | None = None,
        cold_params: dict | None = None,
        allow_lossy: bool = False,
        group_commit: bool = False,
        cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
        lazy: bool = False,
    ) -> None:
        # Created before any shared state: every public method (and the
        # recovery path below) runs under this re-entrant lock.
        self._lock = threading.RLock()
        self._closed = False
        self._root = Path(root)
        if cache_capacity is not None and cache_capacity < 1:
            raise ValueError("cache_capacity must be positive (or None)")
        self._cache_capacity = cache_capacity
        self._lazy = bool(lazy)
        self._stores: OrderedDict[str, TieredStore] = OrderedDict()
        self._cached_gen: dict[str, str] = {}  # shard filename at load time
        self._dirty: set[str] = set()
        self._wals: dict[str, AppendableArchive] = {}  # open append-log writers
        # Append-log *generation names* the on-disk manifest references.
        # Tracking names (not series ids) matters: a flush that dies between
        # rotating a log name in memory and committing the manifest must
        # force a re-commit before the next record lands, or data would land
        # in a file recovery cannot find.
        self._wal_synced: set[str] = set()
        # Group-commit state: in group mode all series share ONE log (see
        # _append_wal_group); these stay inert in per-series-WAL mode.
        self._group_name: str | None = None
        self._group_log: GroupLog | None = None
        self._group_pending: dict[str, list[np.ndarray]] = {}
        manifest_path = self._root / MANIFEST_NAME
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text("utf-8"))
            if manifest.get("format") != MANIFEST_FORMAT:
                raise ValueError(
                    f"{manifest_path}: not a SeriesDB manifest "
                    f"(format {manifest.get('format')!r})"
                )
            self._config = {
                key: manifest[key]
                for key in (
                    "seal_threshold",
                    "hot_codec",
                    "hot_params",
                    "cold_codec",
                    "cold_params",
                )
            }
            # Pre-lossy manifests carry no flag; their codecs are lossless.
            self._config["allow_lossy"] = bool(manifest.get("allow_lossy", False))
            # Pre-group-commit manifests carry no flag; they use per-series
            # logs.  The mode is fixed at creation time — the constructor
            # argument is ignored for an existing database, like the codecs.
            self._config["group_commit"] = bool(manifest.get("group_commit", False))
            self._group_name = manifest.get("group_wal")
            self._series: dict[str, dict] = dict(manifest["series"])
            self._next_shard = int(manifest["next_shard"])
            self._wal_synced = self._wal_names()
            self._recover_append_logs()
        else:
            if not isinstance(hot_codec, str) or not isinstance(cold_codec, str):
                raise ValueError(
                    "SeriesDB requires codec ids (e.g. 'gorilla', 'neats'); "
                    "compressor instances cannot be persisted"
                )
            if int(seal_threshold) < 1:
                raise ValueError("seal_threshold must be positive")
            self._check_tier_codecs(
                hot_codec, hot_params, cold_codec, cold_params, allow_lossy
            )
            self._config = {
                "seal_threshold": int(seal_threshold),
                "hot_codec": hot_codec,
                "hot_params": dict(hot_params or {}),
                "cold_codec": cold_codec,
                "cold_params": dict(cold_params or {}),
                "allow_lossy": bool(allow_lossy),
                "group_commit": bool(group_commit),
            }
            self._series = {}
            self._next_shard = 0
            (self._root / _SHARD_DIR).mkdir(parents=True, exist_ok=True)
            self._write_manifest()

    @staticmethod
    def _check_tier_codecs(
        hot_codec: str,
        hot_params: dict | None,
        cold_codec: str,
        cold_params: dict | None,
        allow_lossy: bool,
    ) -> None:
        """Enforce the lossy-tier policy and probe both codec constructions.

        Runs at database creation time, before the manifest is written: an
        invalid configuration (unknown codec, missing or nonsense ``eps``,
        bad constructor param) must fail here rather than persist a
        manifest whose first ingest dies.
        """
        from ..codecs import codec_spec, get_codec

        if codec_spec(hot_codec).lossy:
            raise ValueError(
                f"hot tier cannot use lossy codec {hot_codec!r}: compaction "
                "decodes the hot tier, and re-approximating an approximation "
                "would compound the error beyond any bound"
            )
        if codec_spec(cold_codec).lossy and not allow_lossy:
            raise ValueError(
                f"cold codec {cold_codec!r} is lossy; pass allow_lossy=True "
                "to opt into error-bounded (approximate) compacted history"
            )
        for label, codec, params in (
            ("hot", hot_codec, hot_params),
            ("cold", cold_codec, cold_params),
        ):
            try:
                get_codec(codec, **dict(params or {}))
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"invalid {label} tier configuration: {exc}"
                ) from exc

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def open(
        cls,
        root,
        *,
        cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
        lazy: bool = False,
    ) -> "SeriesDB":
        """Open an existing database; raises when ``root`` holds none.

        ``cache_capacity`` and ``lazy`` are runtime options (see the
        constructor); the persisted codec configuration always wins.
        """
        root = Path(root)
        if not (root / MANIFEST_NAME).exists():
            raise ValueError(f"{root}: no SeriesDB manifest found")
        return cls(root, cache_capacity=cache_capacity, lazy=lazy)

    def __enter__(self) -> "SeriesDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    def close(self) -> None:
        """Flush dirty shards, release the cache and WAL handles, poison.

        Dropping the cache releases any mmap-backed shard views the LRU was
        pinning (the ``lazy=True`` open path), so a long-lived process can
        hand the directory to another owner without waiting for GC.  After
        the first close the handle is dead: every later public call raises
        ``ValueError`` (never ``AttributeError`` — no state is unset), and
        a second ``close()`` is a no-op.  Closing races safely with
        in-flight readers — close waits for the lock, and a reader that
        loses the race gets the consistent ``ValueError`` on its *next*
        call; values it already obtained stay valid.
        """
        with self._lock:
            if self._closed:
                return
            self.flush()
            self._stores.clear()
            self._cached_gen.clear()
            self._wals.clear()
            self._group_log = None
            self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the handle is then unusable)."""
        return self._closed

    def _check_open(self) -> None:
        """Called (under the lock) by every public method: dead means dead."""
        if self._closed:
            raise ValueError(
                f"SeriesDB at {self._root} is closed; reopen with "
                "SeriesDB.open() for a fresh handle"
            )

    # -- introspection --------------------------------------------------------

    @property
    def root(self) -> Path:
        """The database directory."""
        return self._root

    def series_ids(self) -> list[str]:
        """Every series id, in ingestion order."""
        with self._lock:
            self._check_open()
            return list(self._series)

    def __contains__(self, series_id: str) -> bool:
        with self._lock:
            self._check_open()
            return series_id in self._series

    def __len__(self) -> int:
        with self._lock:
            self._check_open()
            return len(self._series)

    def count(self, series_id: str) -> int:
        """Number of values in ``series_id`` — manifest-only, no shard load."""
        with self._lock:
            self._check_open()
            if series_id in self._stores:
                return len(self._stores[series_id])
            return int(self._entry(series_id)["count"])

    def digits(self, series_id: str) -> int:
        """Decimal scaling recorded for ``series_id`` at ingest time."""
        with self._lock:
            self._check_open()
            return int(self._entry(series_id).get("digits", 0))

    def cache_info(self) -> dict:
        """Shard-cache occupancy: capacity, open shards, pinned (dirty) ones."""
        with self._lock:
            self._check_open()
            return {
                "capacity": self._cache_capacity,
                "cached": len(self._stores),
                "dirty": len(self._dirty),
                "lazy": self._lazy,
            }

    def info(self) -> dict:
        """Configuration plus a per-series summary (counts, tiers, shards)."""
        with self._lock:
            self._check_open()
            series = {}
            for sid, entry in self._series.items():
                entry = dict(entry)
                if sid in self._stores:  # live stats beat stale manifest
                    report = self._stores[sid].tier_report()
                    entry["count"] = len(self._stores[sid])
                    entry["hot_values"] = report["hot_values"]
                    entry["cold_values"] = report["cold_values"]
                    entry["buffer_values"] = report["buffer_values"]
                series[sid] = entry
            return {**self._config, "root": str(self._root), "series": series}

    # -- ingestion ------------------------------------------------------------

    def ingest(self, series_id: str, values, *, digits: int | None = None) -> int:
        """Append ``values`` to ``series_id`` (creating it); returns its count.

        ``digits`` records the values' decimal scaling (§II of the paper)
        in the manifest, like the archive container does; appending to an
        existing series with a different scaling raises.

        The values are durable when this returns: they land in the series'
        append log (one fsync'd record) before the in-memory shard is
        touched, and :meth:`flush` later consolidates them into the shard
        snapshot.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError(f"series {series_id!r}: expected a 1-D array")
        with self._lock:
            self._check_open()
            self._check_digits(series_id, digits)
            store = self._store_for_ingest(series_id)
            self._apply_digits(series_id, digits)
            if len(values):
                if self._config["group_commit"]:
                    self._append_wal_group([(series_id, values)])
                else:
                    self._append_wal(series_id, values)
            store.extend(values)
            self._dirty.add(series_id)
            return len(store)

    def ingest_many(
        self, series_map, *, workers: int | None = None, digits: int | None = None
    ) -> dict:
        """Batch ingest: append every series in ``series_map``, pooled.

        Full ``seal_threshold``-sized hot blocks from all series are
        compressed together through one
        :func:`~repro.store.compress_many_frames` fan-out (``workers``
        processes), then adopted into each shard in order; partial-buffer
        heads and tails take the serial path.  The resulting shards are
        byte-identical to serial :meth:`ingest` calls.

        Returns series id -> new total count.
        """
        with self._lock:
            self._check_open()
            threshold = int(self._config["seal_threshold"])
            # Phase 1 — validate everything and plan chunk boundaries without
            # mutating any store, so a bad series (or a pool failure in phase
            # 2) cannot leave the batch half-applied.
            chunks: dict = {}
            plans: list[tuple[str, np.ndarray, int, int]] = []
            for sid, values in series_map.items():
                values = np.asarray(values, dtype=np.int64)
                if values.ndim != 1:
                    raise ValueError(f"series {sid!r}: expected a 1-D array")
                self._check_digits(sid, digits)
                if sid in self._series:
                    buffered = self._load(sid).tier_report()["buffer_values"]
                else:
                    if not sid or not isinstance(sid, str):
                        raise ValueError(f"invalid series id {sid!r}")
                    buffered = 0
                # A partially filled buffer is topped up serially so that
                # pooled chunk boundaries line up with what extend() produces.
                head = min(threshold - buffered, len(values)) if buffered else 0
                body = values[head:]
                n_chunks = len(body) // threshold
                for i in range(n_chunks):
                    chunks[(sid, i)] = body[i * threshold : (i + 1) * threshold]
                plans.append((sid, values, head, n_chunks))
            # Phase 2 — the pooled fan-out (raises before any store changes).
            frames = compress_many_frames(
                chunks,
                self._config["hot_codec"],
                workers=workers,
                **self._config["hot_params"],
            )
            # Phase 3 — apply.  Register every series and its log generation
            # first, so the whole batch needs one manifest commit instead of
            # one per new series inside _append_wal.
            counts = {}
            stores = {}
            group_mode = bool(self._config["group_commit"])
            pending_log: list[tuple[str, np.ndarray]] = []
            for sid, values, head, n_chunks in plans:
                stores[sid] = self._store_for_ingest(sid)
                self._apply_digits(sid, digits)
                if len(values):
                    if group_mode:
                        pending_log.append((sid, values))
                        if self._group_name is None:
                            self._group_name = self._group_gen_name()
                    elif "wal" not in self._series[sid]:
                        self._series[sid]["wal"] = self._gen_name(sid, ".wal")
            self._sync_wal_manifest()  # no-op when every log is referenced
            if pending_log:  # the group commit: ONE fsync for the whole batch
                self._append_wal_group(pending_log)
            for sid, values, head, n_chunks in plans:
                store = stores[sid]
                if len(values) and not group_mode:
                    # One durable append-log record per series, routed
                    # through the coalescing writer shared with group mode.
                    self._append_wal(sid, values, batched=True)
                self._dirty.add(sid)
                if head:
                    store.extend(values[:head])
                for i in range(n_chunks):
                    store.adopt_sealed(Compressed.from_bytes(frames[(sid, i)]))
                store.extend(values[head + n_chunks * threshold :])
                counts[sid] = len(store)
            return counts

    def _store_for_ingest(self, series_id: str) -> TieredStore:
        if series_id in self._series:
            return self._load(series_id)
        if not series_id or not isinstance(series_id, str):
            raise ValueError(f"invalid series id {series_id!r}")
        store = self._fresh_store()
        self._series[series_id] = {
            "shard": self._shard_name(series_id),
            "count": 0,
            "crc32": 0,
            "digits": 0,
            "hot_codec": self._config["hot_codec"],
            "cold_codec": self._config["cold_codec"],
            "hot_values": 0,
            "cold_values": 0,
            "buffer_values": 0,
        }
        self._stores[series_id] = store
        # A brand-new shard exists only in memory: pin it (dirty) so the
        # LRU cache cannot evict it before the first flush writes its file.
        self._dirty.add(series_id)
        self._evict()
        return store

    # -- queries --------------------------------------------------------------

    def access(self, series_id: str, k: int) -> int:
        """The value at position ``k`` of ``series_id``."""
        with self._lock:
            self._check_open()
            return self._load(series_id).access(k)

    def range(self, series_id: str, lo: int, hi: int) -> np.ndarray:
        """Values at positions ``[lo, hi)`` of ``series_id``."""
        with self._lock:
            self._check_open()
            return self._load(series_id).range(lo, hi)

    def decompress(self, series_id: str) -> np.ndarray:
        """Every value of ``series_id``, in order."""
        with self._lock:
            self._check_open()
            return self._load(series_id).decompress()

    def store(self, series_id: str) -> TieredStore:
        """The live :class:`TieredStore` shard backing ``series_id``.

        The returned handle is pinned in the shard cache (marked dirty), so
        mutating it directly (e.g. ``consolidate``) can never be orphaned
        by an LRU eviction.  The shard is rewritten on the next
        :meth:`flush` — byte-identically when it was not actually mutated.
        """
        with self._lock:
            self._check_open()
            live = self._load(series_id)
            self._dirty.add(series_id)
            return live

    def mark_dirty(self, series_id: str) -> None:
        """Flag a shard as modified outside the SeriesDB API."""
        with self._lock:
            self._check_open()
            self._load(series_id)  # flush rewrites from the live store
            self._dirty.add(series_id)

    # -- maintenance ----------------------------------------------------------

    def compact(self, hot_threshold: int = 0) -> list[str]:
        """Consolidate every shard whose sealed hot tier exceeds the threshold.

        The background-recompression policy of §IV-C1 applied across
        shards: a shard with more than ``hot_threshold`` values in sealed
        hot blocks has them migrated into its cold tier (one strong
        ``cold_codec`` run).  Compacted shards are flushed immediately.
        Returns the ids that were compacted.
        """
        with self._lock:
            self._check_open()
            compacted = []
            for sid in self._series:
                if sid in self._stores:
                    hot_values = self._stores[sid].tier_report()["hot_values"]
                else:
                    hot_values = int(self._series[sid]["hot_values"])
                if hot_values > hot_threshold:
                    store = self._load(sid)
                    store.consolidate()
                    self._dirty.add(sid)
                    compacted.append(sid)
            if compacted:
                self.flush()  # re-entrant: same lock
            return compacted

    def flush(self) -> None:
        """Write every modified shard and the manifest back to disk.

        Crash consistency: a rewritten shard gets a *fresh* generation
        filename, and the old file is deleted only after the manifest
        commits — a crash mid-flush leaves the manifest pointing at the
        previous intact shards (plus, at worst, some orphan files), never
        at a shard whose crc it cannot verify.  The same commit rotates
        each flushed series to a fresh (empty) append-log generation: the
        snapshot now holds everything the old log held, so the old log
        file is dropped post-commit alongside the replaced shard.
        """
        with self._lock:
            self._check_open()
            replaced: list[Path] = []
            for sid in sorted(self._dirty):
                store = self._stores[sid]
                blob = store.to_bytes()
                entry = self._series[sid]
                old = self._root / entry["shard"]
                # Write the snapshot before touching the entry: if the write
                # raises (disk full), the entry still points at the previous
                # intact shard and log, and a later manifest commit (e.g.
                # from _sync_wal_manifest) stays consistent.
                shard = self._shard_name(sid) if old.exists() else entry["shard"]
                _write_atomic(self._root / shard, blob)
                if shard != entry["shard"]:  # rewrite: drop old post-commit
                    entry["shard"] = shard
                    replaced.append(old)
                self._cached_gen[sid] = shard
                old_wal = entry.get("wal")
                if old_wal and (self._root / old_wal).exists():
                    entry["wal"] = self._gen_name(sid, ".wal")
                    replaced.append(self._root / old_wal)
                self._wals.pop(sid, None)
                report = store.tier_report()
                entry.update(
                    count=len(store),
                    crc32=zlib.crc32(blob),
                    hot_values=report["hot_values"],
                    cold_values=report["cold_values"],
                    buffer_values=report["buffer_values"],
                )
            # Group mode rotates the ONE shared log: everything it held is
            # dirty, so everything it held was just flushed into snapshots.
            if self._group_name and (self._root / self._group_name).exists():
                replaced.append(self._root / self._group_name)
                self._group_name = self._group_gen_name()
                self._group_log = None
            self._dirty.clear()
            self._write_manifest()  # the commit point
            self._wal_synced = self._wal_names()
            for path in replaced:
                path.unlink(missing_ok=True)
            self._evict()  # flushed shards are clean and evictable again

    # -- internals ------------------------------------------------------------

    def _check_digits(self, series_id: str, digits: int | None) -> None:
        """Reject an append whose decimal scaling disagrees with the recorded one.

        The gate uses the *live* store length for cached shards: the
        manifest ``count`` stays at its last-flushed value (0 for a brand
        new series), so gating on it alone would let two pre-flush ingests
        with conflicting ``digits`` silently overwrite the series' scaling.
        """
        if digits is None or series_id not in self._series:
            return
        entry = self._series[series_id]
        recorded = int(entry.get("digits", 0))
        if series_id in self._stores:
            count = len(self._stores[series_id])
        else:
            count = int(entry["count"])
        if count and int(digits) != recorded:
            raise ValueError(
                f"series {series_id!r} was ingested with digits={recorded}; "
                f"appending digits={int(digits)} values would mix scales"
            )

    def _apply_digits(self, series_id: str, digits: int | None) -> None:
        if digits is not None:
            self._series[series_id]["digits"] = int(digits)

    def _fresh_store(self) -> TieredStore:
        """An empty shard configured like every other shard in this DB."""
        return TieredStore(
            seal_threshold=self._config["seal_threshold"],
            hot_codec=self._config["hot_codec"],
            cold_codec=self._config["cold_codec"],
            hot_params=self._config["hot_params"],
            cold_params=self._config["cold_params"],
        )

    def _gen_name(self, series_id: str, suffix: str) -> str:
        """A fresh, never-reused generation filename for ``series_id``."""
        stem = _UNSAFE.sub("_", series_id)[:48] or "series"
        name = f"{_SHARD_DIR}/{stem}-{self._next_shard:04d}{suffix}"
        self._next_shard += 1
        return name

    def _shard_name(self, series_id: str) -> str:
        return self._gen_name(series_id, ".tier")

    # -- the write-ahead append log -------------------------------------------

    def _append_wal(
        self, series_id: str, values: np.ndarray, *, batched: bool = False
    ) -> None:
        """Land ``values`` in the series' append log, durably, before the store.

        The log is an appendable archive compressed with the hot codec —
        the same cheap streaming codec the values are headed for anyway.
        The manifest is committed first whenever it does not yet reference
        this log generation (new series, or first append after a rotation
        on an old-format manifest): crash recovery finds logs through the
        manifest, so data must never land in an unreferenced file.

        ``batched`` routes the write through
        :meth:`~repro.codecs.container.AppendableArchive.append_many` —
        byte-identical on disk, used by :meth:`ingest_many` so the batch
        path exercises the same coalescing writer group commit relies on.
        """
        entry = self._series[series_id]
        if "wal" not in entry:
            entry["wal"] = self._gen_name(series_id, ".wal")
        if entry["wal"] not in self._wal_synced:
            self._sync_wal_manifest()
        wal = self._wals.get(series_id)
        if wal is None:
            path = self._root / entry["wal"]
            if path.exists():
                wal = AppendableArchive.open(path)
            else:
                wal = AppendableArchive.create(
                    path,
                    codec=self._config["hot_codec"],
                    digits=int(entry.get("digits", 0)),
                    **self._config["hot_params"],
                )
            self._wals[series_id] = wal
        if batched:
            wal.append_many([values])
        else:
            wal.append(values)

    def _append_wal_group(self, batches: list[tuple[str, np.ndarray]]) -> None:
        """Land a whole ingest batch in the shared group log — ONE fsync.

        The group-commit counterpart of :meth:`_append_wal` (called under
        the lock, group mode only): every ``(series id, values)`` pair in
        ``batches`` becomes one record of the database's single
        :class:`~repro.codecs.container.GroupLog`, and all of them share
        one tail write + fsync.  The same manifest-first discipline
        applies — the log generation must be referenced by the on-disk
        manifest before data lands in it.  Records carry series id and
        digits, so recovery can even re-register a series whose manifest
        entry never committed.
        """
        if self._group_name is None:
            self._group_name = self._group_gen_name()
        if self._group_name not in self._wal_synced:
            self._sync_wal_manifest()
        log = self._group_log
        if log is None:
            path = self._root / self._group_name
            if path.exists():
                log = GroupLog.open(path)
            else:
                log = GroupLog.create(
                    path,
                    codec=self._config["hot_codec"],
                    **self._config["hot_params"],
                )
            self._group_log = log
        log.append_group(
            (sid, int(self._series[sid].get("digits", 0)), values)
            for sid, values in batches
        )

    def _group_gen_name(self) -> str:
        """A fresh, never-reused generation filename for the group log."""
        name = f"{_SHARD_DIR}/group-{self._next_shard:04d}.gwl"
        self._next_shard += 1
        return name

    def _wal_names(self) -> set[str]:
        """Every log generation the manifest must reference to be durable."""
        names = {e["wal"] for e in self._series.values() if "wal" in e}
        if self._group_name:
            names.add(self._group_name)
        return names

    def _sync_wal_manifest(self) -> None:
        """Commit the manifest unless it already references every log name."""
        names = self._wal_names()
        if not names <= self._wal_synced:
            self._write_manifest()
            self._wal_synced = names

    def _replay_wal(self, series_id: str, store: TieredStore) -> None:
        """Re-apply logged values a crash kept out of the shard snapshot.

        Called on every fresh shard load.  The log referenced by the
        manifest holds exactly the values appended since the snapshot was
        committed (flush rotates to an empty generation atomically with
        the snapshot count), so replay is a plain ``extend`` — and the
        shard is re-marked dirty so the next flush consolidates it.  In
        group mode the values were regrouped per series up front (see
        :meth:`_recover_group_log`) and drain from ``_group_pending``.
        """
        if self._config["group_commit"]:
            for values in self._group_pending.pop(series_id, ()):
                store.extend(values)
                self._dirty.add(series_id)
            return
        name = self._series[series_id].get("wal")
        if not name:
            return
        path = self._root / name
        if not path.exists():
            return
        log = open_archive(path)  # eager: every complete record crc-checked
        if len(log) == 0:
            return
        store.extend(log.decompress())
        self._dirty.add(series_id)

    def _recover_append_logs(self) -> None:
        """Load (and thereby replay) every series with a surviving append log."""
        if self._config["group_commit"]:
            self._recover_group_log()
            return
        for sid, entry in self._series.items():
            name = entry.get("wal")
            if name and (self._root / name).exists():
                self._load(sid)

    def _recover_group_log(self) -> None:
        """Replay the shared group log: regroup records, extend each series.

        Records interleave in ingest order; they are regrouped per series
        (preserving order) into ``_group_pending``, then each touched
        series is materialised — known series replay inside
        :meth:`_replay_wal` on load, while a series whose manifest entry
        never committed (crash between the group write and a later
        manifest commit) is re-registered from the record's own series id
        and digits before its values are applied.
        """
        name = self._group_name
        if not name or not (self._root / name).exists():
            return
        digits_of: dict[str, int] = {}
        for sid, digits, values in read_group_log(self._root / name):
            self._group_pending.setdefault(sid, []).append(values)
            digits_of[sid] = int(digits)
        for sid in list(self._group_pending):
            known = sid in self._series
            store = self._store_for_ingest(sid)  # known: loads + replays
            if not known:
                self._series[sid]["digits"] = digits_of[sid]
            for values in self._group_pending.pop(sid, ()):
                store.extend(values)
                self._dirty.add(sid)

    def _entry(self, series_id: str) -> dict:
        try:
            return self._series[series_id]
        except KeyError:
            known = ", ".join(sorted(self._series)) or "(none)"
            raise ValueError(
                f"unknown series {series_id!r}; known: {known}"
            ) from None

    def _load(self, series_id: str) -> TieredStore:
        if series_id in self._stores:
            entry = self._entry(series_id)
            if (
                series_id in self._dirty
                or self._cached_gen.get(series_id) == entry["shard"]
            ):
                self._stores.move_to_end(series_id)  # LRU touch
                return self._stores[series_id]
            # The manifest points at a newer shard generation than the
            # cached copy was parsed from: invalidate and re-read.
            del self._stores[series_id]
            self._cached_gen.pop(series_id, None)
        entry = self._entry(series_id)
        shard_path = self._root / entry["shard"]
        if int(entry["count"]) == 0 and not shard_path.exists():
            # Registered by a durable ingest but never flushed: no snapshot
            # yet — any surviving values live in the append log alone.
            store = self._fresh_store()
        else:
            data = self._read_shard(shard_path)
            # The snapshot's own crc catches bit rot; the manifest crc also
            # catches a shard file swapped with another (valid) one.
            if zlib.crc32(data) != entry["crc32"]:
                raise ValueError(
                    f"shard {entry['shard']} does not match the manifest crc "
                    f"for series {series_id!r} (swapped or corrupt shard file)"
                )
            store = TieredStore.from_bytes(data)
            if len(store) != entry["count"]:
                raise ValueError(
                    f"shard {entry['shard']} holds {len(store)} values, "
                    f"manifest says {entry['count']}"
                )
        self._stores[series_id] = store
        self._cached_gen[series_id] = entry["shard"]
        self._replay_wal(series_id, store)
        self._evict(protect=series_id)
        return store

    def _read_shard(self, path: Path):
        """Shard bytes for parsing: an mmapped view when lazy, else a copy.

        The returned view (and everything :meth:`TieredStore.from_bytes`
        slices out of it) keeps the underlying map alive, so the parsed
        store stays valid even after the file is later replaced on flush.
        """
        if self._lazy:
            view = mmap_view(path)
            if view is not None:
                return view
        return path.read_bytes()

    def _evict(self, protect: str | None = None) -> None:
        """Drop least-recently-used *clean* shards beyond the capacity.

        Dirty shards are pinned (flush reads them from the cache), and the
        shard a caller is about to use (``protect``) is never the victim.
        """
        if self._cache_capacity is None:
            return
        evictable = [
            sid
            for sid in self._stores
            if sid not in self._dirty and sid != protect
        ]
        while len(self._stores) > self._cache_capacity and evictable:
            sid = evictable.pop(0)
            del self._stores[sid]
            self._cached_gen.pop(sid, None)

    def _write_manifest(self) -> None:
        manifest = {
            "format": MANIFEST_FORMAT,
            **self._config,
            "next_shard": self._next_shard,
            "series": self._series,
        }
        if self._group_name:  # absent outside group mode: old bytes unchanged
            manifest["group_wal"] = self._group_name
        # No sort_keys: the series mapping keeps ingestion order, and equal
        # states serialise to identical bytes either way.
        blob = json.dumps(manifest, indent=2).encode("utf-8")
        _write_atomic(self._root / MANIFEST_NAME, blob + b"\n")
