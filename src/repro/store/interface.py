"""The ``SeriesStore`` protocol: what it means to be a series database.

PRs 5–9 grew :class:`~repro.store.seriesdb.SeriesDB` into an 800-line
single-directory store; the partitioned façade
(:class:`~repro.store.partitioned.PartitionedSeriesDB`) fronts N of them
behind the same surface.  This module is the contract both implement —
extracted rather than invented, so the façade cannot drift from the store
it wraps: every method here exists on ``SeriesDB`` today with the same
signature and semantics, and the equivalence suite
(``tests/property/test_prop_partitioned.py``) holds the two
implementations to identical answers.

The protocol is ``runtime_checkable``, so ``isinstance(db, SeriesStore)``
works on any conforming object (structural check only — signatures are
enforced by mypy, behaviour by the test suite).  Code that serves queries
or ingests batches should accept a ``SeriesStore``, not a concrete class;
:func:`repro.store.open_store` returns whichever implementation the
directory's manifest declares.

Semantics every implementation owes its callers:

* **Durability** — ``ingest``/``ingest_many`` return only after the new
  values are recoverable (write-ahead logged); ``flush`` consolidates
  them into snapshots; ``close`` flushes, then poisons the handle
  (``ValueError`` on every later call, idempotent second close).
* **Thread safety** — every method may be called from any thread; the
  implementation serialises internally.
* **Exactness** — ``access``/``range``/``decompress`` answer from the
  ingested values (within the configured lossy ε once compacted, when
  ``allow_lossy`` was opted into).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["SeriesStore"]


@runtime_checkable
class SeriesStore(Protocol):
    """Structural interface of a durable multi-series store.

    Implemented by :class:`~repro.store.seriesdb.SeriesDB` (one
    directory, one manifest, one lock) and
    :class:`~repro.store.partitioned.PartitionedSeriesDB` (N SeriesDB
    partitions behind one façade).  See the module docstring for the
    semantic contract; docstrings here state only what each member means.
    """

    # -- lifecycle ------------------------------------------------------------

    @property
    def root(self) -> Path:
        """The store's directory."""
        ...

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the handle is then unusable)."""
        ...

    def close(self) -> None:
        """Flush, release resources, poison the handle (idempotent)."""
        ...

    def __enter__(self) -> "SeriesStore": ...

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None: ...

    # -- introspection --------------------------------------------------------

    def series_ids(self) -> list[str]:
        """Every series id, in ingestion order."""
        ...

    def __contains__(self, series_id: str) -> bool: ...

    def __len__(self) -> int: ...

    def count(self, series_id: str) -> int:
        """Number of values in ``series_id``."""
        ...

    def digits(self, series_id: str) -> int:
        """Decimal scaling recorded for ``series_id`` at ingest time."""
        ...

    def info(self) -> dict:
        """Configuration plus a per-series summary."""
        ...

    # -- ingestion ------------------------------------------------------------

    def ingest(
        self, series_id: str, values: Any, *, digits: int | None = None
    ) -> int:
        """Durably append ``values`` to ``series_id``; returns its count."""
        ...

    def ingest_many(
        self,
        series_map: Any,
        *,
        workers: int | None = None,
        digits: int | None = None,
    ) -> dict:
        """Batch ingest; returns series id -> new total count."""
        ...

    # -- queries --------------------------------------------------------------

    def access(self, series_id: str, k: int) -> int:
        """The value at position ``k`` of ``series_id``."""
        ...

    def range(self, series_id: str, lo: int, hi: int) -> np.ndarray:
        """Values at positions ``[lo, hi)`` of ``series_id``."""
        ...

    def decompress(self, series_id: str) -> np.ndarray:
        """Every value of ``series_id``, in order."""
        ...

    # -- maintenance ----------------------------------------------------------

    def compact(self, hot_threshold: int = 0) -> list[str]:
        """Consolidate hot tiers beyond the threshold; returns compacted ids."""
        ...

    def flush(self) -> None:
        """Write modified state back to disk (the durability checkpoint)."""
        ...
