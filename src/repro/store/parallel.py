"""Parallel batch compression: many series, one process pool.

``repro.compress`` is a single-series, single-process call; the paper's
deployment sketch (§IV-C1) ingests *many* series, and both block-wise
codecs and NeaTS fragments are embarrassingly parallel across series.
:func:`compress_many` fans a whole mapping of series out over a
:class:`concurrent.futures.ProcessPoolExecutor`.

Workers return the framed ``to_bytes()`` payload — plain bytes — so
nothing unpicklable (bit readers, numpy views, model closures) ever
crosses the pool boundary.  The parent reassembles ``Compressed``
objects with :func:`repro.codecs.load_compressed`; because a frame
either parses natively or re-runs the recorded codec deterministically,
the pooled result is byte-identical to serial ``repro.compress`` +
``to_bytes`` for every codec.

Throughput note: codecs *without* a native payload (currently ``dac``,
``leco``, ``alp`` — see ROADMAP) recompress in the parent when
:func:`compress_many` decodes their frames, which erases the pool win;
use :func:`compress_many_frames` (bytes out, what :class:`SeriesDB`
ingest does) or a native-payload codec for throughput.

>>> import numpy as np
>>> from repro.store import compress_many
>>> series = {f"s{i}": np.arange(1000, dtype=np.int64) * i for i in (1, 2)}
>>> out = compress_many(series, codec="gorilla", workers=2)
>>> sorted(out) == ["s1", "s2"] and out["s2"].access(10) == 20
True
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

__all__ = [
    "compress_many",
    "compress_many_frames",
    "default_workers",
    "process_map",
    "thread_map",
]


def default_workers() -> int:
    """Worker count used when ``workers=None``: one per schedulable core."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _compress_frame(task):
    """Pool worker: compress one series, return its framed bytes."""
    key, values, codec, params = task
    from ..codecs import get_codec

    return key, get_codec(codec, **params).compress(values).to_bytes()


def compress_many_frames(
    series_map, codec: str = "neats", *, workers: int | None = None, **params
) -> dict:
    """Compress every series in ``series_map`` to framed bytes, in parallel.

    Parameters
    ----------
    series_map:
        Mapping of key -> 1-D array-like of values.  Keys are opaque (any
        picklable hashable); insertion order is preserved in the result.
    codec:
        Registry id applied to every series.
    workers:
        Pool size; ``None`` means one per core, ``<= 1`` (or a single
        series) compresses serially in-process with no pool.
    params:
        Forwarded to the codec factory, as in :func:`repro.compress`.

    Returns the mapping key -> frame bytes (``Compressed.to_bytes``
    layout, decodable by ``Compressed.from_bytes``).  The frames are
    byte-identical to what serial compression would emit.
    """
    tasks = [
        (key, np.asarray(values), codec, dict(params))
        for key, values in series_map.items()
    ]
    if not tasks:
        return {}
    if workers is None:
        workers = default_workers()
    workers = max(1, min(int(workers), len(tasks)))
    if workers == 1 or len(tasks) == 1:
        return dict(map(_compress_frame, tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return dict(pool.map(_compress_frame, tasks, chunksize=1))


def process_map(fn, tasks, *, workers: int | None = None) -> list:
    """Run ``fn`` over ``tasks`` in a process pool, order-preserving.

    The partition fan-out primitive of
    :class:`~repro.store.partitioned.PartitionedSeriesDB`: each task is a
    self-contained picklable description of one partition's work (ingest
    a sub-batch, compact a directory), ``fn`` a module-level function.
    ``workers <= 1`` or a single task runs serially in-process with no
    pool — the same degradation rule as :func:`compress_many_frames`, and
    what keeps deterministic-schedule tests fork-free.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if workers is None:
        workers = default_workers()
    workers = max(1, min(int(workers), len(tasks)))
    if workers == 1 or len(tasks) == 1:
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, tasks, chunksize=1))


def thread_map(fn, tasks, *, workers: int | None = None) -> list:
    """Run ``fn`` over ``tasks`` in a thread pool, order-preserving.

    The scatter-gather primitive for cross-partition *reads*: queries
    against distinct partitions only contend on distinct locks and spend
    their time in decompression, so threads are enough (no pickling, no
    fork cost) and results come back cheap.  Same serial degradation rule
    as :func:`process_map`.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if workers is None:
        workers = default_workers()
    workers = max(1, min(int(workers), len(tasks)))
    if workers == 1 or len(tasks) == 1:
        return [fn(task) for task in tasks]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, tasks))


def compress_many(
    series_map, codec: str = "neats", *, workers: int | None = None, **params
) -> dict:
    """Compress every series in ``series_map``, in parallel.

    Same contract as :func:`compress_many_frames`, but the frames are
    decoded back into :class:`~repro.baselines.base.Compressed` objects
    carrying full provenance — each entry behaves exactly as if produced
    by ``repro.compress(values, codec=codec, **params)``.
    """
    from ..codecs import load_compressed

    frames = compress_many_frames(series_map, codec, workers=workers, **params)
    return {key: load_compressed(frame) for key, frame in frames.items()}
