"""The store subsystem: parallel batch compression and a multi-series DB.

Two layers grown out of the ROADMAP items unlocked by the codec
registry and the framed ``Compressed`` serialisation:

* :func:`compress_many` / :func:`compress_many_frames` — fan compression
  of many series out over a process pool; workers exchange framed bytes,
  so results are byte-identical to serial ``repro.compress``;
* :class:`SeriesDB` — a durable shard-per-series store (one
  :class:`~repro.core.tiered.TieredStore` snapshot per series id plus a
  JSON manifest), with pooled batch ingest, per-series ``access`` /
  ``range``, and a cross-shard :meth:`~SeriesDB.compact` policy.

Both are re-exported at top level: ``repro.compress_many``,
``repro.SeriesDB``.
"""

from .parallel import compress_many, compress_many_frames, default_workers
from .seriesdb import SeriesDB

__all__ = [
    "compress_many",
    "compress_many_frames",
    "default_workers",
    "SeriesDB",
]
