"""The store subsystem: parallel batch compression and a multi-series DB.

Three layers grown out of the ROADMAP items unlocked by the codec
registry and the framed ``Compressed`` serialisation:

* :func:`compress_many` / :func:`compress_many_frames` — fan compression
  of many series out over a process pool; workers exchange framed bytes,
  so results are byte-identical to serial ``repro.compress``;
* :class:`SeriesDB` — a durable shard-per-series store (one
  :class:`~repro.core.tiered.TieredStore` snapshot per series id plus a
  JSON manifest), with pooled batch ingest, per-series ``access`` /
  ``range``, and a cross-shard :meth:`~SeriesDB.compact` policy;
* :class:`PartitionedSeriesDB` — N independent ``SeriesDB`` partition
  directories behind one façade: hash-placed series, per-partition
  locks/WALs/manifests, process fan-out for batch ingest and compaction,
  scatter-gather multi-series reads, and group-commit WALs (one fsync
  per partition per batch).

Both store kinds implement the :class:`SeriesStore` protocol
(:mod:`repro.store.interface`); :func:`open_store` opens a directory as
whichever kind its manifest declares.  Re-exported at top level:
``repro.compress_many``, ``repro.SeriesDB``, ``repro.PartitionedSeriesDB``,
``repro.open_store``.
"""

from .interface import SeriesStore
from .parallel import (
    compress_many,
    compress_many_frames,
    default_workers,
    process_map,
    thread_map,
)
from .partitioned import PartitionedSeriesDB, open_store
from .seriesdb import SeriesDB

__all__ = [
    "compress_many",
    "compress_many_frames",
    "default_workers",
    "process_map",
    "thread_map",
    "SeriesDB",
    "SeriesStore",
    "PartitionedSeriesDB",
    "open_store",
]
