"""PartitionedSeriesDB: N independent SeriesDB partitions, one façade.

The ROADMAP's horizontal-partitioning step: a single
:class:`~repro.store.seriesdb.SeriesDB` directory is one manifest, one
fsync domain, and one lock domain — correct, but serial.  A
:class:`PartitionedSeriesDB` shards the *keyspace* instead of the values:
series ids are placed onto N fully independent SeriesDB directories, each
with its own manifest, write-ahead log, shard cache, and lock, behind one
façade implementing the same :class:`~repro.store.interface.SeriesStore`
protocol::

    db-root/
      MANIFEST.json          # RPPD0001: partition count + series -> partition
      p0000/
        MANIFEST.json        # a complete, self-contained SeriesDB (RPDB0001)
        shards/...
      p0001/
        ...

Because partitions share nothing, the façade can fan work out:

* ``ingest_many`` splits the batch by partition and, when more than one
  partition is involved, runs each sub-batch in its own worker process
  (:func:`repro.store.parallel.process_map`) — real CPU parallelism for
  WAL compression and hot-block sealing, not just pooled chunk frames.
* ``compact`` runs partitions concurrently the same way.
* Multi-series reads (:meth:`PartitionedSeriesDB.access_many` /
  :meth:`~PartitionedSeriesDB.range_many`) scatter per-partition query
  groups over threads and gather the answers — queries against distinct
  partitions contend on distinct locks.

Each partition is created in **group-commit** mode by default
(``SeriesDB(group_commit=True)``): one ``ingest_many`` batch costs one
fsync *per partition*, not one per series — the write-throughput unlock
the PR 5 follow-up called for.

**Partition map.**  The root manifest pins every series to its partition
explicitly (``"series": {"cpu": 0, "mem": 3, ...}``, in global ingestion
order).  New series are placed by ``zlib.crc32(series_id) % N`` — a
stable, process-independent hash (Python's ``hash`` is salted per
process) — but the *map* is authoritative on every read, so explicit or
historical placements keep working.  The map is committed to disk before
any data lands in a partition under a new id; conversely each partition
directory remains a valid standalone SeriesDB, so recovery (and
``repro fsck``) can always reconcile the two: sids a partition knows but
the map lost are adopted, sids the map claims but no partition knows are
dropped, and one sid in two partitions is corruption and refuses to open.

**Consistency.**  Every façade method takes the façade lock, then the
partition's lock — a fixed lock order, so no inversions.  A cross-
partition ``ingest_many`` is atomic *per partition* (each partition
validates its sub-batch before mutating), not across partitions; a
failure leaves completed partitions ingested and reports the error.

>>> import numpy as np, tempfile
>>> from repro.store import PartitionedSeriesDB
>>> root = tempfile.mkdtemp()
>>> db = PartitionedSeriesDB(root, partitions=2, seal_threshold=256)
>>> _ = db.ingest_many({"a": np.arange(500), "b": np.arange(300) * 2},
...                    workers=1)
>>> int(db.access("b", 10)), sorted(db.series_ids())
(20, ['a', 'b'])
>>> db.flush(); db2 = PartitionedSeriesDB.open(root)
>>> int(db2.count("a"))
500
"""

from __future__ import annotations

import json
import shutil
import threading
import zlib
from pathlib import Path

import numpy as np

from ..codecs.container import write_atomic as _write_atomic
from .parallel import default_workers, process_map, thread_map
from .seriesdb import DEFAULT_CACHE_CAPACITY, MANIFEST_NAME, SeriesDB

__all__ = ["PARTITION_MANIFEST_FORMAT", "PartitionedSeriesDB", "open_store"]

PARTITION_MANIFEST_FORMAT = "RPPD0001"
_PART_DIR = "p{:04d}"


def _partition_dirs(root: Path, partitions: int) -> list[Path]:
    return [root / _PART_DIR.format(i) for i in range(partitions)]


def _ingest_partition_job(task) -> dict:
    """Pool worker: ingest one partition's sub-batch, flush, report counts."""
    part_dir, series_map, digits = task
    db = SeriesDB.open(part_dir)
    try:
        counts = db.ingest_many(series_map, workers=1, digits=digits)
        db.flush()
    finally:
        db.close()
    return counts


def _compact_partition_job(task) -> list[str]:
    """Pool worker: compact one partition, report the compacted ids."""
    part_dir, hot_threshold = task
    db = SeriesDB.open(part_dir)
    try:
        return db.compact(hot_threshold)
    finally:
        db.close()


class PartitionedSeriesDB:
    """N independent :class:`SeriesDB` partitions behind one façade.

    Implements the same :class:`~repro.store.interface.SeriesStore`
    protocol as ``SeriesDB`` — the equivalence suite holds the two to
    identical answers — plus the partition-aware extras
    (:meth:`access_many`, :meth:`range_many`, :meth:`partition_of`,
    :meth:`migrate`).

    Parameters
    ----------
    root:
        Database directory.  Created (with ``partitions`` fresh SeriesDB
        partition directories) when it holds no manifest; opening an
        existing partitioned database ignores the configuration arguments
        in favour of the persisted root manifest, exactly like
        ``SeriesDB``.  A directory holding a *single-dir* SeriesDB
        manifest is refused — convert it with :meth:`migrate`.
    partitions:
        Partition count, fixed at creation time (re-partitioning is a
        :meth:`migrate` of a future PR).
    group_commit:
        Passed to every partition at creation; defaults to ``True`` here
        (the façade exists for write throughput) while single-dir
        ``SeriesDB`` defaults to ``False`` for byte-compatibility.
    seal_threshold / hot_codec / cold_codec / hot_params / cold_params /
    allow_lossy / cache_capacity / lazy:
        As on :class:`~repro.store.seriesdb.SeriesDB`; the tier
        configuration is recorded in the root manifest and applied to
        every partition, the cache options are per-partition runtime
        options.
    """

    def __init__(
        self,
        root,
        *,
        partitions: int = 4,
        seal_threshold: int = 4096,
        hot_codec: str = "gorilla",
        cold_codec: str = "neats",
        hot_params: dict | None = None,
        cold_params: dict | None = None,
        allow_lossy: bool = False,
        group_commit: bool = True,
        cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
        lazy: bool = False,
    ) -> None:
        # Created before any shared state, same discipline as SeriesDB:
        # every public method runs under this re-entrant lock, and the
        # façade lock is always taken BEFORE any partition lock.
        self._lock = threading.RLock()
        self._closed = False
        self._root = Path(root)
        self._cache_capacity = cache_capacity
        self._lazy = bool(lazy)
        self._series_map: dict[str, int] = {}
        self._handles: dict[int, SeriesDB] = {}
        manifest_path = self._root / MANIFEST_NAME
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text("utf-8"))
            if manifest.get("format") != PARTITION_MANIFEST_FORMAT:
                raise ValueError(
                    f"{manifest_path}: not a partitioned SeriesDB manifest "
                    f"(format {manifest.get('format')!r}); use "
                    "PartitionedSeriesDB.migrate to convert a single-dir "
                    "SeriesDB in place"
                )
            self._partitions = int(manifest["partitions"])
            self._placement = str(manifest.get("placement", "crc32"))
            self._config = {
                key: manifest[key]
                for key in (
                    "seal_threshold",
                    "hot_codec",
                    "hot_params",
                    "cold_codec",
                    "cold_params",
                )
            }
            self._config["allow_lossy"] = bool(manifest.get("allow_lossy", False))
            self._config["group_commit"] = bool(manifest.get("group_commit", True))
            self._series_map = {
                sid: int(part) for sid, part in manifest["series"].items()
            }
            self._open_partitions()
            self._reconcile()
        else:
            if int(partitions) < 1:
                raise ValueError("partitions must be positive")
            self._partitions = int(partitions)
            self._placement = "crc32"
            self._config = {
                "seal_threshold": int(seal_threshold),
                "hot_codec": hot_codec,
                "hot_params": dict(hot_params or {}),
                "cold_codec": cold_codec,
                "cold_params": dict(cold_params or {}),
                "allow_lossy": bool(allow_lossy),
                "group_commit": bool(group_commit),
            }
            # Partitions first, root manifest last: a crash mid-creation
            # leaves partition dirs a re-run adopts, never a root manifest
            # pointing at partitions that do not exist.
            for path in _partition_dirs(self._root, self._partitions):
                handle = SeriesDB(
                    path,
                    cache_capacity=cache_capacity,
                    lazy=lazy,
                    **self._config,
                )
                self._handles[len(self._handles)] = handle
            self._write_root_manifest()

    def _open_partitions(self) -> None:
        """Open every partition eagerly (running each one's WAL recovery)."""
        for part, path in enumerate(_partition_dirs(self._root, self._partitions)):
            if not (path / MANIFEST_NAME).exists():
                raise ValueError(
                    f"{self._root}: partition directory {path.name} is missing "
                    f"its SeriesDB manifest (root manifest declares "
                    f"{self._partitions} partitions)"
                )
            self._handles[part] = SeriesDB.open(
                path, cache_capacity=self._cache_capacity, lazy=self._lazy
            )

    def _reconcile(self) -> None:
        """Re-derive the partition map where partitions know better.

        Partition manifests commit independently of the root map, so a
        crash can leave either side ahead: a series a partition recovered
        (e.g. from its group log) but the map never learned is adopted; a
        series the map claims but its partition does not know was never
        ingested and is dropped.  One series in two partitions has no
        single true owner — that is corruption, and opening refuses.
        """
        changed = False
        owners: dict[str, int] = {}
        for part in range(self._partitions):
            for sid in self._handles[part].series_ids():
                if sid in owners:
                    raise ValueError(
                        f"{self._root}: series {sid!r} exists in partitions "
                        f"{owners[sid]} and {part}; the partition map cannot "
                        "be reconciled (run repro fsck)"
                    )
                owners[sid] = part
                if self._series_map.get(sid) != part:
                    self._series_map[sid] = part
                    changed = True
        for sid in list(self._series_map):
            if sid not in owners:
                del self._series_map[sid]
                changed = True
        if changed:
            self._write_root_manifest()

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def open(
        cls,
        root,
        *,
        cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
        lazy: bool = False,
    ) -> "PartitionedSeriesDB":
        """Open an existing partitioned database; raises when ``root`` holds none."""
        root = Path(root)
        if not (root / MANIFEST_NAME).exists():
            raise ValueError(f"{root}: no partitioned SeriesDB manifest found")
        return cls(root, cache_capacity=cache_capacity, lazy=lazy)

    @classmethod
    def migrate(
        cls,
        src_dir,
        *,
        partitions: int = 4,
        group_commit: bool = True,
        cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
        lazy: bool = False,
    ) -> "PartitionedSeriesDB":
        """Convert a single-dir SeriesDB into a partitioned one, in place.

        Shard files are **copied verbatim** into their partition
        directories — byte-identical payloads, every crc and count carried
        over — and each partition gets a manifest holding exactly its
        slice of the source's series table.  The commit point is the
        atomic rewrite of the root ``MANIFEST.json`` from ``RPDB0001`` to
        ``RPPD0001``: a crash before it leaves the source database intact
        (plus partition dirs a re-run replaces); after it, the partitioned
        database is live and the old ``shards/`` tree is deleted as
        post-commit cleanup.  The source is flushed first, so no append
        log carries live values across the conversion.

        ``group_commit`` selects the partitions' durability layout from
        here on (the source's per-series logs are empty after the flush).
        Returns the open :class:`PartitionedSeriesDB`.
        """
        src_dir = Path(src_dir)
        src = SeriesDB.open(src_dir)  # replays any surviving append logs
        try:
            src.flush()
        finally:
            src.close()
        manifest = json.loads((src_dir / MANIFEST_NAME).read_text("utf-8"))
        if int(partitions) < 1:
            raise ValueError("partitions must be positive")
        partitions = int(partitions)
        config = {
            key: manifest[key]
            for key in (
                "seal_threshold",
                "hot_codec",
                "hot_params",
                "cold_codec",
                "cold_params",
            )
        }
        config["allow_lossy"] = bool(manifest.get("allow_lossy", False))
        config["group_commit"] = bool(group_commit)
        series_map = {
            sid: zlib.crc32(sid.encode("utf-8")) % partitions
            for sid in manifest["series"]
        }
        for part, path in enumerate(_partition_dirs(src_dir, partitions)):
            if path.exists():  # re-run after a crash: replace the partial dir
                shutil.rmtree(path)
            (path / "shards").mkdir(parents=True)
            part_series = {}
            for sid, owner in series_map.items():
                if owner != part:
                    continue
                entry = dict(manifest["series"][sid])
                # Rotated-away log generations reference no file; partitions
                # start with fresh logs in their own layout.
                entry.pop("wal", None)
                shard = entry["shard"]
                if (src_dir / shard).exists():
                    shutil.copyfile(src_dir / shard, path / shard)
                part_series[sid] = entry
            part_manifest = {
                "format": manifest["format"],
                **config,
                "next_shard": int(manifest["next_shard"]),
                "series": part_series,
            }
            blob = json.dumps(part_manifest, indent=2).encode("utf-8")
            _write_atomic(path / MANIFEST_NAME, blob + b"\n")
        root_manifest = {
            "format": PARTITION_MANIFEST_FORMAT,
            "partitions": partitions,
            "placement": "crc32",
            **config,
            "series": series_map,
        }
        blob = json.dumps(root_manifest, indent=2).encode("utf-8")
        _write_atomic(src_dir / MANIFEST_NAME, blob + b"\n")  # the commit point
        shutil.rmtree(src_dir / "shards", ignore_errors=True)
        return cls.open(src_dir, cache_capacity=cache_capacity, lazy=lazy)

    def __enter__(self) -> "PartitionedSeriesDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    def close(self) -> None:
        """Close every partition (flushing each), then poison the façade.

        Idempotent, same contract as :meth:`SeriesDB.close`: after the
        first close every public call raises ``ValueError``.
        """
        with self._lock:
            if self._closed:
                return
            for handle in self._handles.values():
                handle.close()
            self._handles.clear()
            self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the handle is then unusable)."""
        return self._closed

    def _check_open(self) -> None:
        """Called (under the lock) by every public method: dead means dead."""
        if self._closed:
            raise ValueError(
                f"PartitionedSeriesDB at {self._root} is closed; reopen with "
                "PartitionedSeriesDB.open() for a fresh handle"
            )

    # -- introspection --------------------------------------------------------

    @property
    def root(self) -> Path:
        """The database directory."""
        return self._root

    @property
    def partitions(self) -> int:
        """The partition count, fixed at creation time."""
        return self._partitions

    def series_ids(self) -> list[str]:
        """Every series id, in global ingestion order."""
        with self._lock:
            self._check_open()
            return list(self._series_map)

    def __contains__(self, series_id: str) -> bool:
        with self._lock:
            self._check_open()
            return series_id in self._series_map

    def __len__(self) -> int:
        with self._lock:
            self._check_open()
            return len(self._series_map)

    def partition_of(self, series_id: str) -> int:
        """The partition index holding ``series_id``."""
        with self._lock:
            self._check_open()
            return self._partition_of(series_id)

    def count(self, series_id: str) -> int:
        """Number of values in ``series_id``."""
        with self._lock:
            self._check_open()
            return self._handles[self._partition_of(series_id)].count(series_id)

    def digits(self, series_id: str) -> int:
        """Decimal scaling recorded for ``series_id`` at ingest time."""
        with self._lock:
            self._check_open()
            return self._handles[self._partition_of(series_id)].digits(series_id)

    def info(self) -> dict:
        """Configuration plus a per-series summary, tagged with partitions."""
        with self._lock:
            self._check_open()
            per_part = {
                part: handle.info()["series"]
                for part, handle in self._handles.items()
            }
            series = {}
            for sid, part in self._series_map.items():
                entry = dict(per_part[part].get(sid, {}))
                entry["partition"] = part
                series[sid] = entry
            return {
                **self._config,
                "root": str(self._root),
                "partitions": self._partitions,
                "placement": self._placement,
                "series": series,
            }

    # -- ingestion ------------------------------------------------------------

    def ingest(self, series_id: str, values, *, digits: int | None = None) -> int:
        """Durably append ``values`` to ``series_id``; returns its count.

        A new series is assigned a partition and the assignment committed
        to the root manifest *before* any data lands in the partition —
        recovery must never find data the map cannot place.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError(f"series {series_id!r}: expected a 1-D array")
        with self._lock:
            self._check_open()
            if series_id not in self._series_map:
                if not series_id or not isinstance(series_id, str):
                    raise ValueError(f"invalid series id {series_id!r}")
                self._assign(series_id)
                self._write_root_manifest()
            part = self._series_map[series_id]
            return self._handles[part].ingest(series_id, values, digits=digits)

    def ingest_many(
        self, series_map, *, workers: int | None = None, digits: int | None = None
    ) -> dict:
        """Batch ingest, fanned out one worker process per partition.

        The batch is split by partition; when it spans more than one
        partition (and ``workers`` allows), each sub-batch runs in its own
        process — the partition ingests with its own lock, WAL, and group
        commit, flushes, and reports counts — giving real multi-core
        ingest throughput.  A single-partition (or ``workers=1``) batch
        stays in-process and keeps SeriesDB's pooled chunk compression.

        Atomic per partition, not across partitions: each partition
        validates its whole sub-batch before mutating anything, so a bad
        series fails its partition cleanly, but other partitions may have
        already committed theirs.  Returns series id -> new total count.
        """
        with self._lock:
            self._check_open()
            groups: dict[int, dict[str, np.ndarray]] = {}
            new_sids = []
            for sid, values in series_map.items():
                values = np.asarray(values, dtype=np.int64)
                if values.ndim != 1:
                    raise ValueError(f"series {sid!r}: expected a 1-D array")
                if sid not in self._series_map:
                    if not sid or not isinstance(sid, str):
                        raise ValueError(f"invalid series id {sid!r}")
                    new_sids.append(sid)
                part = self._series_map.get(
                    sid, zlib.crc32(sid.encode("utf-8")) % self._partitions
                )
                groups.setdefault(part, {})[sid] = values
            for sid in new_sids:  # commit the map before any data lands
                self._assign(sid)
            if new_sids:
                self._write_root_manifest()
            eff = default_workers() if workers is None else max(1, int(workers))
            counts: dict[str, int] = {}
            involved = sorted(groups)
            if eff > 1 and len(involved) > 1:
                # Process fan-out: partitions are directories, so hand each
                # one to a worker process.  The parent's handles would go
                # stale under the workers' flushes — close them first
                # (flushing buffered state) and reopen after.
                for part in involved:
                    self._handles[part].close()
                tasks = [
                    (str(self._part_dir(part)), groups[part], digits)
                    for part in involved
                ]
                try:
                    results = process_map(_ingest_partition_job, tasks, workers=eff)
                finally:
                    for part in involved:
                        self._handles[part] = SeriesDB.open(
                            self._part_dir(part),
                            cache_capacity=self._cache_capacity,
                            lazy=self._lazy,
                        )
                for part_counts in results:
                    counts.update(part_counts)
            else:
                for part in involved:
                    counts.update(
                        self._handles[part].ingest_many(
                            groups[part], workers=eff, digits=digits
                        )
                    )
            return counts

    # -- queries --------------------------------------------------------------

    def access(self, series_id: str, k: int) -> int:
        """The value at position ``k`` of ``series_id``."""
        with self._lock:
            self._check_open()
            return self._handles[self._partition_of(series_id)].access(series_id, k)

    def range(self, series_id: str, lo: int, hi: int) -> np.ndarray:
        """Values at positions ``[lo, hi)`` of ``series_id``."""
        with self._lock:
            self._check_open()
            return self._handles[self._partition_of(series_id)].range(
                series_id, lo, hi
            )

    def decompress(self, series_id: str) -> np.ndarray:
        """Every value of ``series_id``, in order."""
        with self._lock:
            self._check_open()
            return self._handles[self._partition_of(series_id)].decompress(series_id)

    def access_many(self, queries, *, workers: int | None = None) -> dict:
        """Scatter-gather point lookups: ``{sid: k}`` -> ``{sid: value}``.

        Queries are grouped by partition and the groups run on a thread
        pool — distinct partitions decode under distinct locks, so the
        scatter really overlaps.  Unknown series raise before any
        partition is queried.
        """
        with self._lock:
            self._check_open()
            groups = self._group_queries(queries)
            jobs = [
                (self._handles[part], sids) for part, sids in groups.items()
            ]

            def lookup(job):
                handle, sids = job
                return {sid: handle.access(sid, queries[sid]) for sid in sids}

            out: dict = {}
            for result in thread_map(lookup, jobs, workers=workers):
                out.update(result)
            return {sid: out[sid] for sid in queries}

    def range_many(self, queries, *, workers: int | None = None) -> dict:
        """Scatter-gather range reads: ``{sid: (lo, hi)}`` -> ``{sid: array}``."""
        with self._lock:
            self._check_open()
            groups = self._group_queries(queries)
            jobs = [
                (self._handles[part], sids) for part, sids in groups.items()
            ]

            def slice_(job):
                handle, sids = job
                return {
                    sid: handle.range(sid, *queries[sid]) for sid in sids
                }

            out: dict = {}
            for result in thread_map(slice_, jobs, workers=workers):
                out.update(result)
            return {sid: out[sid] for sid in queries}

    # -- maintenance ----------------------------------------------------------

    def compact(
        self, hot_threshold: int = 0, *, workers: int | None = None
    ) -> list[str]:
        """Consolidate hot tiers across partitions, concurrently.

        Every partition compacts independently (same threshold semantics
        as :meth:`SeriesDB.compact`); with ``workers > 1`` they run in
        parallel worker processes.  Returns the compacted ids in global
        ingestion order.
        """
        with self._lock:
            self._check_open()
            eff = default_workers() if workers is None else max(1, int(workers))
            compacted: set[str] = set()
            if eff > 1 and self._partitions > 1:
                for handle in self._handles.values():
                    handle.close()
                tasks = [
                    (str(self._part_dir(part)), int(hot_threshold))
                    for part in range(self._partitions)
                ]
                try:
                    results = process_map(
                        _compact_partition_job, tasks, workers=eff
                    )
                finally:
                    for part in range(self._partitions):
                        self._handles[part] = SeriesDB.open(
                            self._part_dir(part),
                            cache_capacity=self._cache_capacity,
                            lazy=self._lazy,
                        )
                for ids in results:
                    compacted.update(ids)
            else:
                for handle in self._handles.values():
                    compacted.update(handle.compact(hot_threshold))
            return [sid for sid in self._series_map if sid in compacted]

    def flush(self) -> None:
        """Flush every partition (each one's snapshot + manifest commit)."""
        with self._lock:
            self._check_open()
            for handle in self._handles.values():
                handle.flush()

    # -- internals ------------------------------------------------------------

    def _part_dir(self, part: int) -> Path:
        return self._root / _PART_DIR.format(part)

    def _assign(self, series_id: str) -> int:
        """Place a new series on its partition (called under the lock).

        The single choke point that mutates the partition map — the
        sanitizer instruments it, and :meth:`_write_root_manifest` must
        follow before any data lands under the new id.
        """
        part = zlib.crc32(series_id.encode("utf-8")) % self._partitions
        self._series_map[series_id] = part
        return part

    def _partition_of(self, series_id: str) -> int:
        try:
            return self._series_map[series_id]
        except KeyError:
            known = ", ".join(sorted(self._series_map)) or "(none)"
            raise ValueError(
                f"unknown series {series_id!r}; known: {known}"
            ) from None

    def _group_queries(self, queries) -> dict[int, list[str]]:
        """Partition index -> the queried sids it owns (validates up front)."""
        groups: dict[int, list[str]] = {}
        for sid in queries:
            groups.setdefault(self._partition_of(sid), []).append(sid)
        return groups

    def _write_root_manifest(self) -> None:
        manifest = {
            "format": PARTITION_MANIFEST_FORMAT,
            "partitions": self._partitions,
            "placement": self._placement,
            **self._config,
            "series": self._series_map,
        }
        blob = json.dumps(manifest, indent=2).encode("utf-8")
        _write_atomic(self._root / MANIFEST_NAME, blob + b"\n")


def open_store(
    root,
    *,
    cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
    lazy: bool = False,
):
    """Open whichever store the directory's manifest declares.

    The :class:`~repro.store.interface.SeriesStore`-typed entry point:
    a ``RPDB0001`` manifest opens as :class:`SeriesDB`, a ``RPPD0001``
    one as :class:`PartitionedSeriesDB`.  Callers that only speak the
    protocol never need to know which.
    """
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise ValueError(f"{root}: no SeriesDB manifest found")
    manifest = json.loads(manifest_path.read_text("utf-8"))
    if manifest.get("format") == PARTITION_MANIFEST_FORMAT:
        return PartitionedSeriesDB.open(
            root, cache_capacity=cache_capacity, lazy=lazy
        )
    return SeriesDB.open(root, cache_capacity=cache_capacity, lazy=lazy)
