"""Common interface implemented by every compressor in the repo.

Every compressed series — NeaTS, the 7 special-purpose and the 5
general-purpose baselines — implements :class:`Compressed`, so the benchmark
harness (``repro.bench``), the tiered store, the CLI, and the archive
container all drive the paper's three operations (full decompression, random
access, range queries) plus serialisation through one protocol.

Serialisation is part of the protocol: :meth:`Compressed.to_bytes` emits a
self-describing frame (codec id + params + payload) and
:meth:`Compressed.from_bytes` decodes a frame from *any* registered codec.
Codecs with a compact private layout override :meth:`Compressed.to_payload`;
everyone else inherits the generic values fallback, which round-trips by
re-running the deterministic compressor on load.

Error-bounded compression is a peer of lossless compression here:
:class:`LossyCompressed` extends the protocol with the guaranteed L∞ bound
``eps`` (``|f(x_k) - y_k| <= eps`` for every point, §III-B of the paper) and
the measured-error metrics of §IV-B, and :class:`LossyCompressor` is the
factory counterpart of :class:`LosslessCompressor`.  Lossy objects never use
the generic values fallback — their ``decompress()`` returns the
*approximation*, so re-running the codec on decoded values would not
reproduce the object — which is why :meth:`LossyCompressed.to_bytes` insists
on a native payload.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Compressed",
    "LossyCompressed",
    "LosslessCompressor",
    "LossyCompressor",
    "validate_eps",
]


def validate_eps(eps) -> float:
    """Validate an L∞ error bound: a positive, finite number.

    Every lossy constructor funnels through here so a nonsense bound (zero,
    negative, NaN, infinite, non-numeric) fails at construction time with
    one consistent message instead of silently producing a meaningless
    guarantee.
    """
    try:
        eps = float(eps)
    except (TypeError, ValueError):
        raise ValueError(
            f"eps must be a positive finite error bound, got {eps!r}"
        ) from None
    if not math.isfinite(eps) or eps <= 0:
        raise ValueError(f"eps must be a positive finite error bound, got {eps!r}")
    return eps


class Compressed(ABC):
    """A compressed time series supporting the paper's three operations."""

    #: registry id of the codec that produced this object (set by the
    #: registry wrapper / facade; None when constructed outside the registry)
    codec_id: str | None = None
    #: constructor params of that codec (JSON-serialisable)
    codec_params: dict | None = None
    #: True when to_payload/from_payload use a codec-specific byte layout
    payload_is_native: bool = False
    #: number of values, recorded at construction for O(1) metrics
    _n: int | None = None

    @abstractmethod
    def size_bits(self) -> int:
        """Total compressed size in bits (including access metadata)."""

    @abstractmethod
    def decompress(self) -> np.ndarray:
        """The original int64 values."""

    @abstractmethod
    def access(self, k: int) -> int:
        """The value at 0-based position ``k`` (random access)."""

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        """Values at positions ``[lo, hi)``: random access + scan.

        Subclasses override this when they can do better than a full
        decompression; the fallback is correct but slow by design, mirroring
        how compressors without random access behave.
        """
        return self.decompress()[lo:hi]

    @property
    def n(self) -> int:
        """Number of original values, without decompressing when recorded."""
        if self._n is None:
            self._n = int(len(self.decompress()))
        return self._n

    def __len__(self) -> int:
        return self.n

    def size_bytes(self) -> int:
        """Compressed size in bytes, rounded up."""
        return (self.size_bits() + 7) // 8

    def compression_ratio(self, n: int | None = None) -> float:
        """Compressed bits / uncompressed bits (64 per value) — O(1)."""
        n = n if n is not None else self.n
        return self.size_bits() / (64 * n)

    # -- serialisation ---------------------------------------------------------

    def to_payload(self) -> bytes:
        """The frame payload.  Generic fallback: the (deflated) values."""
        from ..codecs import serialize

        return serialize.encode_values(self.decompress())

    def to_bytes(self) -> bytes:
        """Serialise to a self-describing frame (codec id + params + payload)."""
        from ..codecs import serialize
        from ..codecs.registry import codec_spec

        if self.codec_id is None:
            raise ValueError(
                f"{type(self).__name__} has no codec id; obtain compressed "
                "objects through repro.compress(...) or repro.codecs.get_codec "
                "so serialisation knows which codec to record"
            )
        # The native layout is only written when the registry can load it
        # back; a codec registered without a native loader (e.g. a custom
        # registration of a built-in compressor class) gets the generic
        # values frame, which always round-trips.
        spec = codec_spec(self.codec_id)
        if self.payload_is_native and spec.load_native is not None:
            kind, payload = serialize.KIND_NATIVE, self.to_payload()
        else:
            values = self.decompress()
            if self._n is None:
                self._n = int(len(values))
            kind, payload = serialize.KIND_VALUES, serialize.encode_values(values)
        return serialize.write_frame(
            self.codec_id, self.codec_params or {}, self.n, kind, payload
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Compressed":
        """Decode a frame produced by :meth:`to_bytes`, whatever its codec."""
        from ..codecs.registry import load_compressed

        return load_compressed(data)


class LossyCompressed(Compressed):
    """A compressed series with a guaranteed L∞ error bound (§III-B).

    The contract extending :class:`Compressed`:

    * :attr:`eps` — the guaranteed bound: every reconstructed value is
      within ``eps`` of the original;
    * :meth:`decompress` returns the *approximation* (float64), and
      :meth:`access` the approximated value at one position;
    * :meth:`max_error` / :meth:`mape` measure the realised error against
      the original values (the paper's Table II side metrics);
    * serialisation is always native (:attr:`payload_is_native`): the frame
      payload holds the fitted segments themselves, so a saved archive
      reproduces the exact approximation without re-running the compressor.
      The frame params additionally record ``eps`` and the segment count,
      making archives inspectable without parsing the payload.
    """

    #: the guaranteed L∞ bound, in original value units (set at construction)
    eps: float = 0.0
    payload_is_native = True

    @abstractmethod
    def reconstruct(self) -> np.ndarray:
        """Evaluate the approximation at every position (float64)."""

    @property
    @abstractmethod
    def num_segments(self) -> int:
        """Number of fitted pieces (fragments/segments) in the partition."""

    def decompress(self) -> np.ndarray:
        """The approximation — within ``eps`` of every original value."""
        return self.reconstruct()

    def max_error(self, y: np.ndarray) -> float:
        """Measured L∞ error against the original values ``y``."""
        from ..core.piecewise import max_abs_error

        return max_abs_error(np.asarray(y, dtype=np.float64), self.reconstruct())

    def mape(self, y: np.ndarray) -> float:
        """Mean Absolute Percentage Error against the original values (§IV-B)."""
        from ..core.piecewise import mape

        return mape(np.asarray(y, dtype=np.float64), self.reconstruct())

    @staticmethod
    def _segment_at(segments, k: int):
        """The segment covering position ``k``: binary search over starts."""
        lo, hi = 0, len(segments) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if segments[mid].start <= k:
                lo = mid
            else:
                hi = mid - 1
        return segments[lo]

    def _check_position(self, k: int) -> int:
        k = int(k)
        if not 0 <= k < self.n:
            raise IndexError(k)
        return k

    def to_bytes(self) -> bytes:
        """Serialise to a native frame; lossy codecs have no values fallback.

        The recorded params are augmented with the guaranteed ``eps`` and
        the segment count, so the frame header describes the approximation
        (and the loader can cross-check it) without touching the payload.
        """
        from ..codecs import serialize
        from ..codecs.registry import codec_spec

        if self.codec_id is None:
            raise ValueError(
                f"{type(self).__name__} has no codec id; obtain compressed "
                "objects through repro.compress(...) or repro.codecs.get_codec "
                "so serialisation knows which codec to record"
            )
        spec = codec_spec(self.codec_id)
        if not self.payload_is_native or spec.load_native is None:
            raise ValueError(
                f"lossy codec {self.codec_id!r} cannot serialise without a "
                "native payload loader: decompression is approximate, so the "
                "values fallback would not reproduce this object"
            )
        params = dict(self.codec_params or {})
        params.setdefault("eps", self.eps)
        params.setdefault("segments", int(self.num_segments))
        return serialize.write_frame(
            self.codec_id, params, self.n, serialize.KIND_NATIVE, self.to_payload()
        )


class LosslessCompressor(ABC):
    """A factory producing :class:`Compressed` objects from int64 arrays."""

    #: display name used in benchmark tables
    name: str = "?"
    #: whether random access is native (no block-wise adapter involved)
    native_random_access: bool = False

    @abstractmethod
    def compress(self, values: np.ndarray) -> Compressed:
        """Compress a 1-D int64 array losslessly."""

    @staticmethod
    def _check_input(values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("expected a 1-D array")
        if len(values) == 0:
            raise ValueError("cannot compress an empty series")
        return values.astype(np.int64)


class LossyCompressor(ABC):
    """A factory producing :class:`LossyCompressed` objects under a bound.

    Parameters
    ----------
    eps:
        The guaranteed L∞ error bound, in original value units.  Must be
        positive and finite (validated by :func:`validate_eps`).
    """

    #: display name used in benchmark tables
    name: str = "?"
    native_random_access: bool = False

    def __init__(self, eps: float) -> None:
        self.eps = validate_eps(eps)

    @abstractmethod
    def compress(self, values: np.ndarray) -> LossyCompressed:
        """Compress a 1-D int64 array under the L∞ bound ``eps``."""

    _check_input = staticmethod(LosslessCompressor._check_input)
