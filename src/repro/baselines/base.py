"""Common interface implemented by every lossless compressor in the repo.

Every compressed series — NeaTS, the 7 special-purpose and the 5
general-purpose baselines — implements :class:`Compressed`, so the benchmark
harness (``repro.bench``), the tiered store, the CLI, and the archive
container all drive the paper's three operations (full decompression, random
access, range queries) plus serialisation through one protocol.

Serialisation is part of the protocol: :meth:`Compressed.to_bytes` emits a
self-describing frame (codec id + params + payload) and
:meth:`Compressed.from_bytes` decodes a frame from *any* registered codec.
Codecs with a compact private layout override :meth:`Compressed.to_payload`;
everyone else inherits the generic values fallback, which round-trips by
re-running the deterministic compressor on load.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Compressed", "LosslessCompressor"]


class Compressed(ABC):
    """A compressed time series supporting the paper's three operations."""

    #: registry id of the codec that produced this object (set by the
    #: registry wrapper / facade; None when constructed outside the registry)
    codec_id: str | None = None
    #: constructor params of that codec (JSON-serialisable)
    codec_params: dict | None = None
    #: True when to_payload/from_payload use a codec-specific byte layout
    payload_is_native: bool = False
    #: number of values, recorded at construction for O(1) metrics
    _n: int | None = None

    @abstractmethod
    def size_bits(self) -> int:
        """Total compressed size in bits (including access metadata)."""

    @abstractmethod
    def decompress(self) -> np.ndarray:
        """The original int64 values."""

    @abstractmethod
    def access(self, k: int) -> int:
        """The value at 0-based position ``k`` (random access)."""

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        """Values at positions ``[lo, hi)``: random access + scan.

        Subclasses override this when they can do better than a full
        decompression; the fallback is correct but slow by design, mirroring
        how compressors without random access behave.
        """
        return self.decompress()[lo:hi]

    @property
    def n(self) -> int:
        """Number of original values, without decompressing when recorded."""
        if self._n is None:
            self._n = int(len(self.decompress()))
        return self._n

    def __len__(self) -> int:
        return self.n

    def size_bytes(self) -> int:
        """Compressed size in bytes, rounded up."""
        return (self.size_bits() + 7) // 8

    def compression_ratio(self, n: int | None = None) -> float:
        """Compressed bits / uncompressed bits (64 per value) — O(1)."""
        n = n if n is not None else self.n
        return self.size_bits() / (64 * n)

    # -- serialisation ---------------------------------------------------------

    def to_payload(self) -> bytes:
        """The frame payload.  Generic fallback: the (deflated) values."""
        from ..codecs import serialize

        return serialize.encode_values(self.decompress())

    def to_bytes(self) -> bytes:
        """Serialise to a self-describing frame (codec id + params + payload)."""
        from ..codecs import serialize
        from ..codecs.registry import codec_spec

        if self.codec_id is None:
            raise ValueError(
                f"{type(self).__name__} has no codec id; obtain compressed "
                "objects through repro.compress(...) or repro.codecs.get_codec "
                "so serialisation knows which codec to record"
            )
        # The native layout is only written when the registry can load it
        # back; a codec registered without a native loader (e.g. a custom
        # registration of a built-in compressor class) gets the generic
        # values frame, which always round-trips.
        spec = codec_spec(self.codec_id)
        if self.payload_is_native and spec.load_native is not None:
            kind, payload = serialize.KIND_NATIVE, self.to_payload()
        else:
            values = self.decompress()
            if self._n is None:
                self._n = int(len(values))
            kind, payload = serialize.KIND_VALUES, serialize.encode_values(values)
        return serialize.write_frame(
            self.codec_id, self.codec_params or {}, self.n, kind, payload
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Compressed":
        """Decode a frame produced by :meth:`to_bytes`, whatever its codec."""
        from ..codecs.registry import load_compressed

        return load_compressed(data)


class LosslessCompressor(ABC):
    """A factory producing :class:`Compressed` objects from int64 arrays."""

    #: display name used in benchmark tables
    name: str = "?"
    #: whether random access is native (no block-wise adapter involved)
    native_random_access: bool = False

    @abstractmethod
    def compress(self, values: np.ndarray) -> Compressed:
        """Compress a 1-D int64 array losslessly."""

    @staticmethod
    def _check_input(values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("expected a 1-D array")
        if len(values) == 0:
            raise ValueError("cannot compress an empty series")
        return values.astype(np.int64)
