"""Common interface implemented by every lossless compressor in the repo.

The benchmark harness (``repro.bench``) drives all 13 compressors — NeaTS,
the 7 special-purpose and the 5 general-purpose baselines — through this
interface, so each one reports compression ratio, decompression output,
random access, and range queries the same way the paper measures them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Compressed", "LosslessCompressor"]


class Compressed(ABC):
    """A compressed time series supporting the paper's three operations."""

    @abstractmethod
    def size_bits(self) -> int:
        """Total compressed size in bits (including access metadata)."""

    @abstractmethod
    def decompress(self) -> np.ndarray:
        """The original int64 values."""

    @abstractmethod
    def access(self, k: int) -> int:
        """The value at 0-based position ``k`` (random access)."""

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        """Values at positions ``[lo, hi)``: random access + scan.

        Subclasses override this when they can do better than a full
        decompression; the fallback is correct but slow by design, mirroring
        how compressors without random access behave.
        """
        return self.decompress()[lo:hi]

    def size_bytes(self) -> int:
        """Compressed size in bytes, rounded up."""
        return (self.size_bits() + 7) // 8

    def compression_ratio(self, n: int | None = None) -> float:
        """Compressed bits / uncompressed bits (64 per value)."""
        n = n if n is not None else len(self.decompress())
        return self.size_bits() / (64 * n)


class LosslessCompressor(ABC):
    """A factory producing :class:`Compressed` objects from int64 arrays."""

    #: display name used in benchmark tables
    name: str = "?"
    #: whether random access is native (no block-wise adapter involved)
    native_random_access: bool = False

    @abstractmethod
    def compress(self, values: np.ndarray) -> Compressed:
        """Compress a 1-D int64 array losslessly."""

    @staticmethod
    def _check_input(values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("expected a 1-D array")
        if len(values) == 0:
            raise ValueError("cannot compress an empty series")
        return values.astype(np.int64)
