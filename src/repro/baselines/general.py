"""The five general-purpose lossless compressors of the paper's evaluation.

The paper benchmarks Xz, Brotli, Zstd, Lz4 and Snappy through the Squash
library.  Offline we map each one to the closest available codec (see
DESIGN.md §3 for the substitution rationale):

========  =====================  ==========================================
Paper     Here                   Notes
========  =====================  ==========================================
Xz        ``lzma`` (stdlib)      this *is* the .xz format (LZMA2)
Brotli    ``bz2`` (stdlib)       block-sorting entropy-heavy compressor
Zstd      ``zlib`` (stdlib)      LZ77 + entropy coding, mid trade-off
Lz4       PyLZ (this repo)       greedy byte LZ, no entropy stage
Snappy    PyLZ accelerated       faster parse, looser matches
========  =====================  ==========================================

All five are exposed through the block-wise random-access adapter of
§IV-A2 (1000-value blocks + pointer array), exactly as in the paper.
"""

from __future__ import annotations

import bz2
import lzma
import zlib

from . import pylz
from .blockwise import BlockwiseCompressor, ByteCompressor

__all__ = [
    "XzCompressor",
    "BrotliLikeCompressor",
    "ZstdLikeCompressor",
    "Lz4LikeCompressor",
    "SnappyLikeCompressor",
    "GENERAL_PURPOSE",
]


class XzCompressor(BlockwiseCompressor):
    """Xz via the stdlib ``lzma`` module (the genuine .xz codec)."""

    def __init__(self, preset: int = 6, block_size: int = 1000) -> None:
        codec = ByteCompressor(
            "Xz",
            lambda data: lzma.compress(data, preset=preset),
            lzma.decompress,
        )
        super().__init__(codec, block_size)


class BrotliLikeCompressor(BlockwiseCompressor):
    """Brotli stand-in: ``bz2`` (entropy-heavy, slow, strong ratio)."""

    def __init__(self, level: int = 9, block_size: int = 1000) -> None:
        codec = ByteCompressor(
            "Brotli*",
            lambda data: bz2.compress(data, compresslevel=level),
            bz2.decompress,
        )
        super().__init__(codec, block_size)


class ZstdLikeCompressor(BlockwiseCompressor):
    """Zstd stand-in: ``zlib`` (LZ77 + Huffman, balanced trade-off)."""

    def __init__(self, level: int = 6, block_size: int = 1000) -> None:
        codec = ByteCompressor(
            "Zstd*",
            lambda data: zlib.compress(data, level),
            zlib.decompress,
        )
        super().__init__(codec, block_size)


class Lz4LikeCompressor(BlockwiseCompressor):
    """Lz4 stand-in: PyLZ with a full greedy parse."""

    def __init__(self, block_size: int = 1000) -> None:
        codec = ByteCompressor(
            "Lz4*",
            lambda data: pylz.compress(data, acceleration=1),
            pylz.decompress,
        )
        super().__init__(codec, block_size)


class SnappyLikeCompressor(BlockwiseCompressor):
    """Snappy stand-in: PyLZ with accelerated (skipping) parse."""

    def __init__(self, block_size: int = 1000) -> None:
        codec = ByteCompressor(
            "Snappy*",
            lambda data: pylz.compress(data, acceleration=8, window=1 << 16),
            pylz.decompress,
        )
        super().__init__(codec, block_size)


def GENERAL_PURPOSE() -> list[BlockwiseCompressor]:
    """Fresh instances of all five general-purpose compressors."""
    return [
        XzCompressor(),
        BrotliLikeCompressor(),
        ZstdLikeCompressor(),
        Lz4LikeCompressor(),
        SnappyLikeCompressor(),
    ]
