"""Directly Addressable Codes (Brisaboa, Ladra, Navarro, IPM 2013).

DAC splits each (zigzag-encoded) value into fixed-width chunks, stores the
``l``-th chunks of all values that need them contiguously at level ``l``, and
marks with a per-level bitmap whether a value continues to the next level.
``rank`` on the bitmaps navigates from a position to its higher-order chunks,
giving O(levels) *native* random access — DAC is the random-access champion
in the paper's Table III (bottom), at the cost of a weak compression ratio.

Level widths are chosen with the optimal dynamic program from the DAC paper
(minimising total size given the distribution of value bit lengths).
"""

from __future__ import annotations

import numpy as np

from ..bits import BitVector, PackedArray
from ._native import (
    DAC_HDR as _DAC_HDR,
    DAC_LEVEL as _LEVEL_HDR,
    pack_bitvector,
    pack_packed_array,
    unpack_bitvector,
    unpack_packed_array,
)
from .base import Compressed, LosslessCompressor

__all__ = ["DacCompressor", "optimal_level_widths"]

_MAX_WIDTH = 64

def optimal_level_widths(bit_lengths: np.ndarray, max_levels: int = 8) -> list[int]:
    """Optimal chunk widths per level for the given value bit lengths.

    ``dp[j]`` is the minimum cost of encoding all bits at positions ``>= j``
    of every value whose length exceeds ``j``; each level of width ``b``
    starting at depth ``j`` costs ``count(len > j) * (b + 1)`` bits (chunk
    plus continuation bit).
    """
    max_len = int(bit_lengths.max()) if len(bit_lengths) else 1
    max_len = max(max_len, 1)
    # exceed[j] = number of values with bit length > j.
    hist = np.bincount(np.maximum(bit_lengths, 1), minlength=max_len + 1)
    exceed = np.concatenate([np.cumsum(hist[::-1])[::-1][1:], [0]])

    INF = float("inf")
    dp = [INF] * (max_len + 1)
    choice = [0] * (max_len + 1)
    dp[max_len] = 0.0
    for j in range(max_len - 1, -1, -1):
        values_here = int(exceed[j]) if j < len(exceed) else 0
        for b in range(1, max_len - j + 1):
            cont_bit = 0 if j + b == max_len else 1  # last level has no bitmap
            cost = values_here * (b + cont_bit) + dp[j + b]
            if cost < dp[j]:
                dp[j] = cost
                choice[j] = b
    widths = []
    j = 0
    while j < max_len and len(widths) < max_levels - 1:
        widths.append(choice[j])
        j += choice[j]
    if j < max_len:
        widths.append(max_len - j)  # cap the level count with one wide level
    return widths


class _DacCompressed(Compressed):
    payload_is_native = True

    def __init__(
        self,
        levels: list[PackedArray],
        bitmaps: list[BitVector | None],
        widths: list[int],
        n: int,
    ) -> None:
        self._levels = levels
        self._bitmaps = bitmaps
        self._widths = widths
        self._n = n

    def size_bits(self) -> int:
        total = 64 * 2
        for arr in self._levels:
            total += arr.size_bits()
        for bm in self._bitmaps:
            if bm is not None:
                total += bm.size_bits()
        return total

    def access(self, k: int) -> int:
        if not 0 <= k < self._n:
            raise IndexError(k)
        value = 0
        shift = 0
        idx = k
        for lvl, width in enumerate(self._widths):
            value |= self._levels[lvl][idx] << shift
            shift += width
            bm = self._bitmaps[lvl]
            if bm is None or not bm[idx]:
                break
            idx = bm.rank1(idx)
        return _unzigzag(value)

    def decompress(self) -> np.ndarray:
        out = np.zeros(self._n, dtype=np.uint64)
        idx = np.arange(self._n, dtype=np.int64)
        shift = 0
        for lvl, width in enumerate(self._widths):
            chunks = self._levels[lvl].to_numpy()
            out[idx] |= chunks << np.uint64(shift)
            shift += width
            bm = self._bitmaps[lvl]
            if bm is None:
                break
            cont = bm.to_numpy().astype(bool)
            idx = idx[cont]
            if len(idx) == 0:
                break
        # zigzag decode: (v >> 1) ^ -(v & 1)
        half = (out >> np.uint64(1)).astype(np.int64)
        sign = (out & np.uint64(1)).astype(np.int64)
        return half ^ -sign

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        """Decode ``[lo, hi)`` level by level.

        Survivors keep their relative order across levels, so the slice at
        level ``l+1`` is exactly ``[rank1(lo_l), rank1(hi_l))`` — two rank
        queries per level, then contiguous chunk extraction.
        """
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        count = hi - lo
        out = np.zeros(count, dtype=np.uint64)
        idx = np.arange(count, dtype=np.int64)  # positions within the output
        a, b = lo, hi
        shift = 0
        for lvl, width in enumerate(self._widths):
            chunks = self._levels[lvl].slice(a, b)
            out[idx] |= chunks << np.uint64(shift)
            shift += width
            bm = self._bitmaps[lvl]
            if bm is None or b == a:
                break
            cont = bm.slice(a, b).astype(bool)
            idx = idx[cont]
            a, b = bm.rank1(a), bm.rank1(b)
            if len(idx) == 0:
                break
        half = (out >> np.uint64(1)).astype(np.int64)
        sign = (out & np.uint64(1)).astype(np.int64)
        return half ^ -sign

    def to_payload(self) -> bytes:
        """Native frame payload: per-level chunk arrays and bitmaps."""
        parts = [_DAC_HDR.pack(self._n, len(self._levels))]
        for level, bitmap, width in zip(self._levels, self._bitmaps, self._widths):
            parts.append(_LEVEL_HDR.pack(width, 0 if bitmap is None else 1))
            parts.append(pack_packed_array(level))
            if bitmap is not None:
                parts.append(pack_bitvector(bitmap))
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload) -> "_DacCompressed":
        """Rebuild from :meth:`to_payload` output — a direct parse, no
        recompression (works over any byte buffer, e.g. an mmapped frame)."""
        view = memoryview(payload) if not isinstance(payload, memoryview) else payload
        if len(view) < _DAC_HDR.size:
            raise ValueError("corrupt DAC payload: header incomplete")
        n, nlevels = _DAC_HDR.unpack_from(view)
        if n < 0 or nlevels < 1:
            raise ValueError(f"corrupt DAC payload: {nlevels} levels, n={n}")
        pos = _DAC_HDR.size
        levels: list[PackedArray] = []
        bitmaps: list[BitVector | None] = []
        widths: list[int] = []
        expected = n
        for _ in range(nlevels):
            if pos + _LEVEL_HDR.size > len(view):
                raise ValueError("corrupt DAC payload: truncated level header")
            width, has_bitmap = _LEVEL_HDR.unpack_from(view, pos)
            pos += _LEVEL_HDR.size
            level, pos = unpack_packed_array(view, pos, "DAC payload")
            if len(level) != expected:
                raise ValueError(
                    f"corrupt DAC payload: level holds {len(level)} chunks, "
                    f"expected {expected}"
                )
            levels.append(level)
            widths.append(width)
            if has_bitmap:
                bitmap, pos = unpack_bitvector(view, pos, "DAC payload")
                if bitmap.length != expected:
                    raise ValueError(
                        "corrupt DAC payload: bitmap length disagrees with "
                        "its level"
                    )
                bitmaps.append(bitmap)
                expected = bitmap.count_ones
            else:
                bitmaps.append(None)
        if pos != len(view):
            raise ValueError("corrupt DAC payload: trailing bytes")
        return cls(levels, bitmaps, widths, n)


def _unzigzag(v: int) -> int:
    return (v >> 1) ^ -(v & 1)


class DacCompressor(LosslessCompressor):
    """DAC with optimal level widths and native random access."""

    name = "DAC"
    native_random_access = True

    def __init__(self, max_levels: int = 8) -> None:
        self._max_levels = max_levels

    def compress(self, values: np.ndarray) -> _DacCompressed:
        values = self._check_input(values)
        # zigzag so small magnitudes (positive or negative) get short codes
        unsigned = (values.astype(np.int64) << 1) ^ (values.astype(np.int64) >> 63)
        unsigned = unsigned.astype(np.uint64)
        bit_lengths = np.array(
            [max(int(v).bit_length(), 1) for v in unsigned.tolist()], dtype=np.int64
        )
        widths = optimal_level_widths(bit_lengths, self._max_levels)

        levels: list[PackedArray] = []
        bitmaps: list[BitVector | None] = []
        current = unsigned.tolist()
        consumed = 0
        for lvl, width in enumerate(widths):
            mask = (1 << width) - 1
            chunks = [v & mask for v in current]
            rest = [v >> width for v in current]
            levels.append(PackedArray(chunks, width=width))
            consumed += width
            last_level = lvl == len(widths) - 1
            if last_level:
                bitmaps.append(None)
                break
            cont = [1 if r else 0 for r in rest]
            bitmaps.append(BitVector(cont))
            current = [r for r in rest if r]
            if not current:
                # No survivors: drop the remaining planned levels.
                break
        return _DacCompressed(levels, bitmaps, widths[: len(levels)], len(values))
