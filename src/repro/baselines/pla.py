"""Optimal Piecewise Linear Approximation (O'Rourke 1981) — lossy baseline.

This is the classic minimum-segment PLA under an L∞ bound: the exact
algorithm the paper uses as its linear lossy baseline (§IV-B) and the
starting point NeaTS generalises.  It reuses the same
:class:`~repro.core.convex.RangeLineFitter` engine with the identity
transform, so optimality (fewest segments) is inherited from Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.models import get_model
from ..core.partition import FRAGMENT_OVERHEAD_BITS, PARAM_BITS
from ..core.piecewise import mape, max_abs_error, piecewise_approximation

__all__ = ["PlaCompressor", "PlaSeries"]


@dataclass
class PlaSeries:
    """A piecewise linear ε-approximation with the minimum number of segments."""

    segments: list  # list of FragmentFit
    n: int
    shift: int
    eps: float
    original_bits: int

    def reconstruct(self) -> np.ndarray:
        """Evaluate the approximation at every position (float64)."""
        model = get_model("linear")
        out = np.empty(self.n, dtype=np.float64)
        for seg in self.segments:
            xs = np.arange(seg.start + 1, seg.end + 1, dtype=np.float64)
            out[seg.start : seg.end] = model.evaluate(seg.params, xs)
        return out - self.shift

    def size_bits(self) -> int:
        """Two float64 parameters plus metadata per segment."""
        return len(self.segments) * (2 * PARAM_BITS + FRAGMENT_OVERHEAD_BITS) + 64 * 2

    def compression_ratio(self) -> float:
        """Compressed size / original size."""
        return self.size_bits() / self.original_bits

    def max_error(self, y: np.ndarray) -> float:
        """Measured L∞ error against the original values."""
        return max_abs_error(np.asarray(y, dtype=np.float64), self.reconstruct())

    def mape(self, y: np.ndarray) -> float:
        """Mean Absolute Percentage Error (§IV-B)."""
        return mape(np.asarray(y, dtype=np.float64), self.reconstruct())

    @property
    def num_segments(self) -> int:
        """Number of linear pieces."""
        return len(self.segments)


class PlaCompressor:
    """Minimum-segment PLA under an L∞ error bound ``eps``."""

    name = "PLA"

    def __init__(self, eps: float) -> None:
        if eps < 0:
            raise ValueError("eps must be non-negative")
        self.eps = float(eps)

    def compress(self, values: np.ndarray) -> PlaSeries:
        """Build the optimal PLA of an integer series."""
        y = np.asarray(values, dtype=np.int64)
        if len(y) == 0:
            raise ValueError("cannot compress an empty series")
        shift = 0  # linear fitting needs no positivity
        z = y.astype(np.float64)
        segments = piecewise_approximation(z, "linear", self.eps)
        return PlaSeries(segments, len(y), shift, self.eps, 64 * len(y))
