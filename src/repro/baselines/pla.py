"""Optimal Piecewise Linear Approximation (O'Rourke 1981) — lossy baseline.

This is the classic minimum-segment PLA under an L∞ bound: the exact
algorithm the paper uses as its linear lossy baseline (§IV-B) and the
starting point NeaTS generalises.  It reuses the same
:class:`~repro.core.convex.RangeLineFitter` engine with the identity
transform, so optimality (fewest segments) is inherited from Theorem 1.

:class:`PlaSeries` implements the
:class:`~repro.baselines.base.LossyCompressed` protocol: random access by
binary search over segment starts, and a native frame payload holding the
fitted segments (raw float64 slopes/intercepts), so a persisted PLA archive
reproduces the exact approximation without re-fitting.
"""

from __future__ import annotations

import numpy as np

from ..core.models import FragmentFit, get_model
from ..core.partition import FRAGMENT_OVERHEAD_BITS, PARAM_BITS
from ..core.piecewise import piecewise_approximation
from ._native import LOSSY_HDR as _PAYLOAD_HDR, pack_segment, unpack_segment
from .base import LossyCompressed, LossyCompressor

__all__ = ["PlaCompressor", "PlaSeries"]


class PlaSeries(LossyCompressed):
    """A piecewise linear ε-approximation with the minimum number of segments."""

    def __init__(
        self,
        segments: list,  # list of FragmentFit
        n: int,
        shift: int,
        eps: float,
    ) -> None:
        self.segments = segments
        self._n = int(n)
        self.shift = int(shift)
        self.eps = float(eps)

    def reconstruct(self) -> np.ndarray:
        """Evaluate the approximation at every position (float64)."""
        model = get_model("linear")
        out = np.empty(self.n, dtype=np.float64)
        for seg in self.segments:
            xs = np.arange(seg.start + 1, seg.end + 1, dtype=np.float64)
            out[seg.start : seg.end] = model.evaluate(seg.params, xs)
        return out - self.shift

    def access(self, k: int) -> float:
        """The approximated value at 0-based position ``k``."""
        seg = self._segment_at(self.segments, self._check_position(k))
        return get_model("linear").evaluate_at(seg.params, k + 1) - self.shift

    def size_bits(self) -> int:
        """Two float64 parameters plus metadata per segment."""
        return len(self.segments) * (2 * PARAM_BITS + FRAGMENT_OVERHEAD_BITS) + 64 * 2

    @property
    def num_segments(self) -> int:
        """Number of linear pieces."""
        return len(self.segments)

    # -- native frame payload --------------------------------------------------

    def to_payload(self) -> bytes:
        """Native layout: header + one ``(start, end, params)`` per segment."""
        parts = [_PAYLOAD_HDR.pack(self.n, self.shift, self.eps,
                                   len(self.segments))]
        parts.extend(
            pack_segment(seg.start, seg.end, seg.params) for seg in self.segments
        )
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload) -> "PlaSeries":
        """Rebuild from :meth:`to_payload` output (any byte buffer)."""
        what = "PLA payload"
        view = payload if isinstance(payload, memoryview) else memoryview(payload)
        if view.nbytes < _PAYLOAD_HDR.size:
            raise ValueError(f"corrupt {what}: truncated header")
        n, shift, eps, n_segs = _PAYLOAD_HDR.unpack_from(view)
        if n < 1:
            raise ValueError(f"corrupt {what}: bad value count {n}")
        pos = _PAYLOAD_HDR.size
        segments = []
        expected_start = 0
        for _ in range(n_segs):
            (start, end, params), pos = unpack_segment(view, pos, what)
            if len(params) != 2:
                raise ValueError(
                    f"corrupt {what}: linear segment with {len(params)} params"
                )
            if start != expected_start or end > n:
                raise ValueError(f"corrupt {what}: segments do not tile [0, {n})")
            expected_start = end
            segments.append(FragmentFit(start, end, params))
        if expected_start != n or pos != view.nbytes:
            raise ValueError(f"corrupt {what}: segments do not tile [0, {n})")
        return cls(segments, n, shift, eps)


class PlaCompressor(LossyCompressor):
    """Minimum-segment PLA under an L∞ error bound ``eps``."""

    name = "PLA"

    def compress(self, values: np.ndarray) -> PlaSeries:
        """Build the optimal PLA of an integer series."""
        y = np.asarray(values, dtype=np.int64)
        if len(y) == 0:
            raise ValueError("cannot compress an empty series")
        shift = 0  # linear fitting needs no positivity
        z = y.astype(np.float64)
        segments = piecewise_approximation(z, "linear", self.eps)
        return PlaSeries(segments, len(y), shift, self.eps)
