"""PyLZ: a pure-Python byte-oriented LZ77 compressor (Lz4/Snappy stand-in).

Lz4 and Snappy occupy the "very fast, modest ratio" corner of the paper's
trade-off plots.  Neither is available offline, so PyLZ reproduces their
essential design in plain Python: greedy hash-table matching over a sliding
window with a byte-oriented token format (no entropy coding), which yields
the same qualitative behaviour — much faster than Xz-class compressors and
much weaker compression.

Format
------
``varint(n)`` (uncompressed size) followed by sequences of
``varint(literal_len) literals varint(match_len) varint(offset)``; the stream
ends when the decoded output reaches ``n`` (a trailing sequence may omit the
match).  Matches are at least :data:`MIN_MATCH` bytes.
"""

from __future__ import annotations

from ..bits.codes import decode_varint, encode_varint

__all__ = ["compress", "decompress", "MIN_MATCH"]

MIN_MATCH = 8  # int64-friendly: one value


def compress(data: bytes, acceleration: int = 1, window: int = 1 << 20) -> bytes:
    """Greedy LZ77 parse of ``data``.

    ``acceleration > 1`` skips ahead faster after missed matches (Snappy-like
    speed/ratio trade), ``window`` bounds match offsets.
    """
    n = len(data)
    out = bytearray()
    encode_varint(n, out)
    if n < MIN_MATCH:
        encode_varint(n, out)
        out += data
        return bytes(out)

    table: dict[bytes, int] = {}
    i = 0
    anchor = 0
    misses = 0
    limit = n - MIN_MATCH
    while i <= limit:
        key = data[i : i + MIN_MATCH]
        cand = table.get(key, -1)
        table[key] = i
        if cand >= 0 and i - cand <= window and data[cand : cand + MIN_MATCH] == key:
            j = i + MIN_MATCH
            c = cand + MIN_MATCH
            while j < n and data[j] == data[c]:
                j += 1
                c += 1
            encode_varint(i - anchor, out)
            out += data[anchor:i]
            encode_varint(j - i, out)
            encode_varint(i - cand, out)
            i = j
            anchor = j
            misses = 0
        else:
            misses += 1
            i += 1 + (misses >> 5) * acceleration
    if anchor < n:
        encode_varint(n - anchor, out)
        out += data[anchor:]
    return bytes(out)


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    n, pos = decode_varint(blob, 0)
    out = bytearray()
    size = len(blob)
    while len(out) < n:
        lit, pos = decode_varint(blob, pos)
        if lit:
            out += blob[pos : pos + lit]
            pos += lit
        if len(out) >= n or pos >= size:
            break
        mlen, pos = decode_varint(blob, pos)
        off, pos = decode_varint(blob, pos)
        if off <= 0 or off > len(out):
            raise ValueError("corrupt PyLZ stream: bad offset")
        start = len(out) - off
        if off >= mlen:
            out += out[start : start + mlen]
        else:
            for k in range(mlen):  # overlapping copy
                out.append(out[start + k])
    if len(out) != n:
        raise ValueError(f"corrupt PyLZ stream: got {len(out)} of {n} bytes")
    return bytes(out)
