"""Adaptive Approximation (Xu et al., EDBT 2012; Qi et al., WWW 2015).

The AA algorithm is the nonlinear lossy baseline of the paper (§IV-B).  It
greedily grows a fragment while *any* of its candidate families — linear,
quadratic, exponential, each anchored through the fragment's first data point
with a single free parameter — still admits an ε-feasible parameter, and cuts
the fragment when all of them fail.  Anchoring makes each family's feasible
set a simple interval (intersected point by point), which is what makes AA
fast but sub-optimal:

* the anchor constraint wastes a degree of freedom (more fragments than the
  optimal partition), and
* the greedy cut is not globally optimal.

Both weaknesses are visible in Table II, where AA loses to PLA on nearly all
datasets despite using nonlinear functions — and that is precisely the gap
NeaTS-L closes.  The anchor also makes many residuals exactly zero, which is
why AA's MAPE is slightly *better* than NeaTS-L's (§IV-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.partition import FRAGMENT_OVERHEAD_BITS, PARAM_BITS
from ..core.piecewise import mape, max_abs_error

__all__ = ["AaCompressor", "AaSeries", "AaSegment"]

_FAMILIES = ("linear", "quadratic", "exponential")


@dataclass(frozen=True)
class AaSegment:
    """One AA fragment: family, anchor point, single free parameter."""

    start: int
    end: int
    family: str
    anchor: float
    theta: float

    def evaluate(self, xs: np.ndarray) -> np.ndarray:
        """The anchored family evaluated at absolute positions ``xs``."""
        dx = xs - (self.start + 1)
        if self.family == "linear":
            return self.anchor + self.theta * dx
        if self.family == "quadratic":
            return self.anchor + self.theta * dx * dx
        if self.family == "exponential":
            return self.anchor * np.exp(np.minimum(self.theta * dx, 700.0))
        raise ValueError(f"unknown family {self.family!r}")


class _Interval:
    """A running intersection of feasible parameter intervals."""

    __slots__ = ("lo", "hi")

    def __init__(self) -> None:
        self.lo = -math.inf
        self.hi = math.inf

    def clip(self, lo: float, hi: float) -> bool:
        """Intersect with [lo, hi]; returns False when empty."""
        self.lo = max(self.lo, lo)
        self.hi = min(self.hi, hi)
        return self.lo <= self.hi

    def mid(self) -> float:
        if self.lo == -math.inf and self.hi == math.inf:
            return 0.0
        if self.lo == -math.inf:
            return self.hi
        if self.hi == math.inf:
            return self.lo
        return (self.lo + self.hi) / 2.0


def _family_bounds(
    family: str, anchor: float, dx: float, z: float, eps: float
) -> tuple[float, float] | None:
    """Feasible θ interval contributed by one point, or None if impossible."""
    if family == "linear":
        return (z - anchor - eps) / dx, (z - anchor + eps) / dx
    if family == "quadratic":
        d2 = dx * dx
        return (z - anchor - eps) / d2, (z - anchor + eps) / d2
    if family == "exponential":
        if anchor <= 0 or z - eps <= 0:
            return None
        return (
            math.log((z - eps) / anchor) / dx,
            math.log((z + eps) / anchor) / dx,
        )
    raise ValueError(family)


@dataclass
class AaSeries:
    """The AA representation: a list of anchored one-parameter segments."""

    segments: list[AaSegment]
    n: int
    eps: float
    original_bits: int

    def reconstruct(self) -> np.ndarray:
        """Evaluate the approximation at every position."""
        out = np.empty(self.n, dtype=np.float64)
        for seg in self.segments:
            xs = np.arange(seg.start + 1, seg.end + 1, dtype=np.float64)
            out[seg.start : seg.end] = seg.evaluate(xs)
        return out

    def size_bits(self) -> int:
        """Anchor + θ (two float64) plus metadata per segment."""
        return len(self.segments) * (2 * PARAM_BITS + FRAGMENT_OVERHEAD_BITS) + 64 * 2

    def compression_ratio(self) -> float:
        """Compressed size / original size."""
        return self.size_bits() / self.original_bits

    def max_error(self, y: np.ndarray) -> float:
        """Measured L∞ error against the original values."""
        return max_abs_error(np.asarray(y, dtype=np.float64), self.reconstruct())

    def mape(self, y: np.ndarray) -> float:
        """Mean Absolute Percentage Error (§IV-B)."""
        return mape(np.asarray(y, dtype=np.float64), self.reconstruct())

    @property
    def num_segments(self) -> int:
        """Number of fragments."""
        return len(self.segments)


class AaCompressor:
    """The Adaptive Approximation heuristic under an L∞ bound ``eps``."""

    name = "AA"

    def __init__(self, eps: float) -> None:
        if eps < 0:
            raise ValueError("eps must be non-negative")
        self.eps = float(eps)

    def compress(self, values: np.ndarray) -> AaSeries:
        """Greedy adaptive segmentation of an integer series."""
        y = np.asarray(values, dtype=np.float64)
        if len(y) == 0:
            raise ValueError("cannot compress an empty series")
        n = len(y)
        eps = self.eps
        segments: list[AaSegment] = []
        start = 0
        while start < n:
            anchor = y[start]
            intervals = {fam: _Interval() for fam in _FAMILIES}
            alive = set(_FAMILIES)
            last_params: dict[str, float] = {fam: 0.0 for fam in _FAMILIES}
            last_alive_order: list[str] = list(_FAMILIES)
            k = start + 1
            while k < n and alive:
                dx = float(k - start)
                survivors = set()
                for fam in alive:
                    bounds = _family_bounds(fam, anchor, dx, y[k], eps)
                    if bounds is not None and intervals[fam].clip(*bounds):
                        survivors.add(fam)
                        last_params[fam] = intervals[fam].mid()
                if not survivors:
                    break
                alive = survivors
                last_alive_order = [f for f in _FAMILIES if f in alive]
                k += 1
            family = last_alive_order[0]
            theta = last_params[family] if k > start + 1 else 0.0
            segments.append(AaSegment(start, k, family, anchor, theta))
            start = k
        return AaSeries(segments, n, eps, 64 * n)
