"""Adaptive Approximation (Xu et al., EDBT 2012; Qi et al., WWW 2015).

The AA algorithm is the nonlinear lossy baseline of the paper (§IV-B).  It
greedily grows a fragment while *any* of its candidate families — linear,
quadratic, exponential, each anchored through the fragment's first data point
with a single free parameter — still admits an ε-feasible parameter, and cuts
the fragment when all of them fail.  Anchoring makes each family's feasible
set a simple interval (intersected point by point), which is what makes AA
fast but sub-optimal:

* the anchor constraint wastes a degree of freedom (more fragments than the
  optimal partition), and
* the greedy cut is not globally optimal.

Both weaknesses are visible in Table II, where AA loses to PLA on nearly all
datasets despite using nonlinear functions — and that is precisely the gap
NeaTS-L closes.  The anchor also makes many residuals exactly zero, which is
why AA's MAPE is slightly *better* than NeaTS-L's (§IV-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.partition import FRAGMENT_OVERHEAD_BITS, PARAM_BITS
from ._native import (
    AA_HDR as _PAYLOAD_HDR,
    pack_name,
    pack_segment,
    unpack_name,
    unpack_segment,
)
from .base import LossyCompressed, LossyCompressor

__all__ = ["AaCompressor", "AaSeries", "AaSegment"]

_FAMILIES = ("linear", "quadratic", "exponential")


@dataclass(frozen=True)
class AaSegment:
    """One AA fragment: family, anchor point, single free parameter."""

    start: int
    end: int
    family: str
    anchor: float
    theta: float

    def evaluate(self, xs: np.ndarray) -> np.ndarray:
        """The anchored family evaluated at absolute positions ``xs``."""
        dx = xs - (self.start + 1)
        if self.family == "linear":
            return self.anchor + self.theta * dx
        if self.family == "quadratic":
            return self.anchor + self.theta * dx * dx
        if self.family == "exponential":
            return self.anchor * np.exp(np.minimum(self.theta * dx, 700.0))
        raise ValueError(f"unknown family {self.family!r}")


class _Interval:
    """A running intersection of feasible parameter intervals."""

    __slots__ = ("lo", "hi")

    def __init__(self) -> None:
        self.lo = -math.inf
        self.hi = math.inf

    def clip(self, lo: float, hi: float) -> bool:
        """Intersect with [lo, hi]; returns False when empty."""
        self.lo = max(self.lo, lo)
        self.hi = min(self.hi, hi)
        return self.lo <= self.hi

    def mid(self) -> float:
        if self.lo == -math.inf and self.hi == math.inf:
            return 0.0
        if self.lo == -math.inf:
            return self.hi
        if self.hi == math.inf:
            return self.lo
        return (self.lo + self.hi) / 2.0


def _family_bounds(
    family: str, anchor: float, dx: float, z: float, eps: float
) -> tuple[float, float] | None:
    """Feasible θ interval contributed by one point, or None if impossible."""
    if family == "linear":
        return (z - anchor - eps) / dx, (z - anchor + eps) / dx
    if family == "quadratic":
        d2 = dx * dx
        return (z - anchor - eps) / d2, (z - anchor + eps) / d2
    if family == "exponential":
        if anchor <= 0 or z - eps <= 0:
            return None
        return (
            math.log((z - eps) / anchor) / dx,
            math.log((z + eps) / anchor) / dx,
        )
    raise ValueError(family)


class AaSeries(LossyCompressed):
    """The AA representation: a list of anchored one-parameter segments."""

    def __init__(
        self,
        segments: list[AaSegment],
        n: int,
        eps: float,
    ) -> None:
        self.segments = segments
        self._n = int(n)
        self.eps = float(eps)

    def reconstruct(self) -> np.ndarray:
        """Evaluate the approximation at every position."""
        out = np.empty(self.n, dtype=np.float64)
        for seg in self.segments:
            xs = np.arange(seg.start + 1, seg.end + 1, dtype=np.float64)
            out[seg.start : seg.end] = seg.evaluate(xs)
        return out

    def access(self, k: int) -> float:
        """The approximated value at 0-based position ``k``."""
        seg = self._segment_at(self.segments, self._check_position(k))
        return float(seg.evaluate(np.array([k + 1], dtype=np.float64))[0])

    def size_bits(self) -> int:
        """Anchor + θ (two float64) plus metadata per segment."""
        return len(self.segments) * (2 * PARAM_BITS + FRAGMENT_OVERHEAD_BITS) + 64 * 2

    @property
    def num_segments(self) -> int:
        """Number of fragments."""
        return len(self.segments)

    # -- native frame payload --------------------------------------------------

    def to_payload(self) -> bytes:
        """Native layout: header + per-segment family, anchor, and θ."""
        parts = [_PAYLOAD_HDR.pack(self.n, self.eps, len(self.segments))]
        for seg in self.segments:
            parts.append(pack_name(seg.family))
            parts.append(pack_segment(seg.start, seg.end, (seg.anchor, seg.theta)))
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload) -> "AaSeries":
        """Rebuild from :meth:`to_payload` output (any byte buffer)."""
        what = "AA payload"
        view = payload if isinstance(payload, memoryview) else memoryview(payload)
        if view.nbytes < _PAYLOAD_HDR.size:
            raise ValueError(f"corrupt {what}: truncated header")
        n, eps, n_segs = _PAYLOAD_HDR.unpack_from(view)
        if n < 1:
            raise ValueError(f"corrupt {what}: bad value count {n}")
        pos = _PAYLOAD_HDR.size
        segments = []
        expected_start = 0
        for _ in range(n_segs):
            family, pos = unpack_name(view, pos, what)
            if family not in _FAMILIES:
                raise ValueError(f"corrupt {what}: unknown family {family!r}")
            (start, end, params), pos = unpack_segment(view, pos, what)
            if start != expected_start or end > n or len(params) != 2:
                raise ValueError(f"corrupt {what}: segments do not tile [0, {n})")
            expected_start = end
            segments.append(AaSegment(start, end, family, params[0], params[1]))
        if expected_start != n or pos != view.nbytes:
            raise ValueError(f"corrupt {what}: segments do not tile [0, {n})")
        return cls(segments, n, eps)


class AaCompressor(LossyCompressor):
    """The Adaptive Approximation heuristic under an L∞ bound ``eps``."""

    name = "AA"

    def compress(self, values: np.ndarray) -> AaSeries:
        """Greedy adaptive segmentation of an integer series."""
        y = np.asarray(values, dtype=np.float64)
        if len(y) == 0:
            raise ValueError("cannot compress an empty series")
        n = len(y)
        eps = self.eps
        segments: list[AaSegment] = []
        start = 0
        while start < n:
            anchor = y[start]
            intervals = {fam: _Interval() for fam in _FAMILIES}
            alive = set(_FAMILIES)
            last_params: dict[str, float] = {fam: 0.0 for fam in _FAMILIES}
            last_alive_order: list[str] = list(_FAMILIES)
            k = start + 1
            while k < n and alive:
                dx = float(k - start)
                survivors = set()
                for fam in alive:
                    bounds = _family_bounds(fam, anchor, dx, y[k], eps)
                    if bounds is not None and intervals[fam].clip(*bounds):
                        survivors.add(fam)
                        last_params[fam] = intervals[fam].mid()
                if not survivors:
                    break
                alive = survivors
                last_alive_order = [f for f in _FAMILIES if f in alive]
                k += 1
            family = last_alive_order[0]
            theta = last_params[family] if k > start + 1 else 0.0
            segments.append(AaSegment(start, k, family, anchor, theta))
            start = k
        return AaSeries(segments, n, eps)
