"""Gorilla value compression (Pelkonen et al., VLDB 2015).

The classic XOR scheme used by Facebook's in-memory TSDB: each value is XORed
with its predecessor and the result is encoded with a control code exploiting
leading/trailing zeros:

* ``0``            — XOR is zero (value repeats);
* ``10`` + bits    — the meaningful bits of the XOR fall inside the previous
  meaningful-bit window: re-use that window, write only its bits;
* ``11`` + 5-bit leading-zero count + 6-bit length + bits — a new window.

Gorilla is the fastest-but-weakest point of the paper's trade-off plots
(Figure 2/3: top-right corner, ratio above 70%).  Random access goes through
the block-wise adapter like all XOR compressors (§IV-A2).
"""

from __future__ import annotations

import numpy as np

from ..bits import BitReader, BitWriter
from ._native import INT64_TRIPLE
from .base import Compressed, LosslessCompressor
from .blockwise import DEFAULT_BLOCK

__all__ = ["GorillaCompressor", "gorilla_encode", "gorilla_decode"]

_U64 = (1 << 64) - 1


def _clz(x: int) -> int:
    """Count of leading zeros in a 64-bit value (64 for x == 0)."""
    return 64 - x.bit_length()


def _ctz(x: int) -> int:
    """Count of trailing zeros in a 64-bit value (64 for x == 0)."""
    return (x & -x).bit_length() - 1 if x else 64


def gorilla_encode(values: list[int], writer: BitWriter) -> None:
    """Encode unsigned 64-bit ``values`` into ``writer``."""
    first = values[0]
    writer.write(first, 64)
    prev = first
    prev_lz = -1
    prev_len = 0
    for v in values[1:]:
        xor = prev ^ v
        prev = v
        if xor == 0:
            writer.write(0, 1)
            continue
        lz = min(_clz(xor), 31)
        tz = _ctz(xor)
        if (
            prev_lz >= 0
            and lz >= prev_lz
            and 64 - tz <= prev_lz + prev_len
        ):
            # Meaningful bits fit in the previous window: control '10'.
            writer.write(0b01, 2)  # LSB-first: reads as 1 then 0
            writer.write(xor >> (64 - prev_lz - prev_len), prev_len)
        else:
            length = 64 - lz - tz
            writer.write(0b11, 2)
            writer.write(lz, 5)
            writer.write(length - 1, 6)
            writer.write(xor >> tz, length)
            prev_lz = lz
            prev_len = length


def gorilla_decode(reader: BitReader, count: int) -> list[int]:
    """Decode ``count`` unsigned 64-bit values from ``reader``."""
    first = reader.read(64)
    out = [first]
    prev = first
    prev_lz = 0
    prev_len = 0
    for _ in range(count - 1):
        if not reader.read_bool():
            out.append(prev)
            continue
        if reader.read_bool():
            prev_lz = reader.read(5)
            prev_len = reader.read(6) + 1
        bits = reader.read(prev_len)
        xor = bits << (64 - prev_lz - prev_len)
        prev ^= xor
        out.append(prev)
    return out


#: decoded blocks kept hot per compressed object (LRU)
_BLOCK_CACHE = 8


class _XorBlockCompressed(Compressed):
    """Shared container for block-encoded XOR streams (Gorilla/Chimp/...).

    Block decoding dispatches through :mod:`repro.kernels` when the block's
    ``family`` is one of the vectorised XOR kernels; an explicit
    ``decode_fn`` remains the scalar fallback for unknown families.  Point
    and range queries binary-search the per-block counts
    (:class:`~repro.core.tiered.RunIndex`) and keep a small LRU of decoded
    blocks, so repeated access into the same region decodes nothing;
    ``blocks_decoded`` counts actual (non-cached) block decodes, which is
    what the lazy-decode tests assert on.
    """

    payload_is_native = True

    def __init__(self, blocks, n, block_size, decode_fn, family=None):
        from ..core.tiered import RunIndex

        self._blocks = blocks  # list of (words, bit_length, count)
        self._n = n
        self._block_size = block_size
        self._decode = decode_fn
        self._family = family
        self._index = RunIndex(count for _, _, count in blocks)
        self._cache: dict[int, np.ndarray] = {}
        self.blocks_decoded = 0

    def size_bits(self) -> int:
        payload = sum(bl for _, bl, _ in self._blocks)
        return payload + 64 * (len(self._blocks) + 1)

    def _decode_block(self, idx: int) -> np.ndarray:
        cached = self._cache.pop(idx, None)
        if cached is None:
            self.blocks_decoded += 1
            words, bit_length, count = self._blocks[idx]
            if self._family is not None:
                from .. import kernels

                cached = kernels.decode_xor_block(
                    self._family, words, bit_length, count
                )
            else:
                cached = np.array(
                    self._decode(BitReader(words, bit_length), count),
                    dtype=np.uint64,
                )
        self._cache[idx] = cached  # re-insert: dict order is the LRU order
        if len(self._cache) > _BLOCK_CACHE:
            self._cache.pop(next(iter(self._cache)))
        return cached

    def decompress(self) -> np.ndarray:
        if not self._blocks:
            return np.empty(0, dtype=np.int64)
        if self._family is not None:
            from .. import kernels

            self.blocks_decoded += len(self._blocks)
            out = kernels.decode_xor_blocks(self._family, self._blocks)
            return out.astype(np.int64)
        parts = [self._decode_block(idx) for idx in range(len(self._blocks))]
        return np.concatenate(parts).astype(np.int64)

    def access(self, k: int) -> int:
        if not 0 <= k < self._n:
            raise IndexError(k)
        idx, off = self._index.locate(k)
        vals = self._decode_block(idx)
        return int(vals[off].astype(np.int64))

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        parts = [
            self._decode_block(idx)[a:b] for idx, a, b in self._index.spans(lo, hi)
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts).astype(np.int64)

    def to_payload(self) -> bytes:
        """Native frame payload: per-block XOR bit streams."""
        parts = [INT64_TRIPLE.pack(self._n, self._block_size, len(self._blocks))]
        for words, bit_length, count in self._blocks:
            words = np.ascontiguousarray(words, dtype=np.uint64)
            parts.append(INT64_TRIPLE.pack(count, bit_length, len(words)))
            parts.append(words.tobytes())
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload, decode_fn, family=None) -> "_XorBlockCompressed":
        """Rebuild from :meth:`to_payload` output plus the family's decoder.

        Zero-copy: block word buffers are adopted as (read-only) views of
        ``payload``, which may be any byte buffer, e.g. an mmapped frame.
        """
        if len(payload) < 24:
            raise ValueError("corrupt XOR payload: header incomplete")
        n, block_size, nblocks = INT64_TRIPLE.unpack_from(payload)
        pos = 24
        blocks = []
        for _ in range(nblocks):
            if pos + 24 > len(payload):
                raise ValueError("corrupt XOR payload: truncated block header")
            count, bit_length, nwords = INT64_TRIPLE.unpack_from(payload, pos)
            pos += 24
            end = pos + 8 * nwords
            if nwords < 0 or end > len(payload):
                raise ValueError("corrupt XOR payload: bad block length")
            words = np.frombuffer(payload, dtype=np.uint64, count=nwords, offset=pos)
            blocks.append((words, bit_length, count))
            pos = end
        return cls(blocks, n, block_size, decode_fn, family)


class GorillaCompressor(LosslessCompressor):
    """Gorilla, applied block-wise for random access (paper §IV-A2)."""

    name = "Gorilla"

    def __init__(self, block_size: int = DEFAULT_BLOCK) -> None:
        self._block_size = block_size

    def compress(self, values: np.ndarray) -> _XorBlockCompressed:
        values = self._check_input(values)
        unsigned = values.astype(np.uint64).tolist()
        blocks = []
        for start in range(0, len(unsigned), self._block_size):
            chunk = unsigned[start : start + self._block_size]
            writer = BitWriter()
            gorilla_encode(chunk, writer)
            blocks.append((writer.getbuffer(), writer.bit_length, len(chunk)))
        return _XorBlockCompressed(
            blocks, len(values), self._block_size, gorilla_decode, family="gorilla"
        )
