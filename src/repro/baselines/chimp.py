"""Chimp and Chimp128 (Liakos et al., PVLDB 2022).

Chimp refines Gorilla's XOR scheme with a 2-bit flag and a quantised
leading-zero table, exploiting the observation that XORs of consecutive
values often have *many trailing zeros*:

* ``00`` — XOR is zero;
* ``01`` — XOR has more than 6 trailing zeros: write a 3-bit quantised
  leading-zero code, a 6-bit count of centre bits, and the centre bits;
* ``10`` — leading-zero count equals the previous one: write ``64 - lz`` bits;
* ``11`` — new leading-zero count: 3-bit code plus ``64 - lz`` bits.

Chimp128 additionally searches the previous 128 values for the reference
producing the most trailing zeros (located through a hash of the low bits of
the value, as in the original), paying a 7-bit index.

Both are applied block-wise for random access (paper §IV-A2).
"""

from __future__ import annotations

import numpy as np

from ..bits import BitReader, BitWriter
from .base import LosslessCompressor
from .blockwise import DEFAULT_BLOCK
from .gorilla import _XorBlockCompressed, _clz, _ctz

__all__ = ["ChimpCompressor", "Chimp128Compressor"]

#: quantisation of leading-zero counts to 3 bits (from the Chimp paper)
_LZ_ROUND = [0, 8, 12, 16, 18, 20, 22, 24]
_LZ_CODE = {}
for _code, _v in enumerate(_LZ_ROUND):
    _LZ_CODE[_v] = _code


def _round_lz(lz: int) -> int:
    """Largest table entry not exceeding ``lz``."""
    best = 0
    for v in _LZ_ROUND:
        if v <= lz:
            best = v
    return best


def chimp_encode(values: list[int], writer: BitWriter) -> None:
    """Encode unsigned 64-bit ``values`` with the Chimp scheme."""
    first = values[0]
    writer.write(first, 64)
    prev = first
    prev_lz = -1
    for v in values[1:]:
        xor = prev ^ v
        prev = v
        if xor == 0:
            writer.write(0b00, 2)
            prev_lz = -1
            continue
        tz = _ctz(xor)
        lz = _round_lz(min(_clz(xor), 31))
        if tz > 6:
            center = 64 - lz - tz
            writer.write(0b10, 2)  # LSB-first: flag bits (0, 1)
            writer.write(_LZ_CODE[lz], 3)
            writer.write(center, 6)
            writer.write(xor >> tz, center)
            prev_lz = -1
        elif lz == prev_lz:
            writer.write(0b01, 2)  # flag bits (1, 0)
            writer.write(xor, 64 - lz)
        else:
            writer.write(0b11, 2)  # flag bits (1, 1)
            writer.write(_LZ_CODE[lz], 3)
            writer.write(xor, 64 - lz)
            prev_lz = lz


def chimp_decode(reader: BitReader, count: int) -> list[int]:
    """Decode ``count`` values encoded by :func:`chimp_encode`."""
    first = reader.read(64)
    out = [first]
    prev = first
    prev_lz = -1
    for _ in range(count - 1):
        b0 = reader.read_bool()
        b1 = reader.read_bool()
        if not b0 and not b1:  # 00
            out.append(prev)
            prev_lz = -1
            continue
        if not b0 and b1:  # 01 in stream order = our "10" literal => tz case
            lz = _LZ_ROUND[reader.read(3)]
            center = reader.read(6)
            xor = reader.read(center) << (64 - lz - center)
            prev ^= xor
            prev_lz = -1
        elif b0 and not b1:  # same leading zeros
            xor = reader.read(64 - prev_lz_value(prev_lz))
            prev ^= xor
        else:  # new leading zeros
            prev_lz = _LZ_ROUND[reader.read(3)]
            xor = reader.read(64 - prev_lz)
            prev ^= xor
        out.append(prev)
    return out


def prev_lz_value(prev_lz: int) -> int:
    """Guard against decoding '10' before any '11' set a leading-zero count."""
    if prev_lz < 0:
        raise ValueError("corrupt Chimp stream: window flag before window")
    return prev_lz


class ChimpCompressor(LosslessCompressor):
    """Chimp, block-wise."""

    name = "Chimp"

    def __init__(self, block_size: int = DEFAULT_BLOCK) -> None:
        self._block_size = block_size

    def compress(self, values: np.ndarray) -> _XorBlockCompressed:
        values = self._check_input(values)
        unsigned = values.astype(np.uint64).tolist()
        blocks = []
        for start in range(0, len(unsigned), self._block_size):
            chunk = unsigned[start : start + self._block_size]
            writer = BitWriter()
            chimp_encode(chunk, writer)
            blocks.append((writer.getbuffer(), writer.bit_length, len(chunk)))
        return _XorBlockCompressed(
            blocks, len(values), self._block_size, chimp_decode, family="chimp"
        )


# ---------------------------------------------------------------------------
# Chimp128
# ---------------------------------------------------------------------------

_WINDOW = 128
_HASH_BITS = 14
_HASH_MASK = (1 << _HASH_BITS) - 1


def chimp128_encode(values: list[int], writer: BitWriter) -> None:
    """Encode with a 128-value reference window located by an LSB hash."""
    first = values[0]
    writer.write(first, 64)
    ring: list[int] = [first]
    indices: dict[int, int] = {first & _HASH_MASK: 0}
    prev_lz = -1
    for pos in range(1, len(values)):
        v = values[pos]
        key = v & _HASH_MASK
        cand = indices.get(key, -1)
        ref_off = 0
        use_window = False
        if cand >= 0 and pos - cand <= _WINDOW:
            ref = ring[cand % _WINDOW] if len(ring) >= _WINDOW else ring[cand]
            xor = ref ^ v
            if xor == 0 or _ctz(xor) > 6:
                use_window = True
                ref_off = pos - cand - 1  # 0..127
        if use_window:
            if xor == 0:
                writer.write(0b00, 2)
                writer.write(ref_off, 7)
            else:
                tz = _ctz(xor)
                lz = _round_lz(min(_clz(xor), 31))
                center = 64 - lz - tz
                writer.write(0b10, 2)
                writer.write(ref_off, 7)
                writer.write(_LZ_CODE[lz], 3)
                writer.write(center, 6)
                writer.write(xor >> tz, center)
            prev_lz = -1
        else:
            ref = ring[(pos - 1) % _WINDOW] if len(ring) >= _WINDOW else ring[pos - 1]
            xor = ref ^ v
            lz = _round_lz(min(_clz(xor), 31))
            if lz == prev_lz:
                writer.write(0b01, 2)
                writer.write(xor, 64 - lz)
            else:
                writer.write(0b11, 2)
                writer.write(_LZ_CODE[lz], 3)
                writer.write(xor, 64 - lz)
                prev_lz = lz
        if len(ring) >= _WINDOW:
            ring[pos % _WINDOW] = v
        else:
            ring.append(v)
        indices[key] = pos


def chimp128_decode(reader: BitReader, count: int) -> list[int]:
    """Decode a :func:`chimp128_encode` stream."""
    first = reader.read(64)
    out = [first]
    prev_lz = -1
    for pos in range(1, count):
        b0 = reader.read_bool()
        b1 = reader.read_bool()
        if not b0 and not b1:  # exact window match
            ref_off = reader.read(7)
            out.append(out[pos - 1 - ref_off])
            prev_lz = -1
        elif not b0 and b1:  # window match with centre bits
            ref_off = reader.read(7)
            lz = _LZ_ROUND[reader.read(3)]
            center = reader.read(6)
            xor = reader.read(center) << (64 - lz - center)
            out.append(out[pos - 1 - ref_off] ^ xor)
            prev_lz = -1
        elif b0 and not b1:  # previous value, same leading zeros
            xor = reader.read(64 - prev_lz_value(prev_lz))
            out.append(out[pos - 1] ^ xor)
        else:  # previous value, new leading zeros
            prev_lz = _LZ_ROUND[reader.read(3)]
            xor = reader.read(64 - prev_lz)
            out.append(out[pos - 1] ^ xor)
    return out


class Chimp128Compressor(LosslessCompressor):
    """Chimp128, block-wise."""

    name = "Chimp128"

    def __init__(self, block_size: int = DEFAULT_BLOCK) -> None:
        self._block_size = block_size

    def compress(self, values: np.ndarray) -> _XorBlockCompressed:
        values = self._check_input(values)
        unsigned = values.astype(np.uint64).tolist()
        blocks = []
        for start in range(0, len(unsigned), self._block_size):
            chunk = unsigned[start : start + self._block_size]
            writer = BitWriter()
            chimp128_encode(chunk, writer)
            blocks.append((writer.getbuffer(), writer.bit_length, len(chunk)))
        return _XorBlockCompressed(
            blocks, len(values), self._block_size, chimp128_decode, family="chimp128"
        )
