"""Block-wise random-access adapter for stream compressors (§IV-A2).

The paper evaluates compressors that lack native random access by splitting
the series into blocks of 1000 consecutive values, compressing each block
independently, and keeping "an array that maps each block index to a pointer
referencing the starting byte of the block in the compressed output".  Random
access then decompresses exactly one block; a range query decompresses the
covering blocks.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ._native import INT64, INT64_TRIPLE
from .base import Compressed, LosslessCompressor

__all__ = ["BlockwiseCompressed", "ByteCompressor", "BlockwiseCompressor"]

DEFAULT_BLOCK = 1000


class ByteCompressor:
    """A pair of bytes->bytes functions (e.g. ``zlib.compress``/``decompress``)."""

    def __init__(
        self,
        name: str,
        compress: Callable[[bytes], bytes],
        decompress: Callable[[bytes], bytes],
    ) -> None:
        self.name = name
        self.compress = compress
        self.decompress = decompress


class BlockwiseCompressed(Compressed):
    """Compressed blocks + pointer array, as described in the paper."""

    payload_is_native = True

    def __init__(
        self, codec: ByteCompressor, blocks: list[bytes], n: int, block_size: int
    ) -> None:
        self._codec = codec
        self._blocks = blocks
        self._n = n
        self._block_size = block_size
        self._cache_idx = -1
        self._cache_vals: np.ndarray | None = None

    def size_bits(self) -> int:
        payload = sum(len(b) for b in self._blocks) * 8
        pointers = 64 * (len(self._blocks) + 1)  # block pointer array
        return payload + pointers

    def _decode_block(self, idx: int) -> np.ndarray:
        if idx == self._cache_idx and self._cache_vals is not None:
            return self._cache_vals
        raw = self._codec.decompress(self._blocks[idx])
        vals = np.frombuffer(raw, dtype=np.int64)
        self._cache_idx = idx
        self._cache_vals = vals
        return vals

    def decompress(self) -> np.ndarray:
        parts = [
            np.frombuffer(self._codec.decompress(b), dtype=np.int64)
            for b in self._blocks
        ]
        return np.concatenate(parts)

    def access(self, k: int) -> int:
        if not 0 <= k < self._n:
            raise IndexError(k)
        idx, off = divmod(k, self._block_size)
        # NOTE: no caching here — the paper's measurement is the cost of one
        # cold access (decompress the whole block, then index).
        raw = self._codec.decompress(self._blocks[idx])
        return int(np.frombuffer(raw, dtype=np.int64)[off])

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        if lo == hi:
            return np.empty(0, dtype=np.int64)
        first = lo // self._block_size
        last = (hi - 1) // self._block_size
        parts = [self._decode_block(i) for i in range(first, last + 1)]
        vals = np.concatenate(parts) if len(parts) > 1 else parts[0]
        base = first * self._block_size
        return vals[lo - base : hi - base].copy()

    def to_payload(self) -> bytes:
        """Native frame payload: the compressed blocks, length-prefixed."""
        parts = [INT64_TRIPLE.pack(self._n, self._block_size, len(self._blocks))]
        for block in self._blocks:
            parts.append(INT64.pack(len(block)))
            parts.append(block)
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload: bytes, codec: ByteCompressor) -> "BlockwiseCompressed":
        """Rebuild from :meth:`to_payload` output plus the byte codec."""
        if len(payload) < 24:
            raise ValueError("corrupt block-wise payload: header incomplete")
        n, block_size, nblocks = INT64_TRIPLE.unpack_from(payload)
        pos = 24
        blocks: list[bytes] = []
        for _ in range(nblocks):
            if pos + 8 > len(payload):
                raise ValueError("corrupt block-wise payload: truncated block")
            (length,) = INT64.unpack_from(payload, pos)
            pos += 8
            if length < 0 or pos + length > len(payload):
                raise ValueError("corrupt block-wise payload: bad block length")
            blocks.append(payload[pos : pos + length])
            pos += length
        return cls(codec, blocks, n, block_size)


class BlockwiseCompressor(LosslessCompressor):
    """Wrap a byte codec into the paper's block-wise scheme."""

    def __init__(self, codec: ByteCompressor, block_size: int = DEFAULT_BLOCK) -> None:
        self._codec = codec
        self._block_size = block_size
        self.name = codec.name

    def compress(self, values: np.ndarray) -> BlockwiseCompressed:
        values = self._check_input(values)
        blocks = []
        for start in range(0, len(values), self._block_size):
            chunk = values[start : start + self._block_size]
            blocks.append(self._codec.compress(chunk.tobytes()))
        return BlockwiseCompressed(self._codec, blocks, len(values), self._block_size)
