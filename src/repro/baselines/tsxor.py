"""TSXor (Bruno et al., SPIRE 2021): byte-oriented window XOR compression.

TSXor keeps a window of the previous 127 values and encodes each new value as
one of three byte-aligned cases:

* an exact match in the window      -> 1 byte (the window index);
* an XOR with the *most similar*    -> ``0x7F`` + reference index + one
  window value whose significant       offset/length byte + the significant
  bytes span at most 8 bytes           XOR bytes;
* anything else                     -> ``0xFF`` + the 8 raw bytes.

Everything is byte-aligned, which is what gives TSXor its speed in the
original paper; the window scan is vectorised here with numpy.
"""

from __future__ import annotations

import numpy as np

from ._native import INT64_PAIR, INT64_TRIPLE
from .base import Compressed, LosslessCompressor
from .blockwise import DEFAULT_BLOCK

__all__ = ["TSXorCompressor"]

_WINDOW = 127
_XOR_HDR = 0x7F
_RAW_HDR = 0xFF


def tsxor_encode(values: np.ndarray) -> bytes:
    """Encode an uint64 array into a TSXor byte stream."""
    out = bytearray()
    n = len(values)
    window = np.zeros(min(n, _WINDOW), dtype=np.uint64)
    wlen = 0
    wpos = 0
    for i in range(n):
        v = values[i]
        if wlen:
            active = window[:wlen]
            xors = active ^ v
            exact = np.nonzero(xors == 0)[0]
            if len(exact):
                slot = int(exact[-1])
                # Translate the slot into "distance from newest" (0-based).
                age = (wpos - 1 - slot) % wlen
                out.append(age)
                _push(window, v, wlen, wpos)
                wlen, wpos = _advance(wlen, wpos, len(window))
                continue
            # Pick the reference minimising the significant byte span.
            spans, firsts = _byte_spans(xors)
            best = int(np.argmin(spans))
            if spans[best] <= 6:
                xor = int(xors[best])
                first = int(firsts[best])
                length = int(spans[best])
                age = (wpos - 1 - best) % wlen
                out.append(_XOR_HDR)
                out.append(age)
                out.append((first << 4) | (length - 1))
                out += (xor >> (8 * first)).to_bytes(length, "little")
                _push(window, v, wlen, wpos)
                wlen, wpos = _advance(wlen, wpos, len(window))
                continue
        out.append(_RAW_HDR)
        out += int(v).to_bytes(8, "little")
        _push(window, v, wlen, wpos)
        wlen, wpos = _advance(wlen, wpos, len(window))
    return bytes(out)


def _push(window: np.ndarray, v: np.uint64, wlen: int, wpos: int) -> None:
    if len(window):
        window[wpos if wlen == len(window) else wlen] = v


def _advance(wlen: int, wpos: int, cap: int) -> tuple[int, int]:
    if wlen < cap:
        return wlen + 1, wpos
    return wlen, (wpos + 1) % cap


def _byte_spans(xors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Significant byte span (count) and first significant byte per XOR."""
    as_bytes = xors.view(np.uint8).reshape(-1, 8)
    nonzero = as_bytes != 0
    any_nz = nonzero.any(axis=1)
    first = np.where(any_nz, nonzero.argmax(axis=1), 0)
    last = np.where(any_nz, 7 - nonzero[:, ::-1].argmax(axis=1), 0)
    span = np.where(any_nz, last - first + 1, 8)  # zero XOR handled earlier
    return span.astype(np.int64), first.astype(np.int64)


def tsxor_decode(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` values from a TSXor byte stream."""
    out = np.empty(count, dtype=np.uint64)
    history: list[int] = []
    pos = 0
    for i in range(count):
        hdr = data[pos]
        pos += 1
        if hdr == _RAW_HDR:
            v = int.from_bytes(data[pos : pos + 8], "little")
            pos += 8
        elif hdr == _XOR_HDR:
            age = data[pos]
            ol = data[pos + 1]
            pos += 2
            first = ol >> 4
            length = (ol & 0x0F) + 1
            xor = int.from_bytes(data[pos : pos + length], "little") << (8 * first)
            pos += length
            v = history[-1 - age] ^ xor
        else:
            v = history[-1 - hdr]
        history.append(v)
        if len(history) > _WINDOW:
            history.pop(0)
        out[i] = v
    return out


#: decoded blocks kept hot per compressed object (LRU)
_BLOCK_CACHE = 8


class _TSXorCompressed(Compressed):
    payload_is_native = True

    def __init__(self, blocks: list[tuple[bytes, int]], n: int, block_size: int):
        from ..core.tiered import RunIndex

        self._blocks = blocks
        self._n = n
        self._block_size = block_size
        self._index = RunIndex(count for _, count in blocks)
        self._cache: dict[int, np.ndarray] = {}
        self.blocks_decoded = 0

    def size_bits(self) -> int:
        return sum(len(b) * 8 for b, _ in self._blocks) + 64 * (len(self._blocks) + 1)

    def _decode_block(self, idx: int) -> np.ndarray:
        cached = self._cache.pop(idx, None)
        if cached is None:
            self.blocks_decoded += 1
            from .. import kernels

            blob, count = self._blocks[idx]
            cached = kernels.decode_tsxor_block(blob, count)
        self._cache[idx] = cached  # re-insert: dict order is the LRU order
        if len(self._cache) > _BLOCK_CACHE:
            self._cache.pop(next(iter(self._cache)))
        return cached

    def decompress(self) -> np.ndarray:
        if not self._blocks:
            return np.empty(0, dtype=np.int64)
        from .. import kernels

        self.blocks_decoded += len(self._blocks)
        return kernels.decode_tsxor_blocks(self._blocks).astype(np.int64)

    def access(self, k: int) -> int:
        if not 0 <= k < self._n:
            raise IndexError(k)
        idx, off = self._index.locate(k)
        return int(self._decode_block(idx)[off].astype(np.int64))

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        parts = [
            self._decode_block(idx)[a:b] for idx, a, b in self._index.spans(lo, hi)
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts).astype(np.int64)

    def to_payload(self) -> bytes:
        """Native frame payload: the byte-aligned TSXor streams per block."""
        parts = [INT64_TRIPLE.pack(self._n, self._block_size, len(self._blocks))]
        for blob, count in self._blocks:
            parts.append(INT64_PAIR.pack(count, len(blob)))
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload: bytes) -> "_TSXorCompressed":
        """Rebuild from :meth:`to_payload` output (no context needed)."""
        if len(payload) < 24:
            raise ValueError("corrupt TSXor payload: header incomplete")
        n, block_size, nblocks = INT64_TRIPLE.unpack_from(payload)
        pos = 24
        blocks = []
        for _ in range(nblocks):
            if pos + 16 > len(payload):
                raise ValueError("corrupt TSXor payload: truncated block header")
            count, length = INT64_PAIR.unpack_from(payload, pos)
            pos += 16
            if length < 0 or pos + length > len(payload):
                raise ValueError("corrupt TSXor payload: bad block length")
            blocks.append((payload[pos : pos + length], count))
            pos += length
        return cls(blocks, n, block_size)


class TSXorCompressor(LosslessCompressor):
    """TSXor, block-wise (as in the paper's evaluation)."""

    name = "TSXor"

    def __init__(self, block_size: int = DEFAULT_BLOCK) -> None:
        self._block_size = block_size

    def compress(self, values: np.ndarray) -> _TSXorCompressed:
        values = self._check_input(values).astype(np.uint64)
        blocks = []
        for start in range(0, len(values), self._block_size):
            chunk = values[start : start + self._block_size]
            blocks.append((tsxor_encode(chunk), len(chunk)))
        return _TSXorCompressed(blocks, len(values), self._block_size)
