"""Every baseline compressor the paper evaluates against (§IV-A2)."""

from .aa import AaCompressor, AaSeries
from .alp import AlpCompressor
from .base import (
    Compressed,
    LosslessCompressor,
    LossyCompressed,
    LossyCompressor,
    validate_eps,
)
from .blockwise import BlockwiseCompressed, BlockwiseCompressor, ByteCompressor
from .chimp import Chimp128Compressor, ChimpCompressor
from .dac import DacCompressor
from .general import (
    GENERAL_PURPOSE,
    BrotliLikeCompressor,
    Lz4LikeCompressor,
    SnappyLikeCompressor,
    XzCompressor,
    ZstdLikeCompressor,
)
from .gorilla import GorillaCompressor
from .leco import LeCoCompressor
from .pla import PlaCompressor, PlaSeries
from .tsxor import TSXorCompressor

__all__ = [
    "Compressed",
    "LossyCompressed",
    "LosslessCompressor",
    "LossyCompressor",
    "validate_eps",
    "BlockwiseCompressor",
    "BlockwiseCompressed",
    "ByteCompressor",
    "XzCompressor",
    "BrotliLikeCompressor",
    "ZstdLikeCompressor",
    "Lz4LikeCompressor",
    "SnappyLikeCompressor",
    "GENERAL_PURPOSE",
    "GorillaCompressor",
    "ChimpCompressor",
    "Chimp128Compressor",
    "TSXorCompressor",
    "DacCompressor",
    "LeCoCompressor",
    "AlpCompressor",
    "PlaCompressor",
    "PlaSeries",
    "AaCompressor",
    "AaSeries",
]
