"""Struct helpers shared by the native frame payloads of DAC, LeCo, and ALP.

These codecs store their compressed state in the repo's succinct structures
(:class:`~repro.bits.packed.PackedArray`, :class:`~repro.bits.BitVector`);
their native payloads serialise those structures by word buffer, so loading
is a direct O(size) parse — no recompression — and works over any byte
buffer, including a ``memoryview`` of a memory-mapped archive.

Layouts (little-endian):

* packed array — ``width:u8, length:i64, nwords:i64`` + words;
* bitvector    — ``length:i64, nwords:i64`` + words.

The word counts are written explicitly (rather than derived from the
lengths) so a round-trip re-serialises bit-identically to the original
writer output, whose buffer always carries one trailing partial word.
"""

from __future__ import annotations

import struct

import numpy as np

from ..bits import BitVector, PackedArray

__all__ = [
    "pack_packed_array",
    "unpack_packed_array",
    "pack_bitvector",
    "unpack_bitvector",
    "read_words",
]

_PACKED_HDR = struct.Struct("<Bqq")  # width, length, nwords
_BV_HDR = struct.Struct("<qq")  # length, nwords


def read_words(view, pos: int, nwords: int, what: str) -> tuple[np.ndarray, int]:
    """``nwords`` little-endian u64 words at ``pos`` — zero-copy when possible."""
    if nwords < 0 or pos + 8 * nwords > len(view):
        raise ValueError(f"corrupt {what}: bad word count {nwords}")
    words = np.frombuffer(view, dtype=np.uint64, count=nwords, offset=pos)
    return words, pos + 8 * nwords


def pack_packed_array(arr: PackedArray) -> bytes:
    """Serialise a :class:`PackedArray` (header + word buffer)."""
    words = arr.words
    return _PACKED_HDR.pack(arr.width, len(arr), len(words)) + words.tobytes()


def unpack_packed_array(view, pos: int, what: str) -> tuple[PackedArray, int]:
    """Inverse of :func:`pack_packed_array`, reading at ``pos`` in ``view``."""
    if pos + _PACKED_HDR.size > len(view):
        raise ValueError(f"corrupt {what}: truncated packed array header")
    width, length, nwords = _PACKED_HDR.unpack_from(view, pos)
    words, pos = read_words(view, pos + _PACKED_HDR.size, nwords, what)
    return PackedArray.from_words(words, width, length), pos


def pack_bitvector(bv: BitVector) -> bytes:
    """Serialise a :class:`BitVector` (header + word buffer)."""
    words = bv.words
    return _BV_HDR.pack(bv.length, len(words)) + words.tobytes()


def unpack_bitvector(view, pos: int, what: str) -> tuple[BitVector, int]:
    """Inverse of :func:`pack_bitvector`, reading at ``pos`` in ``view``."""
    if pos + _BV_HDR.size > len(view):
        raise ValueError(f"corrupt {what}: truncated bitvector header")
    length, nwords = _BV_HDR.unpack_from(view, pos)
    if length < 0 or nwords != (length + 63) // 64:
        raise ValueError(f"corrupt {what}: bitvector holds {nwords} words "
                         f"for {length} bits")
    words, pos = read_words(view, pos + _BV_HDR.size, nwords, what)
    return BitVector((words, length)), pos
