"""Struct helpers shared by the codecs' native frame payloads.

DAC, LeCo, and ALP store their compressed state in the repo's succinct
structures (:class:`~repro.bits.packed.PackedArray`,
:class:`~repro.bits.BitVector`); their native payloads serialise those
structures by word buffer, so loading is a direct O(size) parse — no
recompression — and works over any byte buffer, including a ``memoryview``
of a memory-mapped archive.

The lossy codecs (NeaTS-L, PLA, AA) persist *fitted pieces* instead: a run
of ``[start, end)`` ranges with their float64 parameters, optionally tagged
with a model/family name.  The record helpers here serialise one such piece;
parameters are stored as raw IEEE doubles, so a round-trip reproduces the
exact approximation bit for bit.

Layouts (little-endian):

* packed array — ``width:u8, length:i64, nwords:i64`` + words;
* bitvector    — ``length:i64, nwords:i64`` + words;
* name         — ``len:u8`` + utf-8 bytes;
* segment      — ``start:i64, end:i64, n_params:u8`` + n_params doubles.
"""

from __future__ import annotations

import struct

import numpy as np

from ..bits import BitVector, PackedArray

__all__ = [
    "INT64",
    "INT64_PAIR",
    "INT64_TRIPLE",
    "UINT32",
    "FLOAT64",
    "AA_HDR",
    "ALP_HDR",
    "ALP_BLOCK",
    "DAC_HDR",
    "DAC_LEVEL",
    "LECO_HDR",
    "LECO_BLOCK",
    "LOSSY_HDR",
    "NEATS_HDR",
    "TSI64_HDR",
    "pack_packed_array",
    "unpack_packed_array",
    "pack_bitvector",
    "unpack_bitvector",
    "read_words",
    "pack_name",
    "unpack_name",
    "pack_segment",
    "unpack_segment",
]

_PACKED_HDR = struct.Struct("<Bqq")  # width, length, nwords
_BV_HDR = struct.Struct("<qq")  # length, nwords
_SEG_HDR = struct.Struct("<qqB")  # start, end, n_params

# Primitive little-endian layouts shared by every native payload.  The
# linter confines raw ``struct`` to this module (rule RPR102): codecs name
# their fields here instead of scattering format strings.
INT64 = struct.Struct("<q")
INT64_PAIR = struct.Struct("<qq")
INT64_TRIPLE = struct.Struct("<qqq")  # blockwise directory: n, block, count
UINT32 = struct.Struct("<I")
FLOAT64 = struct.Struct("<d")

# Per-codec native payload headers (field meanings in each codec module).
AA_HDR = struct.Struct("<qdI")  # n, eps, n_segments
ALP_HDR = struct.Struct("<qdq")  # n, scale, number of integer patches
ALP_BLOCK = struct.Struct("<BBqqq")  # e, f, base, count, exception count
DAC_HDR = struct.Struct("<qB")  # n, number of levels
DAC_LEVEL = struct.Struct("<BB")  # chunk width, has-bitmap flag
LECO_HDR = struct.Struct("<qq")  # n, number of blocks
LECO_BLOCK = struct.Struct("<qddq")  # start, slope, intercept, base
LOSSY_HDR = struct.Struct("<qqdI")  # n, shift, eps, n_segments/fragments
NEATS_HDR = struct.Struct("<qqqqB")  # n, m, shift, name_len, has_bv
TSI64_HDR = struct.Struct("<qi")  # value count, decimal digits


def read_words(view, pos: int, nwords: int, what: str) -> tuple[np.ndarray, int]:
    """``nwords`` little-endian u64 words at ``pos`` — zero-copy when possible."""
    if nwords < 0 or pos + 8 * nwords > len(view):
        raise ValueError(f"corrupt {what}: bad word count {nwords}")
    words = np.frombuffer(view, dtype=np.uint64, count=nwords, offset=pos)
    return words, pos + 8 * nwords


def pack_packed_array(arr: PackedArray) -> bytes:
    """Serialise a :class:`PackedArray` (header + word buffer)."""
    words = arr.words
    return _PACKED_HDR.pack(arr.width, len(arr), len(words)) + words.tobytes()


def unpack_packed_array(view, pos: int, what: str) -> tuple[PackedArray, int]:
    """Inverse of :func:`pack_packed_array`, reading at ``pos`` in ``view``."""
    if pos + _PACKED_HDR.size > len(view):
        raise ValueError(f"corrupt {what}: truncated packed array header")
    width, length, nwords = _PACKED_HDR.unpack_from(view, pos)
    words, pos = read_words(view, pos + _PACKED_HDR.size, nwords, what)
    return PackedArray.from_words(words, width, length), pos


def pack_bitvector(bv: BitVector) -> bytes:
    """Serialise a :class:`BitVector` (header + word buffer)."""
    words = bv.words
    return _BV_HDR.pack(bv.length, len(words)) + words.tobytes()


def unpack_bitvector(view, pos: int, what: str) -> tuple[BitVector, int]:
    """Inverse of :func:`pack_bitvector`, reading at ``pos`` in ``view``."""
    if pos + _BV_HDR.size > len(view):
        raise ValueError(f"corrupt {what}: truncated bitvector header")
    length, nwords = _BV_HDR.unpack_from(view, pos)
    if length < 0 or nwords != (length + 63) // 64:
        raise ValueError(f"corrupt {what}: bitvector holds {nwords} words "
                         f"for {length} bits")
    words, pos = read_words(view, pos + _BV_HDR.size, nwords, what)
    return BitVector((words, length)), pos


def pack_name(name: str) -> bytes:
    """Serialise a short identifier (model kind, AA family) as len + utf-8."""
    raw = name.encode("utf-8")
    if len(raw) > 255:
        raise ValueError(f"name too long to serialise: {name!r}")
    return bytes([len(raw)]) + raw


def unpack_name(view, pos: int, what: str) -> tuple[str, int]:
    """Inverse of :func:`pack_name`, reading at ``pos`` in ``view``."""
    if pos + 1 > len(view):
        raise ValueError(f"corrupt {what}: truncated name")
    nlen = view[pos]
    pos += 1
    if pos + nlen > len(view):
        raise ValueError(f"corrupt {what}: truncated name")
    return bytes(view[pos : pos + nlen]).decode("utf-8"), pos + nlen


def pack_segment(start: int, end: int, params) -> bytes:
    """Serialise one fitted piece: its range and raw float64 parameters."""
    params = tuple(float(p) for p in params)
    if len(params) > 255:
        raise ValueError(f"too many parameters to serialise: {len(params)}")
    return _SEG_HDR.pack(start, end, len(params)) + struct.pack(
        f"<{len(params)}d", *params
    )


def unpack_segment(view, pos: int, what: str) -> tuple[tuple, int]:
    """Inverse of :func:`pack_segment`: ``(start, end, params), new_pos``."""
    if pos + _SEG_HDR.size > len(view):
        raise ValueError(f"corrupt {what}: truncated segment header")
    start, end, n_params = _SEG_HDR.unpack_from(view, pos)
    pos += _SEG_HDR.size
    if not 0 <= start < end:
        raise ValueError(f"corrupt {what}: bad segment range [{start}, {end})")
    if pos + 8 * n_params > len(view):
        raise ValueError(f"corrupt {what}: truncated segment parameters")
    params = struct.unpack_from(f"<{n_params}d", view, pos)
    return (start, end, params), pos + 8 * n_params
