"""LeCo: lightweight compression via learning serial correlations (SIGMOD'24).

LeCo compresses a sequence by partitioning it into variable-length blocks,
fitting a regression model per block (we use its linear model, the one its
paper applies to time-series-like data), and bit-packing the residuals with a
frame-of-reference code.  Unlike NeaTS, the partitioning is a *heuristic*:
blocks start at a fixed size and neighbouring blocks are greedily merged
whenever the merge lowers the estimated size — exactly the split/merge scheme
the paper criticises as sub-optimal (§V.b), and the reason NeaTS beats LeCo
on compression ratio.

Random access is native (no block-wise adapter): block starts go into an
Elias-Fano sequence, each access is one predecessor search plus one residual
fetch (matching LeCo's own layout).
"""

from __future__ import annotations

import numpy as np

from ..bits import EliasFano
from ..bits.packed import PackedArray, min_width
from ._native import (
    LECO_BLOCK as _LECO_BLOCK,
    LECO_HDR as _LECO_HDR,
    pack_packed_array,
    unpack_packed_array,
)
from .base import Compressed, LosslessCompressor

__all__ = ["LeCoCompressor"]

_INITIAL_BLOCK = 128
_BLOCK_OVERHEAD_BITS = 2 * 64 + 64 + 8 + 32  # slope, intercept, base, width, start

def _fit_block(values: np.ndarray) -> tuple[float, float, np.ndarray]:
    """Least-squares line over positions 0..len-1; returns residuals too."""
    n = len(values)
    xs = np.arange(n, dtype=np.float64)
    ys = values.astype(np.float64)
    if n == 1:
        slope, intercept = 0.0, ys[0]
    else:
        xm = xs.mean()
        ym = ys.mean()
        den = float(((xs - xm) ** 2).sum())
        slope = float(((xs - xm) * (ys - ym)).sum() / den) if den else 0.0
        intercept = ym - slope * xm
    pred = np.floor(slope * xs + intercept).astype(np.int64)
    return slope, intercept, values - pred


def _block_cost(values: np.ndarray) -> int:
    """Estimated bit size of one block under the linear+FOR encoding."""
    _, _, resid = _fit_block(values)
    width = min_width(int(resid.max() - resid.min()))
    return _BLOCK_OVERHEAD_BITS + width * len(values)


class _LeCoBlock:
    __slots__ = ("start", "slope", "intercept", "base", "resid")

    def __init__(self, start: int, slope: float, intercept: float,
                 base: int, resid: PackedArray) -> None:
        self.start = start
        self.slope = slope
        self.intercept = intercept
        self.base = base
        self.resid = resid


class _LeCoCompressed(Compressed):
    payload_is_native = True

    def __init__(self, blocks: list[_LeCoBlock], n: int) -> None:
        self._blocks = blocks
        self._n = n
        self._starts = EliasFano([b.start for b in blocks], universe=max(n, 1))

    def size_bits(self) -> int:
        total = 64 + self._starts.size_bits()
        for b in self._blocks:
            total += 2 * 64 + 64 + 8 + b.resid.size_bits()
        return total

    def _block_of(self, k: int) -> int:
        return self._starts.rank(k) - 1

    def access(self, k: int) -> int:
        if not 0 <= k < self._n:
            raise IndexError(k)
        i = self._block_of(k)
        b = self._blocks[i]
        off = k - b.start
        pred = int(np.floor(b.slope * off + b.intercept))
        return pred + b.base + b.resid[off]

    def _decode_block(self, i: int) -> np.ndarray:
        b = self._blocks[i]
        end = self._blocks[i + 1].start if i + 1 < len(self._blocks) else self._n
        n = end - b.start
        xs = np.arange(n, dtype=np.float64)
        pred = np.floor(b.slope * xs + b.intercept).astype(np.int64)
        return pred + b.base + b.resid.to_numpy().astype(np.int64)

    def decompress(self) -> np.ndarray:
        return np.concatenate(
            [self._decode_block(i) for i in range(len(self._blocks))]
        )

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        if lo == hi:
            return np.empty(0, dtype=np.int64)
        out = []
        i = self._block_of(lo)
        pos = lo
        while pos < hi:
            b = self._blocks[i]
            end = self._blocks[i + 1].start if i + 1 < len(self._blocks) else self._n
            a, c = max(b.start, lo), min(end, hi)
            xs = np.arange(a - b.start, c - b.start, dtype=np.float64)
            pred = np.floor(b.slope * xs + b.intercept).astype(np.int64)
            resid = b.resid.slice(a - b.start, c - b.start).astype(np.int64)
            out.append(pred + b.base + resid)
            pos = c
            i += 1
        return np.concatenate(out)

    def to_payload(self) -> bytes:
        """Native frame payload: per-block model params + packed residuals.

        The Elias-Fano start index is not stored — it is rebuilt
        deterministically from the block starts on load (O(#blocks)).
        """
        parts = [_LECO_HDR.pack(self._n, len(self._blocks))]
        for b in self._blocks:
            parts.append(_LECO_BLOCK.pack(b.start, b.slope, b.intercept, b.base))
            parts.append(pack_packed_array(b.resid))
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload) -> "_LeCoCompressed":
        """Rebuild from :meth:`to_payload` output — a direct parse, no
        recompression (works over any byte buffer, e.g. an mmapped frame)."""
        view = memoryview(payload) if not isinstance(payload, memoryview) else payload
        if len(view) < _LECO_HDR.size:
            raise ValueError("corrupt LeCo payload: header incomplete")
        n, nblocks = _LECO_HDR.unpack_from(view)
        if n < 0 or nblocks < 1:
            raise ValueError(f"corrupt LeCo payload: {nblocks} blocks, n={n}")
        pos = _LECO_HDR.size
        blocks: list[_LeCoBlock] = []
        prev_start = -1
        for _ in range(nblocks):
            if pos + _LECO_BLOCK.size > len(view):
                raise ValueError("corrupt LeCo payload: truncated block header")
            start, slope, intercept, base = _LECO_BLOCK.unpack_from(view, pos)
            pos += _LECO_BLOCK.size
            ok = (start == 0) if not blocks else (prev_start < start < n)
            if not ok:
                raise ValueError(f"corrupt LeCo payload: bad block start {start}")
            resid, pos = unpack_packed_array(view, pos, "LeCo payload")
            blocks.append(_LeCoBlock(start, slope, intercept, base, resid))
            prev_start = start
        if pos != len(view):
            raise ValueError("corrupt LeCo payload: trailing bytes")
        return cls(blocks, n)


class LeCoCompressor(LosslessCompressor):
    """LeCo with linear models and greedy merge partitioning."""

    name = "LeCo"
    native_random_access = True

    def __init__(self, initial_block: int = _INITIAL_BLOCK, merge_passes: int = 2):
        self._initial_block = initial_block
        self._merge_passes = merge_passes

    def compress(self, values: np.ndarray) -> _LeCoCompressed:
        values = self._check_input(values)
        n = len(values)
        bounds = list(range(0, n, self._initial_block)) + [n]

        # Greedy merging: accept a merge when it shrinks the estimate.
        for _ in range(self._merge_passes):
            merged = [bounds[0]]
            i = 0
            changed = False
            while i + 1 < len(bounds):
                if i + 2 < len(bounds):
                    a, b, c = bounds[i], bounds[i + 1], bounds[i + 2]
                    cost_split = _block_cost(values[a:b]) + _block_cost(values[b:c])
                    cost_merge = _block_cost(values[a:c])
                    if cost_merge < cost_split:
                        merged.append(c)
                        i += 2
                        changed = True
                        continue
                merged.append(bounds[i + 1])
                i += 1
            bounds = merged
            if not changed:
                break

        blocks: list[_LeCoBlock] = []
        for a, c in zip(bounds, bounds[1:]):
            chunk = values[a:c]
            slope, intercept, resid = _fit_block(chunk)
            base = int(resid.min())
            width = min_width(int(resid.max()) - base)
            packed = PackedArray((resid - base).tolist(), width=width)
            blocks.append(_LeCoBlock(a, slope, intercept, base, packed))
        return _LeCoCompressed(blocks, n)
